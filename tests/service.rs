//! Integration suite of the [`DsgService`] front-end (PR 6): ticket
//! lifecycle under backpressure, fail-point-driven fault containment on
//! both sides of the plan/apply boundary, recovery, and the headline
//! determinism property — a multi-producer pipelined run replays bit for
//! bit through a sequential `submit_batch` of its journal.
//!
//! Fault-injection tests serialize on `failpoint::exclusive()` (the
//! registry is process-global) and disarm on every exit path.

use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use proptest::prelude::*;

use dsg::failpoint;
use dsg::prelude::*;
use dsg::service::ShutdownOutcome;

mod common;
use common::assert_networks_agree;

fn build(n: u64, seed: u64) -> DsgSession {
    DsgSession::builder()
        .peers(0..n)
        .seed(seed)
        .build()
        .expect("peer keys 0..n are distinct")
}

/// Submits each request, waits on its ticket, and panics on any failure.
fn serve_all(service: &DsgService, requests: &[Request]) {
    let tickets: Vec<Ticket> = requests
        .iter()
        .map(|&r| {
            service
                .submit_deadline(r, Duration::from_secs(30))
                .expect("queue admits within 30s")
        })
        .collect();
    for ticket in tickets {
        ticket.wait().expect("request serves cleanly");
    }
}

// ---------------------------------------------------------------------
// Ticket lifecycle under backpressure
// ---------------------------------------------------------------------

/// An observer whose `on_transform` blocks until the test releases it —
/// a deterministic "slow engine" that wedges the ingest thread mid-epoch.
#[derive(Default)]
struct GateInner {
    entered: Mutex<bool>,
    released: Mutex<bool>,
    changed: Condvar,
}

struct GateObserver(Arc<GateInner>);

impl DsgObserver for GateObserver {
    fn on_transform(&mut self, _event: &TransformEvent) {
        {
            let mut entered = self.0.entered.lock().unwrap();
            *entered = true;
            self.0.changed.notify_all();
        }
        let mut released = self.0.released.lock().unwrap();
        while !*released {
            released = self.0.changed.wait(released).unwrap();
        }
    }
}

impl GateInner {
    fn wait_entered(&self) {
        let mut entered = self.entered.lock().unwrap();
        while !*entered {
            entered = self.changed.wait(entered).unwrap();
        }
    }

    fn release(&self) {
        *self.released.lock().unwrap() = true;
        self.changed.notify_all();
    }
}

#[test]
fn slow_engine_backpressure_is_typed_and_leaks_no_tickets() {
    let gate = Arc::new(GateInner::default());
    let mut session = build(32, 5);
    session.add_observer(Arc::new(Mutex::new(GateObserver(Arc::clone(&gate)))));
    let mut service = DsgService::spawn(
        session,
        ServiceConfig {
            queue_capacity: 1,
            ..ServiceConfig::default()
        },
    )
    .unwrap();

    // r1 is drained immediately and wedges the ingest thread inside its
    // epoch's observer callback; the queue is empty again.
    let r1 = service.submit(Request::communicate(0, 16)).unwrap();
    gate.wait_entered();
    // r2 fills the capacity-1 queue behind the wedged engine.
    let r2 = service.submit(Request::communicate(1, 17)).unwrap();
    // Non-blocking submission: typed overload.
    assert_eq!(
        service.submit(Request::communicate(2, 18)).unwrap_err(),
        SubmitError::Overloaded
    );
    // Blocking submission: typed timeout once the deadline passes.
    assert_eq!(
        service
            .submit_deadline(Request::communicate(2, 18), Duration::from_millis(50))
            .unwrap_err(),
        SubmitError::Timeout
    );
    assert!(r1.try_result().is_none(), "r1 resolved while wedged");

    // Unwedge: every accepted ticket resolves, nothing leaks.
    gate.release();
    r1.wait().unwrap();
    r2.wait().unwrap();
    let done = service.shutdown().expect("first shutdown");
    assert_eq!(done.metrics.submitted, 2);
    assert_eq!(done.metrics.rejected_overload, 1);
    assert_eq!(done.metrics.submit_timeouts, 1);
    assert!(done.metrics.max_queue_depth >= 1);
    done.session.engine().validate().unwrap();
}

#[test]
fn drain_shutdown_serves_the_backlog() {
    let mut service = DsgService::spawn(
        build(64, 6),
        ServiceConfig {
            queue_capacity: 512,
            ..ServiceConfig::default()
        },
    )
    .unwrap();
    let tickets: Vec<Ticket> = (0..32u64)
        .map(|i| service.submit(Request::communicate(i, i + 32)).unwrap())
        .collect();
    let done = service.shutdown().expect("first shutdown");
    for ticket in &tickets {
        ticket
            .wait()
            .expect("drain policy serves every queued request");
    }
    assert_eq!(done.metrics.submitted, 32);
    done.session.engine().validate().unwrap();

    // A second shutdown is a typed error, never a panic — and the handle
    // can still be dropped safely afterwards.
    assert!(matches!(
        service.shutdown().unwrap_err(),
        DsgError::AlreadyShutDown
    ));
    drop(service);
}

// ---------------------------------------------------------------------
// Fault containment: the plan side of the boundary
// ---------------------------------------------------------------------

/// Arms `site` for its first hit, submits `faulted` as a burst, and
/// asserts at least one ticket resolves with `EpochAborted` while every
/// other ticket either rides in the aborted chunk or serves cleanly once
/// the one-shot fault is consumed. Returns the shutdown outcome.
fn run_with_abort_fault(
    site: &str,
    n: u64,
    seed: u64,
    warmup: &[Request],
    faulted: &[Request],
    after: &[Request],
) -> ShutdownOutcome {
    let mut service = DsgService::spawn(
        build(n, seed),
        ServiceConfig {
            record_journal: true,
            ..ServiceConfig::default()
        },
    )
    .unwrap();
    serve_all(&service, warmup);

    failpoint::arm(site, 1);
    let tickets: Vec<Ticket> = faulted
        .iter()
        .map(|&r| service.submit_deadline(r, Duration::from_secs(30)).unwrap())
        .collect();
    // The ingest thread is free to cut the burst into several chunks; only
    // the chunk that trips the one-shot fault aborts, the rest serve.
    let mut aborted = 0usize;
    for ticket in tickets {
        match ticket.wait() {
            Ok(_) => {}
            Err(DsgError::EpochAborted(_)) => aborted += 1,
            Err(err) => panic!("expected EpochAborted or success, got {err}"),
        }
    }
    assert!(aborted >= 1, "the armed {site} fault never fired");
    failpoint::disarm_all();
    assert!(!service.is_poisoned(), "plan-side faults must not poison");

    serve_all(&service, after);
    service.shutdown().expect("first shutdown")
}

#[test]
fn plan_stage_fault_aborts_the_epoch_and_leaves_the_engine_untouched() {
    let _guard = failpoint::exclusive();
    failpoint::disarm_all();
    let n = 48u64;
    let warmup: Vec<Request> = (0..8).map(|i| Request::communicate(i, i + 24)).collect();
    let faulted: Vec<Request> = (8..12).map(|i| Request::communicate(i, i + 24)).collect();
    let after: Vec<Request> = (12..16).map(|i| Request::communicate(i, i + 24)).collect();

    let done = run_with_abort_fault(failpoint::PLAN_WORKER, n, 77, &warmup, &faulted, &after);
    assert!(done.metrics.plan_aborts >= 1);
    assert_eq!(done.metrics.poisonings, 0);

    // Bit-for-bit containment: replaying the journal — which records only
    // the *successfully served* chunks — through a fresh session must land
    // on the identical structure. Had the aborted epoch leaked one write,
    // the twin would diverge.
    let mut twin = build(n, 77);
    for chunk in &done.journal {
        twin.submit_batch(chunk).expect("journal replays cleanly");
    }
    assert_networks_agree(
        "plan-abort journal twin",
        done.session.engine(),
        twin.engine(),
    );
}

#[test]
fn ingest_loop_fault_fails_the_run_and_the_service_continues() {
    let _guard = failpoint::exclusive();
    failpoint::disarm_all();
    let n = 32u64;
    let warmup: Vec<Request> = (0..4).map(|i| Request::communicate(i, i + 16)).collect();
    let faulted = [Request::communicate(4, 20), Request::communicate(5, 21)];
    let after = [Request::communicate(6, 22)];

    let done = run_with_abort_fault(failpoint::INGEST_LOOP, n, 13, &warmup, &faulted, &after);
    // The ingest.loop site fires before the engine is entered: contained
    // as a plan-side abort, no poisoning, service kept serving.
    assert!(done.metrics.plan_aborts >= 1);
    assert_eq!(done.metrics.poisonings, 0);
    done.session.engine().validate().unwrap();
}

// ---------------------------------------------------------------------
// Fault containment: the apply side of the boundary
// ---------------------------------------------------------------------

fn poison_and_recover(site: &str, seed: u64) {
    let _guard = failpoint::exclusive();
    failpoint::disarm_all();
    let n = 48u64;
    let mut service = DsgService::spawn(build(n, seed), ServiceConfig::default()).unwrap();
    serve_all(
        &service,
        &(0..6)
            .map(|i| Request::communicate(i, i + 24))
            .collect::<Vec<_>>(),
    );

    failpoint::arm(site, 1);
    // Burst of submissions: the first chunk trips the armed fault and
    // poisons the service. Later submissions either get admitted first
    // (their tickets then resolve EnginePoisoned — no hangs) or race the
    // poison transition and are refused at admission with the typed error.
    let mut admitted: Vec<Ticket> = Vec::new();
    for i in 6..10u64 {
        match service.submit_deadline(Request::communicate(i, i + 24), Duration::from_secs(30)) {
            Ok(ticket) => admitted.push(ticket),
            Err(SubmitError::Poisoned) => {}
            Err(err) => panic!("unexpected admission error {err}"),
        }
    }
    assert!(!admitted.is_empty());
    let mut poisoned_tickets = 0usize;
    for ticket in admitted {
        match ticket.wait() {
            Ok(_) => {} // a chunk served before the armed site was reached
            Err(DsgError::EnginePoisoned) => poisoned_tickets += 1,
            Err(err) => panic!("expected EnginePoisoned, got {err}"),
        }
    }
    assert!(poisoned_tickets >= 1, "the armed {site} fault never fired");
    failpoint::disarm_all();
    assert!(service.is_poisoned());

    // New submissions are refused while poisoned.
    assert_eq!(
        service.submit(Request::communicate(1, 30)).unwrap_err(),
        SubmitError::Poisoned
    );

    // Opt-in recovery rebuilds from the surviving state and deep-validates.
    let report = service.recover().expect("recovery succeeds");
    assert!(report.peers > 0 && report.peers <= n as usize);
    assert!(!service.is_poisoned());

    // A second recover finds a healthy service: typed refusal, and the
    // recovered structure is left untouched (idempotent in effect).
    assert!(matches!(
        service.recover().unwrap_err(),
        DsgError::NotPoisoned
    ));

    // The service is fully live again: serve more traffic, then prove the
    // final structure deep-validates clean.
    serve_all(
        &service,
        &(0..6)
            .map(|i| Request::communicate(i + 10, i + 34))
            .collect::<Vec<_>>(),
    );
    let done = service.shutdown().expect("first shutdown");
    assert_eq!(done.metrics.poisonings, 1);
    assert_eq!(done.metrics.recoveries, 1);
    done.session.engine().validate().unwrap();
}

#[test]
fn apply_splice_fault_poisons_then_recovers() {
    poison_and_recover(failpoint::APPLY_SPLICE, 301);
}

#[test]
fn dummy_reconciliation_fault_poisons_then_recovers() {
    // Pass 0 of the reconciling repair is a pure read, but it runs after
    // the epoch's install — the phase marker says Applying, so the
    // containment must poison, not abort.
    poison_and_recover(failpoint::DUMMY_PASS0, 302);
}

// ---------------------------------------------------------------------
// Determinism: pipelined multi-producer run == sequential journal replay
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The service adds concurrency only at the queue boundary: whatever
    /// interleaving the producers race into, replaying the recorded chunk
    /// journal through a fresh single-threaded session reproduces the
    /// final structure bit for bit (graphs, dummy populations, per-peer
    /// state).
    #[test]
    fn pipelined_run_replays_bit_for_bit(
        n in 16u64..48,
        seed in 0u64..1000,
        raw in proptest::collection::vec((0u64..1000, 0u64..1000), 8..48),
        producers in 2usize..5,
        overload_bit in 0u64..2,
    ) {
        let overload = overload_bit == 1;
        let requests: Vec<Request> = raw
            .iter()
            .filter_map(|&(a, b)| {
                let (u, v) = (a % n, b % n);
                (u != v).then(|| Request::communicate(u, v))
            })
            .collect();
        if requests.is_empty() {
            return;
        }
        let mut config = ServiceConfig {
            record_journal: true,
            queue_capacity: 8,
            ingest_batch: 4,
            ..ServiceConfig::default()
        };
        if overload {
            // Targets far beyond any real sojourn: the overload layer is
            // armed (controller, watchdog, degraded submit path) but never
            // triggers, and must leave the run bit-identical to a service
            // without it.
            config = config.with_overload(
                OverloadConfig::default()
                    .with_brownout_target(Duration::from_secs(3600))
                    .with_shed_target(Duration::from_secs(7200))
                    .with_stall_after(Duration::from_secs(3600)),
            );
        }
        let mut service = DsgService::spawn(build(n, seed), config).unwrap();
        std::thread::scope(|scope| {
            for slice in requests.chunks(requests.len().div_ceil(producers)) {
                let service = &service;
                scope.spawn(move || {
                    for &request in slice {
                        let ticket = service
                            .submit_deadline(request, Duration::from_secs(30))
                            .expect("queue admits within 30s");
                        ticket.wait().expect("request serves cleanly");
                    }
                });
            }
        });
        let done = service.shutdown().expect("first shutdown");
        prop_assert_eq!(done.metrics.submitted as usize, requests.len());
        if overload {
            // The armed-but-idle overload layer never degraded anything.
            prop_assert_eq!(done.metrics.shed_submits, 0);
            prop_assert_eq!(done.metrics.deadline_shed, 0);
            prop_assert_eq!(done.metrics.brownout_chunks, 0);
            prop_assert_eq!(done.metrics.pairs_browned_out, 0);
        }

        let mut twin = build(n, seed);
        for chunk in &done.journal {
            twin.submit_batch(chunk).expect("journal replays cleanly");
        }
        assert_networks_agree("service journal twin", done.session.engine(), twin.engine());
        prop_assert_eq!(done.session.epochs(), twin.epochs());
    }
}

// ---------------------------------------------------------------------
// Durable journal vs the in-memory recording oracle
// ---------------------------------------------------------------------

fn temp_store_dir(tag: &str) -> std::path::PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("dsg-service-{tag}-{}-{n}", std::process::id()))
}

/// Satellite proof of "one source of truth": with persistence on, the
/// chunk journal handed back by `shutdown` comes from the durable log,
/// and must agree — chunk for chunk — with the in-memory
/// `record_journal` oracle. Replaying either through a fresh session
/// reproduces the served structure.
#[test]
fn durable_journal_agrees_with_the_recording_oracle() {
    let dir = temp_store_dir("oracle");
    let n = 32u64;
    let config = ServiceConfig {
        record_journal: true,
        ingest_batch: 4,
        persist: Some(PersistConfig::default()),
        ..ServiceConfig::default()
    };
    let (mut service, report) =
        DsgService::open(&dir, DsgSession::builder().peers(0..n).seed(41), config)
            .expect("cold start");
    assert!(!report.recovered);

    let requests: Vec<Request> = (0..24)
        .map(|i| Request::communicate(i % n, (i + 7) % n))
        .collect();
    serve_all(&service, &requests);
    let status = service.status();
    assert!(
        status.journal_bytes > 0,
        "served chunks must hit the journal"
    );
    let done = service.shutdown().expect("first shutdown");

    assert_eq!(
        done.journal, done.journal_recorded,
        "durable journal and in-memory oracle diverge"
    );
    assert_eq!(
        done.journal.iter().map(Vec::len).sum::<usize>(),
        requests.len(),
        "every acknowledged request is journaled exactly once"
    );
    let mut twin = build(n, 41);
    for chunk in &done.journal {
        twin.submit_batch(chunk).expect("journal replays cleanly");
    }
    assert_networks_agree("durable journal twin", done.session.engine(), twin.engine());
    std::fs::remove_dir_all(&dir).ok();
}

// ---------------------------------------------------------------------
// Overload control (PR 9): deadline shedding, sojourn shedding, watchdog
// ---------------------------------------------------------------------

#[test]
fn expired_deadline_is_shed_before_the_engine_and_the_ticket_resolves() {
    let gate = Arc::new(GateInner::default());
    let mut session = build(32, 9);
    session.add_observer(Arc::new(Mutex::new(GateObserver(Arc::clone(&gate)))));
    let mut service = DsgService::spawn(session, ServiceConfig::default()).unwrap();

    // r1 wedges the ingest thread inside its epoch's observer callback.
    let r1 = service.submit(Request::communicate(0, 16)).unwrap();
    gate.wait_entered();
    // r2's budget expires while it waits behind the wedged engine; r3
    // rides the same drained chunk without a deadline — shedding its
    // neighbour must not touch it.
    let r2 = service
        .submit_with_deadline(Request::communicate(1, 17), Duration::from_millis(10))
        .unwrap();
    let r3 = service.submit(Request::communicate(2, 18)).unwrap();
    std::thread::sleep(Duration::from_millis(30));
    gate.release();

    // Regression (`Ticket::wait_timeout` contract): a shed ticket
    // *resolves* the moment the request is dropped — the waiter is never
    // left to ride out its own timeout.
    match r2.wait_timeout(Duration::from_secs(10)) {
        Some(Err(DsgError::DeadlineExceeded)) => {}
        other => panic!("expected a resolved DeadlineExceeded ticket, got {other:?}"),
    }
    r1.wait().unwrap();
    r3.wait().expect("an expired neighbour must not fail the chunk");
    let done = service.shutdown().expect("first shutdown");
    assert_eq!(done.metrics.deadline_shed, 1);
    assert_eq!(done.metrics.submitted, 3);
    done.session.engine().validate().unwrap();
}

/// An observer that sleeps through every epoch — a deterministic slow
/// engine whose service rate stays far below any offered burst.
struct SlowEngine(Duration);

impl DsgObserver for SlowEngine {
    fn on_transform(&mut self, _event: &TransformEvent) {
        std::thread::sleep(self.0);
    }
}

#[test]
fn sustained_backlog_engages_shedding_then_recovers() {
    let mut session = build(64, 11);
    session.add_observer(Arc::new(Mutex::new(SlowEngine(Duration::from_millis(10)))));
    let overload = OverloadConfig::default()
        .with_brownout_target(Duration::from_millis(2))
        .with_shed_target(Duration::from_millis(8))
        .with_interval(Duration::from_millis(5))
        .with_retry_after(Duration::from_millis(25));
    let mut service = DsgService::spawn(
        session,
        ServiceConfig {
            queue_capacity: 256,
            ingest_batch: 1,
            ..ServiceConfig::default()
        }
        .with_overload(overload),
    )
    .unwrap();

    // Open-loop burst: keep offering work faster than the ~10 ms/epoch
    // engine serves it until the controller turns producers away.
    let mut accepted: Vec<Ticket> = Vec::new();
    let mut refusal = None;
    for i in 0..400u64 {
        match service.submit(Request::communicate(i % 64, (i + 31) % 64)) {
            Ok(ticket) => accepted.push(ticket),
            Err(SubmitError::Shed { retry_after }) => {
                refusal = Some(retry_after);
                break;
            }
            Err(err) => panic!("unexpected refusal {err}"),
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    assert_eq!(
        refusal.expect("sustained overload must engage shedding"),
        Duration::from_millis(25),
        "the shed refusal carries the configured retry-after hint"
    );
    let status = service.status();
    assert!(status.shed_submits >= 1);
    assert!(
        status.brownout,
        "shedding is the harsher rung: brownout must already be engaged"
    );

    // Producer-side retry: with the queue still ~10 epochs deep, a
    // two-attempt policy burns its retry and hands back the last typed
    // refusal (its backoff is floored at the 25 ms hint).
    let policy = RetryPolicy {
        attempts: 2,
        base: Duration::from_micros(10),
        cap: Duration::from_micros(10),
        seed: 7,
    };
    match service.submit_retry(Request::communicate(5, 40), &policy) {
        Err(SubmitError::Shed { .. }) => {}
        other => panic!("expected the retries to exhaust against the backlog, got {other:?}"),
    }

    // Stop offering: every accepted ticket resolves, the backlog drains,
    // and the idle queue exits the degradation ladder.
    for ticket in accepted {
        ticket.wait().expect("accepted requests serve cleanly");
    }
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let metrics = service.metrics();
        if metrics.brownout_exits >= 1 {
            assert!(metrics.brownout_entries >= 1);
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "the idle queue never exited brownout"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(
        service.status().sojourn_p99_us > 0,
        "queued requests must have recorded sojourns"
    );
    let done = service.shutdown().expect("first shutdown");
    assert!(done.metrics.shed_submits >= 2, "the retry loop also counted");
    assert!(done.metrics.brownout_chunks >= 1);
    done.session.engine().validate().unwrap();
}

/// An observer recording the watchdog's stall reports.
#[derive(Default)]
struct StallRecorder(Arc<Mutex<Vec<(&'static str, u64)>>>);

impl DsgObserver for StallRecorder {
    fn on_stall(&mut self, event: &StallEvent) {
        self.0
            .lock()
            .unwrap()
            .push((event.stage, event.stalled_for_ns));
    }
}

#[test]
fn watchdog_reports_a_wedged_ingest_loop() {
    let _guard = failpoint::exclusive();
    failpoint::disarm_all();
    let stalls: Arc<Mutex<Vec<(&'static str, u64)>>> = Arc::default();
    let mut session = build(32, 13);
    session.add_observer(Arc::new(Mutex::new(StallRecorder(Arc::clone(&stalls)))));
    let mut service = DsgService::spawn(
        session,
        ServiceConfig::default()
            .with_overload(OverloadConfig::default().with_stall_after(Duration::from_millis(40))),
    )
    .unwrap();

    // The armed sleep wedges the ingest loop for 250 ms inside the engine
    // stage — far past the 40 ms stall threshold, so the watchdog must
    // report exactly one stuck-heartbeat episode.
    failpoint::arm_sleep(failpoint::INGEST_LOOP, 1, 250);
    let ticket = service.submit(Request::communicate(0, 16)).unwrap();
    ticket
        .wait()
        .expect("a sleeping fail point injects delay, not failure");
    failpoint::disarm_all();

    {
        let recorded = stalls.lock().unwrap();
        assert!(!recorded.is_empty(), "the watchdog never fired");
        assert!(recorded.iter().all(|&(stage, _)| stage == "engine"));
        assert!(recorded.iter().all(|&(_, ns)| ns >= 40_000_000));
    }
    let done = service.shutdown().expect("first shutdown");
    assert!(done.metrics.stalls >= 1);
    done.session.engine().validate().unwrap();
}
