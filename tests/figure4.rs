//! Experiment E3: the S₈ → S₉ worked example of Figure 4.
//!
//! The paper walks the `(U, V)` request at time 8 through every rule of the
//! algorithm on a concrete ten-node instance. These tests rebuild S₈ exactly
//! (membership vectors, timestamps, group-ids, group-bases) and assert the
//! structural facts the paper states about S₉:
//!
//! * `α = 0` and the priorities of §IV-C's example,
//! * `U` and `V` end up in a linked list of size two (directly linked) with
//!   timestamps equal to the request time,
//! * the non-communicating groups `{H, J}`, `{F, I}` and `{B, G}` are not
//!   torn apart,
//! * `E` (V's old partner) stays on the communicating side, and
//! * the structure height stays within the Lemma-5 bound.
//!
//! Exact per-level timestamps depend on interpretation choices documented in
//! `DESIGN.md`; the assertions here are the ones that are unambiguous in the
//! paper.

use dsg::fixtures::{figure4_s8, internal, peers};
use dsg::{DsgConfig, MedianStrategy};

fn exact_config() -> DsgConfig {
    // The worked example is deterministic with the exact-median oracle; the
    // AMF variant is exercised separately below.
    DsgConfig::default()
        .with_median(MedianStrategy::Exact)
        .with_a(3)
        .with_seed(8)
}

#[test]
fn alpha_is_zero_as_stated_in_the_paper() {
    let net = figure4_s8(exact_config()).unwrap();
    assert_eq!(net.common_level(peers::U, peers::V).unwrap(), 0);
    assert_eq!(net.time(), 7);
}

#[test]
fn uv_request_creates_the_direct_link_of_s9() {
    let mut net = figure4_s8(exact_config()).unwrap();
    let outcome = net.communicate(peers::U, peers::V).unwrap();
    assert_eq!(outcome.time, 8, "the request happens at time 8");
    assert_eq!(outcome.alpha, 0);
    // U and V form a linked list of size two (Figure 4(c) level 3).
    assert!(net.are_directly_linked(peers::U, peers::V).unwrap());
    assert_eq!(net.peer_distance(peers::U, peers::V).unwrap(), 0);
    // Rule T1: both carry the request time at the pair level.
    let d = outcome.pair_level;
    assert_eq!(net.peer_state(peers::U).unwrap().timestamp(d), 8);
    assert_eq!(net.peer_state(peers::V).unwrap().timestamp(d), 8);
    // The merged group carries U's identifier at level α.
    assert_eq!(
        net.peer_state(peers::V).unwrap().group_id(0),
        internal(peers::U)
    );
    assert_eq!(
        net.peer_state(peers::E).unwrap().group_id(0),
        internal(peers::U)
    );
    net.validate().unwrap();
}

#[test]
fn non_communicating_groups_survive_the_transformation() {
    let mut net = figure4_s8(exact_config()).unwrap();
    let before_hj = net.common_level(peers::H, peers::J).unwrap();
    let before_fi = net.common_level(peers::F, peers::I).unwrap();
    net.communicate(peers::U, peers::V).unwrap();
    // The groups that did not take part keep (or improve) their proximity:
    // their shared-prefix level may move around, but they must still be
    // directly linked or very close, as Figure 4(c) shows them staying
    // paired.
    let after_hj = net.common_level(peers::H, peers::J).unwrap();
    let after_fi = net.common_level(peers::F, peers::I).unwrap();
    assert!(net.peer_distance(peers::H, peers::J).unwrap() <= 1);
    assert!(net.peer_distance(peers::F, peers::I).unwrap() <= 1);
    assert!(after_hj >= 1, "H and J separated (was {before_hj}, now {after_hj})");
    assert!(after_fi >= 1, "F and I separated (was {before_fi}, now {after_fi})");
    // B and G, members of U's old group, also stay close (Figure 4(c) keeps
    // them in one group at level 3).
    assert!(net.peer_distance(peers::B, peers::G).unwrap() <= 2);
}

#[test]
fn e_stays_on_the_communicating_side() {
    let mut net = figure4_s8(exact_config()).unwrap();
    net.communicate(peers::U, peers::V).unwrap();
    // In S₉, E sits in the same level-1 subgraph as U and V (it was V's
    // most recent partner), while H, J, F, I end up in the sibling subgraph.
    let e_side = net.common_level(peers::E, peers::U).unwrap();
    let h_side = net.common_level(peers::H, peers::U).unwrap();
    assert!(
        e_side > h_side,
        "E (level {e_side}) should share more structure with U than H does (level {h_side})"
    );
}

#[test]
fn height_respects_lemma_5_after_the_transformation() {
    let mut net = figure4_s8(exact_config()).unwrap();
    let outcome = net.communicate(peers::U, peers::V).unwrap();
    // Lemma 5: height ≤ log_{3/2} n = log_{3/2} 10 ≈ 5.7, plus slack for
    // dummy nodes.
    assert!(outcome.height_after <= 7, "height {}", outcome.height_after);
    // Lemma 4: the direct link sits no higher than log_{2a/(a+1)} n.
    let lemma4 = (10f64).ln() / (2.0 * 3.0 / 4.0f64).ln();
    assert!((outcome.pair_level as f64) <= lemma4 + 1.0);
}

#[test]
fn the_worked_example_also_runs_under_amf() {
    let mut net = figure4_s8(DsgConfig::default().with_a(3).with_seed(8)).unwrap();
    let outcome = net.communicate(peers::U, peers::V).unwrap();
    assert!(net.are_directly_linked(peers::U, peers::V).unwrap());
    assert!(outcome.height_after <= 8);
    net.validate().unwrap();
}

#[test]
fn repeating_the_pair_after_s9_is_free() {
    let mut net = figure4_s8(exact_config()).unwrap();
    net.communicate(peers::U, peers::V).unwrap();
    let again = net.communicate(peers::U, peers::V).unwrap();
    assert_eq!(again.routing_cost, 0);
    assert_eq!(again.alpha, again.pair_level);
}
