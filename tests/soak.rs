//! Long-horizon soak test (PR 5): a fixed-seed, ≥ 5k-request stress run of
//! mixed Communicate / Join / Leave / Tick traffic through the
//! epoch-batched session, asserting the arena invariants as it goes —
//! graph structure (`SkipGraph::validate` covers the link chains, the
//! cached list lengths, and the per-list dummy counters), the
//! state-table/graph registration invariant, the a-balance report, and the
//! height bound.
//!
//! `#[ignore]` by default: the run takes minutes in release mode, so a
//! dedicated CI job runs it with `cargo test --release --test soak --
//! --ignored` instead of every `cargo test` invocation paying for it.

use dsg::prelude::*;

/// Deterministic splitmix64 stream so the trace is reproducible without
/// dragging in a RNG dependency.
struct Mix(u64);

impl Mix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

fn soak(shards: usize) {
    const PEERS: u64 = 256;
    const REQUESTS: usize = 5_000;
    const BATCH: usize = 16;
    /// Invariants are re-checked every this many submitted batches.
    const CHECK_EVERY: usize = 25;

    let mut session = DsgSession::builder()
        .peers(0..PEERS)
        .seed(0x50A6)
        .shards(shards)
        .build()
        .expect("soak config is valid");
    let mut mix = Mix(0x00DE_C0DE);
    let mut joined: Vec<u64> = Vec::new();
    let mut next_join = 10_000u64;
    let mut clock = 0u64;

    let mut submitted = 0usize;
    let mut batches = 0usize;
    let mut pending: Vec<Request> = Vec::new();
    while submitted < REQUESTS {
        pending.clear();
        for _ in 0..BATCH {
            let roll = mix.next() % 100;
            let request = match roll {
                // ~6% joins, ~4% leaves, ~2% clock ticks, the rest traffic.
                0..=5 => {
                    next_join += 1;
                    joined.push(next_join);
                    Request::Join(next_join)
                }
                6..=9 if !joined.is_empty() => {
                    let idx = (mix.next() as usize) % joined.len();
                    Request::Leave(joined.swap_remove(idx))
                }
                10..=11 => {
                    clock += 50;
                    Request::Tick(clock)
                }
                _ => {
                    let u = mix.next() % PEERS;
                    let mut v = mix.next() % PEERS;
                    if v == u {
                        v = (v + 1) % PEERS;
                    }
                    Request::communicate(u, v)
                }
            };
            pending.push(request);
        }
        submitted += pending.len();
        session.submit_batch(&pending).expect("soak trace peers exist");
        batches += 1;

        if batches.is_multiple_of(CHECK_EVERY) {
            // The full arena invariant sweep: link-chain consistency,
            // cached list lengths, per-list dummy counters, and the
            // graph/state registration bijection.
            session
                .engine()
                .validate()
                .unwrap_or_else(|e| panic!("invariants violated after {submitted} requests: {e}"));
            // Strict a-balance can be transiently violated by design:
            // repair slots colliding with *protected* adjacencies shift
            // aside, and repairs are scoped to the rebuilt subtree
            // (levels ≥ the cluster root), so a repair dummy joining its
            // *ancestor* lists can extend runs there that only the next
            // α = 0 epoch or membership-churn full sweep repairs —
            // bounded drift by design, not rot. The fixed-seed run
            // measures max_run ≤ 24 at a = 3; the 16·a envelope (48)
            // leaves ~2× headroom while failing loudly on any systematic
            // repair regression.
            let report = session.engine().balance_report();
            let a = session.engine().config().a;
            assert!(
                report.max_run <= 16 * a,
                "run of {} escaped the 16a = {} drift envelope after {submitted} requests: {:?}",
                report.max_run,
                16 * a,
                report.violations.first()
            );
            let n = session.len() as f64;
            assert!(
                (session.height() as f64) <= 4.0 * n.log2() + 6.0,
                "height {} escaped the O(log n) envelope after {submitted} requests",
                session.height()
            );
        }
    }
    session.engine().validate().expect("final invariant sweep");
    assert!(session.stats().requests > 0);
    assert_eq!(session.len() as u64, PEERS + joined.len() as u64);
}

/// ≥ 5k mixed requests, serial planning. `#[ignore]`: run via the
/// dedicated CI soak job.
#[test]
#[ignore = "long-horizon soak; run explicitly (CI soak job) with --ignored"]
fn soak_mixed_traffic_serial() {
    soak(1);
}

/// The same trace with the plan stage fanned out over 4 worker shards —
/// the long-horizon companion to `tests/shard_equivalence.rs`.
#[test]
#[ignore = "long-horizon soak; run explicitly (CI soak job) with --ignored"]
fn soak_mixed_traffic_sharded() {
    soak(4);
}

/// Overload soak (PR 9): an open-loop driver offers mixed traffic at
/// ≥ 2× the service's measured closed-loop capacity, with shedding and
/// brownout enabled. The run proves that (a) no accepted ticket ever
/// leaks — every one resolves with an outcome or a typed error, (b) the
/// controller actually walked the degradation ladder (brownout entered
/// AND exited), (c) overload surfaced to producers as typed refusals,
/// and (d) the surviving engine passes the deep invariant sweep.
#[test]
#[ignore = "long-horizon soak; run explicitly (CI soak job) with --ignored"]
fn soak_overload_shedding_and_brownout() {
    use std::time::{Duration, Instant};

    use dsg_workloads::{OpenLoop, Workload, ZipfPairs};

    const PEERS: u64 = 192;
    const CALIBRATE: usize = 300;
    const OFFERED: usize = 2_000;

    // Phase A — closed-loop calibration: measure the sustained service
    // rate with the same skewed workload the overload phase offers.
    let build = || {
        DsgSession::builder()
            .peers(0..PEERS)
            .seed(0x0F_F3)
            .policy(PolicyConfig::gated())
            .build()
            .expect("soak config is valid")
    };
    let calibration = DsgService::spawn(build(), ServiceConfig::default()).unwrap();
    let mut workload = ZipfPairs::new(PEERS, 1.1, 0xA5);
    let started = Instant::now();
    for _ in 0..CALIBRATE {
        calibration
            .submit_deadline(workload.next_request(), Duration::from_secs(30))
            .expect("calibration admits")
            .wait()
            .expect("calibration serves cleanly");
    }
    let capacity_rps =
        ((CALIBRATE as f64 / started.elapsed().as_secs_f64()) as u64).clamp(50, 2_000_000);
    drop(calibration);

    // Phase B — open loop at 2× capacity against a fresh twin service
    // with the overload layer on.
    let overload = OverloadConfig::default()
        .with_brownout_target(Duration::from_millis(2))
        .with_shed_target(Duration::from_millis(10))
        .with_interval(Duration::from_millis(20))
        .with_retry_after(Duration::from_millis(5));
    let mut service = DsgService::spawn(
        build(),
        ServiceConfig {
            queue_capacity: 4096,
            ..ServiceConfig::default()
        }
        .with_overload(overload),
    )
    .unwrap();
    let mut open = OpenLoop::new(ZipfPairs::new(PEERS, 1.1, 0xA5), 2 * capacity_rps);
    let start = Instant::now();
    let mut accepted: Vec<Ticket> = Vec::new();
    let mut refused = 0u64;
    for i in 0..OFFERED {
        let (due, request) = open.next_arrival();
        if let Some(wait) = due.checked_sub(start.elapsed()) {
            std::thread::sleep(wait);
        }
        // Every 4th request carries a deadline: under 2× overload some of
        // them expire in the queue and must resolve typed, not hang.
        let submitted = if i % 4 == 0 {
            service.submit_with_deadline(request, Duration::from_secs(2))
        } else {
            service.submit(request)
        };
        match submitted {
            Ok(ticket) => accepted.push(ticket),
            Err(SubmitError::Shed { .. } | SubmitError::Overloaded) => refused += 1,
            Err(err) => panic!("unexpected refusal {err}"),
        }
    }
    assert!(refused >= 1, "2x offered load never produced a refusal");

    // No leaked tickets: every accepted submission resolves — served or
    // shed — within the drain budget.
    let mut served = 0u64;
    let mut expired = 0u64;
    for ticket in &accepted {
        match ticket
            .wait_timeout(Duration::from_secs(120))
            .expect("an accepted ticket leaked: no resolution within 120s")
        {
            Ok(_) => served += 1,
            Err(DsgError::DeadlineExceeded) => expired += 1,
            Err(err) => panic!("unexpected ticket error {err}"),
        }
    }
    assert_eq!(served + expired, accepted.len() as u64);
    assert!(served >= 1, "the overloaded service served nothing");

    // The drained queue exits the ladder: brownout entered AND exited.
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let metrics = service.metrics();
        if metrics.brownout_entries >= 1 && metrics.brownout_exits >= 1 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "brownout was never both entered ({}) and exited ({})",
            metrics.brownout_entries,
            metrics.brownout_exits
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    let done = service.shutdown().expect("first shutdown");
    assert_eq!(done.metrics.submitted, accepted.len() as u64);
    assert_eq!(done.metrics.shed_submits + done.metrics.rejected_overload, refused);
    assert!(done.metrics.brownout_chunks >= 1);
    done.session
        .engine()
        .validate()
        .expect("post-overload deep invariant sweep");
}

/// Fault-injection soak (PR 6; io sites PR 7): a seeded fault schedule
/// walks every named fail-point site several rounds through a live
/// [`DsgService`], proving that (a) each site actually fires under
/// organic traffic, (b) no submission ever hangs — every ticket resolves
/// or is refused with a typed error, (c) a poisoned service recovers and
/// keeps serving, and (d) the surviving engine passes the deep invariant
/// sweep at the end. The service runs with persistence on so the
/// `io.append` / `io.snapshot` / `io.manifest` sites are reachable;
/// checkpoint-path faults are *contained* (the ticket still resolves Ok),
/// so their drive ends on the hit itself rather than on a ticket error.
///
/// Serialized on `failpoint::exclusive()` because the registry is
/// process-global.
#[test]
#[ignore = "long-horizon soak; run explicitly (CI soak job) with --ignored"]
fn soak_fault_injection_schedule() {
    use std::time::Duration;

    use dsg::failpoint;

    const PEERS: u64 = 128;
    const ROUNDS: u64 = 3;
    /// Per-site cap on driven requests before declaring the site dead.
    const DRIVE_CAP: usize = 400;

    let _guard = failpoint::exclusive();
    failpoint::disarm_all();

    let dir = std::env::temp_dir().join(format!("dsg-soak-faults-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    // Checkpoint every 8 epochs: with serial submissions (one-request
    // chunks) the 1st..4th checkpoint hit lands well inside DRIVE_CAP.
    let config = ServiceConfig {
        persist: Some(dsg::PersistConfig::default().with_snapshot_every(8)),
        ..ServiceConfig::default()
    };
    let (mut service, _) = DsgService::open(&dir, DsgSession::builder().peers(0..PEERS).seed(0xFA17), config)
        .expect("soak store cold-starts");
    let mut mix = Mix(0xFA17_C0DE);
    let mut recoveries = 0usize;

    for round in 0..ROUNDS {
        for &site in failpoint::sites() {
            let before = failpoint::hit_count(site);
            // The seeded schedule varies *when* each site fires per round
            // (1st..4th hit after arming) without giving up determinism.
            let nth = failpoint::seeded_nth(0xFA17 ^ round, site, 4);
            failpoint::arm(site, nth);
            let contained = site == failpoint::IO_SNAPSHOT || site == failpoint::IO_MANIFEST;

            // Drive organic traffic until the armed site trips, capped so a
            // dead site fails the test instead of spinning forever.
            let mut tripped = false;
            for _ in 0..DRIVE_CAP {
                let u = mix.next() % PEERS;
                let mut v = mix.next() % PEERS;
                if v == u {
                    v = (v + 1) % PEERS;
                }
                let submitted =
                    service.submit_deadline(Request::communicate(u, v), Duration::from_secs(30));
                match submitted {
                    Ok(ticket) => match ticket.wait() {
                        // A contained checkpoint fault never fails the
                        // ticket — the exhausted countdown (the counter
                        // reaching the armed nth) is the only evidence.
                        Ok(_) => {
                            if contained && failpoint::hit_count(site) >= before + nth {
                                tripped = true;
                                break;
                            }
                        }
                        Err(DsgError::EpochAborted(_))
                        | Err(DsgError::EnginePoisoned)
                        | Err(DsgError::Persist(_)) => {
                            tripped = true;
                            break;
                        }
                        Err(err) => panic!("round {round}, site {site}: unexpected {err}"),
                    },
                    Err(SubmitError::Poisoned) => {
                        tripped = true;
                        break;
                    }
                    Err(err) => panic!("round {round}, site {site}: refused with {err}"),
                }
            }
            // `disarm_all` zeroes the hit counters, so read the evidence first.
            let hits = failpoint::hit_count(site);
            failpoint::disarm_all();
            assert!(
                tripped && hits > before,
                "round {round}: site {site} never fired within {DRIVE_CAP} requests"
            );

            if service.is_poisoned() {
                let report = service.recover().unwrap_or_else(|e| {
                    panic!("round {round}: recovery after {site} failed: {e}")
                });
                assert!(report.peers > 0, "recovery after {site} kept no peers");
                recoveries += 1;
            }
            // Back-to-health probe: the service serves cleanly again.
            for probe in 0..4u64 {
                let u = (mix.next() + probe) % PEERS;
                let v = (u + 1 + mix.next() % (PEERS - 1)) % PEERS;
                service
                    .submit_deadline(Request::communicate(u, v), Duration::from_secs(30))
                    .expect("healthy service admits")
                    .wait()
                    .unwrap_or_else(|e| {
                        panic!("round {round}: post-{site} probe failed: {e}")
                    });
            }
        }
    }
    // Apply-side sites poison every round, so the schedule exercised the
    // recovery path at least that often; the checkpoint-path sites each
    // abandon one checkpoint per round without failing anything.
    assert!(recoveries >= 2 * ROUNDS as usize);
    let done = service.shutdown().expect("first shutdown");
    assert_eq!(done.metrics.recoveries as usize, recoveries);
    assert!(done.metrics.snapshot_failures >= 2 * ROUNDS);
    done.session
        .engine()
        .validate()
        .expect("post-schedule deep invariant sweep");
    std::fs::remove_dir_all(&dir).ok();
}
