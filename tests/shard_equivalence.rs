//! Determinism tests for the parallel epoch plan stage (PR 5).
//!
//! `DsgSession` serves every epoch **plan-then-apply**: the Θ(n) cluster
//! planning (transformation vectors, AMF medians, diff derivation) and the
//! dummy-reconciliation detection scans are pure reads that fan out across
//! `shards(k)` scoped worker threads, while all mutation is applied by the
//! calling thread in submission order. These tests pin the safety claim:
//! **every shard count produces bit-for-bit the same session** — graphs
//! (membership vectors, list orders at every level), dummy populations
//! (keys *and* vectors), per-peer self-adjusting state, and every
//! per-request outcome and counter — over epoch-batched random scripts
//! with join/leave churn.
//!
//! The compared shard set is {1, 2, 4, 8}; set `DSG_SHARDS=<k>` to add an
//! extra count (the CI matrix runs the suite at 1 and 4 via this
//! override).

use proptest::prelude::*;

mod common;
use common::{assert_networks_agree, assert_outcomes_agree};

use dsg::prelude::*;

/// The compared shard counts: {1, 2, 4, 8}, plus an optional `DSG_SHARDS`
/// override so the CI matrix can pin an arbitrary count.
fn shard_counts() -> Vec<usize> {
    let mut counts = vec![1usize, 2, 4, 8];
    if let Ok(extra) = std::env::var("DSG_SHARDS") {
        if let Ok(extra) = extra.trim().parse::<usize>() {
            if extra >= 1 && !counts.contains(&extra) {
                counts.push(extra);
            }
        }
    }
    counts
}

fn session(n: u64, seed: u64, shards: usize) -> DsgSession {
    DsgSession::builder()
        .peers(0..n)
        .seed(seed)
        .shards(shards)
        .build()
        .expect("peer keys 0..n are distinct and shards >= 1")
}

/// Generates the mixed request script of one case: communicates with
/// sprinkled join/leave churn (same shape as `tests/dummy_reconcile.rs`).
fn script(n: u64, raw: &[(u64, u64, u64)]) -> Vec<Request> {
    let mut joined: u64 = 0;
    raw.iter()
        .filter_map(|&(x, y, op)| match op {
            0..=7 => {
                joined += 1;
                Some(Request::Join(1000 + joined))
            }
            8..=12 if joined > 0 => {
                let gone = Request::Leave(1000 + joined);
                joined -= 1;
                Some(gone)
            }
            _ => {
                let (u, v) = (x % n, y % n);
                (u != v).then(|| Request::communicate(u, v))
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The headline determinism property: for random epoch-batched scripts
    /// with join/leave churn, every shard count produces bit-for-bit the
    /// same graphs, states, dummy populations, and batch outcomes.
    #[test]
    fn shard_counts_produce_identical_sessions(
        n in 8u64..40,
        seed in 0u64..300,
        raw in proptest::collection::vec((0u64..1000, 0u64..1000, 0u64..100), 1..28),
        chunk in 1usize..7,
    ) {
        let requests = script(n, &raw);
        if requests.is_empty() {
            return;
        }
        let counts = shard_counts();
        let mut sessions: Vec<DsgSession> =
            counts.iter().map(|&k| session(n, seed, k)).collect();
        for chunk in requests.chunks(chunk) {
            let baseline = sessions[0].submit_batch(chunk).unwrap();
            for (i, other) in sessions.iter_mut().enumerate().skip(1) {
                let outcome = other.submit_batch(chunk).unwrap();
                let label = format!("shards {} vs 1", counts[i]);
                assert_outcomes_agree(&label, &baseline, &outcome);
            }
        }
        for (i, other) in sessions.iter().enumerate().skip(1) {
            let label = format!("shards {} vs 1", counts[i]);
            assert_networks_agree(&label, sessions[0].engine(), other.engine());
            prop_assert_eq!(
                sessions[0].stats().transform_touched_pairs,
                other.stats().transform_touched_pairs,
                "{}: touched-pair stats diverge", &label
            );
        }
    }

    /// The adaptive flush changes *epoch boundaries*, never results: with
    /// it enabled, every shard count still produces the identical session
    /// (and the cap only ever splits epochs, so outcomes stay per-request
    /// comparable across shard counts with the same flush config).
    #[test]
    fn adaptive_flush_stays_shard_deterministic(
        n in 8u64..32,
        seed in 0u64..200,
        raw in proptest::collection::vec((0u64..1000, 0u64..1000), 4..40),
    ) {
        let requests: Vec<Request> = raw
            .iter()
            .filter_map(|&(a, b)| {
                let (u, v) = (a % n, b % n);
                (u != v).then(|| Request::communicate(u, v))
            })
            .collect();
        if requests.is_empty() {
            return;
        }
        let counts = shard_counts();
        let mut sessions: Vec<DsgSession> = counts
            .iter()
            .map(|&k| {
                DsgSession::builder()
                    .peers(0..n)
                    .seed(seed)
                    .shards(k)
                    .adaptive_flush(true)
                    .build()
                    .unwrap()
            })
            .collect();
        // One big submission: the adaptive cap decides the epoch cuts.
        let baseline = sessions[0].submit_batch(&requests).unwrap();
        for (i, other) in sessions.iter_mut().enumerate().skip(1) {
            let outcome = other.submit_batch(&requests).unwrap();
            // Different shard counts give different caps (4·k), so epoch
            // STRUCTURE may differ; per-request outcomes must not... unless
            // epoch boundaries shift merged-transformation tie-breaks. The
            // invariant that survives any boundary shift: every submitted
            // pair ends directly linked and the session stays sound.
            prop_assert_eq!(outcome.outcomes.len(), baseline.outcomes.len());
            other.engine().validate().unwrap();
            let (u, v) = requests.last().unwrap().pair();
            prop_assert!(other.engine().are_directly_linked(u, v).unwrap(),
                "shards {}: last pair not directly linked", counts[i]);
        }
        // Same shard count + same flush config ⇒ bit-for-bit reproducible.
        let mut twin = DsgSession::builder()
            .peers(0..n)
            .seed(seed)
            .shards(counts[0])
            .adaptive_flush(true)
            .build()
            .unwrap();
        let twin_outcome = twin.submit_batch(&requests).unwrap();
        assert_outcomes_agree("adaptive twin", &baseline, &twin_outcome);
        assert_networks_agree("adaptive twin", sessions[0].engine(), twin.engine());
    }
}

/// Plain-form pin of the acceptance criterion: a merged multi-pair epoch
/// (everything overlapping at the root) and a disjoint multi-cluster epoch
/// both produce identical sessions at shards ∈ {1, 2, 4, 8}, and the
/// plan-stage observables surface through the batch outcome.
#[test]
fn plan_stage_observables_and_determinism_pin() {
    let n = 64u64;
    // Overlapping epoch: (2i, 2i+1) pairs share the α = 0 root.
    let overlapping: Vec<Request> =
        (0..8).map(|i| Request::communicate(2 * i, 2 * i + 1)).collect();
    // Disjoint epoch: (i, i + n/2) pairs have pairwise-incomparable roots.
    let disjoint: Vec<Request> = (0..8)
        .map(|i| Request::communicate(3 * i + 1, 3 * i + 1 + n / 2))
        .collect();

    let mut merged_baseline: Option<DsgSession> = None;
    let mut disjoint_baseline: Option<DsgSession> = None;
    for k in [1usize, 2, 4, 8] {
        // Merged epoch on one session...
        let mut merged = session(n, 11, k);
        let first = merged.submit_batch(&overlapping).unwrap();
        assert_eq!(first.clusters, 1, "α = 0 pairs merge into one cluster");
        assert_eq!(first.planned_clusters, 1);
        // ...and the disjoint epoch on a fresh balanced session, where the
        // (i, i + n/2) construction guarantees pairwise-incomparable roots.
        let mut split = session(n, 11, k);
        let second = split.submit_batch(&disjoint).unwrap();
        assert!(second.clusters > 1, "disjoint pairs keep their clusters");
        assert_eq!(second.planned_clusters, second.clusters);
        if k > 1 {
            assert!(
                second.plan_shards > 1,
                "a multi-cluster epoch at shards={k} must fan out"
            );
        }
        match &merged_baseline {
            None => merged_baseline = Some(merged),
            Some(b) => assert_networks_agree(
                &format!("merged epoch, shards {k} vs 1"),
                b.engine(),
                merged.engine(),
            ),
        }
        match &disjoint_baseline {
            None => disjoint_baseline = Some(split),
            Some(b) => assert_networks_agree(
                &format!("disjoint epoch, shards {k} vs 1"),
                b.engine(),
                split.engine(),
            ),
        }
    }
}
