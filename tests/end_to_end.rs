//! Cross-crate integration tests: workloads → self-adjusting skip graph →
//! metrics → baselines, exercised together the way the experiment harness
//! uses them.

use dsg::prelude::*;
use dsg_baselines::{SplayNet, StaticSkipGraph, WorkingSetOracle};
use dsg_bench::{run_baseline, run_dsg};
use dsg_metrics::working_set_bound;
use dsg_workloads::{
    Adversarial, Datacenter, RepeatedPairs, RotatingHotSet, UniformRandom, Workload, ZipfPairs,
};

#[test]
fn hot_pairs_become_cheap_while_structure_stays_sound() {
    let n = 128u64;
    let trace = RepeatedPairs::new(n, vec![(3, 90), (45, 77), (10, 11)]).generate(60);
    let run = run_dsg(n, DsgConfig::default().with_seed(5), &trace);
    // After the first round every request is between directly linked pairs.
    assert!(run.routing_costs[3..].iter().all(|&c| c <= 1));
    // Heights never blow past the Lemma-5 style bound.
    let bound = (n as f64).ln() / 1.5f64.ln() + 8.0;
    assert!((run.max_height() as f64) <= bound);
}

#[test]
fn skewed_traffic_beats_the_static_baseline() {
    // Heavy pair skew (Zipf α = 2): the hot pairs repeat often enough that
    // the direct links DSG builds for them pay off on average, despite the
    // extra dummy-node hops.
    let n = 96u64;
    let requests = 800usize;
    let trace = ZipfPairs::new(n, 2.0, 11).generate(requests);
    let run = run_dsg(n, DsgConfig::default().with_seed(3), &trace);
    let mut baseline = StaticSkipGraph::new(n);
    let static_costs = run_baseline(&mut baseline, &trace);
    let static_avg = static_costs.iter().sum::<usize>() as f64 / requests as f64;
    assert!(
        run.avg_routing() < static_avg,
        "DSG ({:.2}) should beat the static graph ({static_avg:.2}) under heavy skew",
        run.avg_routing()
    );
    // A single repeatedly-communicating pair is the clearest win: it ends up
    // at distance 0 while the static graph keeps paying O(log n).
    let pair_trace = RepeatedPairs::single(n, 7, 80).generate(50);
    let pair_run = run_dsg(n, DsgConfig::default().with_seed(3), &pair_trace);
    let mut static_again = StaticSkipGraph::new(n);
    let static_pair: usize = run_baseline(&mut static_again, &pair_trace).iter().sum();
    assert!(pair_run.total_routing() * 2 < static_pair);
}

#[test]
fn uniform_traffic_stays_within_a_constant_factor_of_static() {
    let n = 64u64;
    let trace = UniformRandom::new(n, 9).generate(500);
    let run = run_dsg(n, DsgConfig::default().with_seed(3), &trace);
    let mut baseline = StaticSkipGraph::new(n);
    let static_costs = run_baseline(&mut baseline, &trace);
    let static_avg = static_costs.iter().sum::<usize>() as f64 / trace.len() as f64;
    // Theorem 4: the routing cost is within a constant factor of optimal;
    // with no skew the static structure is essentially optimal.
    assert!(
        run.avg_routing() <= 3.0 * static_avg + 2.0,
        "DSG {:.2} vs static {static_avg:.2}",
        run.avg_routing()
    );
}

#[test]
fn routing_cost_respects_the_working_set_bound_shape() {
    // Theorem 1 + Theorem 4: total DSG routing cost is Ω(WS(σ)) and within a
    // constant factor of it for sequences it can exploit.
    let n = 64u64;
    let trace = RotatingHotSet::new(n, 6, 0.95, 40, 3).generate(800);
    let run = run_dsg(n, DsgConfig::default().with_seed(4), &trace);
    let pairs: Vec<(u64, u64)> = trace.iter().map(|r| r.pair()).collect();
    let ws = working_set_bound(n as usize, &pairs);
    let total_routing = run.total_routing() as f64;
    assert!(
        total_routing <= 6.0 * ws + 200.0,
        "total routing {total_routing} far above the working-set bound {ws:.0}"
    );
}

#[test]
fn adversarial_traffic_does_not_break_invariants() {
    let n = 64u64;
    let trace = Adversarial::new(n, 8).generate(400);
    let run = run_dsg(n, DsgConfig::default().with_seed(6), &trace);
    // No locality to exploit: the structure must still stay sound — bounded
    // height and every request ending with a direct link (checked inside
    // run_dsg via the recorded pair levels).
    assert!(run.max_height() <= 4 * 6 + 6);
    assert!(run.pair_levels.iter().all(|&l| l <= run.max_height()));
}

#[test]
fn exact_median_and_amf_agree_on_workload_level_behaviour() {
    let n = 64u64;
    let trace = ZipfPairs::new(n, 1.2, 21).generate(400);
    let amf = run_dsg(n, DsgConfig::default().with_seed(7), &trace);
    let exact = run_dsg(
        n,
        DsgConfig::default()
            .with_seed(7)
            .with_median(MedianStrategy::Exact),
        &trace,
    );
    let ratio = amf.avg_routing() / exact.avg_routing().max(0.1);
    assert!(
        (0.4..=2.5).contains(&ratio),
        "AMF ({:.2}) and exact-median ({:.2}) runs diverge too much",
        amf.avg_routing(),
        exact.avg_routing()
    );
}

#[test]
fn datacenter_locality_is_exploited() {
    // Within DSG, the traffic classes with locality (intra-rack pairs that
    // keep re-communicating) must end up markedly cheaper than the global
    // background traffic — the VM-migration motivation of §VII. (The static
    // baseline is not the comparison here: its key order coincides with the
    // rack layout by construction, which no real deployment can assume.)
    let n = 128u64;
    let probe = Datacenter::conventional(n, 13);
    let trace = Datacenter::conventional(n, 13).generate(800);
    let run = run_dsg(n, DsgConfig::default().with_seed(8), &trace);
    let mut rack_sum = 0usize;
    let mut rack_count = 0usize;
    let mut global_sum = 0usize;
    let mut global_count = 0usize;
    for (i, request) in trace.iter().enumerate() {
        let (u, v) = request.pair();
        if probe.rack_of(u) == probe.rack_of(v) {
            rack_sum += run.routing_costs[i];
            rack_count += 1;
        } else if probe.pod_of(u) != probe.pod_of(v) {
            global_sum += run.routing_costs[i];
            global_count += 1;
        }
    }
    let rack_avg = rack_sum as f64 / rack_count.max(1) as f64;
    let global_avg = global_sum as f64 / global_count.max(1) as f64;
    assert!(
        rack_avg < global_avg,
        "intra-rack traffic ({rack_avg:.2}) should be cheaper than global traffic ({global_avg:.2})"
    );
}

#[test]
fn splaynet_and_oracle_baselines_run_the_same_traces() {
    let n = 64u64;
    let trace = ZipfPairs::new(n, 1.0, 17).generate(500);
    let mut splaynet = SplayNet::new(n);
    let mut oracle = WorkingSetOracle::new(n);
    let splay_total: usize = run_baseline(&mut splaynet, &trace).iter().sum();
    let oracle_total: usize = run_baseline(&mut oracle, &trace).iter().sum();
    assert!(splay_total > 0);
    assert!(oracle_total > 0);
    // The oracle is a lower bound reference: nothing beats it by definition
    // of the working-set bound (up to the additive first-touch terms).
    assert!(oracle_total <= splay_total + 64 * 10);
}

#[test]
fn membership_churn_during_traffic_keeps_the_network_usable() {
    let n = 48u64;
    let mut session = DsgSession::builder().peers(0..n).seed(10).build().unwrap();
    let mut workload = ZipfPairs::new(n, 0.8, 3);
    for i in 0..100u64 {
        let request = workload.next_request();
        let (u, _) = request.pair();
        let mut batch = vec![request];
        if i % 10 == 0 {
            batch.push(Request::Join(1000 + i));
            batch.push(Request::communicate(1000 + i, u));
        }
        if i % 25 == 24 {
            batch.push(Request::Leave(1000 + (i / 10) * 10));
        }
        session.submit_batch(&batch).unwrap();
    }
    session.engine().validate().unwrap();
    assert!(session.len() >= n as usize);
}
