//! Differential property tests: the intrusive linked-list arena
//! ([`SkipGraph`]) must agree observably with the naive index-based
//! reference representation ([`ReferenceGraph`]) on every operation
//! sequence — same node ids, same list orders, same neighbours, same list
//! sizes, and same `route` hop counts.
//!
//! Operation sequences mix inserts (with bounded random membership
//! vectors), removals, and `set_membership_suffix` updates — the three
//! mutations the self-adjusting layer drives the substrate with.

use proptest::prelude::*;

use dsg_skipgraph::reference::ReferenceGraph;
use dsg_skipgraph::{Bit, Key, MembershipVector, SkipGraph};

/// One scripted mutation. `key_pick` / `level_pick` / `bits` are raw
/// randomness that gets mapped onto the graph's current population, so
/// every generated script is applicable to both representations.
#[derive(Debug, Clone, Copy)]
enum Op {
    Insert { key: u64, bits: u64, len: usize },
    Remove { key_pick: u64 },
    SetSuffix { key_pick: u64, from_level: usize, bits: u64, len: usize },
}

fn mvec_from(bits: u64, len: usize) -> MembershipVector {
    MembershipVector::from_bits(
        (0..len).map(|i| Bit::from_u8(((bits >> i) & 1) as u8)),
    )
    .expect("len is far below the height limit")
}

/// Raw randomness for one scripted mutation:
/// `(op selector, key material, bit material, len, level)`.
type RawOp = (u64, u64, u64, usize, usize);

/// Strategy: a starting population plus a mutation script.
fn script() -> impl Strategy<Value = (u64, Vec<RawOp>)> {
    (4u64..32).prop_flat_map(|n| {
        let ops = proptest::collection::vec(
            // (op selector, key material, bit material, len, level)
            (0u64..100, 0u64..1000, 0u64..u64::MAX, 0usize..5, 0usize..4),
            1..40,
        );
        (Just(n), ops)
    })
}

fn decode(raw: RawOp) -> Op {
    let (selector, key, bits, len, level) = raw;
    match selector % 3 {
        0 => Op::Insert { key, bits, len },
        1 => Op::Remove { key_pick: key },
        _ => Op::SetSuffix {
            key_pick: key,
            from_level: level + 1,
            bits,
            len,
        },
    }
}

/// Applies one op to both representations, asserting identical outcomes.
fn apply(arena: &mut SkipGraph, reference: &mut ReferenceGraph, op: Op) {
    match op {
        Op::Insert { key, bits, len } => {
            let a = arena.insert(Key::new(key), mvec_from(bits, len));
            let r = reference.insert(Key::new(key), mvec_from(bits, len));
            match (a, r) {
                (Ok(aid), Ok(rid)) => assert_eq!(aid, rid, "insert ids diverge"),
                (Err(_), Err(_)) => {}
                (a, r) => panic!("insert outcomes diverge: {a:?} vs {r:?}"),
            }
        }
        Op::Remove { key_pick } => {
            let keys: Vec<Key> = arena.keys().collect();
            if keys.is_empty() {
                return;
            }
            let key = keys[(key_pick as usize) % keys.len()];
            let removed = arena.remove_key(key).expect("key just listed");
            let rid = reference.remove_key(key).expect("representations agree");
            assert_eq!(arena.node_by_key(key), None);
            assert_eq!(removed.key(), key);
            let _ = rid;
        }
        Op::SetSuffix {
            key_pick,
            from_level,
            bits,
            len,
        } => {
            let keys: Vec<Key> = arena.keys().collect();
            if keys.is_empty() {
                return;
            }
            let key = keys[(key_pick as usize) % keys.len()];
            let id = arena.node_by_key(key).expect("key just listed");
            assert_eq!(reference.node_by_key(key), Some(id), "ids diverge");
            let new_bits: Vec<Bit> = (0..len)
                .map(|i| Bit::from_u8(((bits >> i) & 1) as u8))
                .collect();
            arena
                .set_membership_suffix(id, from_level, new_bits.iter().copied())
                .expect("vector stays far below the height limit");
            reference
                .set_membership_suffix(id, from_level, new_bits.iter().copied())
                .expect("vector stays far below the height limit");
        }
    }
}

/// Asserts full observable agreement between the two representations.
fn assert_agreement(arena: &SkipGraph, reference: &ReferenceGraph) {
    arena.validate().expect("arena invariants hold");
    assert_eq!(arena.len(), reference.len());
    assert_eq!(arena.max_level(), reference.max_level());
    let ids: Vec<_> = arena.node_ids().collect();
    for &id in &ids {
        let key = arena.key_of(id).unwrap();
        assert_eq!(reference.key_of(id).unwrap(), key);
        let mvec = arena.mvec_of(id).unwrap();
        assert_eq!(reference.mvec_of(id).unwrap(), mvec);
        for level in 0..=mvec.len() + 1 {
            assert_eq!(
                arena.neighbors(id, level).unwrap(),
                reference.neighbors(id, level).unwrap(),
                "neighbours diverge for key {key} at level {level}"
            );
            assert_eq!(
                arena.list_size(id, level).unwrap(),
                reference.list_size(id, level).unwrap(),
                "list sizes diverge for key {key} at level {level}"
            );
            // Same members in the same (ascending key) order.
            let prefix = mvec.prefix(level.min(mvec.len()));
            let arena_list: Vec<_> = arena.list_iter(level.min(mvec.len()), prefix).collect();
            let ref_list = reference.list_members(level.min(mvec.len()), prefix);
            assert_eq!(arena_list, ref_list, "list order diverges at level {level}");
        }
    }
    // Route hop counts agree for sampled pairs.
    let keys: Vec<Key> = arena.keys().collect();
    for (i, &a) in keys.iter().enumerate().step_by(3) {
        let b = keys[(i * 7 + 1) % keys.len()];
        assert_eq!(
            arena.route(a, b).unwrap().hops(),
            reference.route_hops(a, b).unwrap(),
            "route hops diverge for {a} -> {b}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random scripts of inserts/removes/suffix updates leave both
    /// representations observably identical.
    #[test]
    fn arena_agrees_with_reference((n, raw_ops) in script()) {
        let mut arena = SkipGraph::new();
        let mut reference = ReferenceGraph::new();
        // Seed population with deterministic vectors derived from the key.
        for k in 0..n {
            let mvec = mvec_from(k.wrapping_mul(0x9E3779B97F4A7C15), (k % 4) as usize);
            arena.insert(Key::new(k * 10), mvec).unwrap();
            reference.insert(Key::new(k * 10), mvec).unwrap();
        }
        assert_agreement(&arena, &reference);
        for raw in raw_ops {
            apply(&mut arena, &mut reference, decode(raw));
        }
        assert_agreement(&arena, &reference);
    }

    /// Randomised construction through the public API also agrees: building
    /// the reference from the arena's final membership reproduces every
    /// neighbour and every hop count.
    #[test]
    fn random_graphs_mirror_into_the_reference(n in 4u64..96, seed in 0u64..200) {
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed);
        let arena = SkipGraph::random((0..n).map(Key::new), &mut rng).unwrap();
        let reference = ReferenceGraph::from_members(
            arena.node_ids().map(|id| {
                (arena.key_of(id).unwrap(), arena.mvec_of(id).unwrap())
            }),
        )
        .unwrap();
        assert_agreement(&arena, &reference);
    }
}
