//! Differential property tests: the intrusive linked-list arena
//! ([`SkipGraph`]) must agree observably with the naive index-based
//! reference representation ([`ReferenceGraph`]) on every operation
//! sequence — same node ids, same list orders, same neighbours, same list
//! sizes, and same `route` hop counts.
//!
//! Operation sequences mix inserts (with bounded random membership
//! vectors), removals, and `set_membership_suffix` updates — the three
//! mutations the self-adjusting layer drives the substrate with.
//!
//! A second family of tests runs full `communicate` scripts through two
//! complete [`DynamicSkipGraph`] networks that differ only in their install
//! strategy — the batched differential installer
//! ([`SkipGraph::apply_membership_batch`]) versus the naive per-node
//! `set_membership_suffix` reference path — and asserts that every
//! observable output is identical: per-request outcomes and cost
//! accounting, membership vectors, list orders at every level, dummy-node
//! placement, group-ids, group-bases, and timestamps.

use proptest::prelude::*;

use dsg::prelude::*;
use dsg_skipgraph::reference::ReferenceGraph;
use dsg_skipgraph::{Bit, Key, MembershipVector, SkipGraph};

/// One scripted mutation. `key_pick` / `level_pick` / `bits` are raw
/// randomness that gets mapped onto the graph's current population, so
/// every generated script is applicable to both representations.
#[derive(Debug, Clone, Copy)]
enum Op {
    Insert { key: u64, bits: u64, len: usize },
    Remove { key_pick: u64 },
    SetSuffix { key_pick: u64, from_level: usize, bits: u64, len: usize },
}

fn mvec_from(bits: u64, len: usize) -> MembershipVector {
    MembershipVector::from_bits(
        (0..len).map(|i| Bit::from_u8(((bits >> i) & 1) as u8)),
    )
    .expect("len is far below the height limit")
}

/// Raw randomness for one scripted mutation:
/// `(op selector, key material, bit material, len, level)`.
type RawOp = (u64, u64, u64, usize, usize);

/// Strategy: a starting population plus a mutation script.
fn script() -> impl Strategy<Value = (u64, Vec<RawOp>)> {
    (4u64..32).prop_flat_map(|n| {
        let ops = proptest::collection::vec(
            // (op selector, key material, bit material, len, level)
            (0u64..100, 0u64..1000, 0u64..u64::MAX, 0usize..5, 0usize..4),
            1..40,
        );
        (Just(n), ops)
    })
}

fn decode(raw: RawOp) -> Op {
    let (selector, key, bits, len, level) = raw;
    match selector % 3 {
        0 => Op::Insert { key, bits, len },
        1 => Op::Remove { key_pick: key },
        _ => Op::SetSuffix {
            key_pick: key,
            from_level: level + 1,
            bits,
            len,
        },
    }
}

/// Applies one op to both representations, asserting identical outcomes.
fn apply(arena: &mut SkipGraph, reference: &mut ReferenceGraph, op: Op) {
    match op {
        Op::Insert { key, bits, len } => {
            let a = arena.insert(Key::new(key), mvec_from(bits, len));
            let r = reference.insert(Key::new(key), mvec_from(bits, len));
            match (a, r) {
                (Ok(aid), Ok(rid)) => assert_eq!(aid, rid, "insert ids diverge"),
                (Err(_), Err(_)) => {}
                (a, r) => panic!("insert outcomes diverge: {a:?} vs {r:?}"),
            }
        }
        Op::Remove { key_pick } => {
            let keys: Vec<Key> = arena.keys().collect();
            if keys.is_empty() {
                return;
            }
            let key = keys[(key_pick as usize) % keys.len()];
            let removed = arena.remove_key(key).expect("key just listed");
            let rid = reference.remove_key(key).expect("representations agree");
            assert_eq!(arena.node_by_key(key), None);
            assert_eq!(removed.key(), key);
            let _ = rid;
        }
        Op::SetSuffix {
            key_pick,
            from_level,
            bits,
            len,
        } => {
            let keys: Vec<Key> = arena.keys().collect();
            if keys.is_empty() {
                return;
            }
            let key = keys[(key_pick as usize) % keys.len()];
            let id = arena.node_by_key(key).expect("key just listed");
            assert_eq!(reference.node_by_key(key), Some(id), "ids diverge");
            let new_bits: Vec<Bit> = (0..len)
                .map(|i| Bit::from_u8(((bits >> i) & 1) as u8))
                .collect();
            arena
                .set_membership_suffix(id, from_level, new_bits.iter().copied())
                .expect("vector stays far below the height limit");
            reference
                .set_membership_suffix(id, from_level, new_bits.iter().copied())
                .expect("vector stays far below the height limit");
        }
    }
}

/// Asserts full observable agreement between the two representations.
fn assert_agreement(arena: &SkipGraph, reference: &ReferenceGraph) {
    arena.validate().expect("arena invariants hold");
    assert_eq!(arena.len(), reference.len());
    assert_eq!(arena.max_level(), reference.max_level());
    let ids: Vec<_> = arena.node_ids().collect();
    for &id in &ids {
        let key = arena.key_of(id).unwrap();
        assert_eq!(reference.key_of(id).unwrap(), key);
        let mvec = arena.mvec_of(id).unwrap();
        assert_eq!(reference.mvec_of(id).unwrap(), mvec);
        for level in 0..=mvec.len() + 1 {
            assert_eq!(
                arena.neighbors(id, level).unwrap(),
                reference.neighbors(id, level).unwrap(),
                "neighbours diverge for key {key} at level {level}"
            );
            assert_eq!(
                arena.list_size(id, level).unwrap(),
                reference.list_size(id, level).unwrap(),
                "list sizes diverge for key {key} at level {level}"
            );
            // Same members in the same (ascending key) order.
            let prefix = mvec.prefix(level.min(mvec.len()));
            let arena_list: Vec<_> = arena.list_iter(level.min(mvec.len()), prefix).collect();
            let ref_list = reference.list_members(level.min(mvec.len()), prefix);
            assert_eq!(arena_list, ref_list, "list order diverges at level {level}");
        }
    }
    // Route hop counts agree for sampled pairs.
    let keys: Vec<Key> = arena.keys().collect();
    for (i, &a) in keys.iter().enumerate().step_by(3) {
        let b = keys[(i * 7 + 1) % keys.len()];
        assert_eq!(
            arena.route(a, b).unwrap().hops(),
            reference.route_hops(a, b).unwrap(),
            "route hops diverge for {a} -> {b}"
        );
    }
}

/// Asserts that two DSG networks (normally: batched vs per-node install)
/// are observably identical — structure, dummy placement, and the full
/// per-peer self-adjusting state.
fn assert_networks_agree(batched: &DynamicSkipGraph, naive: &DynamicSkipGraph) {
    batched.validate().expect("batched network is structurally sound");
    naive.validate().expect("per-node network is structurally sound");
    assert_eq!(batched.height(), naive.height(), "heights diverge");
    assert_eq!(
        batched.dummy_count(),
        naive.dummy_count(),
        "dummy populations diverge"
    );
    let ga = batched.graph();
    let gb = naive.graph();
    let keys_a: Vec<Key> = ga.keys().collect();
    let keys_b: Vec<Key> = gb.keys().collect();
    assert_eq!(keys_a, keys_b, "node (and dummy) key sets diverge");
    for &key in &keys_a {
        let ia = ga.node_by_key(key).expect("key just listed");
        let ib = gb.node_by_key(key).expect("key sets agree");
        assert_eq!(
            ga.node(ia).expect("live").is_dummy(),
            gb.node(ib).expect("live").is_dummy(),
            "dummy flag diverges for key {key}"
        );
        let mvec = ga.mvec_of(ia).expect("live");
        assert_eq!(
            mvec,
            gb.mvec_of(ib).expect("live"),
            "membership vector diverges for key {key}"
        );
        for level in 0..=mvec.len() + 1 {
            let list_a: Vec<u64> = ga
                .list_of_iter(ia, level)
                .expect("live")
                .map(|id| ga.key_of(id).expect("live").value())
                .collect();
            let list_b: Vec<u64> = gb
                .list_of_iter(ib, level)
                .expect("live")
                .map(|id| gb.key_of(id).expect("live").value())
                .collect();
            assert_eq!(list_a, list_b, "list order diverges at level {level} for key {key}");
        }
    }
    // Self-adjusting state: timestamps, group-ids, dominating flags and
    // group-bases, all levels (NodeState equality covers every stored
    // level and the defaults beyond).
    for peer in batched.peers() {
        assert_eq!(
            batched.peer_state(peer).expect("peer exists"),
            naive.peer_state(peer).expect("peer exists"),
            "self-adjusting state diverges for peer {peer}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random scripts of inserts/removes/suffix updates leave both
    /// representations observably identical.
    #[test]
    fn arena_agrees_with_reference((n, raw_ops) in script()) {
        let mut arena = SkipGraph::new();
        let mut reference = ReferenceGraph::new();
        // Seed population with deterministic vectors derived from the key.
        for k in 0..n {
            let mvec = mvec_from(k.wrapping_mul(0x9E3779B97F4A7C15), (k % 4) as usize);
            arena.insert(Key::new(k * 10), mvec).unwrap();
            reference.insert(Key::new(k * 10), mvec).unwrap();
        }
        assert_agreement(&arena, &reference);
        for raw in raw_ops {
            apply(&mut arena, &mut reference, decode(raw));
        }
        assert_agreement(&arena, &reference);
    }

    /// Full `communicate` scripts produce observably identical networks
    /// under the batched differential install and the per-node reference
    /// install: identical request outcomes (routing costs, α, d', round
    /// accounting, touched pairs), list orders, dummy placement, group-ids
    /// and timestamps.
    #[test]
    fn batched_install_agrees_with_per_node_install(
        n in 8u64..40,
        seed in 0u64..500,
        raw_requests in proptest::collection::vec((0u64..1000, 0u64..1000), 1..25),
    ) {
        let config = DsgConfig::default().with_seed(seed);
        let mut batched = DsgSession::builder().peers(0..n).config(config).build().unwrap();
        let mut naive = DsgSession::builder()
            .peers(0..n)
            .config(config.with_install(InstallStrategy::PerNode))
            .build()
            .unwrap();
        let batched = batched.engine_mut();
        let naive = naive.engine_mut();
        for (a, b) in raw_requests {
            let u = a % n;
            let v = b % n;
            if u == v {
                continue;
            }
            let outcome_batched = batched.communicate(u, v).unwrap();
            let outcome_naive = naive.communicate(u, v).unwrap();
            prop_assert_eq!(
                outcome_batched,
                outcome_naive,
                "request ({}, {}) outcomes diverge",
                u,
                v
            );
        }
        assert_networks_agree(batched, naive);
        // The lifecycle counters intentionally differ between the two
        // strategies: the batched path reconciles (reclaims standing
        // dummies, bulk-creates the rest) while the per-node oracle
        // destroys and re-creates every one. The lifecycle-independent
        // total — dummy slots established — must agree, and so must every
        // other stat.
        let stats_batched = *batched.stats();
        let stats_naive = *naive.stats();
        prop_assert_eq!(
            stats_batched.dummy_nodes_created + stats_batched.dummies_reused,
            stats_naive.dummy_nodes_created + stats_naive.dummies_reused,
            "dummy slots established diverge"
        );
        prop_assert_eq!(stats_naive.dummies_reused, 0);
        prop_assert_eq!(stats_naive.dummies_bulk_inserted, 0);
        let normalize = |mut stats: RunStats| {
            stats.dummy_nodes_created = 0;
            stats.dummies_reused = 0;
            stats.dummies_bulk_inserted = 0;
            // Wall-clock timing of the plan stage is inherently
            // non-deterministic; everything else must agree bit for bit.
            stats.plan_wall_ns = 0;
            stats
        };
        prop_assert_eq!(normalize(stats_batched), normalize(stats_naive));
    }

    /// Randomised construction through the public API also agrees: building
    /// the reference from the arena's final membership reproduces every
    /// neighbour and every hop count.
    #[test]
    fn random_graphs_mirror_into_the_reference(n in 4u64..96, seed in 0u64..200) {
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed);
        let arena = SkipGraph::random((0..n).map(Key::new), &mut rng).unwrap();
        let reference = ReferenceGraph::from_members(
            arena.node_ids().map(|id| {
                (arena.key_of(id).unwrap(), arena.mvec_of(id).unwrap())
            }),
        )
        .unwrap();
        assert_agreement(&arena, &reference);
    }
}
