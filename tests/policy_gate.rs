//! Differential and behavioral tests for the adaptation policy (PR 8).
//!
//! The subsystem under test: a count-min frequency sketch plus a
//! TinyLFU-style admission gate that decides, per cluster, whether an
//! epoch restructures eagerly or routes without restructuring. Three
//! claims are pinned here:
//!
//! 1. **Off is really off.** With the default [`PolicyConfig`]
//!    (`AdaptPolicy::Always`) the engine is bit-for-bit identical to one
//!    built without mentioning the policy at all — graphs, per-peer
//!    state, dummy populations, outcomes, and counters — over random
//!    epoch-batched scripts with join/leave churn.
//! 2. **The gate is deterministic.** With the policy on, every plan-stage
//!    shard count produces the identical session, because sketch updates
//!    and admission run on the calling thread at one fixed point per
//!    epoch (after routing, before planning).
//! 3. **The gate does what it says.** Cold traffic routes without
//!    restructuring (zero touched pairs, no direct link), repetition
//!    crosses the admission threshold, the per-epoch budget admits cold
//!    clusters, aging halves the counters on schedule, and the counters
//!    surface through `BatchOutcome`, `RunStats`, and `AdmissionEvent`.

use proptest::prelude::*;

mod common;
use common::{assert_networks_agree, assert_outcomes_agree};

use dsg::prelude::*;

fn gated_session(n: u64, seed: u64, policy: PolicyConfig) -> DsgSession {
    DsgSession::builder()
        .peers(0..n)
        .seed(seed)
        .policy(policy)
        .build()
        .expect("peer keys 0..n are distinct")
}

/// Generates the mixed request script of one case: communicates with
/// sprinkled join/leave churn (same shape as `tests/shard_equivalence.rs`).
fn script(n: u64, raw: &[(u64, u64, u64)]) -> Vec<Request> {
    let mut joined: u64 = 0;
    raw.iter()
        .filter_map(|&(x, y, op)| match op {
            0..=7 => {
                joined += 1;
                Some(Request::Join(1000 + joined))
            }
            8..=12 if joined > 0 => {
                let gone = Request::Leave(1000 + joined);
                joined -= 1;
                Some(gone)
            }
            _ => {
                let (u, v) = (x % n, y % n);
                (u != v).then(|| Request::communicate(u, v))
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Claim 1: `AdaptPolicy::Always` (the default) is bit-identical to a
    /// session that never mentions the policy — the gate code path adds
    /// nothing when off.
    #[test]
    fn policy_off_is_bit_identical_to_the_plain_engine(
        n in 8u64..40,
        seed in 0u64..300,
        raw in proptest::collection::vec((0u64..1000, 0u64..1000, 0u64..100), 1..28),
        chunk in 1usize..7,
    ) {
        let requests = script(n, &raw);
        if requests.is_empty() {
            return;
        }
        let mut plain = DsgSession::builder().peers(0..n).seed(seed).build().unwrap();
        let mut explicit = gated_session(n, seed, PolicyConfig::default());
        for chunk in requests.chunks(chunk) {
            let baseline = plain.submit_batch(chunk).unwrap();
            let outcome = explicit.submit_batch(chunk).unwrap();
            assert_outcomes_agree("explicit Always vs default", &baseline, &outcome);
            prop_assert_eq!(outcome.pairs_gated, 0, "the gate must not fire when off");
        }
        assert_networks_agree("explicit Always vs default", plain.engine(), explicit.engine());
        // Full stats equality, wall-clock plan timing excluded.
        let mut a = *plain.stats();
        let mut b = *explicit.stats();
        a.plan_wall_ns = 0;
        b.plan_wall_ns = 0;
        prop_assert_eq!(a, b);
    }

    /// Claim 2: with the gate ON, every shard count produces the identical
    /// session — admission decisions are made on the calling thread and
    /// never depend on plan-stage fan-out.
    #[test]
    fn gated_sessions_stay_shard_deterministic(
        n in 8u64..40,
        seed in 0u64..300,
        raw in proptest::collection::vec((0u64..1000, 0u64..1000, 0u64..100), 1..28),
        chunk in 1usize..7,
    ) {
        let requests = script(n, &raw);
        if requests.is_empty() {
            return;
        }
        // A permissive-but-active gate: threshold 2 with a 1-cluster budget
        // exercises all three verdicts (hot, budgeted, gated) in one run.
        let policy = PolicyConfig::gated().with_epoch_budget(1).with_aging_period(64);
        let mut sessions: Vec<DsgSession> = [1usize, 2, 4, 8]
            .iter()
            .map(|&k| {
                DsgSession::builder()
                    .peers(0..n)
                    .seed(seed)
                    .shards(k)
                    .policy(policy)
                    .build()
                    .unwrap()
            })
            .collect();
        for chunk in requests.chunks(chunk) {
            let baseline = sessions[0].submit_batch(chunk).unwrap();
            for (i, other) in sessions.iter_mut().enumerate().skip(1) {
                let outcome = other.submit_batch(chunk).unwrap();
                let label = format!("gated, shards {} vs 1", [1, 2, 4, 8][i]);
                assert_outcomes_agree(&label, &baseline, &outcome);
            }
        }
        for (i, other) in sessions.iter().enumerate().skip(1) {
            let label = format!("gated, shards {} vs 1", [1, 2, 4, 8][i]);
            assert_networks_agree(&label, sessions[0].engine(), other.engine());
        }
    }

    /// A gated session is bit-for-bit reproducible: same seed, same
    /// script, same policy twice over — sketch estimates included.
    #[test]
    fn gated_sessions_are_reproducible(
        n in 8u64..32,
        seed in 0u64..200,
        raw in proptest::collection::vec((0u64..1000, 0u64..1000, 0u64..100), 1..20),
    ) {
        let requests = script(n, &raw);
        if requests.is_empty() {
            return;
        }
        let policy = PolicyConfig::gated().with_aging_period(32);
        let mut a = gated_session(n, seed, policy);
        let mut b = gated_session(n, seed, policy);
        let oa = a.submit_batch(&requests).unwrap();
        let ob = b.submit_batch(&requests).unwrap();
        assert_outcomes_agree("gated twin", &oa, &ob);
        assert_networks_agree("gated twin", a.engine(), b.engine());
        prop_assert_eq!(
            a.engine().capture_image(),
            b.engine().capture_image(),
            "engine images (sketch included) diverge"
        );
    }
}

// ---------------------------------------------------------------------
// Behavioral pins: the three verdicts, aging, and the observer hook
// ---------------------------------------------------------------------

/// Cold traffic under a strict gate (budget 0) routes without
/// restructuring: nothing is planned, nothing is touched, no direct link
/// is created, and the structure is untouched.
#[test]
fn cold_traffic_routes_without_restructuring() {
    let n = 64u64;
    let mut gated = gated_session(n, 7, PolicyConfig::gated());
    let reference = DsgSession::builder().peers(0..n).seed(7).build().unwrap();
    let baseline = reference.engine().capture_image();

    // Distinct pairs with real skip-list distance (odd/even endpoints
    // diverge at level 0): each seen once, so every estimate is 1 and the
    // threshold (2) admits nothing.
    let requests: Vec<Request> = (0..8u64)
        .map(|i| Request::communicate(8 * i + 1, 8 * i + 6))
        .collect();
    let outcome = gated.submit_batch(&requests).unwrap();

    assert_eq!(outcome.pairs_gated, 8, "every cold pair is gated");
    assert_eq!(outcome.restructures_budgeted, 0);
    assert_eq!(outcome.touched_pairs, 0, "gated epochs install nothing");
    assert!(outcome.clusters >= 1, "gated clusters still counted");
    assert_eq!(
        outcome.planned_clusters, 0,
        "gated clusters are never planned"
    );
    for o in &outcome.outcomes {
        let o = o.request_outcome().expect("all requests are communicates");
        assert!(o.routing_cost > 0, "gated requests still route");
        assert_eq!(o.touched_pairs, 0);
        assert_eq!(o.dummies_inserted, 0);
    }
    assert!(
        !gated.engine().are_directly_linked(1, 6).unwrap(),
        "a gated pair must not get a direct link"
    );
    // The graph itself is exactly the freshly-built one: only the clock,
    // the sketch, and the (intentionally different) policy config moved.
    let mut after = gated.engine().capture_image();
    assert!(after.sketch.is_some(), "the gated engine carries a sketch");
    after.sketch = None;
    assert_eq!(after.time, baseline.time + 8);
    after.time = baseline.time;
    after.config.policy = baseline.config.policy;
    assert_eq!(
        after, baseline,
        "gated traffic must leave the graph untouched"
    );
}

/// Repetition crosses the threshold: the second occurrence of a pair is
/// admitted and restructures (sequential submits, one pair per epoch).
#[test]
fn repeated_pairs_become_hot_and_restructure() {
    let mut session = gated_session(64, 9, PolicyConfig::gated());
    let first = session.submit(Request::communicate(5, 40)).unwrap();
    assert_eq!(session.stats().pairs_gated, 1, "first sighting is cold");
    assert_eq!(first.request_outcome().unwrap().touched_pairs, 0);

    let second = session.submit(Request::communicate(5, 40)).unwrap();
    assert_eq!(session.stats().pairs_gated, 1, "second sighting is hot");
    assert!(
        second.request_outcome().unwrap().touched_pairs > 0,
        "the hot pair restructures"
    );
    assert!(session.engine().are_directly_linked(5, 40).unwrap());
}

/// The per-epoch budget admits cold clusters even below the threshold —
/// exactly `epoch_budget` of them per epoch.
#[test]
fn epoch_budget_admits_cold_clusters() {
    let n = 64u64;
    // Threshold high enough that nothing is ever hot; budget of 1.
    let policy = PolicyConfig::gated()
        .with_threshold(u32::MAX)
        .with_epoch_budget(1);
    let mut session = gated_session(n, 13, policy);
    // One epoch, two disjoint clusters (the pairs diverge at level 2, in
    // different level-2 subtrees), each needing real restructuring:
    // exactly one is budgeted in, the other routes gated.
    let requests = vec![Request::communicate(0, 20), Request::communicate(3, 31)];
    let outcome = session.submit_batch(&requests).unwrap();
    assert_eq!(outcome.epochs, 1);
    assert_eq!(outcome.clusters, 2, "the pairs form disjoint clusters");
    assert_eq!(
        outcome.planned_clusters, 1,
        "only the budgeted cluster plans"
    );
    assert_eq!(
        outcome.restructures_budgeted, 1,
        "one budget slot per epoch"
    );
    assert_eq!(outcome.pairs_gated, 1, "the other cluster is gated");
    assert!(
        outcome.touched_pairs > 0,
        "the budgeted cluster restructured"
    );
}

/// Aging runs on schedule and surfaces in the counters: with a tiny
/// aging period, a burst of requests produces halving passes.
#[test]
fn sketch_aging_surfaces_in_stats() {
    let policy = PolicyConfig::gated().with_aging_period(16);
    let mut session = gated_session(64, 17, policy);
    for i in 0..32u64 {
        session
            .submit(Request::communicate(i % 8, (i % 8) + 32))
            .unwrap();
    }
    assert!(
        session.stats().sketch_aging_passes >= 2,
        "32 requests at aging period 16 must age at least twice, got {}",
        session.stats().sketch_aging_passes
    );
}

/// `on_admission` fires with the policy on — and only then. All-zero
/// events under `Always` would make "gate off" indistinguishable from
/// "never gated", so the hook stays silent there.
#[test]
fn admission_events_fire_only_with_the_policy_on() {
    #[derive(Default)]
    struct Capture {
        events: Vec<AdmissionEvent>,
        transforms: usize,
    }
    impl DsgObserver for Capture {
        fn on_transform(&mut self, _event: &TransformEvent) {
            self.transforms += 1;
        }
        fn on_admission(&mut self, event: &AdmissionEvent) {
            self.events.push(*event);
        }
    }

    let requests: Vec<Request> = (0..6u64)
        .map(|i| Request::communicate(2 * i, 2 * i + 20))
        .collect();

    let mut off = DsgSession::builder()
        .peers(0..64u64)
        .seed(3)
        .build()
        .unwrap();
    let capture = off.observe(Capture::default());
    off.submit_batch(&requests).unwrap();
    {
        let capture = capture.lock().unwrap();
        assert!(capture.transforms > 0);
        assert!(capture.events.is_empty(), "no admission events when off");
    }

    let mut on = gated_session(64, 3, PolicyConfig::gated());
    let capture = on.observe(Capture::default());
    let outcome = on.submit_batch(&requests).unwrap();
    let capture = capture.lock().unwrap();
    assert_eq!(capture.events.len(), 1, "one admission event per epoch");
    let event = &capture.events[0];
    assert_eq!(event.requests, 6);
    assert_eq!(event.pairs_gated, outcome.pairs_gated);
    assert_eq!(event.restructures_budgeted, outcome.restructures_budgeted);
}

/// The gate counters flow end to end: `EpochReport` → `BatchOutcome` →
/// `RunStats` → `TransformEvent` → `MetricsObserver`.
#[test]
fn gate_counters_flow_through_the_metrics_observer() {
    let mut session = gated_session(64, 21, PolicyConfig::gated().with_aging_period(8));
    let metrics = session.observe(dsg_metrics::MetricsObserver::new());
    for i in 0..16u64 {
        session
            .submit(Request::communicate(2 * i, 2 * i + 1))
            .unwrap();
    }
    let metrics = metrics.lock().unwrap();
    assert_eq!(metrics.pairs_gated, session.stats().pairs_gated);
    assert_eq!(
        metrics.restructures_budgeted,
        session.stats().restructures_budgeted
    );
    assert_eq!(
        metrics.sketch_aging_passes,
        session.stats().sketch_aging_passes
    );
    assert!(metrics.pairs_gated > 0, "cold one-shot pairs must be gated");
    assert!(metrics.sketch_aging_passes > 0, "the tiny period must age");
}
