//! Differential tests for the epoch-batched request pipeline:
//! `DsgSession::submit_batch` against an equivalent sequence of one-request
//! `submit` calls.
//!
//! The contract under test (documented on
//! [`DynamicSkipGraph::communicate_epoch`]): when the pairs of a batch have
//! pairwise-*disjoint* `l_α` subtrees, the batched epoch produces the SAME
//! final graph — membership vectors, list orders at every level, dummy
//! placement — and the same per-peer self-adjusting state (group-ids,
//! group-bases, timestamps, dominating flags) as serving the requests one
//! by one, while performing a **single** transformation-install pass where
//! the sequential replay performs `k`. Pairs with overlapping subtrees (or
//! shared endpoints) fall back to the documented deterministic tie-break,
//! for which the tests assert bit-for-bit reproducibility and structural
//! soundness instead of sequential equality.

use proptest::prelude::*;

use dsg::prelude::*;
use dsg_skipgraph::Key;

/// Asserts that two engines are observably identical — structure, dummy
/// placement, and the full per-peer self-adjusting state.
fn assert_networks_agree(batched: &DynamicSkipGraph, sequential: &DynamicSkipGraph) {
    batched.validate().expect("batched network is structurally sound");
    sequential
        .validate()
        .expect("sequential network is structurally sound");
    assert_eq!(batched.height(), sequential.height(), "heights diverge");
    assert_eq!(
        batched.dummy_count(),
        sequential.dummy_count(),
        "dummy populations diverge"
    );
    let ga = batched.graph();
    let gb = sequential.graph();
    let keys_a: Vec<Key> = ga.keys().collect();
    let keys_b: Vec<Key> = gb.keys().collect();
    assert_eq!(keys_a, keys_b, "node (and dummy) key sets diverge");
    for &key in &keys_a {
        let ia = ga.node_by_key(key).expect("key just listed");
        let ib = gb.node_by_key(key).expect("key sets agree");
        assert_eq!(
            ga.node(ia).expect("live").is_dummy(),
            gb.node(ib).expect("live").is_dummy(),
            "dummy flag diverges for key {key}"
        );
        let mvec = ga.mvec_of(ia).expect("live");
        assert_eq!(
            mvec,
            gb.mvec_of(ib).expect("live"),
            "membership vector diverges for key {key}"
        );
        for level in 0..=mvec.len() + 1 {
            let list_a: Vec<u64> = ga
                .list_of_iter(ia, level)
                .expect("live")
                .map(|id| ga.key_of(id).expect("live").value())
                .collect();
            let list_b: Vec<u64> = gb
                .list_of_iter(ib, level)
                .expect("live")
                .map(|id| gb.key_of(id).expect("live").value())
                .collect();
            assert_eq!(
                list_a, list_b,
                "list order diverges at level {level} for key {key}"
            );
        }
    }
    for peer in batched.peers() {
        assert_eq!(
            batched.peer_state(peer).expect("peer exists"),
            sequential.peer_state(peer).expect("peer exists"),
            "self-adjusting state diverges for peer {peer}"
        );
    }
}

fn session(n: u64, seed: u64) -> DsgSession {
    DsgSession::builder()
        .peers(0..n)
        .seed(seed)
        .build()
        .expect("peer keys 0..n are distinct")
}

/// Pairs `(i, i + n/2)` on a freshly *balanced* `n`-peer network differ
/// only in their top membership-vector bit, so each pair's `l_α` is a
/// two-member list at level `log₂(n) − 1` whose prefix is determined by
/// `i` — distinct `i`s give pairwise-incomparable prefixes, i.e. disjoint
/// subtrees by construction.
fn disjoint_pairs(n: u64, picks: &[u64]) -> Vec<Request> {
    let mut seen = std::collections::HashSet::new();
    picks
        .iter()
        .map(|pick| pick % (n / 2))
        .filter(|i| seen.insert(*i))
        .map(|i| Request::communicate(i, i + n / 2))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The headline equivalence: a batch of k ∈ 1..=8 subtree-disjoint
    /// pairs produces the same final graph and state as the k-sequential
    /// replay — with ONE install pass instead of k.
    #[test]
    fn disjoint_batches_equal_sequential_replay(
        n_exp in 4u32..7,           // n ∈ {16, 32, 64}
        seed in 0u64..200,
        picks in proptest::collection::vec(0u64..1000, 1..9),
    ) {
        let n = 1u64 << n_exp;
        let batch = disjoint_pairs(n, &picks);
        let k = batch.len();

        let mut batched = session(n, seed);
        let outcome = batched.submit_batch(&batch).unwrap();
        prop_assert_eq!(outcome.epochs, 1, "disjoint pairs share one epoch");
        prop_assert_eq!(outcome.install_passes, 1,
            "one epoch must perform exactly one install pass for k = {}", k);
        prop_assert_eq!(batched.stats().transform_install_passes, 1);

        let mut sequential = session(n, seed);
        for request in &batch {
            sequential.submit(*request).unwrap();
        }
        prop_assert_eq!(sequential.stats().transform_install_passes, k);

        // Same installed work, one pass instead of k.
        prop_assert_eq!(
            batched.stats().transform_touched_pairs,
            sequential.stats().transform_touched_pairs,
            "disjoint clusters must install exactly the sequential changes"
        );
        assert_networks_agree(batched.engine(), sequential.engine());
    }

    /// Arbitrary (possibly overlapping, endpoint-sharing) batches: the
    /// pipeline must be deterministic — two identical sessions replaying
    /// the same batch agree bit for bit — and every served pair must end
    /// up directly linked in a structurally sound graph.
    #[test]
    fn arbitrary_batches_are_deterministic_and_sound(
        n in 8u64..48,
        seed in 0u64..200,
        raw in proptest::collection::vec((0u64..1000, 0u64..1000), 1..24),
        batch_size in 1usize..9,
    ) {
        let batch: Vec<Request> = raw
            .iter()
            .filter_map(|&(a, b)| {
                let (u, v) = (a % n, b % n);
                (u != v).then(|| Request::communicate(u, v))
            })
            .collect();
        if batch.is_empty() {
            return;
        }

        let mut first = session(n, seed);
        let mut second = session(n, seed);
        for chunk in batch.chunks(batch_size) {
            let outcome_first = first.submit_batch(chunk).unwrap();
            let outcome_second = second.submit_batch(chunk).unwrap();
            prop_assert_eq!(outcome_first.epochs, outcome_second.epochs);
            prop_assert_eq!(outcome_first.install_passes, outcome_second.install_passes);
            // Batched install: one pass per epoch, never more.
            prop_assert!(outcome_first.install_passes <= outcome_first.epochs);
            // The last pair of the chunk is directly linked afterwards (an
            // earlier pair's link may legitimately be recycled by a later
            // overlapping transformation in the same chunk).
            let (u, v) = chunk.last().unwrap().pair();
            prop_assert!(first.engine().are_directly_linked(u, v).unwrap(),
                "pair ({u}, {v}) not directly linked after its epoch");
        }
        assert_networks_agree(first.engine(), second.engine());
    }
}

/// The install-pass counter in plain (non-property) form, pinned to the
/// acceptance criterion: a batch of k disjoint pairs performs one
/// transformation-install pass regardless of k, and the sequential replay
/// performs k.
#[test]
fn install_pass_counter_proves_one_pass_per_epoch() {
    let n = 64u64;
    for k in [1usize, 2, 4, 8] {
        let picks: Vec<u64> = (0..k as u64).map(|i| i * 3 + 1).collect();
        let batch = disjoint_pairs(n, &picks);
        assert_eq!(batch.len(), k);

        let mut batched = session(n, 9);
        let outcome = batched.submit_batch(&batch).unwrap();
        assert_eq!(outcome.epochs, 1);
        assert_eq!(outcome.install_passes, 1, "k = {k}");
        assert_eq!(batched.stats().transform_install_passes, 1, "k = {k}");

        let mut sequential = session(n, 9);
        for request in &batch {
            sequential.submit(*request).unwrap();
        }
        assert_eq!(sequential.stats().transform_install_passes, k);
        assert_networks_agree(batched.engine(), sequential.engine());
    }
}

/// Overlapping pairs (all α = 0 under uniform keys) merge into one cluster
/// and still leave every pair directly linked with one install pass.
#[test]
fn overlapping_pairs_merge_into_one_cluster() {
    let n = 64u64;
    let mut batched = session(n, 31);
    // Endpoint-disjoint pairs chosen so their α = 0 subtrees collide (the
    // balanced construction gives (2i, 2i+1) differing in their lowest
    // rank bit, hence α = 0 — the root list).
    let batch: Vec<Request> = (0..8).map(|i| Request::communicate(2 * i, 2 * i + 1)).collect();
    let outcome = batched.submit_batch(&batch).unwrap();
    assert_eq!(outcome.epochs, 1);
    assert_eq!(outcome.clusters, 1, "α = 0 pairs share the root cluster");
    assert_eq!(outcome.install_passes, 1);
    for request in &batch {
        let (u, v) = request.pair();
        assert!(
            batched.engine().are_directly_linked(u, v).unwrap(),
            "pair ({u}, {v}) not directly linked after the merged epoch"
        );
    }
    batched.engine().validate().unwrap();
}
