//! Property-based tests over the core invariants of the reproduction:
//! whatever the (valid) request sequence, the structure stays a well-formed,
//! bounded-height, a-balanceable skip graph; working-set accounting stays
//! within its definitional bounds; and the AMF median respects Lemma 1.

use proptest::prelude::*;

use dsg::prelude::*;
use dsg::{AmfMedian, ExactMedian, MedianFinder, Priority};
use dsg_metrics::WorkingSetTracker;
use dsg_skipgraph::{Key, SkipGraph};

/// A strategy producing a small network size and a request sequence over it.
fn network_and_trace() -> impl Strategy<Value = (u64, Vec<(u64, u64)>)> {
    (8u64..40).prop_flat_map(|n| {
        let requests = proptest::collection::vec((0..n, 0..n), 1..60)
            .prop_map(move |pairs| {
                pairs
                    .into_iter()
                    .map(|(u, v)| if u == v { (u, (v + 1) % n) } else { (u, v) })
                    .collect::<Vec<_>>()
            });
        (Just(n), requests)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Serving any request sequence keeps the skip graph structurally valid,
    /// keeps every pair mutually reachable, and keeps the height within the
    /// O(log n) family bound.
    #[test]
    fn dsg_structure_stays_valid_under_arbitrary_traffic((n, trace) in network_and_trace()) {
        let mut session = DsgSession::builder().peers(0..n).seed(99).build().unwrap();
        let net = session.engine_mut();
        for &(u, v) in &trace {
            net.communicate(u, v).unwrap();
        }
        net.validate().unwrap();
        let log_n = (n as f64).log2();
        prop_assert!((net.height() as f64) <= 4.0 * log_n + 6.0,
            "height {} too large for n = {n}", net.height());
        // Spot-check reachability between a few pairs.
        for &(u, v) in trace.iter().take(5) {
            prop_assert!(net.peer_distance(u, v).unwrap() < n as usize);
        }
    }

    /// The direct-link postcondition of the self-adjusting model: after any
    /// request the communicating pair is adjacent (up to dummy nodes).
    #[test]
    fn every_request_ends_directly_linked((n, trace) in network_and_trace()) {
        let mut session = DsgSession::builder().peers(0..n).seed(7).build().unwrap();
        let net = session.engine_mut();
        for &(u, v) in &trace {
            net.communicate(u, v).unwrap();
            prop_assert!(net.are_directly_linked(u, v).unwrap(),
                "pair ({u}, {v}) not directly linked after its own request");
        }
    }

    /// Working set numbers always lie in [2, n] for repeat pairs and equal n
    /// for first-time pairs; the bound is monotone in the trace length.
    #[test]
    fn working_set_numbers_stay_in_range((n, trace) in network_and_trace()) {
        let mut tracker = WorkingSetTracker::new(n as usize);
        let mut seen = std::collections::HashSet::new();
        let mut previous_bound = 0.0f64;
        for &(u, v) in &trace {
            let pair = if u <= v { (u, v) } else { (v, u) };
            let t = tracker.record(u, v);
            if seen.insert(pair) {
                prop_assert_eq!(t, n as usize);
            } else {
                prop_assert!(t >= 2 && t <= n as usize);
            }
            prop_assert!(tracker.bound() >= previous_bound);
            previous_bound = tracker.bound();
        }
    }

    /// Lemma 1: the AMF output's rank error is within n/(2a) (plus one for
    /// rounding), for arbitrary value multisets.
    #[test]
    fn amf_median_respects_lemma_1(
        values in proptest::collection::vec(-1_000_000i64..1_000_000, 10..400),
        a in 2usize..6,
        seed in 0u64..1000,
    ) {
        let priorities: Vec<Priority> = values.iter().map(|&v| Priority::Finite(v as i128)).collect();
        let mut finder = AmfMedian::new(seed);
        let outcome = finder.find_median(&priorities, a);
        let n = priorities.len();
        let below = priorities.iter().filter(|p| **p < outcome.median).count();
        let equal = priorities.iter().filter(|p| **p == outcome.median).count();
        let target = n / 2;
        let error = if target < below {
            below - target
        } else if target > below + equal.saturating_sub(1) {
            target - (below + equal - 1)
        } else {
            0
        };
        prop_assert!(error <= n / (2 * a) + 1,
            "rank error {error} exceeds n/2a for n = {n}, a = {a}");
    }

    /// The exact-median oracle always returns an element of the input whose
    /// rank is the upper median.
    #[test]
    fn exact_median_is_an_upper_median(values in proptest::collection::vec(-500i64..500, 1..50)) {
        let priorities: Vec<Priority> = values.iter().map(|&v| Priority::Finite(v as i128)).collect();
        let mut finder = ExactMedian;
        let outcome = finder.find_median(&priorities, 3);
        let mut sorted = priorities.clone();
        sorted.sort();
        prop_assert_eq!(outcome.median, sorted[sorted.len() / 2]);
    }

    /// Random skip graphs constructed through the public API always validate
    /// and route between every sampled pair within the a·log n family bound.
    #[test]
    fn random_skip_graphs_route_all_sampled_pairs(n in 4u64..120, seed in 0u64..500) {
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed);
        let graph = SkipGraph::random((0..n).map(Key::new), &mut rng).unwrap();
        graph.validate().unwrap();
        let log_n = (n.max(2) as f64).log2();
        for step in 1..5u64 {
            let u = (step * 7) % n;
            let v = (step * 13 + 1) % n;
            if u == v { continue; }
            let route = graph.route(Key::new(u), Key::new(v)).unwrap();
            prop_assert!((route.hops() as f64) <= 8.0 * log_n + 4.0);
        }
    }
}
