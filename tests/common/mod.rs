//! Shared helpers of the integration suites: the bit-for-bit network
//! and batch-outcome comparisons used by the determinism tests
//! (`shard_equivalence.rs`, `service.rs`).
//!
//! Each consumer pulls this in with `mod common;`, so items unused by a
//! particular test binary are expected.
#![allow(dead_code)]

use dsg::prelude::*;
use dsg_skipgraph::Key;

/// Asserts two engines are observably identical — structure, dummy
/// placement (keys and vectors), and the full per-peer state. NodeIds are
/// *expected* to coincide here (identical mutation sequences), but the
/// comparison stays key-based like the other differential suites.
pub fn assert_networks_agree(label: &str, left: &DynamicSkipGraph, right: &DynamicSkipGraph) {
    left.validate().expect("left network is structurally sound");
    right
        .validate()
        .expect("right network is structurally sound");
    assert_eq!(left.height(), right.height(), "{label}: heights diverge");
    assert_eq!(
        left.dummy_count(),
        right.dummy_count(),
        "{label}: dummy populations diverge"
    );
    let ga = left.graph();
    let gb = right.graph();
    let keys_a: Vec<Key> = ga.keys().collect();
    let keys_b: Vec<Key> = gb.keys().collect();
    assert_eq!(keys_a, keys_b, "{label}: node (and dummy) key sets diverge");
    for &key in &keys_a {
        let ia = ga.node_by_key(key).expect("key just listed");
        let ib = gb.node_by_key(key).expect("key sets agree");
        assert_eq!(
            ga.node(ia).expect("live").is_dummy(),
            gb.node(ib).expect("live").is_dummy(),
            "{label}: dummy flag diverges for key {key}"
        );
        let mvec = ga.mvec_of(ia).expect("live");
        assert_eq!(
            mvec,
            gb.mvec_of(ib).expect("live"),
            "{label}: membership vector diverges for key {key}"
        );
        for level in 0..=mvec.len() + 1 {
            let list_a: Vec<u64> = ga
                .list_of_iter(ia, level)
                .expect("live")
                .map(|id| ga.key_of(id).expect("live").value())
                .collect();
            let list_b: Vec<u64> = gb
                .list_of_iter(ib, level)
                .expect("live")
                .map(|id| gb.key_of(id).expect("live").value())
                .collect();
            assert_eq!(
                list_a, list_b,
                "{label}: list order diverges at level {level} for key {key}"
            );
        }
    }
    for peer in left.peers() {
        assert_eq!(
            left.peer_state(peer).expect("peer exists"),
            right.peer_state(peer).expect("peer exists"),
            "{label}: self-adjusting state diverges for peer {peer}"
        );
    }
}

/// Asserts two batch outcomes agree on everything deterministic (the
/// wall-clock plan timing is explicitly excluded).
pub fn assert_outcomes_agree(label: &str, left: &BatchOutcome, right: &BatchOutcome) {
    assert_eq!(left.outcomes, right.outcomes, "{label}: outcomes diverge");
    assert_eq!(left.epochs, right.epochs, "{label}: epochs diverge");
    assert_eq!(left.clusters, right.clusters, "{label}: clusters diverge");
    assert_eq!(
        left.install_passes, right.install_passes,
        "{label}: install passes diverge"
    );
    assert_eq!(
        left.touched_pairs, right.touched_pairs,
        "{label}: touched pairs diverge"
    );
    assert_eq!(
        left.dummies_destroyed, right.dummies_destroyed,
        "{label}: destroyed counters diverge"
    );
    assert_eq!(
        left.dummies_inserted, right.dummies_inserted,
        "{label}: inserted counters diverge"
    );
    assert_eq!(
        left.dummies_reused, right.dummies_reused,
        "{label}: reuse counters diverge"
    );
    assert_eq!(
        left.dummies_bulk_inserted, right.dummies_bulk_inserted,
        "{label}: bulk-insert counters diverge"
    );
    assert_eq!(
        left.planned_clusters, right.planned_clusters,
        "{label}: planned-cluster counters diverge"
    );
    assert_eq!(
        left.pairs_gated, right.pairs_gated,
        "{label}: gated-pair counters diverge"
    );
    assert_eq!(
        left.restructures_budgeted, right.restructures_budgeted,
        "{label}: budgeted-restructure counters diverge"
    );
    assert_eq!(
        left.sketch_aging_passes, right.sketch_aging_passes,
        "{label}: sketch-aging counters diverge"
    );
    // plan_shards and plan_wall_ns legitimately differ across shard counts.
}
