//! Differential tests for the reconciling dummy lifecycle (PR 4).
//!
//! The batched engine path no longer destroys and re-creates the dummy
//! population of rebuilt lists: it inventories standing dummies, reclaims
//! in place the ones the (shared, salvage-first) placement policy
//! re-derives, bulk-splices the genuinely new ones, and sweeps only the
//! genuinely stale ones. The [`InstallStrategy::PerNode`] oracle keeps the
//! literal destroy-then-recreate lifecycle over the same placement policy.
//! These tests pin the central claim: **the two lifecycles produce
//! bit-for-bit identical graphs, self-adjusting state, dummy populations,
//! and request outcomes** — over epoch-batched request streams with
//! interleaved membership churn, not just the sequential scripts the
//! `arena_reference_agreement` suite already replays.

use proptest::prelude::*;

use dsg::dummy::{repair_balance_reconciling, DummyReconcileOutcome, ReconcileScratch};
use dsg::prelude::*;
use dsg::StateTable;
use dsg_skipgraph::{Key, MembershipVector, Prefix, SkipGraph};

/// Asserts the two engines are observably identical — structure, dummy
/// placement (keys *and* vectors), and the full per-peer state. Dummy
/// `NodeId`s may legitimately differ (the lifecycles recycle arena slots
/// in different orders), so everything is compared by key.
fn assert_networks_agree(reconciling: &DynamicSkipGraph, oracle: &DynamicSkipGraph) {
    reconciling
        .validate()
        .expect("reconciling network is structurally sound");
    oracle.validate().expect("oracle network is structurally sound");
    assert_eq!(reconciling.height(), oracle.height(), "heights diverge");
    assert_eq!(
        reconciling.dummy_count(),
        oracle.dummy_count(),
        "dummy populations diverge"
    );
    let ga = reconciling.graph();
    let gb = oracle.graph();
    let keys_a: Vec<Key> = ga.keys().collect();
    let keys_b: Vec<Key> = gb.keys().collect();
    assert_eq!(keys_a, keys_b, "node (and dummy) key sets diverge");
    for &key in &keys_a {
        let ia = ga.node_by_key(key).expect("key just listed");
        let ib = gb.node_by_key(key).expect("key sets agree");
        assert_eq!(
            ga.node(ia).expect("live").is_dummy(),
            gb.node(ib).expect("live").is_dummy(),
            "dummy flag diverges for key {key}"
        );
        let mvec = ga.mvec_of(ia).expect("live");
        assert_eq!(
            mvec,
            gb.mvec_of(ib).expect("live"),
            "membership vector diverges for key {key}"
        );
        for level in 0..=mvec.len() + 1 {
            let list_a: Vec<u64> = ga
                .list_of_iter(ia, level)
                .expect("live")
                .map(|id| ga.key_of(id).expect("live").value())
                .collect();
            let list_b: Vec<u64> = gb
                .list_of_iter(ib, level)
                .expect("live")
                .map(|id| gb.key_of(id).expect("live").value())
                .collect();
            assert_eq!(
                list_a, list_b,
                "list order diverges at level {level} for key {key}"
            );
        }
    }
    for peer in reconciling.peers() {
        assert_eq!(
            reconciling.peer_state(peer).expect("peer exists"),
            oracle.peer_state(peer).expect("peer exists"),
            "self-adjusting state diverges for peer {peer}"
        );
    }
}

fn session(n: u64, seed: u64, install: InstallStrategy) -> DsgSession {
    DsgSession::builder()
        .peers(0..n)
        .config(DsgConfig::default().with_seed(seed).with_install(install))
        .build()
        .expect("peer keys 0..n are distinct")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Epoch-batched request streams with interleaved joins and leaves:
    /// the reconciling lifecycle and the destroy/recreate oracle end in
    /// bit-for-bit identical networks, and every per-request outcome
    /// (costs, rounds, placed-dummy counts) agrees.
    #[test]
    fn reconciliation_equals_destroy_recreate_oracle(
        n in 8u64..40,
        seed in 0u64..300,
        raw in proptest::collection::vec((0u64..1000, 0u64..1000, 0u64..100), 1..28),
        chunk in 1usize..7,
    ) {
        let mut joined: u64 = 0;
        let requests: Vec<Request> = raw
            .iter()
            .filter_map(|&(x, y, op)| match op {
                // Sprinkle membership churn through the stream: joins and
                // leaves drive the full-sweep repair path on both sides.
                0..=7 => {
                    joined += 1;
                    Some(Request::Join(1000 + joined))
                }
                8..=12 if joined > 0 => {
                    let gone = Request::Leave(1000 + joined);
                    joined -= 1;
                    Some(gone)
                }
                _ => {
                    let (u, v) = (x % n, y % n);
                    (u != v).then(|| Request::communicate(u, v))
                }
            })
            .collect();
        if requests.is_empty() {
            return;
        }

        let mut reconciling = session(n, seed, InstallStrategy::Batched);
        let mut oracle = session(n, seed, InstallStrategy::PerNode);
        for chunk in requests.chunks(chunk) {
            let out_a = reconciling.submit_batch(chunk).unwrap();
            let out_b = oracle.submit_batch(chunk).unwrap();
            prop_assert_eq!(
                out_a.outcomes, out_b.outcomes,
                "per-request outcomes diverge"
            );
            // Placed-slot accounting is lifecycle-independent; the reuse
            // split is the reconciliation's own observable.
            prop_assert_eq!(out_a.dummies_inserted, out_b.dummies_inserted);
            prop_assert_eq!(out_b.dummies_reused, 0, "the oracle cannot reclaim in place");
            prop_assert_eq!(out_b.dummies_bulk_inserted, 0, "the oracle join-walks each dummy");
            // What the reconciliation did not reuse, it created through the
            // bulk installer — there is no third way to place a dummy.
            prop_assert_eq!(
                out_a.dummies_reused + out_a.dummies_bulk_inserted,
                out_a.dummies_inserted
            );
        }
        assert_networks_agree(reconciling.engine(), oracle.engine());
    }
}

/// Builds one maximally unbalanced list (every peer picks the 0-sublist)
/// plus its registered state table — the classic repair fixture.
fn unbalanced_fixture(n: u64) -> (SkipGraph, StateTable) {
    let graph = SkipGraph::from_members((0..n).map(|i| {
        (
            Key::new((i + 1) << 20),
            MembershipVector::parse("0").unwrap(),
        )
    }))
    .unwrap();
    let mut states = StateTable::new();
    for id in graph.node_ids().collect::<Vec<_>>() {
        let key = graph.key_of(id).unwrap();
        states.register(id, key, 0);
    }
    (graph, states)
}

fn reconcile(
    graph: &mut SkipGraph,
    states: &mut StateTable,
    a: usize,
    scratch: &mut ReconcileScratch,
) -> DummyReconcileOutcome {
    let mut worklist: Vec<(usize, Prefix)> = vec![(0, Prefix::root())];
    repair_balance_reconciling(graph, states, a, &[], 0, &mut worklist, scratch)
}

/// The headline unit property: when a rebuilt list's runs are unchanged,
/// the reconciliation reuses **100 %** of its standing dummies — zero
/// creations, zero destructions, the graph untouched.
#[test]
fn balanced_rebuilt_list_reuses_every_standing_dummy() {
    let a = 3;
    let (mut graph, mut states) = unbalanced_fixture(10);
    let mut scratch = ReconcileScratch::default();

    // First notification: nothing standing, the repair creates the dummy
    // population through the bulk installer.
    let first = reconcile(&mut graph, &mut states, a, &mut scratch);
    assert!(graph.is_a_balanced(a));
    assert!(first.bulk_inserted > 0);
    assert_eq!(first.reused, 0);
    assert_eq!(first.destroyed, 0);
    assert_eq!(first.placed.len(), first.bulk_inserted);
    let population: Vec<(u64, MembershipVector)> = graph
        .node_ids()
        .filter(|&id| graph.node(id).unwrap().is_dummy())
        .map(|id| (graph.key_of(id).unwrap().value(), graph.mvec_of(id).unwrap()))
        .collect();

    // Second notification over the same (unchanged) list: every standing
    // dummy is reclaimed in place.
    let second = reconcile(&mut graph, &mut states, a, &mut scratch);
    assert!(graph.is_a_balanced(a));
    assert_eq!(second.reused, first.placed.len(), "every standing dummy is reused");
    assert_eq!(second.bulk_inserted, 0, "nothing new to create");
    assert_eq!(second.destroyed, 0, "nothing stale to destroy");
    // Placed-slot accounting stays lifecycle-independent.
    assert_eq!(second.placed.len(), first.placed.len());
    let population_after: Vec<(u64, MembershipVector)> = graph
        .node_ids()
        .filter(|&id| graph.node(id).unwrap().is_dummy())
        .map(|id| (graph.key_of(id).unwrap().value(), graph.mvec_of(id).unwrap()))
        .collect();
    assert_eq!(population, population_after, "the dummy population is untouched");
    graph.validate().unwrap();
}

/// The bulk splice installer and the one-by-one join walk produce the
/// same structure for the same dummy batch.
#[test]
fn bulk_dummy_install_matches_per_dummy_insertion() {
    let members: Vec<(Key, MembershipVector)> = (0..32u64)
        .map(|i| {
            let bits = if i % 2 == 0 { "00" } else { "11" };
            (Key::new((i + 1) << 20), MembershipVector::parse(bits).unwrap())
        })
        .collect();
    let dummies: Vec<(Key, MembershipVector)> = (0..12u64)
        .map(|i| {
            let bits = match i % 3 {
                0 => "0",
                1 => "10",
                _ => "111",
            };
            (
                Key::new(((i * 2 + 1) << 20) + 512),
                MembershipVector::parse(bits).unwrap(),
            )
        })
        .collect();

    let mut bulk = SkipGraph::from_members(members.iter().copied()).unwrap();
    let ids = bulk.insert_dummies_bulk(&dummies).unwrap();
    assert_eq!(ids.len(), dummies.len());
    bulk.validate().unwrap();

    let mut one_by_one = SkipGraph::from_members(members.iter().copied()).unwrap();
    for &(key, mvec) in &dummies {
        one_by_one.insert_dummy(key, mvec).unwrap();
    }
    one_by_one.validate().unwrap();

    assert_eq!(bulk.len(), one_by_one.len());
    assert_eq!(bulk.dummy_count(), one_by_one.dummy_count());
    let keys: Vec<Key> = bulk.keys().collect();
    assert_eq!(keys, one_by_one.keys().collect::<Vec<Key>>());
    for &key in &keys {
        let ia = bulk.node_by_key(key).unwrap();
        let ib = one_by_one.node_by_key(key).unwrap();
        let mvec = bulk.mvec_of(ia).unwrap();
        assert_eq!(mvec, one_by_one.mvec_of(ib).unwrap());
        for level in 0..=mvec.len() {
            let list_a: Vec<u64> = bulk
                .list_of_iter(ia, level)
                .unwrap()
                .map(|id| bulk.key_of(id).unwrap().value())
                .collect();
            let list_b: Vec<u64> = one_by_one
                .list_of_iter(ib, level)
                .unwrap()
                .map(|id| one_by_one.key_of(id).unwrap().value())
                .collect();
            assert_eq!(list_a, list_b, "list diverges at level {level} for {key}");
        }
    }

    // A duplicate key — in the graph or within the batch — is rejected
    // before any mutation.
    let before = bulk.len();
    assert!(bulk
        .insert_dummies_bulk(&[(members[0].0, MembershipVector::parse("0").unwrap())])
        .is_err());
    let dup = Key::new(999 << 20);
    assert!(bulk
        .insert_dummies_bulk(&[
            (dup, MembershipVector::parse("0").unwrap()),
            (dup, MembershipVector::parse("1").unwrap()),
        ])
        .is_err());
    assert_eq!(bulk.len(), before, "failed bulk installs must not mutate");
    bulk.validate().unwrap();
}
