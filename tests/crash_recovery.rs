//! Crash-restart differential harness of the durable service (PR 7).
//!
//! The property under test: for **every** fault-injection site and for
//! **every byte-boundary truncation** of the journal tail, reopening the
//! store yields an engine bit-identical to an uninterrupted twin — a
//! fresh, identically-built session that replays the journal's surviving
//! frames from genesis. Acknowledged requests are always a subsequence of
//! the journaled ones (WAL ordering: append + fsync before apply), a torn
//! final frame is truncated and never served, and a *corrupt* (bit-flipped
//! but complete) frame is a typed refusal, never applied.
//!
//! Fault-injection tests serialize on `failpoint::exclusive()` (the
//! registry is process-global) and disarm on every exit path.

use std::fs;
use std::path::{Path, PathBuf};
use std::time::Duration;

use dsg::failpoint;
use dsg::persist::{read_journal, PersistError, JOURNAL_FILE, MANIFEST_FILE};
use dsg::prelude::*;

mod common;
use common::assert_networks_agree;

fn temp_dir(tag: &str) -> PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("dsg-crash-{tag}-{}-{n}", std::process::id()))
}

fn builder(n: u64, seed: u64) -> DsgBuilder {
    DsgSession::builder().peers(0..n).seed(seed)
}

/// Deterministic splitmix64 stream (same recipe as `tests/soak.rs`) so the
/// fail-point drives stay reproducible without a RNG dependency.
struct Mix(u64);

impl Mix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

fn persist_config(fsync_every: u64, snapshot_every: u64, ingest_batch: usize) -> ServiceConfig {
    ServiceConfig {
        ingest_batch,
        persist: Some(
            PersistConfig::default()
                .with_fsync_every(fsync_every)
                .with_snapshot_every(snapshot_every),
        ),
        ..ServiceConfig::default()
    }
}

/// Submits one request and waits for its resolution.
fn serve_one(service: &DsgService, request: Request) -> Result<SubmitOutcome, DsgError> {
    service
        .submit_deadline(request, Duration::from_secs(30))
        .expect("queue admits within 30s")
        .wait()
}

/// The uninterrupted twin: a fresh, identically-built session that
/// replays every surviving journal frame from genesis. The journal file
/// is never rotated, so genesis replay is always well-defined.
fn genesis_twin(dir: &Path, n: u64, seed: u64) -> DsgSession {
    let mut twin = builder(n, seed).build().expect("twin builds");
    for chunk in &read_journal(dir)
        .expect("surviving journal scans clean")
        .frames
    {
        twin.submit_batch(chunk).expect("journal replays cleanly");
    }
    twin
}

/// Reopens the store and hands back the recovered session plus the report.
fn reopen(dir: &Path, n: u64, seed: u64, config: ServiceConfig) -> (DsgSession, OpenReport) {
    let (mut service, report) =
        DsgService::open(dir, builder(n, seed), config).expect("store reopens");
    let done = service.shutdown().expect("first shutdown");
    (done.session, report)
}

/// Asserts `needle` appears inside `hay` in order (a subsequence).
fn assert_subsequence(label: &str, needle: &[Request], hay: &[Request]) {
    let mut hay = hay.iter();
    for request in needle {
        assert!(
            hay.any(|h| h == request),
            "{label}: acknowledged request {request:?} is not in the journal (in order)"
        );
    }
}

fn flatten(frames: &[Vec<Request>]) -> Vec<Request> {
    frames.iter().flatten().copied().collect()
}

// ---------------------------------------------------------------------
// Cold start, clean restart, and the recovery edge cases
// ---------------------------------------------------------------------

#[test]
fn missing_directory_cold_starts_then_restarts_bit_identical() {
    let dir = temp_dir("cold");
    let (n, seed) = (32u64, 11u64);
    let config = persist_config(1, 4, 4);

    let (mut service, report) =
        DsgService::open(&dir, builder(n, seed), config).expect("cold start on a missing dir");
    assert!(!report.recovered);
    assert_eq!(
        report.snapshot_seq, 1,
        "the initial checkpoint is cut eagerly"
    );
    assert_eq!(report.frames_replayed, 0);

    for i in 0..20u64 {
        serve_one(&service, Request::communicate(i % n, (i + 9) % n)).expect("serves cleanly");
    }
    let status = service.status();
    assert!(status.journal_bytes > 0);
    assert!(
        status.snapshot_seq >= 2,
        "the epoch cadence cut checkpoints"
    );
    let done = service.shutdown().expect("first shutdown");

    // Clean restart: the reopened engine equals both the engine we just
    // shut down and the genesis-replay twin, clock included.
    let (restarted, report) = reopen(&dir, n, seed, config);
    assert!(report.recovered);
    assert_eq!(
        report.torn_bytes_truncated, 0,
        "clean shutdown leaves no torn tail"
    );
    assert_networks_agree(
        "clean restart vs pre-shutdown",
        restarted.engine(),
        done.session.engine(),
    );
    assert_eq!(restarted.engine().time(), done.session.engine().time());
    let twin = genesis_twin(&dir, n, seed);
    assert_networks_agree(
        "clean restart vs genesis twin",
        restarted.engine(),
        twin.engine(),
    );
    assert_eq!(restarted.engine().time(), twin.engine().time());
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn gated_policy_sketch_survives_restart_bit_identical() {
    let dir = temp_dir("sketch");
    let (n, seed) = (32u64, 19u64);
    let config = persist_config(1, 3, 2);
    let gated = || builder(n, seed).policy(PolicyConfig::gated().with_aging_period(16));

    let (mut service, _) = DsgService::open(&dir, gated(), config).expect("cold start");
    // Repeated pairs cross the admission threshold, fresh ones stay
    // gated, and the tiny aging period forces halving passes — so the
    // restored sketch must reproduce non-trivial counters, not zeros.
    for i in 0..24u64 {
        serve_one(&service, Request::communicate(i % 6, (i % 6) + 16)).expect("serves cleanly");
    }
    let status = service.status();
    assert!(status.pairs_gated > 0, "cold sightings must be gated");
    assert!(status.sketch_aging_passes > 0, "the tiny period must age");
    let done = service.shutdown().expect("first shutdown");
    let image = done.session.engine().capture_image();
    assert!(
        image.sketch.is_some(),
        "a gated engine checkpoints its sketch"
    );

    // Clean restart: the recovered engine equals the pre-shutdown one
    // bit-for-bit INCLUDING the frequency sketch, so replayed-and-resumed
    // admission decisions continue exactly where the crash left them.
    let (mut restored, report) = DsgService::open(&dir, gated(), config).expect("store reopens");
    assert!(report.recovered);
    let done2 = restored.shutdown().expect("first shutdown");
    assert_eq!(
        done2.session.engine().capture_image(),
        image,
        "restart must restore the sketch bit-identical"
    );

    // And the genesis twin (same gated config, full journal replay)
    // arrives at the same sketch — restart-replay determinism holds with
    // the policy on.
    let mut twin = gated().build().expect("twin builds");
    for chunk in &read_journal(&dir).expect("journal scans clean").frames {
        twin.submit_batch(chunk).expect("journal replays cleanly");
    }
    assert_eq!(twin.engine().capture_image(), image);
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn open_without_a_persist_config_is_refused() {
    let dir = temp_dir("nopersist");
    let err = DsgService::open(&dir, builder(8, 1), ServiceConfig::default())
        .map(|_| ())
        .unwrap_err();
    assert!(matches!(err, DsgError::InvalidConfig(_)));
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn stray_journal_without_a_manifest_is_refused() {
    let dir = temp_dir("stray");
    fs::create_dir_all(&dir).unwrap();
    fs::write(dir.join(JOURNAL_FILE), b"orphaned bytes").unwrap();
    let err = DsgService::open(&dir, builder(8, 1), persist_config(1, 4, 4))
        .map(|_| ())
        .unwrap_err();
    assert!(
        matches!(err, DsgError::Persist(PersistError::StrayJournal { .. })),
        "unexpected error: {err}"
    );
    fs::remove_dir_all(&dir).ok();
}

// ---------------------------------------------------------------------
// The torn-write sweep: every byte-boundary truncation of the journal
// ---------------------------------------------------------------------

/// Copies a store directory (manifest, snapshots, journal truncated to
/// `keep` bytes) into a fresh directory — a simulated crash image whose
/// final append stopped after exactly `keep` durable bytes.
fn copy_store_truncated(src: &Path, keep: u64, tag: &str) -> PathBuf {
    let dst = temp_dir(tag);
    fs::create_dir_all(&dst).unwrap();
    for entry in fs::read_dir(src).unwrap().flatten() {
        let name = entry.file_name();
        if name.to_str() == Some(JOURNAL_FILE) {
            let mut bytes = fs::read(entry.path()).unwrap();
            bytes.truncate(keep as usize);
            fs::write(dst.join(&name), &bytes).unwrap();
        } else {
            fs::copy(entry.path(), dst.join(&name)).unwrap();
        }
    }
    dst
}

#[test]
fn every_byte_boundary_truncation_recovers_or_refuses_typed() {
    let dir = temp_dir("sweep");
    let (n, seed) = (24u64, 23u64);
    // A mid-stream checkpoint (snapshot_every 6) makes the manifest bind a
    // non-zero offset, so the sweep also crosses the bound boundary.
    let config = persist_config(1, 6, 1);
    let (service, _) = DsgService::open(&dir, builder(n, seed), config).expect("cold start");
    for i in 0..14u64 {
        serve_one(&service, Request::communicate(i % n, (i + 5) % n)).expect("serves cleanly");
    }
    drop(service);
    let journal_len = fs::metadata(dir.join(JOURNAL_FILE)).unwrap().len();
    assert!(journal_len > 0);

    let mut recovered_opens = 0u64;
    let mut short_refusals = 0u64;
    let mut torn_truncations = 0u64;
    for keep in 0..=journal_len {
        let copy = copy_store_truncated(&dir, keep, "sweep-cut");
        match DsgService::open(&copy, builder(n, seed), config) {
            Ok((mut service, report)) => {
                recovered_opens += 1;
                torn_truncations += u64::from(report.torn_bytes_truncated > 0);
                let done = service.shutdown().expect("first shutdown");
                // The surviving prefix (complete frames only — open
                // physically truncated the torn tail) replayed through a
                // fresh twin lands on the identical structure and clock.
                let twin = genesis_twin(&copy, n, seed);
                assert_networks_agree(
                    &format!("truncate@{keep}"),
                    done.session.engine(),
                    twin.engine(),
                );
                assert_eq!(
                    done.session.engine().time(),
                    twin.engine().time(),
                    "truncate@{keep}: logical clocks diverge"
                );
            }
            // Truncating *below* the manifest's bound offset is not a torn
            // tail — it deleted data a checkpoint vouched for. Typed
            // refusal, never a silent partial recovery.
            Err(DsgError::Persist(PersistError::ShortJournal { .. })) => short_refusals += 1,
            Err(err) => panic!("truncate@{keep}: unexpected error {err}"),
        }
        fs::remove_dir_all(&copy).ok();
    }
    assert_eq!(
        recovered_opens + short_refusals,
        journal_len + 1,
        "every truncation point was exercised"
    );
    assert!(
        short_refusals > 0,
        "the sweep never crossed the snapshot binding"
    );
    assert!(torn_truncations > 0, "the sweep never produced a torn tail");
    fs::remove_dir_all(&dir).ok();
}

// ---------------------------------------------------------------------
// The fail-point matrix: crash at every site, restart, prove equality
// ---------------------------------------------------------------------

#[test]
fn every_fail_point_site_restarts_bit_identical() {
    let _guard = failpoint::exclusive();
    failpoint::disarm_all();
    let (n, seed_base) = (32u64, 400u64);

    for (round, &site) in [
        failpoint::PLAN_WORKER,
        failpoint::APPLY_SPLICE,
        failpoint::DUMMY_PASS0,
        failpoint::INGEST_LOOP,
        failpoint::IO_APPEND,
        failpoint::IO_SNAPSHOT,
        failpoint::IO_MANIFEST,
    ]
    .iter()
    .enumerate()
    {
        let seed = seed_base + round as u64;
        let dir = temp_dir("matrix");
        // One request per chunk/frame, checkpoint every 2 epochs: the
        // snapshot machinery runs mid-test for every site.
        let config = persist_config(1, 2, 1);
        let (service, _) = DsgService::open(&dir, builder(n, seed), config).expect("cold start");

        // Seeded pair stream: varied pairs keep every epoch restructuring
        // (fixed-stride pairs can converge to no-op epochs whose install
        // and dummy passes never run, starving those fail-point sites).
        let mut mix = Mix(0xC8A5 ^ seed);
        let pair = |mix: &mut Mix| {
            let u = mix.next() % n;
            let mut v = mix.next() % n;
            if v == u {
                v = (v + 1) % n;
            }
            Request::communicate(u, v)
        };

        let mut acked: Vec<Request> = Vec::new();
        for _ in 0..4 {
            let request = pair(&mut mix);
            serve_one(&service, request).expect("warmup serves cleanly");
            acked.push(request);
        }

        // Checkpoint-path sites never fail a ticket — the checkpoint is
        // abandoned and the service keeps serving under the old binding —
        // so their drive ends on the hit itself rather than on a fault.
        let snapshot_site = site == failpoint::IO_SNAPSHOT || site == failpoint::IO_MANIFEST;
        failpoint::arm(site, 1);
        let mut faulted = false;
        for _ in 0..400 {
            let request = pair(&mut mix);
            match serve_one(&service, request) {
                Ok(_) => acked.push(request),
                // Plan-side aborts, apply-side poisonings, and journal
                // append faults each surface as their own typed error;
                // any of them ends the drive — the "crash" happens here.
                Err(
                    DsgError::EpochAborted(_) | DsgError::EnginePoisoned | DsgError::Persist(_),
                ) => {
                    faulted = true;
                    break;
                }
                Err(err) => panic!("site {site}: unexpected error {err}"),
            }
            if snapshot_site && failpoint::hit_count(site) >= 1 {
                break;
            }
        }
        let hits = failpoint::hit_count(site);
        failpoint::disarm_all();
        assert!(hits >= 1, "site {site} never fired");
        assert_eq!(
            faulted, !snapshot_site,
            "site {site}: ticket-failure expectation inverted"
        );
        if snapshot_site {
            assert!(service.metrics().snapshot_failures >= 1, "site {site}");
        }

        // Crash: drop the handle (possibly poisoned — no recovery) and
        // reopen the directory.
        drop(service);
        let (mut restarted, report) =
            DsgService::open(&dir, builder(n, seed), config).expect("store reopens");
        assert!(report.recovered, "site {site}");

        // The restarted service is live: serve fresh traffic through it.
        for i in 0..3u64 {
            let request = Request::communicate(i + 1, i + 20);
            serve_one(&restarted, request).expect("restarted service serves cleanly");
            acked.push(request);
        }
        let done = restarted.shutdown().expect("first shutdown");

        // Headline equality: recovered engine == genesis-replay twin,
        // structure and logical clock alike — and every acknowledged
        // request (pre- and post-crash) is in the durable journal in
        // order.
        let twin = genesis_twin(&dir, n, seed);
        assert_networks_agree(
            &format!("site {site}"),
            done.session.engine(),
            twin.engine(),
        );
        assert_eq!(
            done.session.engine().time(),
            twin.engine().time(),
            "site {site}: logical clocks diverge"
        );
        let journaled = flatten(&read_journal(&dir).unwrap().frames);
        assert_subsequence(&format!("site {site}"), &acked, &journaled);
        fs::remove_dir_all(&dir).ok();
    }
}

// ---------------------------------------------------------------------
// Corruption (bit flips) is a typed refusal, never a silent apply
// ---------------------------------------------------------------------

/// Builds a small store with two checkpoints and a journal suffix, then
/// hands back its directory and the served session for comparison.
fn corruption_fixture(tag: &str, n: u64, seed: u64, snapshot_every: u64) -> (PathBuf, DsgSession) {
    let dir = temp_dir(tag);
    let config = persist_config(1, snapshot_every, 1);
    let (mut service, _) = DsgService::open(&dir, builder(n, seed), config).expect("cold start");
    for i in 0..10u64 {
        serve_one(&service, Request::communicate(i % n, (i + 3) % n)).expect("serves cleanly");
    }
    let done = service.shutdown().expect("first shutdown");
    (dir, done.session)
}

fn flip_last_byte(path: &Path) {
    let mut bytes = fs::read(path).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 0x01;
    fs::write(path, &bytes).unwrap();
}

#[test]
fn bit_flipped_journal_frame_is_rejected_not_applied() {
    // snapshot_every 0: no periodic checkpoints, so the whole journal is
    // the replay suffix and the flipped frame is in recovery's path.
    let (dir, _session) = corruption_fixture("flip-frame", 16, 71, 0);
    // The last byte of the journal is the final frame's payload tail: the
    // frame stays *complete* (same length), so this is corruption — a CRC
    // mismatch — not a torn write.
    flip_last_byte(&dir.join(JOURNAL_FILE));
    let err = DsgService::open(&dir, builder(16, 71), persist_config(1, 0, 1))
        .map(|_| ())
        .unwrap_err();
    assert!(
        matches!(err, DsgError::Persist(PersistError::CorruptFrame { .. })),
        "unexpected error: {err}"
    );
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn bit_flipped_snapshot_falls_back_to_the_previous_checkpoint() {
    let (dir, session) = corruption_fixture("flip-snap", 16, 72, 3);
    // Find the newest snapshot file and damage it.
    let newest = fs::read_dir(&dir)
        .unwrap()
        .flatten()
        .filter_map(|e| {
            let name = e.file_name().to_str()?.to_string();
            let seq: u64 = name
                .strip_prefix("snap-")?
                .strip_suffix(".img")?
                .parse()
                .ok()?;
            Some((seq, e.path()))
        })
        .max_by_key(|(seq, _)| *seq)
        .expect("the store holds snapshots")
        .1;
    flip_last_byte(&newest);

    let (restarted, report) = reopen(&dir, 16, 72, persist_config(1, 3, 1));
    assert!(
        report.fell_back,
        "recovery must fall back to the previous snapshot"
    );
    // The fallback replays a longer journal suffix and still lands on the
    // exact served structure.
    assert_networks_agree("snapshot fallback", restarted.engine(), session.engine());
    assert_eq!(restarted.engine().time(), session.engine().time());
    fs::remove_dir_all(&dir).ok();
}

// ---------------------------------------------------------------------
// Brownout verdicts are journaled and replay bit-identical (PR 9)
// ---------------------------------------------------------------------

#[test]
fn journaled_brownout_verdicts_replay_bit_identical() {
    let dir = temp_dir("brownout");
    let (n, seed) = (32u64, 91u64);
    // A gated policy makes the brownout verdict *observable*: under
    // brownout the admission gate degrades to route-only for cold pairs,
    // so replaying a frame with the wrong flag would diverge the sketch
    // and the structure alike.
    let gated = || builder(n, seed).policy(PolicyConfig::gated());
    // Forced degradation: a zero brownout target with a 1 ns evaluation
    // window means every window close finds min > target, so served
    // chunks are journaled under brownout essentially from the start.
    let overload = OverloadConfig::default()
        .with_brownout_target(Duration::ZERO)
        .with_interval(Duration::from_nanos(1));
    let config = persist_config(1, 0, 1).with_overload(overload);

    let (service, _) = DsgService::open(&dir, gated(), config).expect("cold start");
    for i in 0..16u64 {
        // A hot pair mixed with cold ones: route-only verdicts leave a
        // visibly different structure than full admission would.
        let request = if i % 2 == 0 {
            Request::communicate(3, 19)
        } else {
            Request::communicate(i % n, (i + 11) % n)
        };
        serve_one(&service, request).expect("serves cleanly");
    }
    let metrics = service.metrics();
    assert!(metrics.brownout_chunks >= 1, "brownout never engaged");
    // Crash without a shutdown: the journal alone carries the verdicts.
    drop(service);

    let scan = read_journal(&dir).expect("surviving journal scans clean");
    assert_eq!(scan.frames.len(), scan.brownout.len());
    assert!(
        scan.brownout.iter().any(|&flag| flag),
        "no frame recorded a brownout verdict"
    );

    // Reopen WITHOUT the overload layer: recovery must degrade each
    // replayed frame per its journaled flag, not per any live controller.
    let (mut restarted, report) =
        DsgService::open(&dir, gated(), persist_config(1, 0, 1)).expect("store reopens");
    assert!(report.recovered);
    assert_eq!(report.frames_replayed, scan.frames.len() as u64);
    let done = restarted.shutdown().expect("first shutdown");

    // The uninterrupted twin replays the frames with their recorded
    // verdicts; structure, clock, and frequency sketch must all agree.
    let mut twin = gated().build().expect("twin builds");
    for (chunk, &brownout) in scan.frames.iter().zip(&scan.brownout) {
        twin.submit_batch_degraded(chunk, brownout)
            .expect("journal replays cleanly");
    }
    assert_networks_agree("brownout replay twin", done.session.engine(), twin.engine());
    assert_eq!(done.session.engine().time(), twin.engine().time());
    assert_eq!(
        done.session.engine().capture_image(),
        twin.engine().capture_image(),
        "the replayed frequency sketch diverged"
    );
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn bit_flipped_manifest_is_rejected_typed() {
    let (dir, _session) = corruption_fixture("flip-manifest", 16, 73, 3);
    flip_last_byte(&dir.join(MANIFEST_FILE));
    let err = DsgService::open(&dir, builder(16, 73), persist_config(1, 3, 1))
        .map(|_| ())
        .unwrap_err();
    assert!(
        matches!(err, DsgError::Persist(PersistError::CorruptManifest { .. })),
        "unexpected error: {err}"
    );
    fs::remove_dir_all(&dir).ok();
}
