//! Experiment E2 (Figures 2 and 3): working set numbers computed from the
//! communication graph match the paper's hand-computed example, and the
//! working-set bound behaves as expected across workloads.
//!
//! Run with `cargo run --release -p dsg-bench --bin exp_working_set`.

use dsg_bench::{f2, format_table};
use dsg_metrics::{working_set_bound, working_set_numbers};
use dsg_workloads::{trace::as_pairs, RepeatedPairs, RotatingHotSet, UniformRandom, Workload, ZipfPairs};

fn main() {
    println!("E2 — working set numbers and the working-set bound (Figures 2–3)\n");

    // The exact Figure-2 access pattern.
    let figure2 = [(0u64, 1u64), (2, 3), (3, 4), (4, 0), (0, 1)];
    let numbers = working_set_numbers(6, &figure2);
    println!("Figure 2 pattern over 6 peers: working set numbers = {numbers:?}");
    println!("(the paper computes T = 5 for the final (u, v) request)\n");
    assert_eq!(*numbers.last().unwrap(), 5);

    let n = 256u64;
    let m = 3000usize;
    let mut rows = Vec::new();
    let workloads: Vec<(&str, Vec<(u64, u64)>)> = vec![
        (
            "single pair",
            as_pairs(&RepeatedPairs::single(n, 1, 200).generate(m)),
        ),
        (
            "hot set (8 peers)",
            as_pairs(&RotatingHotSet::new(n, 8, 0.9, 100, 5).generate(m)),
        ),
        ("zipf α=1.2", as_pairs(&ZipfPairs::new(n, 1.2, 5).generate(m))),
        ("uniform", as_pairs(&UniformRandom::new(n, 5).generate(m))),
    ];
    for (name, trace) in workloads {
        let numbers = working_set_numbers(n as usize, &trace);
        let bound = working_set_bound(n as usize, &trace);
        let mean = numbers.iter().sum::<usize>() as f64 / numbers.len() as f64;
        let repeats: Vec<usize> = numbers
            .iter()
            .copied()
            .filter(|&t| t != n as usize)
            .collect();
        let repeat_mean = if repeats.is_empty() {
            n as f64
        } else {
            repeats.iter().sum::<usize>() as f64 / repeats.len() as f64
        };
        rows.push(vec![
            name.to_string(),
            f2(mean),
            f2(repeat_mean),
            f2(bound),
            f2(bound / m as f64),
        ]);
    }
    println!(
        "{}",
        format_table(
            &[
                "workload",
                "mean T_i",
                "mean T_i (repeats)",
                "WS(σ)",
                "WS(σ)/m"
            ],
            &rows
        )
    );
    println!("Expected shape: localised workloads have tiny repeat working sets; uniform stays Θ(n).");
}
