//! Experiment E1 (Figure 1): the skip graph and its binary-tree-of-lists
//! view are two presentations of the same structure, and routing stays
//! within the `a · log n` family bound.
//!
//! Run with `cargo run --release -p dsg-bench --bin exp_structure`.

use dsg_bench::{f2, format_table};
use dsg_skipgraph::{fixtures, Key, TreeView};

fn main() {
    println!("E1 — structural equivalence and routing bounds (Figure 1)\n");

    // The paper's own 6-node instance first.
    let figure1 = fixtures::figure1();
    let tree = TreeView::build(&figure1);
    println!("Figure 1 instance ({} nodes):", figure1.len());
    println!("{}", tree.render(&figure1));
    assert!(tree.is_consistent_with(&figure1));

    let mut rows = Vec::new();
    for n in [6u64, 64, 256, 1024] {
        let graph = if n == 6 {
            fixtures::figure1()
        } else {
            fixtures::uniform_random(n, 42)
        };
        let tree = TreeView::build(&graph);
        let consistent = tree.is_consistent_with(&graph);
        // Sample routing distances.
        let keys: Vec<Key> = graph.keys().collect();
        let mut worst = 0usize;
        let mut total = 0usize;
        let mut count = 0usize;
        for i in (0..keys.len()).step_by(7.max(keys.len() / 40)) {
            for j in (0..keys.len()).step_by(11.max(keys.len() / 40)) {
                if i == j {
                    continue;
                }
                let hops = graph.route(keys[i], keys[j]).unwrap().hops();
                worst = worst.max(hops);
                total += hops;
                count += 1;
            }
        }
        let log_n = (graph.len() as f64).log2();
        rows.push(vec![
            graph.len().to_string(),
            graph.height().to_string(),
            tree.list_count().to_string(),
            consistent.to_string(),
            f2(total as f64 / count.max(1) as f64),
            worst.to_string(),
            f2(worst as f64 / log_n),
        ]);
    }
    println!(
        "{}",
        format_table(
            &[
                "n",
                "height",
                "lists",
                "tree==graph",
                "avg hops",
                "worst hops",
                "worst/log2(n)"
            ],
            &rows
        )
    );
    println!("Expected shape: worst/log2(n) stays a small constant at every n.");
}
