//! Experiment E6 (Lemmas 4 and 5): the level of the direct link created for
//! a request never exceeds `log_{2a/(a+1)} n`, and the structure height
//! never exceeds `log_{3/2} n` (plus dummy-node slack) after any
//! transformation.
//!
//! Run with `cargo run --release -p dsg-bench --bin exp_height`.

use dsg::DsgConfig;
use dsg_bench::{f2, format_table, run_dsg};
use dsg_workloads::{UniformRandom, Workload, ZipfPairs};

fn main() {
    println!("E6 — height and direct-link level bounds (Lemmas 4 and 5)\n");
    let a = 3usize;
    let requests = 800usize;
    let mut rows = Vec::new();
    for &n in &[128u64, 256, 512] {
        for (name, trace) in [
            ("zipf 1.2", ZipfPairs::new(n, 1.2, 3).generate(requests)),
            ("uniform", UniformRandom::new(n, 3).generate(requests)),
        ] {
            let run = run_dsg(n, DsgConfig::default().with_a(a).with_seed(4), &trace);
            let lemma4 = (n as f64).ln() / (2.0 * a as f64 / (a as f64 + 1.0)).ln();
            let lemma5 = (n as f64).ln() / 1.5f64.ln();
            let max_pair_level = run.pair_levels.iter().copied().max().unwrap_or(0);
            rows.push(vec![
                n.to_string(),
                name.to_string(),
                max_pair_level.to_string(),
                f2(lemma4),
                run.max_height().to_string(),
                f2(lemma5),
                run.final_dummies.to_string(),
            ]);
        }
    }
    println!(
        "{}",
        format_table(
            &[
                "n",
                "workload",
                "max link level",
                "lemma4 bound",
                "max height",
                "lemma5 bound",
                "dummies"
            ],
            &rows
        )
    );
    println!("Expected shape: measured maxima stay below the corresponding bounds.");
}
