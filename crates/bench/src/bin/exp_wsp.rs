//! Experiment E7 (Theorem 2, the working set property): for every repeat
//! request, the routing distance found by the request is `O(log T_i)` where
//! `T_i` is its working set number.
//!
//! Run with `cargo run --release -p dsg-bench --bin exp_wsp`.

use dsg::prelude::*;
use dsg_bench::{f2, format_table};
use dsg_metrics::WorkingSetTracker;
use dsg_workloads::{RepeatedPairs, RotatingHotSet, Workload, ZipfPairs};

fn main() {
    println!("E7 — the working set property (Theorem 2)\n");
    let n = 256u64;
    let requests = 1500usize;
    let mut rows = Vec::new();
    let workloads: Vec<(&str, Vec<dsg_workloads::Request>)> = vec![
        (
            "repeated pairs",
            RepeatedPairs::new(n, vec![(1, 200), (40, 41), (90, 171)]).generate(requests),
        ),
        (
            "hot set (8)",
            RotatingHotSet::new(n, 8, 0.9, 120, 9).generate(requests),
        ),
        ("zipf 1.2", ZipfPairs::new(n, 1.2, 9).generate(requests)),
    ];
    for (name, trace) in workloads {
        let mut session = DsgSession::builder()
            .peers(0..n)
            .seed(6)
            .build()
            .unwrap();
        let net = session.engine_mut();
        let mut tracker = WorkingSetTracker::new(n as usize);
        let mut worst_ratio = 0.0f64;
        let mut sum_ratio = 0.0f64;
        let mut samples = 0usize;
        let mut violations = 0usize;
        let a = net.config().a as f64;
        for request in &trace {
            let (u, v) = request.pair();
            let ws = tracker.record(u, v);
            let distance = net.peer_distance(u, v).unwrap();
            net.communicate(u, v).unwrap();
            if ws < n as usize {
                let log_ws = (ws.max(2) as f64).log2();
                let ratio = distance as f64 / log_ws;
                worst_ratio = worst_ratio.max(ratio);
                sum_ratio += ratio;
                samples += 1;
                // Theorem 2's constant is a (the balance parameter) up to
                // additive slack from dummy nodes.
                if (distance as f64) > 2.0 * a * log_ws + a {
                    violations += 1;
                }
            }
        }
        rows.push(vec![
            name.to_string(),
            samples.to_string(),
            f2(sum_ratio / samples.max(1) as f64),
            f2(worst_ratio),
            violations.to_string(),
        ]);
    }
    println!(
        "{}",
        format_table(
            &[
                "workload",
                "repeat requests",
                "mean d/log2(T)",
                "worst d/log2(T)",
                "violations of 2a·log2(T)+a"
            ],
            &rows
        )
    );
    println!("Expected shape: the distance / log(working set) ratio is bounded by a small constant.");
}
