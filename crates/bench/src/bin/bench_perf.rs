//! Headless perf harness: measures the skip graph core and end-to-end
//! `communicate` throughput, and writes `BENCH_perf.json`.
//!
//! This binary establishes the repository's performance trajectory: it
//! compares the intrusive linked-list arena ([`dsg_skipgraph::SkipGraph`])
//! against the naive index-based representation
//! ([`dsg_skipgraph::reference::ReferenceGraph`]) on the `route` and
//! `neighbors` microbenchmarks, and measures requests/sec of
//! [`dsg::DynamicSkipGraph::communicate`] under uniform, skewed and
//! working-set workloads, at n ∈ {256, 1024, 4096}.
//!
//! Usage:
//!
//! ```text
//! cargo run --release --bin bench_perf [-- <output-path>]
//! ```
//!
//! The output path defaults to `BENCH_perf.json` in the current
//! directory. Set `BENCH_PERF_QUICK=1` to run a fast smoke (fewer
//! repetitions, shorter traces) — used by CI.
//!
//! The JSON schema is documented in `ROADMAP.md` ("BENCH_perf.json
//! schema").

use std::fmt::Write as _;
use std::time::Instant;

use dsg::DsgConfig;
use dsg_bench::{
    perf_trace_len, reference_graph_like, route_pairs, run_dsg, workload_trace, WorkloadKind,
    COMM_SIZES, SIZES,
};
use dsg_skipgraph::fixtures;

fn quick() -> bool {
    std::env::var("BENCH_PERF_QUICK").is_ok_and(|v| v != "0" && !v.is_empty())
}

/// Median wall-clock nanoseconds of `reps` runs of `f` (each run's result
/// is consumed by `black_box` inside `f`).
fn median_ns<F: FnMut()>(reps: usize, mut f: F) -> u128 {
    let mut samples: Vec<u128> = (0..reps)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_nanos()
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

struct MicroRow {
    n: u64,
    ops: usize,
    arena_ns_per_op: f64,
    reference_ns_per_op: f64,
}

impl MicroRow {
    fn speedup(&self) -> f64 {
        self.reference_ns_per_op / self.arena_ns_per_op.max(f64::MIN_POSITIVE)
    }
}

struct CommRow {
    workload: &'static str,
    n: u64,
    requests: usize,
    elapsed_ns: u128,
    transform_touched_pairs: usize,
}

impl CommRow {
    fn requests_per_sec(&self) -> f64 {
        self.requests as f64 / (self.elapsed_ns as f64 / 1e9).max(f64::MIN_POSITIVE)
    }
}

fn measure_route(reps: usize) -> Vec<MicroRow> {
    SIZES
        .iter()
        .map(|&n| {
            let graph = fixtures::uniform_random(n, 7);
            let reference = reference_graph_like(&graph);
            let pairs = route_pairs(n);
            let ops = pairs.len();
            let arena = median_ns(reps, || {
                let mut hops = 0usize;
                for &(a, b) in &pairs {
                    hops += graph.route(a, b).map(|r| r.hops()).unwrap_or(0);
                }
                std::hint::black_box(hops);
            });
            let refr = median_ns(reps, || {
                let mut hops = 0usize;
                for &(a, b) in &pairs {
                    hops += reference.route_hops(a, b).unwrap_or(0);
                }
                std::hint::black_box(hops);
            });
            MicroRow {
                n,
                ops,
                arena_ns_per_op: arena as f64 / ops as f64,
                reference_ns_per_op: refr as f64 / ops as f64,
            }
        })
        .collect()
}

fn measure_neighbors(reps: usize) -> Vec<MicroRow> {
    SIZES
        .iter()
        .map(|&n| {
            let graph = fixtures::uniform_random(n, 7);
            let reference = reference_graph_like(&graph);
            let queries: Vec<_> = graph
                .node_ids()
                .flat_map(|id| {
                    let top = graph.mvec_of(id).expect("live node").len();
                    (0..=top).map(move |level| (id, level))
                })
                .collect();
            let ops = queries.len();
            let arena = median_ns(reps, || {
                let mut acc = 0usize;
                for &(id, level) in &queries {
                    let (l, r) = graph.neighbors(id, level).unwrap();
                    acc += l.is_some() as usize + r.is_some() as usize;
                }
                std::hint::black_box(acc);
            });
            let refr = median_ns(reps, || {
                let mut acc = 0usize;
                for &(id, level) in &queries {
                    let (l, r) = reference.neighbors(id, level).unwrap();
                    acc += l.is_some() as usize + r.is_some() as usize;
                }
                std::hint::black_box(acc);
            });
            MicroRow {
                n,
                ops,
                arena_ns_per_op: arena as f64 / ops as f64,
                reference_ns_per_op: refr as f64 / ops as f64,
            }
        })
        .collect()
}

fn measure_communicate(quick: bool) -> Vec<CommRow> {
    let mut rows = Vec::new();
    for &n in COMM_SIZES {
        let m = perf_trace_len(n, quick);
        for kind in [
            WorkloadKind::Uniform,
            WorkloadKind::Skewed,
            WorkloadKind::WorkingSet,
        ] {
            let trace = workload_trace(kind, n, m, 3);
            // Short warm-up replay (builds the network, pages code in),
            // then the timed full replay.
            run_dsg(
                n,
                DsgConfig::default().with_seed(1),
                &trace[..m.min(20)],
            );
            let start = Instant::now();
            let run = run_dsg(n, DsgConfig::default().with_seed(1), &trace);
            let elapsed_ns = start.elapsed().as_nanos();
            let transform_touched_pairs = run.total_touched_pairs();
            std::hint::black_box(run);
            rows.push(CommRow {
                workload: kind.label(),
                n,
                requests: m,
                elapsed_ns,
                transform_touched_pairs,
            });
        }
    }
    rows
}

fn micro_json(rows: &[MicroRow]) -> String {
    let mut out = String::from("[");
    for (i, row) in rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n    {{\"n\": {}, \"ops\": {}, \"arena_ns_per_op\": {:.1}, \
             \"reference_ns_per_op\": {:.1}, \"speedup\": {:.2}}}",
            row.n,
            row.ops,
            row.arena_ns_per_op,
            row.reference_ns_per_op,
            row.speedup()
        );
    }
    out.push_str("\n  ]");
    out
}

fn main() {
    let output = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_perf.json".to_string());
    let reps = if quick() { 3 } else { 9 };

    eprintln!("bench_perf: route microbenchmark ({reps} reps)...");
    let route = measure_route(reps);
    eprintln!("bench_perf: neighbors microbenchmark ({reps} reps)...");
    let neighbors = measure_neighbors(reps);
    eprintln!("bench_perf: communicate throughput...");
    let communicate = measure_communicate(quick());

    let unix_time = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);

    let mut comm_json = String::from("[");
    for (i, row) in communicate.iter().enumerate() {
        if i > 0 {
            comm_json.push(',');
        }
        let _ = write!(
            comm_json,
            "\n    {{\"workload\": \"{}\", \"n\": {}, \"requests\": {}, \
             \"elapsed_ms\": {:.2}, \"requests_per_sec\": {:.1}, \
             \"transform_touched_pairs\": {}}}",
            row.workload,
            row.n,
            row.requests,
            row.elapsed_ns as f64 / 1e6,
            row.requests_per_sec(),
            row.transform_touched_pairs
        );
    }
    comm_json.push_str("\n  ]");

    let json = format!(
        "{{\n  \"schema\": \"dsg-bench-perf/v1\",\n  \"created_unix\": {unix_time},\n  \
         \"quick\": {},\n  \"route\": {},\n  \"neighbors\": {},\n  \"communicate\": {}\n}}\n",
        quick(),
        micro_json(&route),
        micro_json(&neighbors),
        comm_json,
    );
    std::fs::write(&output, &json).expect("write BENCH_perf.json");

    // Human-readable recap on stderr.
    for (name, rows) in [("route", &route), ("neighbors", &neighbors)] {
        for row in rows.iter() {
            eprintln!(
                "{name:>9} n={:<5} arena {:>9.1} ns/op   reference {:>9.1} ns/op   speedup {:>5.2}x",
                row.n, row.arena_ns_per_op, row.reference_ns_per_op, row.speedup()
            );
        }
    }
    for row in &communicate {
        eprintln!(
            "communicate {:>11} n={:<5} {:>10.1} req/s   {:>9} touched pairs",
            row.workload,
            row.n,
            row.requests_per_sec(),
            row.transform_touched_pairs
        );
    }
    eprintln!("bench_perf: wrote {output}");
}
