//! Headless perf harness: measures the skip graph core and end-to-end
//! `communicate` throughput — sequential and epoch-batched — and writes
//! `BENCH_perf.json`.
//!
//! This binary establishes the repository's performance trajectory: it
//! compares the intrusive linked-list arena ([`dsg_skipgraph::SkipGraph`])
//! against the naive index-based representation
//! ([`dsg_skipgraph::reference::ReferenceGraph`]) on the `route`,
//! `neighbors` and `dummy_probe` microbenchmarks, measures requests/sec of
//! sequential [`dsg::DsgSession::submit`] replay under uniform, skewed and
//! working-set workloads, and measures the epoch-batched
//! [`dsg::DsgSession::submit_batch`] path at batch sizes 1/4/16.
//!
//! Usage:
//!
//! ```text
//! cargo run --release --bin bench_perf [-- <output-path>]
//! ```
//!
//! The output path defaults to `BENCH_perf.json` in the current
//! directory. Set `BENCH_PERF_QUICK=1` to run a fast smoke (fewer
//! repetitions, shorter traces) — used by CI.
//!
//! The JSON schema (`dsg-bench-perf/v7`) is documented in `ROADMAP.md`
//! ("BENCH_perf.json schema"). v5 added the `service_ingest` table: the
//! concurrent [`dsg::DsgService`] front-end driven by 1/2/4/8 producer
//! threads over a bounded queue, reporting throughput, peak queue depth,
//! typed overload rejections, and epochs formed. Caveat for 1-CPU
//! containers (the CI runner class): producers and the ingest thread
//! time-share one core, so the producer sweep measures queueing overhead
//! — not parallel speedup — there; read the rows as a backpressure/cost
//! profile, not a scaling curve. v6 adds the `recovery` table: durability
//! costs of the `dsg-persist` subsystem — snapshot encode/decode wall
//! time and size, plus crash-recovery replay throughput through
//! [`dsg::DsgService::open`] against a journal with a deliberately torn
//! tail. v7 adds the adaptation policy (PR 8): the `communicate` sweep
//! gains `flash_crowd` and `hot_set_drift` workload rows, every
//! communicate/batched row carries a `policy` tag plus the gate counters
//! (`pairs_gated`, `restructures_budgeted`, `sketch_aging_passes`), and
//! the uniform and flash-crowd workloads run as a policy off/on A/B pair.
//! v8 adds the `overload` table (PR 9): an open-loop driver first
//! measures the service's closed-loop capacity, then offers multiples of
//! it with the sojourn-based shedding/brownout layer on and off (A/B),
//! reporting goodput, p50/p99 queue sojourn, and the shed/brownout
//! counters — the off twin's tail sojourn grows with the backlog while
//! the on twin's stays bounded.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

use dsg::persist::{decode_snapshot, encode_snapshot};
use dsg::{
    DsgConfig, DsgService, DsgSession, DynamicSkipGraph, OverloadConfig, PersistConfig,
    PolicyConfig, ServiceConfig, SubmitError,
};
use dsg_bench::{
    perf_trace_len, reference_graph_like, route_pairs, run_dsg, run_dsg_batched, workload_trace,
    WorkloadKind, BATCH_SIZES, COMM_BATCH_SIZES, COMM_SIZES, SIZES,
};
use dsg_skipgraph::{fixtures, Key};

/// The plan-stage shard counts the largest-batch rows sweep.
const PLAN_SHARD_SWEEP: &[usize] = &[1, 4];

/// The producer-thread counts the `service_ingest` suite sweeps.
const SERVICE_PRODUCERS: &[usize] = &[1, 2, 4, 8];

/// Network size of the `service_ingest` suite (one size: the suite sweeps
/// producer counts, not sizes).
const SERVICE_N: u64 = 1024;

/// Bounded-queue capacity of the benchmarked service. Deliberately small
/// relative to the trace so fast producers actually exercise the
/// backpressure path and the overload counter is non-trivial.
const SERVICE_QUEUE: usize = 64;

fn quick() -> bool {
    std::env::var("BENCH_PERF_QUICK").is_ok_and(|v| v != "0" && !v.is_empty())
}

/// Median wall-clock nanoseconds of `reps` runs of `f` (each run's result
/// is consumed by `black_box` inside `f`).
fn median_ns<F: FnMut()>(reps: usize, mut f: F) -> u128 {
    let mut samples: Vec<u128> = (0..reps)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_nanos()
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

struct MicroRow {
    n: u64,
    ops: usize,
    arena_ns_per_op: f64,
    reference_ns_per_op: f64,
}

impl MicroRow {
    fn speedup(&self) -> f64 {
        self.reference_ns_per_op / self.arena_ns_per_op.max(f64::MIN_POSITIVE)
    }
}

struct CommRow {
    workload: &'static str,
    policy: &'static str,
    n: u64,
    requests: usize,
    elapsed_ns: u128,
    transform_touched_pairs: usize,
    dummy_churn: usize,
    dummies_reused: usize,
    dummies_bulk_inserted: usize,
    pairs_gated: u64,
    restructures_budgeted: u64,
    sketch_aging_passes: u64,
}

impl CommRow {
    fn requests_per_sec(&self) -> f64 {
        self.requests as f64 / (self.elapsed_ns as f64 / 1e9).max(f64::MIN_POSITIVE)
    }
}

struct BatchRow {
    workload: &'static str,
    n: u64,
    batch: usize,
    shards: usize,
    requests: usize,
    elapsed_ns: u128,
    transform_touched_pairs: usize,
    epochs: usize,
    install_passes: usize,
    dummy_churn: usize,
    dummies_reused: usize,
    dummies_bulk_inserted: usize,
    planned_clusters: usize,
    plan_shards: usize,
    plan_wall_ns: u64,
    pairs_gated: u64,
    restructures_budgeted: u64,
    sketch_aging_passes: u64,
}

impl BatchRow {
    fn requests_per_sec(&self) -> f64 {
        self.requests as f64 / (self.elapsed_ns as f64 / 1e9).max(f64::MIN_POSITIVE)
    }
}

fn measure_route(reps: usize) -> Vec<MicroRow> {
    SIZES
        .iter()
        .map(|&n| {
            let graph = fixtures::uniform_random(n, 7);
            let reference = reference_graph_like(&graph);
            let pairs = route_pairs(n);
            let ops = pairs.len();
            let arena = median_ns(reps, || {
                let mut hops = 0usize;
                for &(a, b) in &pairs {
                    hops += graph.route(a, b).map(|r| r.hops()).unwrap_or(0);
                }
                std::hint::black_box(hops);
            });
            let refr = median_ns(reps, || {
                let mut hops = 0usize;
                for &(a, b) in &pairs {
                    hops += reference.route_hops(a, b).unwrap_or(0);
                }
                std::hint::black_box(hops);
            });
            MicroRow {
                n,
                ops,
                arena_ns_per_op: arena as f64 / ops as f64,
                reference_ns_per_op: refr as f64 / ops as f64,
            }
        })
        .collect()
}

fn measure_neighbors(reps: usize) -> Vec<MicroRow> {
    SIZES
        .iter()
        .map(|&n| {
            let graph = fixtures::uniform_random(n, 7);
            let reference = reference_graph_like(&graph);
            let queries: Vec<_> = graph
                .node_ids()
                .flat_map(|id| {
                    let top = graph.mvec_of(id).expect("live node").len();
                    (0..=top).map(move |level| (id, level))
                })
                .collect();
            let ops = queries.len();
            let arena = median_ns(reps, || {
                let mut acc = 0usize;
                for &(id, level) in &queries {
                    let (l, r) = graph.neighbors(id, level).unwrap();
                    acc += l.is_some() as usize + r.is_some() as usize;
                }
                std::hint::black_box(acc);
            });
            let refr = median_ns(reps, || {
                let mut acc = 0usize;
                for &(id, level) in &queries {
                    let (l, r) = reference.neighbors(id, level).unwrap();
                    acc += l.is_some() as usize + r.is_some() as usize;
                }
                std::hint::black_box(acc);
            });
            MicroRow {
                n,
                ops,
                arena_ns_per_op: arena as f64 / ops as f64,
                reference_ns_per_op: refr as f64 / ops as f64,
            }
        })
        .collect()
}

/// The dummy hot path in miniature: `free_key_between` resolves a dummy's
/// key by probing candidate keys for occupancy (`node_by_key`), thousands
/// of times per request under uniform traffic. The arena serves the probe
/// from the fasthash half of its key index; the reference answers from a
/// plain `BTreeMap`. The graph uses the *production* key layout — peer
/// keys strided by `DynamicSkipGraph::KEY_SPACING` (the layout whose
/// bucket collapse under the unfinalised FxHash motivated `KeyHashState`;
/// dense keys would mask such a regression) — and probes alternate hits
/// (the peer keys) and misses (gap midpoints, where dummy keys go).
fn measure_dummy_probe(reps: usize) -> Vec<MicroRow> {
    const SPACING: u64 = dsg::DynamicSkipGraph::KEY_SPACING;
    SIZES
        .iter()
        .map(|&n| {
            let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(7);
            let graph = dsg_skipgraph::SkipGraph::random(
                (0..n).map(|i| Key::new((i + 1) * SPACING)),
                &mut rng,
            )
            .expect("strided keys are distinct");
            let reference = reference_graph_like(&graph);
            let probes: Vec<Key> = (0..n)
                .flat_map(|i| {
                    [
                        Key::new((i + 1) * SPACING),
                        Key::new((i + 1) * SPACING + SPACING / 2),
                    ]
                })
                .collect();
            let ops = probes.len();
            let arena = median_ns(reps, || {
                let mut hits = 0usize;
                for &key in &probes {
                    hits += graph.node_by_key(key).is_some() as usize;
                }
                std::hint::black_box(hits);
            });
            let refr = median_ns(reps, || {
                let mut hits = 0usize;
                for &key in &probes {
                    hits += reference.node_by_key(key).is_some() as usize;
                }
                std::hint::black_box(hits);
            });
            MicroRow {
                n,
                ops,
                arena_ns_per_op: arena as f64 / ops as f64,
                reference_ns_per_op: refr as f64 / ops as f64,
            }
        })
        .collect()
}

fn measure_communicate(quick: bool) -> Vec<CommRow> {
    let mut rows = Vec::new();
    for &n in COMM_SIZES {
        let m = perf_trace_len(n, quick);
        for kind in [
            WorkloadKind::Uniform,
            WorkloadKind::Skewed,
            WorkloadKind::WorkingSet,
            WorkloadKind::FlashCrowd,
            WorkloadKind::HotSetDrift,
        ] {
            let trace = workload_trace(kind, n, m, 3);
            // Every workload runs policy-off; uniform and flash-crowd run
            // the policy on/off A/B pair — the two regimes the admission
            // gate was designed around (pure overhead vs late skew).
            let mut policies = vec![("off", DsgConfig::default().with_seed(1))];
            if matches!(kind, WorkloadKind::Uniform | WorkloadKind::FlashCrowd) {
                policies.push((
                    "on",
                    DsgConfig::default()
                        .with_seed(1)
                        .with_policy(PolicyConfig::gated()),
                ));
            }
            for (policy, config) in policies {
                // Short warm-up replay (builds the network, pages code
                // in), then the timed full replay.
                run_dsg(n, config, &trace[..m.min(20)]);
                let start = Instant::now();
                let run = run_dsg(n, config, &trace);
                let elapsed_ns = start.elapsed().as_nanos();
                rows.push(CommRow {
                    workload: kind.label(),
                    policy,
                    n,
                    requests: m,
                    elapsed_ns,
                    transform_touched_pairs: run.total_touched_pairs(),
                    dummy_churn: run.dummy_churn,
                    dummies_reused: run.dummies_reused,
                    dummies_bulk_inserted: run.dummies_bulk_inserted,
                    pairs_gated: run.pairs_gated,
                    restructures_budgeted: run.restructures_budgeted,
                    sketch_aging_passes: run.sketch_aging_passes,
                });
                std::hint::black_box(run);
            }
        }
    }
    rows
}

fn measure_communicate_batched(quick: bool) -> Vec<BatchRow> {
    let mut rows = Vec::new();
    for &n in COMM_BATCH_SIZES {
        let m = perf_trace_len(n, quick);
        // Uniform is the historical batched surface; the drifting hot
        // window (v7) adds a skew-under-churn profile to the same sweep.
        for kind in [WorkloadKind::Uniform, WorkloadKind::HotSetDrift] {
            let trace = workload_trace(kind, n, m, 3);
            for &batch in BATCH_SIZES {
                // The largest batch additionally sweeps the plan-stage
                // shard count (the PR 5 acceptance rows: shards 1 vs 4 at
                // batch 16).
                let shard_counts: &[usize] = if batch == *BATCH_SIZES.last().unwrap() {
                    PLAN_SHARD_SWEEP
                } else {
                    &[1]
                };
                for &shards in shard_counts {
                    let config = DsgConfig::default().with_seed(1).with_shards(shards);
                    run_dsg_batched(n, config, &trace[..m.min(20)], batch);
                    let start = Instant::now();
                    let run = run_dsg_batched(n, config, &trace, batch);
                    let elapsed_ns = start.elapsed().as_nanos();
                    rows.push(BatchRow {
                        workload: kind.label(),
                        n,
                        batch,
                        shards,
                        requests: m,
                        elapsed_ns,
                        transform_touched_pairs: run.total_touched_pairs(),
                        epochs: run.epochs,
                        install_passes: run.install_passes,
                        dummy_churn: run.dummy_churn,
                        dummies_reused: run.dummies_reused,
                        dummies_bulk_inserted: run.dummies_bulk_inserted,
                        planned_clusters: run.planned_clusters,
                        plan_shards: run.plan_shards,
                        plan_wall_ns: run.plan_wall_ns,
                        pairs_gated: run.pairs_gated,
                        restructures_budgeted: run.restructures_budgeted,
                        sketch_aging_passes: run.sketch_aging_passes,
                    });
                    std::hint::black_box(run);
                }
            }
        }
    }
    rows
}

struct ServiceRow {
    producers: usize,
    n: u64,
    requests: usize,
    elapsed_ns: u128,
    submitted: u64,
    rejected_overload: u64,
    epochs: u64,
    batches: u64,
    max_queue_depth: usize,
}

impl ServiceRow {
    fn requests_per_sec(&self) -> f64 {
        self.requests as f64 / (self.elapsed_ns as f64 / 1e9).max(f64::MIN_POSITIVE)
    }
}

/// Drives the uniform trace through a [`DsgService`] with `producers`
/// submitting threads. Producers first try the non-blocking [`submit`]
/// (so the service's overload counter records real backpressure events),
/// then fall back to the blocking [`submit_deadline`]; every ticket is
/// awaited, so the elapsed wall covers full resolution of the trace.
///
/// [`submit`]: DsgService::submit
/// [`submit_deadline`]: DsgService::submit_deadline
fn measure_service_ingest(quick: bool) -> Vec<ServiceRow> {
    let n = SERVICE_N;
    let m = perf_trace_len(n, quick);
    let trace = workload_trace(WorkloadKind::Uniform, n, m, 3);
    SERVICE_PRODUCERS
        .iter()
        .map(|&producers| {
            let session = DsgSession::builder()
                .config(DsgConfig::default().with_seed(1))
                .peers(0..n)
                .build()
                .expect("peer keys 0..n are distinct");
            let mut service = DsgService::spawn(
                session,
                ServiceConfig {
                    queue_capacity: SERVICE_QUEUE,
                    ..ServiceConfig::default()
                },
            )
            .expect("service config is valid");
            let start = Instant::now();
            std::thread::scope(|scope| {
                for slice in trace.chunks(m.div_ceil(producers)) {
                    let service = &service;
                    scope.spawn(move || {
                        let mut tickets = Vec::with_capacity(slice.len());
                        for &request in slice {
                            match service.submit(request) {
                                Ok(ticket) => tickets.push(ticket),
                                Err(SubmitError::Overloaded) => tickets.push(
                                    service
                                        .submit_deadline(request, Duration::from_secs(60))
                                        .expect("the queue drains within 60s"),
                                ),
                                Err(err) => panic!("service refused a submission: {err}"),
                            }
                        }
                        for ticket in tickets {
                            ticket.wait().expect("uniform trace serves cleanly");
                        }
                    });
                }
            });
            let status = service.status();
            eprintln!(
                "bench_perf:   service status (producers={producers}): \
                 queue_depth={} epochs={} batches={} audits={} poisoned={}",
                status.queue_depth, status.epochs, status.batches, status.audits, status.poisoned
            );
            let done = service.shutdown().expect("first shutdown");
            let elapsed_ns = start.elapsed().as_nanos();
            ServiceRow {
                producers,
                n,
                requests: m,
                elapsed_ns,
                submitted: done.metrics.submitted,
                rejected_overload: done.metrics.rejected_overload,
                epochs: done.metrics.epochs,
                batches: done.metrics.batches,
                max_queue_depth: done.metrics.max_queue_depth,
            }
        })
        .collect()
}

/// Offered-load multiples of the measured closed-loop capacity the
/// `overload` suite sweeps (quick mode runs the 2x cell only — the one
/// the A/B contrast and the CI gate are about).
const OVERLOAD_MULTIPLES: &[u64] = &[1, 2];

/// Network size of the `overload` suite (matches `service_ingest`).
const OVERLOAD_N: u64 = SERVICE_N;

struct OverloadRow {
    offered_x: u64,
    shedding: bool,
    n: u64,
    offered: usize,
    offered_rps: u64,
    accepted: u64,
    served: u64,
    refused: u64,
    elapsed_ns: u128,
    shed_submits: u64,
    deadline_shed: u64,
    brownout_chunks: u64,
    p50_sojourn_us: u64,
    p99_sojourn_us: u64,
}

impl OverloadRow {
    /// Requests actually *served to completion* per wall-clock second
    /// (drive plus drain) — refusals and deadline sheds do not count.
    fn goodput_rps(&self) -> f64 {
        self.served as f64 / (self.elapsed_ns as f64 / 1e9).max(f64::MIN_POSITIVE)
    }
}

/// Overload suite: measures closed-loop capacity, then offers multiples
/// of it open-loop — the i-th request is due at `i / rate` regardless of
/// how the service is doing — with the shedding/brownout layer on and
/// off. Every 4th request carries a 1 s deadline so queue-expired work is
/// shed typed instead of served stale. The off twin runs with the same
/// (large) queue and no overload layer: its backlog, and therefore its
/// tail sojourn, grows without bound while the on twin's stays pinned
/// near the shed target.
fn measure_overload(quick: bool) -> Vec<OverloadRow> {
    let n = OVERLOAD_N;
    let build = || {
        DsgSession::builder()
            .config(
                DsgConfig::default()
                    .with_seed(1)
                    .with_policy(PolicyConfig::gated()),
            )
            .peers(0..n)
            .build()
            .expect("peer keys 0..n are distinct")
    };
    let large_queue = ServiceConfig {
        queue_capacity: 65_536,
        ..ServiceConfig::default()
    };

    // Closed-loop calibration: the sustained service rate with the same
    // engine configuration the offered-load cells run.
    let calibrate = if quick { 120 } else { 320 };
    let trace = workload_trace(WorkloadKind::Uniform, n, calibrate, 3);
    let mut service = DsgService::spawn(build(), large_queue).expect("service config is valid");
    let started = Instant::now();
    for &request in &trace {
        service
            .submit_deadline(request, Duration::from_secs(60))
            .expect("the queue drains within 60s")
            .wait()
            .expect("calibration trace serves cleanly");
    }
    let capacity_rps =
        ((calibrate as f64 / started.elapsed().as_secs_f64()) as u64).clamp(200, 1_000_000);
    service.shutdown().expect("first shutdown");
    eprintln!("bench_perf:   overload capacity estimate: {capacity_rps} req/s (closed loop)");

    let multiples: &[u64] = if quick {
        &OVERLOAD_MULTIPLES[1..]
    } else {
        OVERLOAD_MULTIPLES
    };
    // Long enough that the off twin's unbounded backlog pushes its tail
    // sojourn several histogram buckets past the on twin's bounded one —
    // the contrast the CI gate asserts on.
    let drive_secs = if quick { 1.0 } else { 2.0 };
    let mut rows = Vec::new();
    for &offered_x in multiples {
        let offered_rps = offered_x * capacity_rps;
        let offered = ((offered_rps as f64 * drive_secs) as usize).max(64);
        let mut open = dsg_workloads::OpenLoop::new(
            dsg_workloads::UniformRandom::new(n, 3),
            offered_rps,
        );
        let schedule = open.schedule(offered);
        for shedding in [false, true] {
            let mut config = large_queue;
            if shedding {
                config = config.with_overload(
                    OverloadConfig::default()
                        .with_brownout_target(Duration::from_millis(5))
                        .with_shed_target(Duration::from_millis(20))
                        .with_interval(Duration::from_millis(25))
                        .with_retry_after(Duration::from_millis(50)),
                );
            }
            let mut service = DsgService::spawn(build(), config).expect("service config is valid");
            let start = Instant::now();
            let mut tickets = Vec::with_capacity(offered);
            let mut refused = 0u64;
            for (i, &(due, request)) in schedule.iter().enumerate() {
                if let Some(wait) = due.checked_sub(start.elapsed()) {
                    std::thread::sleep(wait);
                }
                let submitted = if i % 4 == 0 {
                    service.submit_with_deadline(request, Duration::from_secs(1))
                } else {
                    service.submit(request)
                };
                match submitted {
                    Ok(ticket) => tickets.push(ticket),
                    Err(SubmitError::Shed { .. } | SubmitError::Overloaded) => refused += 1,
                    Err(err) => panic!("overload drive refused a submission: {err}"),
                }
            }
            let accepted = tickets.len() as u64;
            let mut served = 0u64;
            for ticket in tickets {
                match ticket.wait() {
                    Ok(_) => served += 1,
                    Err(dsg::DsgError::DeadlineExceeded) => {}
                    Err(err) => panic!("overload drive lost a ticket: {err}"),
                }
            }
            let elapsed_ns = start.elapsed().as_nanos();
            let status = service.status();
            eprintln!(
                "bench_perf:   overload status ({offered_x}x shedding={shedding}): \
                 shedding={} brownout={} shed_submits={} deadline_shed={} \
                 brownout_chunks={} sojourn p50={}us p99={}us",
                status.shedding,
                status.brownout,
                status.shed_submits,
                status.deadline_shed,
                status.brownout_chunks,
                status.sojourn_p50_us,
                status.sojourn_p99_us
            );
            let done = service.shutdown().expect("first shutdown");
            rows.push(OverloadRow {
                offered_x,
                shedding,
                n,
                offered,
                offered_rps,
                accepted,
                served,
                refused,
                elapsed_ns,
                shed_submits: done.metrics.shed_submits,
                deadline_shed: done.metrics.deadline_shed,
                brownout_chunks: done.metrics.brownout_chunks,
                p50_sojourn_us: status.sojourn_p50_us,
                p99_sojourn_us: status.sojourn_p99_us,
            });
        }
    }
    rows
}

/// Network sizes the `recovery` suite sweeps. Kept below the communicate
/// sweep's top end: the suite serves its whole trace through a persistent
/// service (journal fsync path included) before it ever measures anything.
const RECOVERY_SIZES: &[u64] = &[256, 1024];

struct RecoveryRow {
    n: u64,
    requests: usize,
    snapshot_bytes: usize,
    encode_ns: u128,
    decode_ns: u128,
    recover_ns: u128,
    frames_replayed: u64,
    requests_replayed: u64,
    torn_bytes_truncated: u64,
}

impl RecoveryRow {
    fn replay_requests_per_sec(&self) -> f64 {
        self.requests_replayed as f64 / (self.recover_ns as f64 / 1e9).max(f64::MIN_POSITIVE)
    }
}

/// Durability-cost suite: serves the uniform trace through a persistent
/// [`DsgService`] (journaling every chunk, no periodic checkpoints, so the
/// whole trace is recovery's replay suffix), then measures (a) snapshot
/// encode/decode wall time and size for the final engine image, and (b) a
/// timed crash-recovery [`DsgService::open`] against the store — with a
/// half-written frame appended to the journal first, so the torn-tail
/// truncation path is part of every measured recovery.
fn measure_recovery(quick: bool, reps: usize) -> Vec<RecoveryRow> {
    RECOVERY_SIZES
        .iter()
        .map(|&n| {
            let m = perf_trace_len(n, quick);
            let trace = workload_trace(WorkloadKind::Uniform, n, m, 3);
            let dir =
                std::env::temp_dir().join(format!("dsg-bench-recovery-{}-{n}", std::process::id()));
            std::fs::remove_dir_all(&dir).ok();
            let builder = || {
                DsgSession::builder()
                    .config(DsgConfig::default().with_seed(1))
                    .peers(0..n)
            };
            let config = ServiceConfig {
                persist: Some(
                    // fsync 0 (sync only at shutdown) keeps the staging
                    // replay fast; snapshot 0 pins recovery to the genesis
                    // checkpoint so it replays the full trace.
                    PersistConfig::default()
                        .with_fsync_every(0)
                        .with_snapshot_every(0),
                ),
                ..ServiceConfig::default()
            };
            let (mut service, _) =
                DsgService::open(&dir, builder(), config).expect("recovery store cold-starts");
            let mut tickets = Vec::with_capacity(trace.len());
            for &request in &trace {
                tickets.push(
                    service
                        .submit_deadline(request, Duration::from_secs(60))
                        .expect("the queue drains within 60s"),
                );
            }
            for ticket in tickets {
                ticket.wait().expect("uniform trace serves cleanly");
            }
            let done = service.shutdown().expect("first shutdown");

            // Snapshot codec costs on the final (post-trace) engine image.
            let image = done.session.engine().capture_image();
            let encode_ns = median_ns(reps, || {
                std::hint::black_box(encode_snapshot(&image));
            });
            let bytes = encode_snapshot(&image);
            let snapshot_bytes = bytes.len();
            let decode_ns = median_ns(reps, || {
                let decoded = decode_snapshot(&bytes).expect("round-trips");
                let engine = DynamicSkipGraph::restore_image(&decoded).expect("restores");
                std::hint::black_box(engine);
            });

            // Tear the journal's tail — a half-written frame header — so
            // the measured open exercises detection + truncation too.
            {
                use std::io::Write as _;
                let mut journal = std::fs::OpenOptions::new()
                    .append(true)
                    .open(dir.join(dsg::persist::JOURNAL_FILE))
                    .expect("journal exists");
                journal.write_all(&[0xAB; 5]).expect("torn tail appended");
            }
            let start = Instant::now();
            let (mut recovered, report) =
                DsgService::open(&dir, builder(), config).expect("store recovers");
            let recover_ns = start.elapsed().as_nanos();
            recovered.shutdown().expect("first shutdown");
            std::fs::remove_dir_all(&dir).ok();

            RecoveryRow {
                n,
                requests: m,
                snapshot_bytes,
                encode_ns,
                decode_ns,
                recover_ns,
                frames_replayed: report.frames_replayed,
                requests_replayed: report.requests_replayed,
                torn_bytes_truncated: report.torn_bytes_truncated,
            }
        })
        .collect()
}

fn micro_json(rows: &[MicroRow]) -> String {
    let mut out = String::from("[");
    for (i, row) in rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n    {{\"n\": {}, \"ops\": {}, \"arena_ns_per_op\": {:.1}, \
             \"reference_ns_per_op\": {:.1}, \"speedup\": {:.2}}}",
            row.n,
            row.ops,
            row.arena_ns_per_op,
            row.reference_ns_per_op,
            row.speedup()
        );
    }
    out.push_str("\n  ]");
    out
}

fn main() {
    let output = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_perf.json".to_string());
    let reps = if quick() { 3 } else { 9 };

    eprintln!("bench_perf: route microbenchmark ({reps} reps)...");
    let route = measure_route(reps);
    eprintln!("bench_perf: neighbors microbenchmark ({reps} reps)...");
    let neighbors = measure_neighbors(reps);
    eprintln!("bench_perf: dummy-probe microbenchmark ({reps} reps)...");
    let dummy_probe = measure_dummy_probe(reps);
    eprintln!("bench_perf: communicate throughput (sequential)...");
    let communicate = measure_communicate(quick());
    eprintln!("bench_perf: communicate throughput (epoch-batched)...");
    let communicate_batched = measure_communicate_batched(quick());
    eprintln!("bench_perf: service ingest throughput (concurrent front-end)...");
    let service_ingest = measure_service_ingest(quick());
    eprintln!("bench_perf: overload control (open-loop offered-load A/B)...");
    let overload = measure_overload(quick());
    eprintln!("bench_perf: recovery costs (snapshot codec + journal replay)...");
    let recovery = measure_recovery(quick(), reps);

    let unix_time = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);

    let mut comm_json = String::from("[");
    for (i, row) in communicate.iter().enumerate() {
        if i > 0 {
            comm_json.push(',');
        }
        let _ = write!(
            comm_json,
            "\n    {{\"workload\": \"{}\", \"policy\": \"{}\", \"n\": {}, \"requests\": {}, \
             \"elapsed_ms\": {:.2}, \"requests_per_sec\": {:.1}, \
             \"transform_touched_pairs\": {}, \"dummy_churn\": {}, \
             \"dummies_reused\": {}, \"dummies_bulk_inserted\": {}, \
             \"pairs_gated\": {}, \"restructures_budgeted\": {}, \
             \"sketch_aging_passes\": {}}}",
            row.workload,
            row.policy,
            row.n,
            row.requests,
            row.elapsed_ns as f64 / 1e6,
            row.requests_per_sec(),
            row.transform_touched_pairs,
            row.dummy_churn,
            row.dummies_reused,
            row.dummies_bulk_inserted,
            row.pairs_gated,
            row.restructures_budgeted,
            row.sketch_aging_passes
        );
    }
    comm_json.push_str("\n  ]");

    let mut batch_json = String::from("[");
    for (i, row) in communicate_batched.iter().enumerate() {
        if i > 0 {
            batch_json.push(',');
        }
        let _ = write!(
            batch_json,
            "\n    {{\"workload\": \"{}\", \"n\": {}, \"batch\": {}, \"shards\": {}, \
             \"requests\": {}, \
             \"elapsed_ms\": {:.2}, \"requests_per_sec\": {:.1}, \
             \"transform_touched_pairs\": {}, \"epochs\": {}, \"install_passes\": {}, \
             \"dummy_churn\": {}, \"dummies_reused\": {}, \"dummies_bulk_inserted\": {}, \
             \"planned_clusters\": {}, \"plan_shards\": {}, \"plan_wall_ms\": {:.2}, \
             \"pairs_gated\": {}, \"restructures_budgeted\": {}, \
             \"sketch_aging_passes\": {}}}",
            row.workload,
            row.n,
            row.batch,
            row.shards,
            row.requests,
            row.elapsed_ns as f64 / 1e6,
            row.requests_per_sec(),
            row.transform_touched_pairs,
            row.epochs,
            row.install_passes,
            row.dummy_churn,
            row.dummies_reused,
            row.dummies_bulk_inserted,
            row.planned_clusters,
            row.plan_shards,
            row.plan_wall_ns as f64 / 1e6,
            row.pairs_gated,
            row.restructures_budgeted,
            row.sketch_aging_passes
        );
    }
    batch_json.push_str("\n  ]");

    let mut service_json = String::from("[");
    for (i, row) in service_ingest.iter().enumerate() {
        if i > 0 {
            service_json.push(',');
        }
        let _ = write!(
            service_json,
            "\n    {{\"producers\": {}, \"n\": {}, \"requests\": {}, \
             \"elapsed_ms\": {:.2}, \"requests_per_sec\": {:.1}, \
             \"submitted\": {}, \"rejected_overload\": {}, \
             \"epochs_formed\": {}, \"batches\": {}, \"max_queue_depth\": {}}}",
            row.producers,
            row.n,
            row.requests,
            row.elapsed_ns as f64 / 1e6,
            row.requests_per_sec(),
            row.submitted,
            row.rejected_overload,
            row.epochs,
            row.batches,
            row.max_queue_depth
        );
    }
    service_json.push_str("\n  ]");

    let mut overload_json = String::from("[");
    for (i, row) in overload.iter().enumerate() {
        if i > 0 {
            overload_json.push(',');
        }
        let _ = write!(
            overload_json,
            "\n    {{\"offered_x\": {}, \"shedding\": {}, \"n\": {}, \"offered\": {}, \
             \"offered_rps\": {}, \"accepted\": {}, \"served\": {}, \"refused\": {}, \
             \"elapsed_ms\": {:.2}, \"goodput_rps\": {:.1}, \
             \"p50_sojourn_us\": {}, \"p99_sojourn_us\": {}, \
             \"shed_submits\": {}, \"deadline_shed\": {}, \"brownout_chunks\": {}}}",
            row.offered_x,
            row.shedding,
            row.n,
            row.offered,
            row.offered_rps,
            row.accepted,
            row.served,
            row.refused,
            row.elapsed_ns as f64 / 1e6,
            row.goodput_rps(),
            row.p50_sojourn_us,
            row.p99_sojourn_us,
            row.shed_submits,
            row.deadline_shed,
            row.brownout_chunks
        );
    }
    overload_json.push_str("\n  ]");

    let mut recovery_json = String::from("[");
    for (i, row) in recovery.iter().enumerate() {
        if i > 0 {
            recovery_json.push(',');
        }
        let _ = write!(
            recovery_json,
            "\n    {{\"n\": {}, \"requests\": {}, \"snapshot_bytes\": {}, \
             \"encode_ms\": {:.3}, \"decode_ms\": {:.3}, \"recover_ms\": {:.3}, \
             \"frames_replayed\": {}, \"requests_replayed\": {}, \
             \"replay_requests_per_sec\": {:.1}, \"torn_bytes_truncated\": {}}}",
            row.n,
            row.requests,
            row.snapshot_bytes,
            row.encode_ns as f64 / 1e6,
            row.decode_ns as f64 / 1e6,
            row.recover_ns as f64 / 1e6,
            row.frames_replayed,
            row.requests_replayed,
            row.replay_requests_per_sec(),
            row.torn_bytes_truncated
        );
    }
    recovery_json.push_str("\n  ]");

    let json = format!(
        "{{\n  \"schema\": \"dsg-bench-perf/v8\",\n  \"created_unix\": {unix_time},\n  \
         \"quick\": {},\n  \"route\": {},\n  \"neighbors\": {},\n  \"dummy_probe\": {},\n  \
         \"communicate\": {},\n  \"communicate_batched\": {},\n  \"service_ingest\": {},\n  \
         \"overload\": {},\n  \"recovery\": {}\n}}\n",
        quick(),
        micro_json(&route),
        micro_json(&neighbors),
        micro_json(&dummy_probe),
        comm_json,
        batch_json,
        service_json,
        overload_json,
        recovery_json,
    );
    std::fs::write(&output, &json).expect("write BENCH_perf.json");

    // Human-readable recap on stderr.
    for (name, rows) in [
        ("route", &route),
        ("neighbors", &neighbors),
        ("dummy_probe", &dummy_probe),
    ] {
        for row in rows.iter() {
            eprintln!(
                "{name:>11} n={:<5} arena {:>9.1} ns/op   reference {:>9.1} ns/op   speedup {:>5.2}x",
                row.n, row.arena_ns_per_op, row.reference_ns_per_op, row.speedup()
            );
        }
    }
    for row in &communicate {
        eprintln!(
            "communicate {:>13} policy={:<3} n={:<5} {:>10.1} req/s   {:>9} touched pairs   {:>7} dummy churn   {:>6} gated   {:>3} budgeted   {:>3} aging",
            row.workload,
            row.policy,
            row.n,
            row.requests_per_sec(),
            row.transform_touched_pairs,
            row.dummy_churn,
            row.pairs_gated,
            row.restructures_budgeted,
            row.sketch_aging_passes
        );
    }
    for row in &communicate_batched {
        eprintln!(
            "  batched   {:>11} n={:<5} batch={:<3} shards={:<2} {:>10.1} req/s   {:>4} epochs   {:>4} install passes   plan {:>7.1} ms",
            row.workload,
            row.n,
            row.batch,
            row.shards,
            row.requests_per_sec(),
            row.epochs,
            row.install_passes,
            row.plan_wall_ns as f64 / 1e6
        );
    }

    for row in &service_ingest {
        eprintln!(
            "  service   producers={:<2} n={:<5} {:>10.1} req/s   {:>4} epochs   {:>4} batches   depth {:>3}   overloads {:>5}",
            row.producers,
            row.n,
            row.requests_per_sec(),
            row.epochs,
            row.batches,
            row.max_queue_depth,
            row.rejected_overload
        );
    }

    for row in &overload {
        eprintln!(
            "  overload  {}x shedding={:<5} offered {:>8} req/s   goodput {:>9.1} req/s   \
             sojourn p50 {:>7} us  p99 {:>8} us   shed {:>5}   expired {:>4}   browned {:>4}",
            row.offered_x,
            row.shedding,
            row.offered_rps,
            row.goodput_rps(),
            row.p50_sojourn_us,
            row.p99_sojourn_us,
            row.shed_submits,
            row.deadline_shed,
            row.brownout_chunks
        );
    }

    for row in &recovery {
        eprintln!(
            "  recovery  n={:<5} snapshot {:>8} B   encode {:>7.2} ms   decode {:>7.2} ms   \
             recover {:>8.2} ms   replay {:>10.1} req/s   torn {:>2} B",
            row.n,
            row.snapshot_bytes,
            row.encode_ns as f64 / 1e6,
            row.decode_ns as f64 / 1e6,
            row.recover_ns as f64 / 1e6,
            row.replay_requests_per_sec(),
            row.torn_bytes_truncated
        );
    }

    // Micro-assert: the fasthash key index must not lose to the reference
    // BTreeMap on the dummy-churn hot path (key-occupancy probes).
    // Enforced on full runs; quick smokes only warn, their single samples
    // are too noisy to gate CI on.
    for row in &dummy_probe {
        if row.speedup() < 1.0 {
            let msg = format!(
                "dummy-probe micro-assert: arena {:.1} ns/op vs reference {:.1} ns/op at n={}",
                row.arena_ns_per_op, row.reference_ns_per_op, row.n
            );
            if quick() {
                eprintln!("WARNING (quick mode, not enforced): {msg}");
            } else {
                panic!("{msg}");
            }
        }
    }
    eprintln!(
        "dummy-probe micro-assert: key-occupancy probes are {:.2}x the reference's cost at worst — OK",
        dummy_probe
            .iter()
            .map(|r| 1.0 / r.speedup())
            .fold(0.0f64, f64::max)
    );
    eprintln!("bench_perf: wrote {output}");
}
