//! Experiment E3 (Figure 4): prints the S₈ → S₉ transformation produced by
//! serving the `(U, V)` request on the paper's worked example.
//!
//! Run with `cargo run --release -p dsg-bench --bin exp_fig4`.

use dsg::fixtures::{figure4_s8, peers};
use dsg::{DsgConfig, MedianStrategy};
use dsg_skipgraph::TreeView;

fn main() {
    println!("E3 — the S₈ → S₉ worked example of Figure 4\n");
    let mut net = figure4_s8(
        DsgConfig::default()
            .with_median(MedianStrategy::Exact)
            .with_a(3)
            .with_seed(8),
    )
    .unwrap();

    println!("S₈ (before the request), as a tree of linked lists:");
    println!("{}", TreeView::build(net.graph()).render(net.graph()));

    let outcome = net.communicate(peers::U, peers::V).unwrap();
    println!(
        "served (U, V) at time {}: α = {}, pair level d' = {}, routing cost {}, {} transformation rounds\n",
        outcome.time,
        outcome.alpha,
        outcome.pair_level,
        outcome.routing_cost,
        outcome.transformation_rounds()
    );

    println!("S₉ (after the request):");
    println!("{}", TreeView::build(net.graph()).render(net.graph()));

    println!("selected state after the transformation (cf. Figure 4(c)):");
    for (name, peer) in [
        ("U", peers::U),
        ("V", peers::V),
        ("E", peers::E),
        ("B", peers::B),
        ("G", peers::G),
        ("D", peers::D),
        ("H", peers::H),
        ("J", peers::J),
        ("F", peers::F),
        ("I", peers::I),
    ] {
        let state = net.peer_state(peer).unwrap();
        let ts: Vec<u64> = (0..=4).map(|lvl| state.timestamp(lvl)).collect();
        println!(
            "  {name}: timestamps(levels 0..=4) = {ts:?}, group-base = {}",
            state.group_base()
        );
    }
    println!(
        "\nU and V directly linked: {}",
        net.are_directly_linked(peers::U, peers::V).unwrap()
    );
}
