//! Experiments E8 and E9 (Theorems 1, 3, 4 and 5): total routing cost of DSG
//! versus the working-set bound, the static skip graph and SplayNet as the
//! workload skew varies; and the transformation cost relative to the bound.
//!
//! Run with `cargo run --release -p dsg-bench --bin exp_cost`.

use dsg::DsgConfig;
use dsg_baselines::{SplayNet, StaticSkipGraph};
use dsg_bench::{f2, format_table, run_baseline, run_dsg};
use dsg_workloads::{Workload, ZipfPairs};

fn main() {
    println!("E8/E9 — routing and transformation cost vs the working-set bound\n");
    let requests_per_peer = 8usize;
    let mut routing_rows = Vec::new();
    let mut transform_rows = Vec::new();
    for &n in &[128u64, 256] {
        let m = requests_per_peer * n as usize;
        for &alpha in &[0.0f64, 0.5, 1.0, 1.5, 2.0] {
            let trace = ZipfPairs::new(n, alpha, 31).generate(m);
            let run = run_dsg(n, DsgConfig::default().with_seed(2), &trace);
            let mut static_graph = StaticSkipGraph::new(n);
            let static_total: usize = run_baseline(&mut static_graph, &trace).iter().sum();
            let mut splaynet = SplayNet::new(n);
            let splay_total: usize = run_baseline(&mut splaynet, &trace).iter().sum();
            let ws = run.working_set_bound();

            let dsg_total = run.total_routing() as f64;
            routing_rows.push(vec![
                n.to_string(),
                f2(alpha),
                f2(dsg_total / m as f64),
                f2(static_total as f64 / m as f64),
                f2(splay_total as f64 / m as f64),
                f2(ws / m as f64),
                f2(dsg_total / (static_total as f64).max(1.0)),
                f2(dsg_total / ws.max(1.0)),
            ]);

            let transform_total = run.total_transformation() as f64;
            transform_rows.push(vec![
                n.to_string(),
                f2(alpha),
                f2(transform_total / m as f64),
                f2(transform_total / ws.max(1.0)),
                f2(transform_total / (ws * (n as f64).log2()).max(1.0)),
            ]);
        }
    }
    println!("E8 — average routing cost per request (intermediate nodes)\n");
    println!(
        "{}",
        format_table(
            &[
                "n",
                "zipf α",
                "DSG",
                "static",
                "splaynet",
                "WS/m",
                "DSG/static",
                "DSG/WS"
            ],
            &routing_rows
        )
    );
    println!(
        "Expected shape (Theorems 1 & 4): DSG/static < 1 once the workload is skewed and\n\
         shrinking as skew grows; DSG/WS bounded by a constant.\n"
    );
    println!("E9 — transformation cost (rounds) relative to the working-set bound\n");
    println!(
        "{}",
        format_table(
            &[
                "n",
                "zipf α",
                "rounds/request",
                "rounds/WS",
                "rounds/(WS·log n)"
            ],
            &transform_rows
        )
    );
    println!(
        "Expected shape (Theorems 3 & 5): rounds/WS grows at most logarithmically in n,\n\
         i.e. rounds/(WS·log n) stays bounded by a constant."
    );
}
