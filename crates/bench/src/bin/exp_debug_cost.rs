//! Diagnostic helper (not part of the experiment index): prints the cost
//! anatomy of a workload run — routing cost with and without dummy hops,
//! structure height, group sizes — to understand where hops go.
//!
//! Run with `cargo run --release -p dsg-bench --bin exp_debug_cost`.

use dsg::prelude::*;
use dsg_baselines::{Baseline, StaticSkipGraph};
use dsg_workloads::{RepeatedPairs, RotatingHotSet, UniformRandom, Workload, ZipfPairs};

fn main() {
    for (name, n, trace) in [
        ("uniform n=64", 64u64, UniformRandom::new(64, 9).generate(500)),
        ("zipf1.4 n=96", 96u64, ZipfPairs::new(96, 1.4, 11).generate(800)),
        ("zipf2.0 n=96", 96u64, ZipfPairs::new(96, 2.0, 11).generate(800)),
        ("hotset8 n=96", 96u64, RotatingHotSet::new(96, 8, 0.9, 200, 3).generate(800)),
        ("repeated3 n=128", 128u64, RepeatedPairs::new(128, vec![(3, 90), (45, 77), (10, 11)]).generate(60)),
        ("datacenter n=128", 128u64, dsg_workloads::Datacenter::conventional(128, 13).generate(800)),
    ] {
        let mut session = DsgSession::builder()
            .peers(0..n)
            .seed(3)
            .build()
            .unwrap();
        let net = session.engine_mut();
        let mut with_dummies = 0usize;
        let mut without_dummies = 0usize;
        let mut worst_late = 0usize;
        for (i, r) in trace.iter().enumerate() {
            let (u, v) = r.pair();
            without_dummies += net.peer_distance(u, v).unwrap();
            let out = net.communicate(u, v).unwrap();
            with_dummies += out.routing_cost;
            if i >= 3 && trace.len() < 100 {
                worst_late = worst_late.max(out.routing_cost);
            }
        }
        let mut st = StaticSkipGraph::new(n);
        let static_total: usize = trace
            .iter()
            .map(|r| {
                let (u, v) = r.pair();
                st.serve(u, v)
            })
            .sum();
        println!(
            "{name}: dsg avg {:.2} (peers only {:.2}), static {:.2}, height {}, dummies {}, worst_late {}",
            with_dummies as f64 / trace.len() as f64,
            without_dummies as f64 / trace.len() as f64,
            static_total as f64 / trace.len() as f64,
            net.height(),
            net.dummy_count(),
            worst_late
        );
    }
}
