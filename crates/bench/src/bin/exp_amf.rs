//! Experiments E4 and E5 (Lemma 1 and §V): accuracy of the distributed
//! approximate median finder and its round complexity.
//!
//! Run with `cargo run --release -p dsg-bench --bin exp_amf`.

use dsg::{AmfMedian, MedianFinder, Priority};
use dsg_bench::{f2, format_table};

fn rank_error(values: &[Priority], median: Priority) -> usize {
    let below = values.iter().filter(|v| **v < median).count();
    let equal = values.iter().filter(|v| **v == median).count();
    let n = values.len();
    let target = n / 2;
    if target < below {
        below - target
    } else if target > below + equal.saturating_sub(1) {
        target - (below + equal - 1)
    } else {
        0
    }
}

fn main() {
    println!("E4/E5 — AMF rank accuracy (Lemma 1) and round complexity (§V)\n");
    let trials = 50usize;
    let mut rows = Vec::new();
    for &a in &[2usize, 3, 4, 8] {
        for &n in &[64usize, 256, 1024, 4096] {
            let mut worst_error = 0usize;
            let mut violations = 0usize;
            let mut total_rounds = 0usize;
            let mut total_height = 0usize;
            for trial in 0..trials {
                let values: Vec<Priority> = (0..n as i64)
                    .map(|v| Priority::Finite(((v * 2654435761 + trial as i64) % 1_000_003) as i128))
                    .collect();
                let mut finder = AmfMedian::new((a * n + trial) as u64);
                let outcome = finder.find_median(&values, a);
                let err = rank_error(&values, outcome.median);
                worst_error = worst_error.max(err);
                if err > n / (2 * a) {
                    violations += 1;
                }
                total_rounds += outcome.rounds;
                total_height += outcome.skip_list_height;
            }
            let bound = n / (2 * a);
            rows.push(vec![
                a.to_string(),
                n.to_string(),
                worst_error.to_string(),
                bound.to_string(),
                violations.to_string(),
                f2(total_rounds as f64 / trials as f64),
                f2(total_rounds as f64 / trials as f64 / (n as f64).log2()),
                f2(total_height as f64 / trials as f64),
            ]);
        }
    }
    println!(
        "{}",
        format_table(
            &[
                "a",
                "n",
                "worst rank err",
                "n/2a bound",
                "violations",
                "avg rounds",
                "rounds/log2(n)",
                "avg height"
            ],
            &rows
        )
    );
    println!(
        "Expected shape (Lemma 1 / §V): worst rank error ≤ n/2a with no violations,\n\
         and rounds/log2(n) roughly constant per a (expected O(log n) rounds)."
    );
}
