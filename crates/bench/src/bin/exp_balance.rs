//! Experiment E10 (§III and §IV-F): the a-balance property is maintained by
//! dummy-node repair, and the dummy population stays small.
//!
//! Run with `cargo run --release -p dsg-bench --bin exp_balance`.

use dsg::prelude::*;
use dsg_bench::{f2, format_table};
use dsg_workloads::{RotatingHotSet, Workload, ZipfPairs};

fn main() {
    println!("E10 — a-balance maintenance and dummy-node population (§IV-F)\n");
    let n = 256u64;
    let requests = 1000usize;
    let mut rows = Vec::new();
    for &a in &[2usize, 3, 4, 6] {
        for (name, trace) in [
            ("zipf 1.2", ZipfPairs::new(n, 1.2, 5).generate(requests)),
            (
                "hot set (6)",
                RotatingHotSet::new(n, 6, 0.95, 100, 5).generate(requests),
            ),
        ] {
            // With repair on.
            let mut session = DsgSession::builder()
                .peers(0..n)
                .a(a)
                .seed(3)
                .build()
                .unwrap();
            let net = session.engine_mut();
            let mut max_dummies = 0usize;
            let mut balanced_after_every_request = true;
            for request in &trace {
                let (u, v) = request.pair();
                net.communicate(u, v).unwrap();
                max_dummies = max_dummies.max(net.dummy_count());
                if !net.balance_report().is_balanced() {
                    balanced_after_every_request = false;
                }
            }
            // With repair off (ablation): how bad do the runs get?
            let mut unmaintained = DsgSession::builder()
                .peers(0..n)
                .a(a)
                .seed(3)
                .balance_maintenance(false)
                .build()
                .unwrap();
            let unmaintained = unmaintained.engine_mut();
            for request in &trace {
                let (u, v) = request.pair();
                unmaintained.communicate(u, v).unwrap();
            }
            let unmaintained_report = unmaintained.graph().check_balance(a);
            rows.push(vec![
                a.to_string(),
                name.to_string(),
                balanced_after_every_request.to_string(),
                net.dummy_count().to_string(),
                max_dummies.to_string(),
                f2(max_dummies as f64 / n as f64),
                unmaintained_report.max_run.to_string(),
                unmaintained_report.violations.len().to_string(),
            ]);
        }
    }
    println!(
        "{}",
        format_table(
            &[
                "a",
                "workload",
                "always balanced",
                "final dummies",
                "max dummies",
                "max/n",
                "max run w/o repair",
                "violations w/o repair"
            ],
            &rows
        )
    );
    println!(
        "Expected shape: with repair the structure is always a-balanced and the dummy\n\
         population stays a small fraction of n per level; without repair runs grow."
    );
}
