//! Experiment E10 (§III and §IV-F): the a-balance property is maintained by
//! dummy-node repair, and the dummy population stays small.
//!
//! Run with `cargo run --release -p dsg-bench --bin exp_balance`.

use dsg::{DsgConfig, DynamicSkipGraph};
use dsg_bench::{f2, format_table};
use dsg_workloads::{RotatingHotSet, Workload, ZipfPairs};

fn main() {
    println!("E10 — a-balance maintenance and dummy-node population (§IV-F)\n");
    let n = 256u64;
    let requests = 1000usize;
    let mut rows = Vec::new();
    for &a in &[2usize, 3, 4, 6] {
        for (name, trace) in [
            ("zipf 1.2", ZipfPairs::new(n, 1.2, 5).generate(requests)),
            (
                "hot set (6)",
                RotatingHotSet::new(n, 6, 0.95, 100, 5).generate(requests),
            ),
        ] {
            // With repair on.
            let mut net =
                DynamicSkipGraph::new(0..n, DsgConfig::default().with_a(a).with_seed(3)).unwrap();
            let mut max_dummies = 0usize;
            let mut balanced_after_every_request = true;
            for request in &trace {
                net.communicate(request.u, request.v).unwrap();
                max_dummies = max_dummies.max(net.dummy_count());
                if !net.balance_report().is_balanced() {
                    balanced_after_every_request = false;
                }
            }
            // With repair off (ablation): how bad do the runs get?
            let mut unmaintained = DynamicSkipGraph::new(
                0..n,
                DsgConfig::default()
                    .with_a(a)
                    .with_seed(3)
                    .with_balance_maintenance(false),
            )
            .unwrap();
            for request in &trace {
                unmaintained.communicate(request.u, request.v).unwrap();
            }
            let unmaintained_report = unmaintained.graph().check_balance(a);
            rows.push(vec![
                a.to_string(),
                name.to_string(),
                balanced_after_every_request.to_string(),
                net.dummy_count().to_string(),
                max_dummies.to_string(),
                f2(max_dummies as f64 / n as f64),
                unmaintained_report.max_run.to_string(),
                unmaintained_report.violations.len().to_string(),
            ]);
        }
    }
    println!(
        "{}",
        format_table(
            &[
                "a",
                "workload",
                "always balanced",
                "final dummies",
                "max dummies",
                "max/n",
                "max run w/o repair",
                "violations w/o repair"
            ],
            &rows
        )
    );
    println!(
        "Expected shape: with repair the structure is always a-balanced and the dummy\n\
         population stays a small fraction of n per level; without repair runs grow."
    );
}
