//! # dsg-bench — experiment harness
//!
//! Shared plumbing for the experiment binaries (`src/bin/exp_*.rs`), the
//! Criterion benchmarks (`benches/`) and the runnable examples. Each
//! experiment in `DESIGN.md` (E1–E12) maps to one binary that prints the
//! table or series it reproduces; `EXPERIMENTS.md` records the measured
//! numbers next to the paper's claims.
//!
//! The helpers here run a request trace through the self-adjusting skip
//! graph (collecting the paper's cost metrics) and through the baseline
//! overlays, and format plain-text tables.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use dsg::prelude::*;
use dsg_baselines::Baseline;
use dsg_metrics::{MetricsObserver, WorkingSetTracker};
use dsg_skipgraph::reference::ReferenceGraph;
use dsg_skipgraph::{Key, SkipGraph};
use dsg_workloads::{
    FlashCrowd, HotSetDrift, RotatingHotSet, Trace, UniformRandom, Workload, ZipfPairs,
};

/// The network sizes the micro perf suite sweeps (`benches/core.rs` and
/// the `route`/`neighbors` tables of the `bench_perf` binary).
pub const SIZES: &[u64] = &[256, 1024, 4096];

/// The network sizes the end-to-end `communicate` throughput suite sweeps.
/// n = 8192 became feasible once the transformation install went
/// differential (PR 2); the microbenchmarks keep the smaller sweep so the
/// reference-representation comparison stays affordable.
pub const COMM_SIZES: &[u64] = &[256, 1024, 4096, 8192];

/// The network sizes the epoch-batched `communicate_batched` suite sweeps.
pub const COMM_BATCH_SIZES: &[u64] = &[1024, 4096, 8192];

/// The batch sizes the `communicate_batched` suite sweeps. Batch 1 is the
/// sequential baseline (one epoch per request); the other sizes serve one
/// chunk per [`DsgSession::submit_batch`] call.
pub const BATCH_SIZES: &[usize] = &[1, 4, 16];

/// The three canonical workload shapes of the perf suite.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadKind {
    /// Uniformly random pairs — no locality to exploit.
    Uniform,
    /// Zipf-skewed pairs (exponent 1.2) — the regime self-adjustment
    /// targets.
    Skewed,
    /// A rotating hot community — temporal locality / working-set
    /// behaviour.
    WorkingSet,
    /// Uniform background with one sudden hot burst — the adaptation
    /// policy's stress pattern (cold noise, then a crowd, then dispersal).
    FlashCrowd,
    /// A contiguous hot window sliding over the key space — exercises
    /// frequency-sketch aging under gradual drift.
    HotSetDrift,
}

impl WorkloadKind {
    /// Stable label used in benchmark ids and `BENCH_perf.json`.
    pub fn label(self) -> &'static str {
        match self {
            WorkloadKind::Uniform => "uniform",
            WorkloadKind::Skewed => "skewed",
            WorkloadKind::WorkingSet => "working_set",
            WorkloadKind::FlashCrowd => "flash_crowd",
            WorkloadKind::HotSetDrift => "hot_set_drift",
        }
    }
}

/// Generates the canonical trace of `m` requests for a workload shape over
/// `n` peers.
pub fn workload_trace(kind: WorkloadKind, n: u64, m: usize, seed: u64) -> Trace {
    match kind {
        WorkloadKind::Uniform => UniformRandom::new(n, seed).generate(m),
        WorkloadKind::Skewed => ZipfPairs::new(n, 1.2, seed).generate(m),
        WorkloadKind::WorkingSet => {
            let hot = (n as usize / 16).clamp(2, 32);
            RotatingHotSet::new(n, hot, 0.9, 200, seed).generate(m)
        }
        WorkloadKind::FlashCrowd => {
            // Burst in the middle third of the trace; 4 hot pairs take 95%
            // of it.
            FlashCrowd::new(n, 4, m / 3, (m / 3).max(1), 0.95, seed).generate(m)
        }
        WorkloadKind::HotSetDrift => {
            let window = (n / 16).clamp(2, 32);
            HotSetDrift::new(n, window, window / 2 + 1, 50, 0.9, seed).generate(m)
        }
    }
}

/// Interactive-benchmark trace length per network size: a `communicate`
/// request costs Θ(|l_α|·log)-ish work, so larger networks replay shorter
/// traces to keep a criterion sample affordable.
pub fn comm_trace_len(n: u64) -> usize {
    match n {
        0..=511 => 200,
        512..=2047 => 80,
        _ => 24,
    }
}

/// Headless-harness (`bench_perf`) trace length per network size. Longer
/// than [`comm_trace_len`] because the harness times a single replay per
/// cell rather than many criterion samples; both tables live here so the
/// two surfaces cannot drift apart silently.
pub fn perf_trace_len(n: u64, quick: bool) -> usize {
    let full = comm_trace_len(n) * 3;
    if quick {
        (full / 10).max(10)
    } else {
        full
    }
}

/// The source/destination key pairs the `route` microbenchmarks sweep for
/// an `n`-key graph (shared by `benches/core.rs` and `bench_perf` so both
/// measure the same routes).
pub fn route_pairs(n: u64) -> Vec<(Key, Key)> {
    let step = (n / 64).max(1) as usize;
    (0..n)
        .step_by(step)
        .map(|i| (Key::new(i), Key::new(n - 1 - i)))
        .collect()
}

/// Builds a [`ReferenceGraph`] holding exactly the nodes and membership
/// vectors of `graph`, inserted in ascending key order. For graphs that
/// were themselves built by key-ordered insertion (all fixtures used by
/// the perf suite) the resulting node ids are identical, so measurements
/// drive both representations with the same id stream.
pub fn reference_graph_like(graph: &SkipGraph) -> ReferenceGraph {
    let reference = ReferenceGraph::from_members(graph.node_ids().map(|id| {
        (
            graph.key_of(id).expect("live node"),
            graph.mvec_of(id).expect("live node"),
        )
    }))
    .expect("keys are distinct in the source graph");
    // The comparisons drive both representations with the same id stream,
    // so the id-coincidence precondition is checked, not assumed: a graph
    // built with churn (free-list reuse) would violate it silently.
    for id in graph.node_ids() {
        let key = graph.key_of(id).expect("live node");
        assert_eq!(
            reference.node_by_key(key),
            Some(id),
            "reference_graph_like requires key-ordered insertion so ids coincide"
        );
    }
    reference
}

/// Result of replaying a trace through the self-adjusting skip graph.
#[derive(Debug, Clone, Default)]
pub struct DsgRun {
    /// Routing cost (intermediate nodes) per request.
    pub routing_costs: Vec<usize>,
    /// Transformation rounds per request.
    pub transformation_rounds: Vec<usize>,
    /// Total cost (`d + ρ + 1`) per request.
    pub total_costs: Vec<usize>,
    /// Structure height after each request.
    pub heights: Vec<usize>,
    /// Working set number of each request (computed alongside).
    pub working_sets: Vec<usize>,
    /// Level of the direct link created for each request.
    pub pair_levels: Vec<usize>,
    /// Changed `(node, level)` pairs the differential install touched, per
    /// request (the work the install performed; a full per-node re-splice
    /// would touch every pair of every member instead). Within a batched
    /// epoch, cluster totals are attributed to the cluster's first request.
    pub touched_pairs: Vec<usize>,
    /// Transformation epochs the replay was served in (= requests for a
    /// sequential replay).
    pub epochs: usize,
    /// Transformation-install passes pushed into the structure (= epochs
    /// under the batched install strategy).
    pub install_passes: usize,
    /// Dummy nodes actually created + actually destroyed over the whole
    /// trace. Standing dummies the reconciling lifecycle reclaims in place
    /// contribute to neither side, so this is the graph-mutation churn the
    /// reconciliation (PR 4) eliminates.
    pub dummy_churn: usize,
    /// Standing dummies reclaimed in place over the whole trace.
    pub dummies_reused: usize,
    /// Genuinely new dummies the reconciliation created (reclaims
    /// excluded); almost all go through the bulk splice installer.
    pub dummies_bulk_inserted: usize,
    /// Dummy nodes alive after the whole trace.
    pub final_dummies: usize,
    /// Whether the a-balance property held after every batch boundary.
    pub always_balanced: bool,
    /// Transformation clusters the epoch plan stages planned.
    pub planned_clusters: usize,
    /// The largest worker-shard count any epoch's plan stages ran on
    /// (1 = fully inline planning).
    pub plan_shards: usize,
    /// Total wall-clock nanoseconds spent in the plan stages.
    pub plan_wall_ns: u64,
    /// Requests the admission gate routed without restructuring (0 with
    /// the adaptation policy off).
    pub pairs_gated: u64,
    /// Cold clusters restructured via the per-epoch admission budget.
    pub restructures_budgeted: u64,
    /// Frequency-sketch counter-halving passes over the whole replay.
    pub sketch_aging_passes: u64,
}

impl DsgRun {
    /// Sum of routing costs.
    pub fn total_routing(&self) -> usize {
        self.routing_costs.iter().sum()
    }

    /// Sum of transformation rounds.
    pub fn total_transformation(&self) -> usize {
        self.transformation_rounds.iter().sum()
    }

    /// Average routing cost per request.
    pub fn avg_routing(&self) -> f64 {
        if self.routing_costs.is_empty() {
            0.0
        } else {
            self.total_routing() as f64 / self.routing_costs.len() as f64
        }
    }

    /// The working-set bound `WS(σ)` of the replayed trace.
    pub fn working_set_bound(&self) -> f64 {
        self.working_sets
            .iter()
            .map(|&t| (t.max(2) as f64).log2())
            .sum()
    }

    /// Maximum height observed.
    pub fn max_height(&self) -> usize {
        self.heights.iter().copied().max().unwrap_or(0)
    }

    /// Total changed `(node, level)` pairs installed over the whole trace.
    pub fn total_touched_pairs(&self) -> usize {
        self.touched_pairs.iter().sum()
    }
}

/// Replays `trace` sequentially (one request per epoch) on a fresh
/// `n`-peer session built with `config`, collecting the per-request
/// metrics the experiments report. Equivalent to
/// [`run_dsg_batched`] with a batch size of 1.
///
/// # Panics
///
/// Panics if the trace references peers outside `0..n` (traces from
/// `dsg-workloads` never do).
pub fn run_dsg(n: u64, config: DsgConfig, trace: &[Request]) -> DsgRun {
    run_dsg_batched(n, config, trace, 1)
}

/// Replays `trace` through [`DsgSession::submit_batch`] in chunks of
/// `batch` requests, collecting the metrics via the default recording
/// observer ([`MetricsObserver`]). With `batch == 1` this is the classic
/// sequential replay; larger batches serve each chunk as one
/// transformation epoch (pairs sharing an endpoint within a chunk split
/// into successive epochs), which is the `communicate_batched` surface of
/// the perf harness.
///
/// # Panics
///
/// Panics if the trace references peers outside `0..n`.
pub fn run_dsg_batched(n: u64, config: DsgConfig, trace: &[Request], batch: usize) -> DsgRun {
    let mut session = DsgSession::builder()
        .config(config)
        .peers(0..n)
        .build()
        .expect("peer keys 0..n are distinct and the config is valid");
    let metrics = session.observe(MetricsObserver::new());
    let mut run = DsgRun {
        always_balanced: true,
        ..DsgRun::default()
    };
    for chunk in trace.chunks(batch.max(1)) {
        session.submit_batch(chunk).expect("trace peers exist");
        // Once a single unbalanced state has been observed the flag cannot
        // recover, so the (whole-graph) balance sweep is skipped from then
        // on — same result, no redundant O(n · height) work per batch.
        if run.always_balanced && !session.engine().balance_report().is_balanced() {
            run.always_balanced = false;
        }
    }
    // Per-request series (working sets included) cover the *communication*
    // requests of the trace, in order; membership/clock requests are served
    // by the replay above but contribute no series entry.
    let mut tracker = WorkingSetTracker::new(n as usize);
    for (u, v) in trace.iter().filter_map(|r| r.endpoints()) {
        run.working_sets.push(tracker.record(u, v));
    }
    {
        let metrics = metrics.lock().expect("metrics lock");
        run.routing_costs = metrics.routing_costs.clone();
        run.transformation_rounds = metrics.transformation_rounds.clone();
        run.total_costs = metrics.total_costs.clone();
        run.heights = metrics.heights.clone();
        run.pair_levels = metrics.pair_levels.clone();
        run.touched_pairs = metrics.touched_pairs.clone();
        run.epochs = metrics.epochs;
        run.install_passes = metrics.install_passes;
        run.dummy_churn = metrics.dummy_churn();
        run.dummies_reused = metrics.dummies_reused;
        run.dummies_bulk_inserted = metrics.dummies_bulk_inserted;
        run.planned_clusters = metrics.planned_clusters;
        run.plan_shards = metrics.plan_shards;
        run.plan_wall_ns = metrics.plan_wall_ns;
        run.pairs_gated = metrics.pairs_gated;
        run.restructures_budgeted = metrics.restructures_budgeted;
        run.sketch_aging_passes = metrics.sketch_aging_passes;
    }
    run.final_dummies = session.engine().dummy_count();
    run
}

/// Replays `trace` on a baseline overlay and returns the per-request
/// routing costs. Like [`Baseline::serve_trace`], only communication
/// requests contribute (baselines model a fixed peer population), so the
/// returned series aligns with the per-request series of [`run_dsg`] for
/// the same trace.
pub fn run_baseline<B: Baseline>(baseline: &mut B, trace: &[Request]) -> Vec<usize> {
    trace
        .iter()
        .filter_map(|r| r.endpoints())
        .map(|(u, v)| baseline.serve(u, v))
        .collect()
}

/// Formats a plain-text table with aligned columns.
pub fn format_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let render_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>width$}", c, width = widths.get(i).copied().unwrap_or(8)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let header_cells: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    out.push_str(&render_row(&header_cells, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
    out.push('\n');
    for row in rows {
        out.push_str(&render_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Formats a float with two decimals (table helper).
pub fn f2(value: f64) -> String {
    format!("{value:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsg_workloads::{RepeatedPairs, Workload};

    #[test]
    fn run_dsg_collects_one_sample_per_request() {
        let trace = RepeatedPairs::single(16, 1, 9).generate(5);
        let run = run_dsg(16, DsgConfig::default().with_seed(3), &trace);
        assert_eq!(run.routing_costs.len(), 5);
        assert_eq!(run.total_costs.len(), 5);
        assert_eq!(run.working_sets[0], 16);
        assert_eq!(run.working_sets[4], 2);
        // After the first request the pair is directly linked.
        assert!(run.routing_costs[1..].iter().all(|&c| c <= 1));
    }

    #[test]
    fn baselines_are_replayable() {
        let trace = RepeatedPairs::single(32, 0, 31).generate(4);
        let mut baseline = dsg_baselines::StaticSkipGraph::new(32);
        let costs = run_baseline(&mut baseline, &trace);
        assert_eq!(costs.len(), 4);
        assert!(costs.iter().all(|&c| c == costs[0]));
    }

    #[test]
    fn tables_are_aligned() {
        let table = format_table(
            &["n", "cost"],
            &[
                vec!["8".into(), "1.25".into()],
                vec!["1024".into(), "10.00".into()],
            ],
        );
        assert!(table.contains("1024"));
        assert!(table.lines().count() >= 4);
    }
}
