//! Criterion benchmarks for the skip graph core: O(1) neighbour reads and
//! routing on the intrusive linked-list arena versus the naive index-based
//! reference representation, plus end-to-end `communicate` throughput
//! under the three canonical workload shapes.
//!
//! The `bench_perf` binary (`cargo run --release --bin bench_perf`) runs
//! the same comparisons headlessly and writes `BENCH_perf.json`; this
//! suite is the interactive/criterion view of the same surfaces.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use dsg::DsgConfig;
use dsg_bench::{
    comm_trace_len, reference_graph_like, route_pairs, run_dsg, workload_trace, WorkloadKind,
    SIZES,
};
use dsg_skipgraph::fixtures;

fn bench_neighbors(c: &mut Criterion) {
    let mut group = c.benchmark_group("neighbors");
    group.sample_size(20);
    for &n in SIZES {
        let graph = fixtures::uniform_random(n, 7);
        let reference = reference_graph_like(&graph);
        let ids: Vec<_> = graph.node_ids().collect();
        group.bench_with_input(BenchmarkId::new("arena", n), &n, |b, _| {
            b.iter(|| {
                let mut acc = 0usize;
                for &id in &ids {
                    for level in 0..=graph.mvec_of(id).unwrap().len() {
                        let (l, r) = graph.neighbors(black_box(id), black_box(level)).unwrap();
                        acc += l.is_some() as usize + r.is_some() as usize;
                    }
                }
                black_box(acc)
            });
        });
        group.bench_with_input(BenchmarkId::new("reference", n), &n, |b, _| {
            b.iter(|| {
                let mut acc = 0usize;
                for &id in &ids {
                    for level in 0..=reference.mvec_of(id).unwrap().len() {
                        let (l, r) = reference
                            .neighbors(black_box(id), black_box(level))
                            .unwrap();
                        acc += l.is_some() as usize + r.is_some() as usize;
                    }
                }
                black_box(acc)
            });
        });
    }
    group.finish();
}

fn bench_route(c: &mut Criterion) {
    let mut group = c.benchmark_group("route");
    group.sample_size(20);
    for &n in SIZES {
        let graph = fixtures::uniform_random(n, 7);
        let reference = reference_graph_like(&graph);
        let pairs = route_pairs(n);
        group.bench_with_input(BenchmarkId::new("arena", n), &n, |b, _| {
            b.iter(|| {
                let mut hops = 0usize;
                for &(a, b) in &pairs {
                    hops += graph.route(a, b).map(|r| r.hops()).unwrap_or(0);
                }
                black_box(hops)
            });
        });
        group.bench_with_input(BenchmarkId::new("reference", n), &n, |b, _| {
            b.iter(|| {
                let mut hops = 0usize;
                for &(a, b) in &pairs {
                    hops += reference.route_hops(a, b).unwrap_or(0);
                }
                black_box(hops)
            });
        });
    }
    group.finish();
}

fn bench_communicate(c: &mut Criterion) {
    let mut group = c.benchmark_group("communicate");
    group.sample_size(10);
    for &n in SIZES {
        let m = comm_trace_len(n);
        for kind in [
            WorkloadKind::Uniform,
            WorkloadKind::Skewed,
            WorkloadKind::WorkingSet,
        ] {
            let trace = workload_trace(kind, n, m, 3);
            group.bench_with_input(
                BenchmarkId::new(kind.label(), n),
                &trace,
                |b, trace| {
                    b.iter(|| {
                        black_box(run_dsg(n, DsgConfig::default().with_seed(1), black_box(trace)))
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_neighbors, bench_route, bench_communicate);
criterion_main!(benches);
