//! Criterion benchmark for experiment E4/E5: the approximate median finder
//! versus the exact-median oracle across list sizes and balance parameters.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use dsg::{AmfMedian, ExactMedian, MedianFinder, Priority};

fn values(n: usize) -> Vec<Priority> {
    (0..n as i64)
        .map(|v| Priority::Finite(((v * 2654435761) % 1_000_003) as i128))
        .collect()
}

fn bench_amf(c: &mut Criterion) {
    let mut group = c.benchmark_group("amf_median");
    group.sample_size(10);
    for &n in &[256usize, 1024, 4096] {
        for &a in &[2usize, 4] {
            let input = values(n);
            group.bench_with_input(
                BenchmarkId::new(format!("amf_a{a}"), n),
                &input,
                |b, input| {
                    let mut finder = AmfMedian::new(7);
                    b.iter(|| black_box(finder.find_median(black_box(input), a)));
                },
            );
        }
        let input = values(n);
        group.bench_with_input(BenchmarkId::new("exact", n), &input, |b, input| {
            let mut finder = ExactMedian;
            b.iter(|| black_box(finder.find_median(black_box(input), 3)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_amf);
criterion_main!(benches);
