//! Criterion benchmark for experiment E8: serving a skewed trace on the
//! self-adjusting skip graph versus the static skip graph and SplayNet.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use dsg::DsgConfig;
use dsg_baselines::{SplayNet, StaticSkipGraph};
use dsg_bench::{run_baseline, run_dsg};
use dsg_workloads::{Workload, ZipfPairs};

fn bench_routing(c: &mut Criterion) {
    let mut group = c.benchmark_group("serve_trace");
    group.sample_size(10);
    let n = 256u64;
    let m = 500usize;
    for &alpha in &[0.0f64, 1.2] {
        let trace = ZipfPairs::new(n, alpha, 3).generate(m);
        group.bench_with_input(
            BenchmarkId::new("dsg", format!("alpha{alpha}")),
            &trace,
            |b, trace| {
                b.iter(|| black_box(run_dsg(n, DsgConfig::default().with_seed(1), black_box(trace))));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("static", format!("alpha{alpha}")),
            &trace,
            |b, trace| {
                b.iter(|| {
                    let mut baseline = StaticSkipGraph::new(n);
                    black_box(run_baseline(&mut baseline, black_box(trace)))
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("splaynet", format!("alpha{alpha}")),
            &trace,
            |b, trace| {
                b.iter(|| {
                    let mut baseline = SplayNet::new(n);
                    black_box(run_baseline(&mut baseline, black_box(trace)))
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_routing);
criterion_main!(benches);
