//! Criterion benchmark for experiment E11 (ablations): the cost of a request
//! under the AMF median versus the exact-median oracle, and with a-balance
//! maintenance switched off.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use dsg::{DsgConfig, MedianStrategy};
use dsg_bench::run_dsg;
use dsg_workloads::{RotatingHotSet, Workload};

fn bench_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation");
    group.sample_size(10);
    let n = 256u64;
    let trace = RotatingHotSet::new(n, 8, 0.9, 80, 2).generate(400);
    let configs = [
        ("amf", DsgConfig::default().with_seed(5)),
        (
            "exact_median",
            DsgConfig::default()
                .with_seed(5)
                .with_median(MedianStrategy::Exact),
        ),
        (
            "no_balance_repair",
            DsgConfig::default().with_seed(5).with_balance_maintenance(false),
        ),
        ("a4", DsgConfig::default().with_seed(5).with_a(4)),
    ];
    for (name, config) in configs {
        group.bench_with_input(BenchmarkId::new(name, n), &trace, |b, trace| {
            b.iter(|| black_box(run_dsg(n, config, black_box(trace))));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
