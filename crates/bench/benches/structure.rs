//! Criterion benchmark for experiment E1: substrate operations — building
//! skip graphs, routing, and the balanced-skip-list construction used by
//! AMF.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use dsg_skipgraph::{fixtures, BalancedSkipList, Key};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_structure(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate");
    group.sample_size(10);
    for &n in &[256u64, 1024, 4096] {
        group.bench_with_input(BenchmarkId::new("build_random", n), &n, |b, &n| {
            b.iter(|| black_box(fixtures::uniform_random(n, 7)));
        });
        let graph = fixtures::uniform_random(n, 7);
        group.bench_with_input(BenchmarkId::new("route", n), &graph, |b, graph| {
            b.iter(|| {
                let mut total = 0usize;
                for i in (0..n).step_by((n / 32).max(1) as usize) {
                    total += graph
                        .route(Key::new(i), Key::new(n - 1 - i))
                        .map(|r| r.hops())
                        .unwrap_or(0);
                }
                black_box(total)
            });
        });
        group.bench_with_input(BenchmarkId::new("balanced_skip_list", n), &n, |b, &n| {
            let mut rng = StdRng::seed_from_u64(3);
            b.iter(|| black_box(BalancedSkipList::build(n as usize, 3, &mut rng)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_structure);
criterion_main!(benches);
