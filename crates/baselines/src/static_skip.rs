//! The non-adjusting baseline: a balanced, static skip graph.

use dsg_skipgraph::{Key, SkipGraph};

use crate::Baseline;

/// A perfectly balanced skip graph over peers `0..n` that never changes
/// shape: every request is served with the standard routing algorithm at
/// `O(log n)` cost, regardless of how skewed the workload is. This is the
/// structure DSG starts from and the natural "do nothing" comparator.
#[derive(Debug, Clone)]
pub struct StaticSkipGraph {
    graph: SkipGraph,
    n: u64,
}

impl StaticSkipGraph {
    /// Builds the balanced static skip graph over peers `0..n`.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn new(n: u64) -> Self {
        assert!(n >= 2, "a skip graph needs at least two peers");
        let graph = dsg_skipgraph::fixtures::perfectly_balanced(n);
        StaticSkipGraph { graph, n }
    }

    /// The underlying skip graph (for structural inspection in tests).
    pub fn graph(&self) -> &SkipGraph {
        &self.graph
    }

    /// The structure height (`⌈log₂ n⌉` by construction).
    pub fn height(&self) -> usize {
        self.graph.height()
    }
}

impl Baseline for StaticSkipGraph {
    fn name(&self) -> &'static str {
        "static-skip-graph"
    }

    fn peers(&self) -> u64 {
        self.n
    }

    fn serve(&mut self, u: u64, v: u64) -> usize {
        self.graph
            .route(Key::new(u), Key::new(v))
            .expect("peers 0..n exist in the static graph")
            .intermediate_nodes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_request_is_logarithmic() {
        let mut g = StaticSkipGraph::new(256);
        let bound = 3 * 8; // a generous a · log2(n)
        for i in 0..255u64 {
            let cost = g.serve(i, 255 - i.max(1));
            assert!(cost <= bound, "cost {cost} exceeds {bound}");
        }
        assert_eq!(g.height(), 8);
    }

    #[test]
    fn repeated_requests_do_not_get_cheaper() {
        let mut g = StaticSkipGraph::new(128);
        let first = g.serve(0, 127);
        for _ in 0..5 {
            assert_eq!(g.serve(0, 127), first, "a static structure never adapts");
        }
    }

    #[test]
    fn trace_cost_is_the_sum_of_request_costs() {
        let mut g = StaticSkipGraph::new(32);
        let trace: Vec<dsg::Request> = [(0u64, 31u64), (5, 9), (14, 2)]
            .into_iter()
            .map(dsg::Request::from)
            .collect();
        let total = g.serve_trace(&trace);
        let mut g2 = StaticSkipGraph::new(32);
        let manual: usize = trace.iter().map(|r| { let (u, v) = r.pair(); g2.serve(u, v) }).sum();
        assert_eq!(total, manual);
    }
}
