//! # dsg-baselines — comparison overlays
//!
//! The paper positions DSG against two reference points: the *static* skip
//! graph it starts from (no adaptation, `O(log n)` per request no matter the
//! skew) and the family of self-adjusting tree networks it generalises
//! (SplayNet, Avin et al.). The evaluation harness also needs the
//! information-theoretic reference of Theorem 1, the working-set bound.
//!
//! This crate implements all three:
//!
//! * [`StaticSkipGraph`] — a balanced skip graph that routes every request
//!   with the standard algorithm and never changes shape,
//! * [`SplayNet`] — a self-adjusting binary search tree overlay in which
//!   each request `(u, v)` splays `u` to the root of the lowest subtree
//!   containing both endpoints and then `v` to its child (the
//!   double-splay of the SplayNet paper),
//! * [`WorkingSetOracle`] — charges each request exactly
//!   `log₂ T_i(σ_i)`, the per-request share of the lower bound `WS(σ)`.
//!
//! All three expose the same [`Baseline`] interface so the experiment
//! harness can sweep them uniformly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod oracle;
pub mod splaynet;
pub mod static_skip;

pub use oracle::WorkingSetOracle;
pub use splaynet::SplayNet;
pub use static_skip::StaticSkipGraph;

use dsg::Request;

/// A baseline overlay that serves communication requests and reports their
/// cost.
pub trait Baseline {
    /// A short human-readable name used in experiment tables.
    fn name(&self) -> &'static str;

    /// Number of peers in the overlay.
    fn peers(&self) -> u64;

    /// Serves the request `(u, v)` and returns its routing cost (number of
    /// intermediate nodes on the communication path), applying whatever
    /// self-adjustment the baseline performs.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `u == v` or a peer is out of range;
    /// traces produced by `dsg-workloads` never do either.
    fn serve(&mut self, u: u64, v: u64) -> usize;

    /// Serves a whole trace of typed [`Request`]s (the same vocabulary the
    /// workload generators emit and `DsgSession::submit_batch` consumes)
    /// and returns the total routing cost. Baselines model a fixed peer
    /// population, so only communication requests contribute; membership
    /// and clock requests are skipped.
    fn serve_trace(&mut self, trace: &[Request]) -> usize {
        trace
            .iter()
            .filter_map(|r| r.endpoints())
            .map(|(u, v)| self.serve(u, v))
            .sum()
    }
}
