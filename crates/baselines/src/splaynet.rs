//! SplayNet — the self-adjusting BST overlay of Avin, Haeupler, Lotker,
//! Scheideler and Schmid ("Locally Self-Adjusting Tree Networks"), which the
//! paper generalises from a single tree to the overlapping trees of a skip
//! graph.
//!
//! A SplayNet is a binary search tree over the peers (ordered by key). A
//! request `(u, v)` is served along the unique tree path between the two
//! peers; afterwards the network *double-splays*: `u` is splayed to the root
//! of the lowest subtree containing both endpoints, and `v` is then splayed
//! to become a child of `u`, so that repeating pairs become adjacent.
//!
//! The implementation stores the tree in an arena indexed by peer key and
//! uses the classic zig / zig-zig / zig-zag rotations, restricted to the
//! subtree being splayed.

use crate::Baseline;

#[derive(Debug, Clone, Copy, Default)]
struct Node {
    parent: Option<u32>,
    left: Option<u32>,
    right: Option<u32>,
}

/// A self-adjusting binary search tree overlay (SplayNet).
#[derive(Debug, Clone)]
pub struct SplayNet {
    nodes: Vec<Node>,
    root: u32,
    n: u64,
}

impl SplayNet {
    /// Builds a SplayNet over peers `0..n`, initially shaped as a perfectly
    /// balanced BST.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn new(n: u64) -> Self {
        assert!(n >= 2, "a SplayNet needs at least two peers");
        let mut net = SplayNet {
            nodes: vec![Node::default(); n as usize],
            root: 0,
            n,
        };
        net.root = net.build_balanced(0, n as u32 - 1, None);
        net
    }

    fn build_balanced(&mut self, lo: u32, hi: u32, parent: Option<u32>) -> u32 {
        let mid = lo + (hi - lo) / 2;
        self.nodes[mid as usize].parent = parent;
        self.nodes[mid as usize].left = if mid > lo {
            Some(self.build_balanced(lo, mid - 1, Some(mid)))
        } else {
            None
        };
        self.nodes[mid as usize].right = if mid < hi {
            Some(self.build_balanced(mid + 1, hi, Some(mid)))
        } else {
            None
        };
        mid
    }

    /// Depth of a node (root has depth 0).
    fn depth(&self, mut node: u32) -> usize {
        let mut depth = 0;
        while let Some(parent) = self.nodes[node as usize].parent {
            node = parent;
            depth += 1;
        }
        depth
    }

    /// The lowest common ancestor of two peers. In a BST over keys this is
    /// the first node on the root-to-leaf search path whose key lies between
    /// the two.
    fn lca(&self, u: u32, v: u32) -> u32 {
        let (lo, hi) = if u <= v { (u, v) } else { (v, u) };
        let mut current = self.root;
        loop {
            if current < lo {
                current = self.nodes[current as usize]
                    .right
                    .expect("BST search stays inside the tree");
            } else if current > hi {
                current = self.nodes[current as usize]
                    .left
                    .expect("BST search stays inside the tree");
            } else {
                return current;
            }
        }
    }

    /// Number of tree edges between two peers.
    pub fn path_length(&self, u: u64, v: u64) -> usize {
        let (u, v) = (u as u32, v as u32);
        let w = self.lca(u, v);
        self.depth(u) + self.depth(v) - 2 * self.depth(w)
    }

    /// The current depth of the deepest peer (diagnostic).
    pub fn max_depth(&self) -> usize {
        (0..self.nodes.len() as u32).map(|i| self.depth(i)).max().unwrap_or(0)
    }

    fn rotate(&mut self, x: u32) {
        let p = self.nodes[x as usize].parent.expect("rotation needs a parent");
        let g = self.nodes[p as usize].parent;
        let x_is_left = self.nodes[p as usize].left == Some(x);
        // Move x's inner subtree over to p.
        let inner = if x_is_left {
            let inner = self.nodes[x as usize].right;
            self.nodes[p as usize].left = inner;
            self.nodes[x as usize].right = Some(p);
            inner
        } else {
            let inner = self.nodes[x as usize].left;
            self.nodes[p as usize].right = inner;
            self.nodes[x as usize].left = Some(p);
            inner
        };
        if let Some(inner) = inner {
            self.nodes[inner as usize].parent = Some(p);
        }
        self.nodes[p as usize].parent = Some(x);
        self.nodes[x as usize].parent = g;
        match g {
            Some(g) => {
                if self.nodes[g as usize].left == Some(p) {
                    self.nodes[g as usize].left = Some(x);
                } else {
                    self.nodes[g as usize].right = Some(x);
                }
            }
            None => self.root = x,
        }
    }

    /// Splays `x` upward until its parent is `boundary` (so `x` becomes the
    /// root of the subtree hanging off `boundary`, or the tree root when
    /// `boundary` is `None`).
    fn splay(&mut self, x: u32, boundary: Option<u32>) {
        while self.nodes[x as usize].parent != boundary {
            let p = self.nodes[x as usize].parent.expect("not yet at the boundary");
            let g = self.nodes[p as usize].parent;
            if g == boundary {
                self.rotate(x); // zig
            } else {
                let g = g.expect("grandparent exists below the boundary");
                let p_is_left = self.nodes[g as usize].left == Some(p);
                let x_is_left = self.nodes[p as usize].left == Some(x);
                if p_is_left == x_is_left {
                    // zig-zig: rotate the parent first.
                    self.rotate(p);
                    self.rotate(x);
                } else {
                    // zig-zag: rotate x twice.
                    self.rotate(x);
                    self.rotate(x);
                }
            }
        }
    }

    /// Checks the binary-search-tree invariant (used by tests).
    pub fn is_valid_bst(&self) -> bool {
        fn check(net: &SplayNet, node: u32, lo: Option<u32>, hi: Option<u32>) -> bool {
            if lo.is_some_and(|lo| node <= lo) || hi.is_some_and(|hi| node >= hi) {
                return false;
            }
            let n = &net.nodes[node as usize];
            n.left.is_none_or(|l| {
                net.nodes[l as usize].parent == Some(node) && check(net, l, lo, Some(node))
            }) && n.right.is_none_or(|r| {
                net.nodes[r as usize].parent == Some(node) && check(net, r, Some(node), hi)
            })
        }
        self.nodes[self.root as usize].parent.is_none()
            && check(self, self.root, None, None)
            && (0..self.nodes.len() as u32)
                .all(|i| i == self.root || self.nodes[i as usize].parent.is_some())
    }
}

impl Baseline for SplayNet {
    fn name(&self) -> &'static str {
        "splaynet"
    }

    fn peers(&self) -> u64 {
        self.n
    }

    fn serve(&mut self, u: u64, v: u64) -> usize {
        assert!(u != v && u < self.n && v < self.n, "invalid request");
        let cost_edges = self.path_length(u, v);
        let (u, v) = (u as u32, v as u32);
        // Double splay: u to the root of the lowest common subtree, then v
        // to a child of u.
        let w = self.lca(u, v);
        let boundary = self.nodes[w as usize].parent;
        self.splay(u, boundary);
        if v != u {
            self.splay(v, Some(u));
        }
        cost_edges.saturating_sub(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_tree_is_balanced_and_valid() {
        let net = SplayNet::new(127);
        assert!(net.is_valid_bst());
        assert!(net.max_depth() <= 7);
    }

    #[test]
    fn serving_brings_the_pair_together() {
        let mut net = SplayNet::new(64);
        let first = net.serve(3, 60);
        assert!(net.is_valid_bst());
        // After the double splay the pair is adjacent: zero intermediates.
        let second = net.serve(3, 60);
        assert_eq!(second, 0);
        assert!(first >= second);
        assert!(net.is_valid_bst());
    }

    #[test]
    fn repeated_pairs_stay_cheap_under_interleaving() {
        let mut net = SplayNet::new(128);
        net.serve(10, 90);
        // Unrelated traffic far away in key space.
        for i in 30..50u64 {
            net.serve(i, i + 1);
        }
        assert!(net.is_valid_bst());
        // The hot pair may have been disturbed, but a single refresh makes
        // it adjacent again.
        net.serve(10, 90);
        assert_eq!(net.serve(10, 90), 0);
    }

    #[test]
    fn skewed_workloads_beat_the_balanced_depth() {
        // Restrict traffic to a small community; after warm-up the average
        // path length should be far below log2(n).
        let mut net = SplayNet::new(1024);
        let hot: Vec<u64> = (100..108).collect();
        let mut total = 0usize;
        let mut count = 0usize;
        for round in 0..50 {
            for i in 0..hot.len() {
                for j in (i + 1)..hot.len() {
                    let c = net.serve(hot[i], hot[j]);
                    if round > 0 {
                        total += c;
                        count += 1;
                    }
                }
            }
        }
        let avg = total as f64 / count as f64;
        assert!(net.is_valid_bst());
        assert!(avg < 5.0, "average hot-pair cost {avg} not small");
    }

    #[test]
    fn all_pairs_reachable_and_costs_bounded() {
        let mut net = SplayNet::new(32);
        for u in 0..32u64 {
            for v in 0..32u64 {
                if u != v {
                    let c = net.serve(u, v);
                    assert!(c < 32);
                }
            }
        }
        assert!(net.is_valid_bst());
    }

    #[test]
    #[should_panic(expected = "invalid request")]
    fn self_requests_are_rejected() {
        let mut net = SplayNet::new(8);
        let _ = net.serve(3, 3);
    }
}
