//! The working-set lower-bound reference (Theorem 1).

use dsg_metrics::WorkingSetTracker;

use crate::Baseline;

/// Charges every request exactly `⌈log₂ T_i(σ_i)⌉` — its share of the
/// working-set bound `WS(σ)` that Theorem 1 proves no conforming
/// self-adjusting algorithm can beat (amortized). It is not an executable
/// overlay; it is the yardstick the other curves are compared against in
/// experiments E8/E9.
#[derive(Debug, Clone)]
pub struct WorkingSetOracle {
    tracker: WorkingSetTracker,
    n: u64,
}

impl WorkingSetOracle {
    /// Creates the oracle for an `n`-peer network.
    pub fn new(n: u64) -> Self {
        WorkingSetOracle {
            tracker: WorkingSetTracker::new(n as usize),
            n,
        }
    }

    /// The exact (un-rounded) bound accumulated so far.
    pub fn bound(&self) -> f64 {
        self.tracker.bound()
    }
}

impl Baseline for WorkingSetOracle {
    fn name(&self) -> &'static str {
        "working-set-bound"
    }

    fn peers(&self) -> u64 {
        self.n
    }

    fn serve(&mut self, u: u64, v: u64) -> usize {
        let t = self.tracker.record(u, v);
        (t.max(2) as f64).log2().ceil() as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repeated_pairs_cost_one() {
        let mut oracle = WorkingSetOracle::new(1024);
        let first = oracle.serve(1, 2);
        assert_eq!(first, 10); // log2(1024)
        for _ in 0..5 {
            assert_eq!(oracle.serve(1, 2), 1); // log2(2)
        }
        assert!(oracle.bound() > 10.0);
    }

    #[test]
    fn unrelated_traffic_keeps_pairs_cheap() {
        let mut oracle = WorkingSetOracle::new(64);
        oracle.serve(1, 2);
        for i in 10..30u64 {
            oracle.serve(i, i + 1);
        }
        assert_eq!(oracle.serve(1, 2), 1);
    }
}
