//! The communication graph (paper §III, Figures 2 and 3).
//!
//! Nodes are peers; an undirected edge connects two peers if they
//! communicated (as source or destination) during the time window of
//! interest, labelled with the time of their most recent communication.

use std::collections::{HashMap, HashSet, VecDeque};

/// An undirected communication graph over peer identifiers.
#[derive(Debug, Clone, Default)]
pub struct CommunicationGraph {
    /// Most recent communication time per (normalised) pair.
    edges: HashMap<(u64, u64), u64>,
    adjacency: HashMap<u64, HashSet<u64>>,
}

impl CommunicationGraph {
    /// Creates an empty communication graph.
    pub fn new() -> Self {
        CommunicationGraph::default()
    }

    fn normalise(u: u64, v: u64) -> (u64, u64) {
        if u <= v {
            (u, v)
        } else {
            (v, u)
        }
    }

    /// Records a communication between `u` and `v` at time `t` (overwrites
    /// any earlier label on the edge, as in Figure 3).
    pub fn record(&mut self, u: u64, v: u64, t: u64) {
        if u == v {
            return;
        }
        self.edges.insert(Self::normalise(u, v), t);
        self.adjacency.entry(u).or_default().insert(v);
        self.adjacency.entry(v).or_default().insert(u);
    }

    /// The time of the most recent communication between `u` and `v`, if
    /// any.
    pub fn last_communication(&self, u: u64, v: u64) -> Option<u64> {
        self.edges.get(&Self::normalise(u, v)).copied()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Number of peers that appear in at least one communication.
    pub fn node_count(&self) -> usize {
        self.adjacency.len()
    }

    /// The set of peers reachable from `start` considering only edges whose
    /// label (most recent communication time) is at least `since`.
    pub fn reachable_since(&self, start: u64, since: u64) -> HashSet<u64> {
        let mut seen = HashSet::new();
        let mut queue = VecDeque::new();
        seen.insert(start);
        queue.push_back(start);
        while let Some(node) = queue.pop_front() {
            if let Some(neighbors) = self.adjacency.get(&node) {
                for &next in neighbors {
                    let label = self
                        .last_communication(node, next)
                        .expect("adjacency implies an edge");
                    if label >= since && seen.insert(next) {
                        queue.push_back(next);
                    }
                }
            }
        }
        seen
    }

    /// Distinct peers that have a path (over edges labelled `≥ since`) from
    /// either `u` or `v` — the quantity the working set number counts.
    pub fn working_set_of(&self, u: u64, v: u64, since: u64) -> usize {
        let mut set = self.reachable_since(u, since);
        set.extend(self.reachable_since(v, since));
        set.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The communication graph of Figure 2(b): after (u,v), (e,a), (a,k),
    /// (k,u) and (u,v) again, five nodes have a path from u or v.
    #[test]
    fn figure2_working_set_is_five() {
        let (u, v, e, a, k) = (0u64, 1, 2, 3, 4);
        let mut g = CommunicationGraph::new();
        g.record(u, v, 1);
        g.record(e, a, 2);
        g.record(a, k, 3);
        g.record(k, u, 4);
        g.record(u, v, 5);
        assert_eq!(g.working_set_of(u, v, 1), 5);
    }

    #[test]
    fn edges_remember_only_the_latest_time() {
        let mut g = CommunicationGraph::new();
        g.record(1, 2, 3);
        g.record(2, 1, 9);
        assert_eq!(g.last_communication(1, 2), Some(9));
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn reachability_respects_the_time_window() {
        let mut g = CommunicationGraph::new();
        g.record(1, 2, 1);
        g.record(2, 3, 5);
        // With the window starting at 2 the stale edge (1,2) is invisible.
        let reach = g.reachable_since(3, 2);
        assert!(reach.contains(&2));
        assert!(!reach.contains(&1));
        // From time 1 everything is connected.
        assert_eq!(g.reachable_since(3, 1).len(), 3);
    }

    #[test]
    fn self_communication_is_ignored() {
        let mut g = CommunicationGraph::new();
        g.record(4, 4, 1);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.node_count(), 0);
    }

    #[test]
    fn disconnected_components_do_not_count() {
        let mut g = CommunicationGraph::new();
        g.record(1, 2, 1);
        g.record(8, 9, 2);
        assert_eq!(g.working_set_of(1, 2, 1), 2);
    }
}
