//! The default recording observer for [`DsgSession`](dsg::DsgSession)s.
//!
//! [`MetricsObserver`] implements [`dsg::DsgObserver`] and records the
//! per-request series and epoch-level counters the experiment harnesses
//! report — the observer-based replacement for polling
//! [`RunStats`](dsg::RunStats) fields off the engine. Register it with
//! [`DsgSession::observe`](dsg::DsgSession::observe) (which hands back a
//! shared handle) and read the series after the replay.
//!
//! ```rust
//! use dsg::prelude::*;
//! use dsg_metrics::MetricsObserver;
//!
//! # fn main() -> Result<(), DsgError> {
//! let mut session = DsgSession::builder().peers(0..16).seed(1).build()?;
//! let metrics = session.observe(MetricsObserver::new());
//! session.submit_batch(&[
//!     Request::communicate(0, 9),
//!     Request::communicate(3, 12),
//! ])?;
//! let metrics = metrics.lock().unwrap();
//! assert_eq!(metrics.requests(), 2);
//! assert_eq!(metrics.epochs, 1);
//! # Ok(())
//! # }
//! ```

use dsg::{
    BalanceRepairEvent, DsgObserver, OverloadEvent, RequestOutcome, StallEvent, TransformEvent,
};

/// Records per-request series and epoch counters from session callbacks.
#[derive(Debug, Clone, Default)]
pub struct MetricsObserver {
    /// Routing cost (intermediate nodes) per request, in submission order.
    pub routing_costs: Vec<usize>,
    /// Transformation rounds per request.
    pub transformation_rounds: Vec<usize>,
    /// Total cost (`d + ρ + 1`) per request.
    pub total_costs: Vec<usize>,
    /// Structure height after each request.
    pub heights: Vec<usize>,
    /// Level of the direct link created for each request.
    pub pair_levels: Vec<usize>,
    /// Changed `(node, level)` pairs installed per request (cluster totals
    /// are attributed to the cluster's first request).
    pub touched_pairs: Vec<usize>,
    /// Transformation epochs observed.
    pub epochs: usize,
    /// Merged transformations (clusters) across all epochs.
    pub clusters: usize,
    /// Transformation-install passes across all epochs.
    pub install_passes: usize,
    /// Clusters planned by the (possibly parallel) plan stages across all
    /// epochs.
    pub planned_clusters: usize,
    /// The largest worker-shard count any epoch's plan stages actually ran
    /// on (1 = fully inline planning).
    pub plan_shards: usize,
    /// Total wall-clock nanoseconds spent in the plan stages. Timing-only.
    pub plan_wall_ns: u64,
    /// Dummy nodes actually removed by differential GC across all epochs
    /// (reclaimed standing dummies are not counted).
    pub dummies_destroyed: usize,
    /// Dummy slots established by balance repairs across all epochs —
    /// reclaimed and created alike (lifecycle-independent).
    pub dummies_inserted: usize,
    /// Standing dummies reclaimed in place by the reconciling repair across
    /// all epochs (0 under the per-node destroy/recreate oracle).
    pub dummies_reused: usize,
    /// Genuinely new dummies the reconciliation created across all epochs
    /// (reclaims excluded); almost all go through the bulk splice
    /// installer.
    pub dummies_bulk_inserted: usize,
    /// Live dummy count after the most recent repair pass.
    pub live_dummies: usize,
    /// Requests the admission gate declined to restructure across all
    /// epochs (0 with the adaptation policy off).
    pub pairs_gated: u64,
    /// Cold clusters restructured via the per-epoch budget across all
    /// epochs.
    pub restructures_budgeted: u64,
    /// Frequency-sketch counter-halving passes across all epochs.
    pub sketch_aging_passes: u64,
    /// Requests routed without restructuring under a brownout verdict
    /// across all epochs (overload-degraded service only).
    pub pairs_browned_out: u64,
    /// Overload-state transitions observed (brownout/shedding entries and
    /// exits alike).
    pub overload_transitions: u64,
    /// Ingest-loop stall episodes the service watchdog reported.
    pub stalls: u64,
}

impl MetricsObserver {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        MetricsObserver::default()
    }

    /// Number of requests observed.
    pub fn requests(&self) -> usize {
        self.routing_costs.len()
    }

    /// Average routing cost per request (0 for an empty recording).
    pub fn avg_routing(&self) -> f64 {
        if self.routing_costs.is_empty() {
            0.0
        } else {
            self.routing_costs.iter().sum::<usize>() as f64 / self.routing_costs.len() as f64
        }
    }

    /// Total changed `(node, level)` pairs installed.
    pub fn total_touched_pairs(&self) -> usize {
        self.touched_pairs.iter().sum()
    }

    /// Dummy churn: dummies actually created plus dummies actually
    /// destroyed. Reclaimed standing dummies contribute to neither side —
    /// that zero-mutation reuse is exactly what the reconciling lifecycle
    /// saves over destroy-then-recreate.
    pub fn dummy_churn(&self) -> usize {
        (self.dummies_inserted - self.dummies_reused) + self.dummies_destroyed
    }
}

impl DsgObserver for MetricsObserver {
    fn on_request(&mut self, outcome: &RequestOutcome) {
        self.routing_costs.push(outcome.routing_cost);
        self.transformation_rounds
            .push(outcome.transformation_rounds());
        self.total_costs.push(outcome.total_cost());
        self.heights.push(outcome.height_after);
        self.pair_levels.push(outcome.pair_level);
        self.touched_pairs.push(outcome.touched_pairs);
    }

    fn on_transform(&mut self, event: &TransformEvent) {
        self.epochs += 1;
        self.clusters += event.clusters;
        self.install_passes += event.install_passes;
        self.planned_clusters += event.planned_clusters;
        self.plan_shards = self.plan_shards.max(event.plan_shards);
        self.plan_wall_ns += event.plan_wall_ns;
        self.pairs_gated += event.pairs_gated;
        self.restructures_budgeted += event.restructures_budgeted;
        self.sketch_aging_passes += event.sketch_aging_passes;
        self.pairs_browned_out += event.pairs_browned_out;
    }

    fn on_overload(&mut self, _event: &OverloadEvent) {
        self.overload_transitions += 1;
    }

    fn on_stall(&mut self, _event: &StallEvent) {
        self.stalls += 1;
    }

    fn on_balance_repair(&mut self, event: &BalanceRepairEvent) {
        self.dummies_destroyed += event.dummies_destroyed;
        self.dummies_inserted += event.dummies_inserted;
        self.dummies_reused += event.dummies_reused;
        self.dummies_bulk_inserted += event.dummies_bulk_inserted;
        self.live_dummies = event.live_dummies;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsg::prelude::*;

    #[test]
    fn records_requests_and_epochs() {
        let mut session = DsgSession::builder().peers(0..32).seed(2).build().unwrap();
        let metrics = session.observe(MetricsObserver::new());
        session
            .submit_batch(&[
                Request::communicate(0, 16),
                Request::communicate(1, 17),
                Request::communicate(2, 18),
            ])
            .unwrap();
        session.submit(Request::communicate(0, 16)).unwrap();
        let metrics = metrics.lock().unwrap();
        assert_eq!(metrics.requests(), 4);
        assert_eq!(metrics.epochs, 2);
        assert_eq!(metrics.routing_costs.len(), 4);
        assert_eq!(metrics.heights.len(), 4);
        assert!(metrics.install_passes >= 2);
        assert!(metrics.avg_routing() >= 0.0);
        // The stats the engine accumulated agree with the observer series.
        assert_eq!(
            session.stats().total_routing_cost,
            metrics.routing_costs.iter().sum::<usize>()
        );
        assert_eq!(
            session.stats().transform_touched_pairs,
            metrics.total_touched_pairs()
        );
    }
}
