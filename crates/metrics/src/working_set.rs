//! Incremental working-set numbers and the working-set bound.

use std::collections::HashMap;

use crate::comm_graph::CommunicationGraph;

/// Tracks a request sequence and computes, for every request, its working
/// set number `T_i(σ_i)` and the cumulative working set bound
/// `WS(σ) = Σ log₂ T_i(σ_i)` (Theorem 1 of the paper).
#[derive(Debug, Clone)]
pub struct WorkingSetTracker {
    n: usize,
    time: u64,
    graph: CommunicationGraph,
    last_pair_time: HashMap<(u64, u64), u64>,
    numbers: Vec<usize>,
    bound: f64,
}

impl WorkingSetTracker {
    /// Creates a tracker for a network of `n` peers. A pair communicating
    /// for the first time has working set number `n` by definition.
    pub fn new(n: usize) -> Self {
        WorkingSetTracker {
            n,
            time: 0,
            graph: CommunicationGraph::new(),
            last_pair_time: HashMap::new(),
            numbers: Vec::new(),
            bound: 0.0,
        }
    }

    fn normalise(u: u64, v: u64) -> (u64, u64) {
        if u <= v {
            (u, v)
        } else {
            (v, u)
        }
    }

    /// Records the next request `(u, v)` and returns its working set number.
    pub fn record(&mut self, u: u64, v: u64) -> usize {
        self.time += 1;
        let t = self.time;
        let pair = Self::normalise(u, v);
        let number = match self.last_pair_time.get(&pair) {
            Some(&since) => {
                // The working set window starts at the previous (u, v)
                // communication and ends now; the edge (u, v) itself is part
                // of the window, so u and v always count.
                self.graph.working_set_of(u, v, since).max(2)
            }
            None => self.n,
        };
        self.graph.record(u, v, t);
        self.last_pair_time.insert(pair, t);
        self.numbers.push(number);
        self.bound += (number.max(2) as f64).log2();
        number
    }

    /// The working set numbers of all recorded requests, in order.
    pub fn numbers(&self) -> &[usize] {
        &self.numbers
    }

    /// The cumulative working set bound `WS(σ)` of the recorded sequence.
    pub fn bound(&self) -> f64 {
        self.bound
    }

    /// Number of requests recorded.
    pub fn len(&self) -> usize {
        self.numbers.len()
    }

    /// Returns `true` if no requests were recorded yet.
    pub fn is_empty(&self) -> bool {
        self.numbers.is_empty()
    }

    /// The network size the tracker was created with.
    pub fn network_size(&self) -> usize {
        self.n
    }
}

/// Convenience: the working set number of every request of `trace` over an
/// `n`-peer network.
pub fn working_set_numbers(n: usize, trace: &[(u64, u64)]) -> Vec<usize> {
    let mut tracker = WorkingSetTracker::new(n);
    trace.iter().for_each(|&(u, v)| {
        tracker.record(u, v);
    });
    tracker.numbers().to_vec()
}

/// Convenience: the working set bound `WS(σ)` of `trace` over an `n`-peer
/// network.
pub fn working_set_bound(n: usize, trace: &[(u64, u64)]) -> f64 {
    let mut tracker = WorkingSetTracker::new(n);
    trace.iter().for_each(|&(u, v)| {
        tracker.record(u, v);
    });
    tracker.bound()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_communication_counts_the_whole_network() {
        let mut tracker = WorkingSetTracker::new(100);
        assert_eq!(tracker.record(3, 4), 100);
        assert_eq!(tracker.record(5, 6), 100);
    }

    #[test]
    fn tight_pairs_have_small_working_sets() {
        let mut tracker = WorkingSetTracker::new(1000);
        tracker.record(1, 2);
        // Repeating the same pair over and over keeps T at 2.
        for _ in 0..10 {
            assert_eq!(tracker.record(1, 2), 2);
        }
        assert!(tracker.bound() < 1000f64.log2() + 11.0);
    }

    #[test]
    fn figure2_sequence_yields_five() {
        // (u,v), (e,a), (a,k), (k,u), (u,v) — the last request has T = 5.
        let trace = [(0u64, 1u64), (2, 3), (3, 4), (4, 0), (0, 1)];
        let numbers = working_set_numbers(6, &trace);
        assert_eq!(numbers.last(), Some(&5));
        assert_eq!(numbers[0], 6);
    }

    #[test]
    fn unrelated_traffic_does_not_inflate_the_working_set() {
        let mut tracker = WorkingSetTracker::new(64);
        tracker.record(1, 2);
        // Chatter among a disjoint clique.
        for i in 10..20u64 {
            tracker.record(i, i + 1);
        }
        // The pair's working set is still just the two of them.
        assert_eq!(tracker.record(1, 2), 2);
    }

    #[test]
    fn bound_accumulates_logarithms() {
        let trace = [(0u64, 1u64), (0, 1), (0, 1)];
        let bound = working_set_bound(8, &trace);
        // log2(8) + log2(2) + log2(2) = 3 + 1 + 1.
        assert!((bound - 5.0).abs() < 1e-9);
    }

    #[test]
    fn direction_does_not_matter() {
        let mut tracker = WorkingSetTracker::new(32);
        tracker.record(7, 3);
        assert_eq!(tracker.record(3, 7), 2);
    }
}
