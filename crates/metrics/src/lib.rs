//! # dsg-metrics — working-set accounting for self-adjusting overlays
//!
//! The yardstick the paper proposes for self-adjusting skip graphs is the
//! **working set property** (§III): for a request `σ_i = (u, v)`, the
//! *working set number* `T_i(σ_i)` counts the distinct nodes that are
//! transitively connected to `u` or `v` in the communication graph built
//! from all requests since the last time `u` and `v` talked to each other;
//! the **working set bound** `WS(σ) = Σ_i log T_i(σ_i)` lower-bounds the
//! amortized routing cost of *any* conforming self-adjusting algorithm
//! (Theorem 1).
//!
//! This crate computes those quantities over request traces:
//!
//! * [`CommunicationGraph`] — a time-labelled view of who communicated,
//! * [`WorkingSetTracker`] — incremental `T_i` / `WS(σ)` computation,
//! * [`Summary`] — small statistics helpers used by the experiment harness,
//! * [`MetricsObserver`] — the default recording [`dsg::DsgObserver`] that
//!   collects per-request series and epoch counters off a session.
//!
//! # Example
//!
//! ```rust
//! use dsg_metrics::WorkingSetTracker;
//!
//! let mut tracker = WorkingSetTracker::new(6);
//! // Figure 2 of the paper: u and v communicate, then (e, a), (a, k),
//! // (k, u), then (u, v) again.
//! tracker.record(0, 1);          // (u, v) — first time: T = n
//! tracker.record(2, 3);          // (e, a)
//! tracker.record(3, 4);          // (a, k)
//! tracker.record(4, 0);          // (k, u)
//! let t = tracker.record(0, 1);  // (u, v) again
//! assert_eq!(t, 5);              // e, a, k, u, v — as the paper computes
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod comm_graph;
pub mod observer;
pub mod summary;
pub mod working_set;

pub use comm_graph::CommunicationGraph;
pub use observer::MetricsObserver;
pub use summary::Summary;
pub use working_set::{working_set_bound, working_set_numbers, WorkingSetTracker};
