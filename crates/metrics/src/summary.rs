//! Small statistics helpers for the experiment harness.

/// Summary statistics of a sample of costs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Minimum value.
    pub min: f64,
    /// Maximum value.
    pub max: f64,
    /// Median (50th percentile).
    pub p50: f64,
    /// 99th percentile.
    pub p99: f64,
}

impl Summary {
    /// Computes summary statistics of the given samples. Returns a zeroed
    /// summary for an empty slice.
    pub fn of<T: Into<f64> + Copy>(samples: &[T]) -> Summary {
        if samples.is_empty() {
            return Summary {
                count: 0,
                mean: 0.0,
                min: 0.0,
                max: 0.0,
                p50: 0.0,
                p99: 0.0,
            };
        }
        let mut values: Vec<f64> = samples.iter().map(|v| (*v).into()).collect();
        values.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs in cost data"));
        let count = values.len();
        let mean = values.iter().sum::<f64>() / count as f64;
        let pct = |p: f64| values[(((count - 1) as f64) * p).round() as usize];
        Summary {
            count,
            mean,
            min: values[0],
            max: values[count - 1],
            p50: pct(0.50),
            p99: pct(0.99),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_samples_yield_zeroes() {
        let s = Summary::of::<f64>(&[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn summary_of_small_sample() {
        let s = Summary::of(&[4.0f64, 1.0, 3.0, 2.0]);
        assert_eq!(s.count, 4);
        assert!((s.mean - 2.5).abs() < 1e-9);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert!(s.p50 >= 2.0 && s.p50 <= 3.0);
    }

    #[test]
    fn works_with_integer_inputs() {
        let s = Summary::of(&[1u32, 2, 3, 4, 5]);
        assert_eq!(s.p50, 3.0);
        assert_eq!(s.p99, 5.0);
    }
}
