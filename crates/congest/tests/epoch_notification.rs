//! Cross-layer validation: the per-epoch notification charge of the
//! session API against the CONGEST simulator.
//!
//! `DsgSession::submit_batch` charges every transformation cluster
//! `1 + a · ⌈log₂ |l_α|⌉` rounds for broadcasting the epoch notification
//! (the communicating pairs' vectors, timestamps, group-ids and
//! group-bases) through the sub skip graph rooted at the cluster's list.
//! This test replays an epoch through a real session, reads the charged
//! notification rounds off the request outcomes, and checks the analytical
//! charge dominates an actual [`Broadcast`] execution over a balanced
//! skip-list tree of the same membership — per pair of the epoch, since a
//! k-pair cluster reuses ONE notification broadcast where k sequential
//! requests would each pay their own.

use dsg::prelude::*;
use dsg_congest::protocols::{Broadcast, Tree};
use dsg_congest::{SimConfig, Simulator, Topology};

/// Builds the balanced-skip-list tree over `n` positions the paper's
/// broadcast primitive runs on: level `l` keeps every 2^l-th position.
fn balanced_tree(n: usize) -> Tree {
    let mut levels: Vec<Vec<usize>> = Vec::new();
    let mut step = 1usize;
    while step <= n {
        levels.push((0..n).step_by(step).collect());
        step *= 2;
    }
    Tree::from_skip_list_levels(&levels)
}

/// Runs the broadcast over the tree and returns the rounds it took.
fn broadcast_rounds(n: usize) -> usize {
    let tree = balanced_tree(n);
    let topology = Topology::from_edges(n, tree.edges());
    let nodes = Broadcast::nodes(&tree, 42);
    let mut sim = Simulator::new(topology, nodes, SimConfig::for_n(n));
    let report = sim.run_to_completion().expect("broadcast completes");
    assert!(sim.nodes().iter().all(|b| b.value() == Some(42)));
    report.rounds
}

#[test]
fn notification_charge_formula_dominates_real_broadcasts() {
    // The session charges every cluster 1 + a · ⌈log₂ m⌉ notification
    // rounds for a membership of m; the simulator must never need more.
    let a = DsgConfig::default().a;
    for m in [2usize, 3, 5, 8, 16, 33, 64, 200] {
        let simulated = broadcast_rounds(m);
        let charged = 1 + a * (m.max(2) as f64).log2().ceil() as usize;
        assert!(
            charged >= simulated,
            "membership {m}: charged {charged} rounds, simulator needed {simulated}"
        );
    }
}

#[test]
fn batched_epochs_never_charge_more_notification_rounds_than_sequential() {
    let n = 64u64;
    let mut session = DsgSession::builder().peers(0..n).seed(11).build().unwrap();
    // Four endpoint-disjoint pairs: one epoch; each cluster pays one
    // notification broadcast, shared by every pair it serves.
    let batch: Vec<Request> = (0..4).map(|i| Request::communicate(i, i + 32)).collect();
    let outcome = session.submit_batch(&batch).unwrap();
    assert_eq!(outcome.epochs, 1);

    let mut sequential = DsgSession::builder().peers(0..n).seed(11).build().unwrap();
    let mut seq_notification = 0usize;
    for request in &batch {
        let served = sequential.submit(*request).unwrap();
        seq_notification += served
            .request_outcome()
            .unwrap()
            .breakdown
            .notification_rounds;
    }
    let batch_notification: usize = outcome
        .request_outcomes()
        .map(|o| o.breakdown.notification_rounds)
        .sum();
    assert!(
        batch_notification <= seq_notification,
        "batched epoch charged {batch_notification} notification rounds, \
         sequential replay {seq_notification}"
    );
}
