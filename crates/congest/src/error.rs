//! Errors reported by the CONGEST simulator.

use std::fmt;

/// Errors produced while driving a protocol through the simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CongestError {
    /// A node attempted to send a message to a node it has no link to.
    NoSuchLink {
        /// The sending node.
        from: usize,
        /// The intended receiver.
        to: usize,
    },
    /// A node attempted to send two messages over the same link in one
    /// round, violating the CONGEST capacity constraint.
    LinkCapacityExceeded {
        /// The sending node.
        from: usize,
        /// The receiver.
        to: usize,
        /// The round in which the violation occurred.
        round: usize,
    },
    /// A message exceeded the configured `O(log n)` bit budget.
    MessageTooLarge {
        /// The sending node.
        from: usize,
        /// The receiver.
        to: usize,
        /// Size of the offending message in bits.
        bits: usize,
        /// The configured limit in bits.
        limit: usize,
    },
    /// The protocol did not terminate within the configured round budget.
    RoundLimitExceeded {
        /// The configured maximum number of rounds.
        limit: usize,
    },
    /// A node index was out of range for the topology.
    UnknownNode(usize),
}

impl fmt::Display for CongestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CongestError::NoSuchLink { from, to } => {
                write!(f, "node {from} has no link to node {to}")
            }
            CongestError::LinkCapacityExceeded { from, to, round } => write!(
                f,
                "node {from} sent more than one message to node {to} in round {round}"
            ),
            CongestError::MessageTooLarge {
                from,
                to,
                bits,
                limit,
            } => write!(
                f,
                "message from {from} to {to} is {bits} bits, exceeding the {limit}-bit budget"
            ),
            CongestError::RoundLimitExceeded { limit } => {
                write!(f, "protocol did not terminate within {limit} rounds")
            }
            CongestError::UnknownNode(node) => write!(f, "node index {node} is out of range"),
        }
    }
}

impl std::error::Error for CongestError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_are_displayable_and_threadsafe() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CongestError>();
        let err = CongestError::MessageTooLarge {
            from: 1,
            to: 2,
            bits: 4096,
            limit: 64,
        };
        assert!(err.to_string().contains("4096"));
    }
}
