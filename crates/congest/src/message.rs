//! Messages and message-size accounting.
//!
//! The CONGEST model restricts every message to `O(log n)` bits. The
//! simulator cannot know the information content of an arbitrary Rust type,
//! so protocol messages declare their own wire size by implementing
//! [`MessageSize`]; the simulator audits the declared size against the
//! configured budget. Implementations for the common scalar types are
//! provided.

/// Declares the wire size of a protocol message, in bits.
pub trait MessageSize {
    /// Size of this message on the wire, in bits.
    fn size_bits(&self) -> usize;
}

impl MessageSize for u64 {
    fn size_bits(&self) -> usize {
        64
    }
}

impl MessageSize for i64 {
    fn size_bits(&self) -> usize {
        64
    }
}

impl MessageSize for u32 {
    fn size_bits(&self) -> usize {
        32
    }
}

impl MessageSize for bool {
    fn size_bits(&self) -> usize {
        1
    }
}

impl MessageSize for () {
    fn size_bits(&self) -> usize {
        0
    }
}

impl<T: MessageSize> MessageSize for Option<T> {
    fn size_bits(&self) -> usize {
        1 + self.as_ref().map_or(0, MessageSize::size_bits)
    }
}

impl<A: MessageSize, B: MessageSize> MessageSize for (A, B) {
    fn size_bits(&self) -> usize {
        self.0.size_bits() + self.1.size_bits()
    }
}

/// A message in flight: the payload plus its sender.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope<M> {
    /// The node that sent the message.
    pub from: usize,
    /// The payload.
    pub payload: M,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_sizes_are_sensible() {
        assert_eq!(7u64.size_bits(), 64);
        assert_eq!(7u32.size_bits(), 32);
        assert_eq!(true.size_bits(), 1);
        assert_eq!(().size_bits(), 0);
        assert_eq!(Some(3u32).size_bits(), 33);
        assert_eq!(None::<u32>.size_bits(), 1);
        assert_eq!((1u32, 2u64).size_bits(), 96);
    }

    #[test]
    fn envelopes_carry_the_sender() {
        let e = Envelope { from: 3, payload: 9u64 };
        assert_eq!(e.from, 3);
        assert_eq!(e.payload, 9);
    }
}
