//! Communication topologies for the simulator.
//!
//! A [`Topology`] is an undirected graph over nodes `0..n`; a node may send
//! a message to another node only if they share a link. Helpers are provided
//! for the shapes that appear in the reproduction: paths (linked lists),
//! stars, arbitrary edge lists, and layered "skip-list" topologies derived
//! from level membership.

use std::collections::BTreeSet;

/// An undirected communication topology over nodes `0..n`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Topology {
    n: usize,
    adjacency: Vec<BTreeSet<usize>>,
}

impl Topology {
    /// Creates a topology over `n` nodes with no links.
    pub fn empty(n: usize) -> Self {
        Topology {
            n,
            adjacency: vec![BTreeSet::new(); n],
        }
    }

    /// A simple path `0 — 1 — … — n-1` (a doubly linked list).
    pub fn path(n: usize) -> Self {
        let mut t = Topology::empty(n);
        for i in 1..n {
            t.add_link(i - 1, i);
        }
        t
    }

    /// A star with `center` connected to every other node.
    pub fn star(n: usize, center: usize) -> Self {
        let mut t = Topology::empty(n);
        for i in 0..n {
            if i != center {
                t.add_link(center, i);
            }
        }
        t
    }

    /// Builds a topology from an explicit list of undirected edges.
    pub fn from_edges(n: usize, edges: impl IntoIterator<Item = (usize, usize)>) -> Self {
        let mut t = Topology::empty(n);
        for (a, b) in edges {
            t.add_link(a, b);
        }
        t
    }

    /// Builds the layered topology induced by a skip list: `levels[0]` must
    /// be the full list of positions, and each higher level a subset. Nodes
    /// adjacent in any level share a link (the level-`d` doubly linked
    /// lists).
    pub fn from_levels(n: usize, levels: &[Vec<usize>]) -> Self {
        let mut t = Topology::empty(n);
        for level in levels {
            for pair in level.windows(2) {
                t.add_link(pair[0], pair[1]);
            }
        }
        t
    }

    /// Adds an undirected link between `a` and `b`. Self-links are ignored.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of range.
    pub fn add_link(&mut self, a: usize, b: usize) {
        assert!(a < self.n && b < self.n, "link endpoint out of range");
        if a == b {
            return;
        }
        self.adjacency[a].insert(b);
        self.adjacency[b].insert(a);
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Returns `true` if the topology has no nodes.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Number of undirected links.
    pub fn link_count(&self) -> usize {
        self.adjacency.iter().map(|s| s.len()).sum::<usize>() / 2
    }

    /// Returns `true` if `a` and `b` share a link.
    pub fn has_link(&self, a: usize, b: usize) -> bool {
        self.adjacency.get(a).is_some_and(|s| s.contains(&b))
    }

    /// The neighbours of `node`, in ascending order.
    pub fn neighbors(&self, node: usize) -> impl Iterator<Item = usize> + '_ {
        self.adjacency
            .get(node)
            .into_iter()
            .flat_map(|s| s.iter().copied())
    }

    /// The degree of `node`.
    pub fn degree(&self, node: usize) -> usize {
        self.adjacency.get(node).map_or(0, |s| s.len())
    }

    /// The maximum degree over all nodes.
    pub fn max_degree(&self) -> usize {
        self.adjacency.iter().map(|s| s.len()).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_topology_links_consecutive_nodes() {
        let t = Topology::path(5);
        assert_eq!(t.len(), 5);
        assert_eq!(t.link_count(), 4);
        assert!(t.has_link(0, 1));
        assert!(t.has_link(3, 4));
        assert!(!t.has_link(0, 2));
        assert_eq!(t.degree(0), 1);
        assert_eq!(t.degree(2), 2);
    }

    #[test]
    fn star_topology_has_central_hub() {
        let t = Topology::star(6, 2);
        assert_eq!(t.degree(2), 5);
        assert_eq!(t.max_degree(), 5);
        assert_eq!(t.link_count(), 5);
        assert!(t.has_link(2, 0));
        assert!(!t.has_link(0, 1));
    }

    #[test]
    fn from_levels_adds_links_per_level() {
        // A 6-position list with an upper level {0, 3, 5}.
        let levels = vec![vec![0, 1, 2, 3, 4, 5], vec![0, 3, 5]];
        let t = Topology::from_levels(6, &levels);
        assert!(t.has_link(0, 3));
        assert!(t.has_link(3, 5));
        assert!(t.has_link(2, 3));
        assert!(!t.has_link(0, 5));
    }

    #[test]
    fn self_links_are_ignored() {
        let mut t = Topology::empty(3);
        t.add_link(1, 1);
        assert_eq!(t.link_count(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_links_panic() {
        let mut t = Topology::empty(3);
        t.add_link(0, 7);
    }

    #[test]
    fn neighbors_are_sorted() {
        let t = Topology::from_edges(5, [(2, 4), (2, 0), (2, 3)]);
        let n: Vec<usize> = t.neighbors(2).collect();
        assert_eq!(n, vec![0, 3, 4]);
    }
}
