//! Rooted-tree descriptions shared by the reference protocols.

/// A rooted tree over nodes `0..n`, described by a parent pointer per node.
///
/// The protocols in this module run over a tree embedded in the simulator's
/// [`Topology`](crate::Topology); the topology must contain a link for every
/// parent/child pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tree {
    root: usize,
    parents: Vec<Option<usize>>,
    children: Vec<Vec<usize>>,
}

impl Tree {
    /// Builds a tree from parent pointers. Exactly one node (the root) must
    /// have no parent.
    ///
    /// # Panics
    ///
    /// Panics if no node or more than one node lacks a parent, or if a
    /// parent index is out of range.
    pub fn from_parents(parents: Vec<Option<usize>>) -> Self {
        let n = parents.len();
        let mut children = vec![Vec::new(); n];
        let mut root = None;
        for (node, parent) in parents.iter().enumerate() {
            match parent {
                Some(p) => {
                    assert!(*p < n, "parent index out of range");
                    children[*p].push(node);
                }
                None => {
                    assert!(root.is_none(), "more than one root");
                    root = Some(node);
                }
            }
        }
        Tree {
            root: root.expect("a tree must have a root"),
            parents,
            children,
        }
    }

    /// A path `0 ← 1 ← … ← n-1` rooted at node 0 (every node's parent is
    /// its left neighbour), matching a linked list whose values converge on
    /// the left-most node — the shape used by the paper's skip-list
    /// protocols.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn path(n: usize) -> Self {
        assert!(n > 0, "a tree needs at least one node");
        let parents = (0..n).map(|i| if i == 0 { None } else { Some(i - 1) }).collect();
        Tree::from_parents(parents)
    }

    /// Builds the tree induced by the levels of a balanced skip list: each
    /// position's parent is the nearest position to its left that appears in
    /// a strictly higher level (the node its values are forwarded to), and
    /// the overall root is position 0.
    ///
    /// `levels[0]` must be the full list `0..n` in ascending order.
    pub fn from_skip_list_levels(levels: &[Vec<usize>]) -> Self {
        let n = levels.first().map(Vec::len).unwrap_or(0);
        assert!(n > 0, "a tree needs at least one node");
        // level_of[p] = highest level containing position p.
        let mut level_of = vec![0usize; n];
        for (lvl, members) in levels.iter().enumerate() {
            for &p in members {
                level_of[p] = level_of[p].max(lvl);
            }
        }
        let mut parents: Vec<Option<usize>> = vec![None; n];
        for p in 0..n {
            if p == 0 {
                parents[0] = None;
                continue;
            }
            // Nearest position to the left with a strictly higher level;
            // position 0 (the ultimate root) qualifies for any level.
            let mut q = p;
            loop {
                q -= 1;
                if level_of[q] > level_of[p] || q == 0 {
                    parents[p] = Some(q);
                    break;
                }
            }
        }
        Tree::from_parents(parents)
    }

    /// The root of the tree.
    pub fn root(&self) -> usize {
        self.root
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.parents.len()
    }

    /// Returns `true` if the tree has exactly one node.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The parent of `node`, or `None` for the root.
    pub fn parent(&self, node: usize) -> Option<usize> {
        self.parents[node]
    }

    /// The children of `node`.
    pub fn children(&self, node: usize) -> &[usize] {
        &self.children[node]
    }

    /// All parent/child pairs, usable as topology edges.
    pub fn edges(&self) -> Vec<(usize, usize)> {
        self.parents
            .iter()
            .enumerate()
            .filter_map(|(node, parent)| parent.map(|p| (p, node)))
            .collect()
    }

    /// The depth of the tree (number of edges on the longest root-to-leaf
    /// path).
    pub fn depth(&self) -> usize {
        (0..self.len())
            .map(|mut node| {
                let mut depth = 0;
                while let Some(p) = self.parents[node] {
                    node = p;
                    depth += 1;
                }
                depth
            })
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_tree_is_a_chain() {
        let t = Tree::path(4);
        assert_eq!(t.root(), 0);
        assert_eq!(t.parent(3), Some(2));
        assert_eq!(t.children(0), &[1]);
        assert_eq!(t.depth(), 3);
        assert_eq!(t.edges(), vec![(0, 1), (1, 2), (2, 3)]);
    }

    #[test]
    fn skip_list_levels_yield_shallow_trees() {
        // 8 positions, upper level {0, 3, 6}, top {0}.
        let levels = vec![(0..8).collect::<Vec<_>>(), vec![0, 3, 6], vec![0]];
        let t = Tree::from_skip_list_levels(&levels);
        assert_eq!(t.root(), 0);
        // Positions 1 and 2 hang off 0 or 3's subtree boundaries.
        assert_eq!(t.parent(1), Some(0));
        assert_eq!(t.parent(2), Some(0));
        assert_eq!(t.parent(4), Some(3));
        assert_eq!(t.parent(3), Some(0));
        assert_eq!(t.parent(6), Some(0));
        assert!(t.depth() <= 3);
    }

    #[test]
    #[should_panic(expected = "more than one root")]
    fn two_roots_are_rejected() {
        let _ = Tree::from_parents(vec![None, None, Some(0)]);
    }

    #[test]
    #[should_panic(expected = "must have a root")]
    fn cycles_are_rejected() {
        let _ = Tree::from_parents(vec![Some(1), Some(0)]);
    }
}
