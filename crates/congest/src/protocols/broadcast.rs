//! Root-to-all broadcast over a rooted tree.
//!
//! The paper's algorithm broadcasts an `O(log n)`-bit value (the
//! approximate median, a new group-id, the skip-list height) from the root
//! of a balanced skip list to every member of the base list. Over a tree of
//! depth `d` this takes `d` rounds.

use crate::message::{Envelope, MessageSize};
use crate::sim::Outbox;
use crate::NodeProtocol;

use super::tree::Tree;

/// The broadcast payload: a single word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BroadcastMsg(pub u64);

impl MessageSize for BroadcastMsg {
    fn size_bits(&self) -> usize {
        64
    }
}

/// Per-node state of the broadcast protocol.
#[derive(Debug, Clone)]
pub struct Broadcast {
    children: Vec<usize>,
    is_root: bool,
    value: Option<u64>,
    forwarded: bool,
}

impl Broadcast {
    /// Builds the per-node protocol instances for broadcasting `value` from
    /// the root of `tree`.
    pub fn nodes(tree: &Tree, value: u64) -> Vec<Broadcast> {
        (0..tree.len())
            .map(|node| Broadcast {
                children: tree.children(node).to_vec(),
                is_root: node == tree.root(),
                value: if node == tree.root() { Some(value) } else { None },
                forwarded: false,
            })
            .collect()
    }

    /// The value this node has received (the root knows it from the start).
    pub fn value(&self) -> Option<u64> {
        self.value
    }
}

impl NodeProtocol for Broadcast {
    type Message = BroadcastMsg;

    fn on_start(&mut self, _me: usize, outbox: &mut Outbox<BroadcastMsg>) {
        if self.is_root {
            let value = self.value.expect("root knows the value");
            for &child in &self.children {
                outbox.send(child, BroadcastMsg(value));
            }
            self.forwarded = true;
        }
    }

    fn on_round(
        &mut self,
        _me: usize,
        _round: usize,
        inbox: &[Envelope<BroadcastMsg>],
        outbox: &mut Outbox<BroadcastMsg>,
    ) {
        if self.forwarded {
            return;
        }
        if let Some(env) = inbox.first() {
            self.value = Some(env.payload.0);
            for &child in &self.children {
                outbox.send(child, BroadcastMsg(env.payload.0));
            }
            self.forwarded = true;
        }
    }

    fn is_halted(&self) -> bool {
        self.forwarded || (self.value.is_some() && self.children.is_empty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SimConfig, Simulator, Topology};

    #[test]
    fn every_node_receives_the_value() {
        let tree = Tree::path(12);
        let topology = Topology::from_edges(12, tree.edges());
        let nodes = Broadcast::nodes(&tree, 777);
        let mut sim = Simulator::new(topology, nodes, SimConfig::for_n(12));
        let report = sim.run_to_completion().unwrap();
        for node in sim.nodes() {
            assert_eq!(node.value(), Some(777));
        }
        // Depth of the path is 11, so at least 11 rounds are needed.
        assert!(report.rounds >= 11);
        assert_eq!(report.messages, 11);
    }

    #[test]
    fn broadcast_over_shallow_tree_is_fast() {
        // Star-shaped tree: root 0, all others children.
        let parents = (0..9usize)
            .map(|i| if i == 0 { None } else { Some(0) })
            .collect();
        let tree = Tree::from_parents(parents);
        let topology = Topology::from_edges(9, tree.edges());
        let nodes = Broadcast::nodes(&tree, 5);
        let mut sim = Simulator::new(topology, nodes, SimConfig::for_n(9));
        let report = sim.run_to_completion().unwrap();
        assert!(report.rounds <= 2);
        assert_eq!(report.messages, 8);
        for node in sim.nodes() {
            assert_eq!(node.value(), Some(5));
        }
    }

    #[test]
    fn single_node_broadcast_terminates_immediately() {
        let tree = Tree::path(1);
        let topology = Topology::empty(1);
        let nodes = Broadcast::nodes(&tree, 9);
        let mut sim = Simulator::new(topology, nodes, SimConfig::for_n(1));
        let report = sim.run_to_completion().unwrap();
        assert_eq!(report.messages, 0);
        assert_eq!(sim.nodes()[0].value(), Some(9));
    }
}
