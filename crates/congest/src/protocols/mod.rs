//! Reference protocols built on the simulator.
//!
//! These implement the two communication primitives the paper's
//! self-adjusting algorithm reuses from its balanced skip list (Appendix D
//! and §IV-C/IV-D): converge-cast summation and root-to-all broadcast. They
//! double as executable validation of the analytical round costs charged by
//! the `dsg` crate.

mod broadcast;
mod sum;
mod tree;

pub use broadcast::{Broadcast, BroadcastMsg};
pub use sum::{ConvergecastSum, SumMsg};
pub use tree::Tree;
