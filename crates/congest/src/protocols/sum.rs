//! Distributed sum by converge-cast (Appendix D of the paper).
//!
//! Every node holds a number; partial sums climb the tree toward the root
//! (each node waits for all of its children, adds its own value, and
//! forwards one `O(log n)`-bit partial sum to its parent), after which the
//! root broadcasts the total back down. Over a tree of depth `d` the whole
//! protocol takes `O(d)` rounds, which is `O(log n)` when the tree is the
//! balanced skip list built by AMF.

use crate::message::{Envelope, MessageSize};
use crate::sim::Outbox;
use crate::NodeProtocol;

use super::tree::Tree;

/// Messages of the converge-cast sum protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SumMsg {
    /// A partial sum travelling toward the root.
    Partial(i64),
    /// The final total travelling back toward the leaves.
    Total(i64),
}

impl MessageSize for SumMsg {
    fn size_bits(&self) -> usize {
        // One tag bit plus a 64-bit value.
        65
    }
}

/// Per-node state of the distributed-sum protocol.
#[derive(Debug, Clone)]
pub struct ConvergecastSum {
    value: i64,
    parent: Option<usize>,
    children: Vec<usize>,
    pending_children: usize,
    partial: i64,
    sent_up: bool,
    total: Option<i64>,
    forwarded_down: bool,
}

impl ConvergecastSum {
    /// Builds the per-node protocol instances for summing `values` over
    /// `tree`.
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != tree.len()`.
    pub fn nodes(tree: &Tree, values: &[i64]) -> Vec<ConvergecastSum> {
        assert_eq!(values.len(), tree.len(), "one value per node is required");
        (0..tree.len())
            .map(|node| ConvergecastSum {
                value: values[node],
                parent: tree.parent(node),
                children: tree.children(node).to_vec(),
                pending_children: tree.children(node).len(),
                partial: 0,
                sent_up: false,
                total: None,
                forwarded_down: false,
            })
            .collect()
    }

    /// The total computed by the protocol, available on every node once the
    /// run has completed.
    pub fn total(&self) -> Option<i64> {
        self.total
    }

    fn try_send_up(&mut self, outbox: &mut Outbox<SumMsg>) {
        if self.sent_up || self.pending_children > 0 {
            return;
        }
        let sum = self.partial + self.value;
        match self.parent {
            Some(parent) => outbox.send(parent, SumMsg::Partial(sum)),
            None => {
                // Root: the converge-cast is complete.
                self.total = Some(sum);
            }
        }
        self.sent_up = true;
    }

    fn try_forward_down(&mut self, outbox: &mut Outbox<SumMsg>) {
        if self.forwarded_down {
            return;
        }
        if let Some(total) = self.total {
            for &child in &self.children {
                outbox.send(child, SumMsg::Total(total));
            }
            self.forwarded_down = true;
        }
    }
}

impl NodeProtocol for ConvergecastSum {
    type Message = SumMsg;

    fn on_start(&mut self, _me: usize, outbox: &mut Outbox<SumMsg>) {
        self.try_send_up(outbox);
        self.try_forward_down(outbox);
    }

    fn on_round(
        &mut self,
        _me: usize,
        _round: usize,
        inbox: &[Envelope<SumMsg>],
        outbox: &mut Outbox<SumMsg>,
    ) {
        for env in inbox {
            match env.payload {
                SumMsg::Partial(sum) => {
                    self.partial += sum;
                    self.pending_children = self.pending_children.saturating_sub(1);
                }
                SumMsg::Total(total) => {
                    self.total = Some(total);
                }
            }
        }
        self.try_send_up(outbox);
        self.try_forward_down(outbox);
    }

    fn is_halted(&self) -> bool {
        self.total.is_some() && self.forwarded_down
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SimConfig, Simulator, Topology};

    fn run_sum(tree: Tree, values: Vec<i64>) -> (Vec<ConvergecastSum>, crate::RunReport) {
        let n = tree.len();
        let topology = Topology::from_edges(n, tree.edges());
        let nodes = ConvergecastSum::nodes(&tree, &values);
        let mut sim = Simulator::new(topology, nodes, SimConfig::for_n(n).with_message_bits(80));
        let report = sim.run_to_completion().unwrap();
        (sim.nodes().to_vec(), report)
    }

    #[test]
    fn sums_over_a_path() {
        let n = 16;
        let values: Vec<i64> = (0..n as i64).collect();
        let (nodes, report) = run_sum(Tree::path(n), values.clone());
        let expected: i64 = values.iter().sum();
        for node in &nodes {
            assert_eq!(node.total(), Some(expected));
        }
        // Up the path and back down: at least 2 (n - 1) rounds.
        assert!(report.rounds >= 2 * (n - 1));
    }

    #[test]
    fn sums_over_a_skip_list_tree_in_logarithmic_rounds() {
        // A three-level skip list over 27 positions with regular spacing.
        let base: Vec<usize> = (0..27).collect();
        let mid: Vec<usize> = (0..27).step_by(3).collect();
        let top: Vec<usize> = (0..27).step_by(9).collect();
        let levels = vec![base, mid, top, vec![0]];
        let tree = Tree::from_skip_list_levels(&levels);
        let values: Vec<i64> = (0..27).map(|v| v as i64 * 2 + 1).collect();
        let expected: i64 = values.iter().sum();
        let (nodes, report) = run_sum(tree.clone(), values);
        for node in &nodes {
            assert_eq!(node.total(), Some(expected));
        }
        // The tree is shallow, so the protocol is much faster than the
        // 2 · 26 rounds a flat path would need.
        assert!(report.rounds <= 2 * (tree.depth() + 2) * 9);
        assert!(report.rounds < 2 * 26);
    }

    #[test]
    fn negative_values_are_summed_correctly() {
        let values = vec![-5i64, 10, -3, 7];
        let (nodes, _) = run_sum(Tree::path(4), values);
        assert_eq!(nodes[0].total(), Some(9));
    }

    #[test]
    fn single_node_sum_is_its_own_value() {
        let (nodes, report) = run_sum(Tree::path(1), vec![41]);
        assert_eq!(nodes[0].total(), Some(41));
        assert_eq!(report.messages, 0);
    }

    #[test]
    #[should_panic(expected = "one value per node")]
    fn mismatched_value_count_is_rejected() {
        let _ = ConvergecastSum::nodes(&Tree::path(3), &[1, 2]);
    }
}
