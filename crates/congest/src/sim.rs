//! The synchronous round-driven simulator.

use crate::error::CongestError;
use crate::message::{Envelope, MessageSize};
use crate::topology::Topology;
use crate::NodeProtocol;

/// Configuration for a simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimConfig {
    /// Maximum size of a single message, in bits (the CONGEST `O(log n)`
    /// budget).
    pub max_message_bits: usize,
    /// Maximum number of rounds before the run is aborted with
    /// [`CongestError::RoundLimitExceeded`].
    pub max_rounds: usize,
}

impl SimConfig {
    /// A budget appropriate for an `n`-node system: `c · ⌈log₂ n⌉` bits per
    /// message with the customary constant `c = 8` (enough for a key, a
    /// value and a few control bits), floored at 80 bits because the
    /// reference protocols carry one 64-bit machine word plus a tag, and a
    /// generous `n²` round limit.
    pub fn for_n(n: usize) -> Self {
        let log_n = (n.max(2) as f64).log2().ceil() as usize;
        SimConfig {
            max_message_bits: (8 * log_n.max(1)).max(80),
            max_rounds: (n * n).max(1024),
        }
    }

    /// Overrides the per-message bit budget.
    pub fn with_message_bits(mut self, bits: usize) -> Self {
        self.max_message_bits = bits;
        self
    }

    /// Overrides the round limit.
    pub fn with_max_rounds(mut self, rounds: usize) -> Self {
        self.max_rounds = rounds;
        self
    }
}

/// Statistics describing a completed run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RunReport {
    /// Number of rounds executed until every node halted.
    pub rounds: usize,
    /// Total number of messages delivered.
    pub messages: usize,
    /// Total number of bits delivered.
    pub bits: usize,
    /// Size of the largest single message observed, in bits.
    pub max_message_bits: usize,
}

/// The outgoing message buffer handed to protocol callbacks.
#[derive(Debug)]
pub struct Outbox<M> {
    to_send: Vec<(usize, M)>,
}

impl<M> Outbox<M> {
    fn new() -> Self {
        Outbox { to_send: Vec::new() }
    }

    /// Queues `payload` for delivery to `neighbor` at the beginning of the
    /// next round. Sending more than one message to the same neighbour in a
    /// round, sending to a non-neighbour, or exceeding the bit budget is
    /// reported as an error by the simulator when the round is committed.
    pub fn send(&mut self, neighbor: usize, payload: M) {
        self.to_send.push((neighbor, payload));
    }

    /// Number of messages queued so far this round.
    pub fn queued(&self) -> usize {
        self.to_send.len()
    }
}

/// The synchronous simulator: drives a set of per-node protocol instances
/// over a topology, enforcing the CONGEST constraints.
#[derive(Debug)]
pub struct Simulator<P: NodeProtocol> {
    topology: Topology,
    nodes: Vec<P>,
    config: SimConfig,
    /// Messages to be delivered at the beginning of the next round.
    in_flight: Vec<Vec<Envelope<P::Message>>>,
    report: RunReport,
    started: bool,
}

impl<P: NodeProtocol> Simulator<P> {
    /// Creates a simulator over `topology` with one protocol instance per
    /// node.
    ///
    /// # Panics
    ///
    /// Panics if the number of protocol instances differs from the topology
    /// size.
    pub fn new(topology: Topology, nodes: Vec<P>, config: SimConfig) -> Self {
        assert_eq!(
            topology.len(),
            nodes.len(),
            "one protocol instance per node is required"
        );
        let n = nodes.len();
        Simulator {
            topology,
            nodes,
            config,
            in_flight: vec![Vec::new(); n],
            report: RunReport::default(),
            started: false,
        }
    }

    /// Read access to the per-node protocol instances (e.g. to extract
    /// results after the run).
    pub fn nodes(&self) -> &[P] {
        &self.nodes
    }

    /// The simulation statistics accumulated so far.
    pub fn report(&self) -> RunReport {
        self.report
    }

    /// Runs `on_start` on every node (idempotent; called automatically by
    /// [`Simulator::step`] if needed).
    ///
    /// # Errors
    ///
    /// Returns an error if a start-up message violates a CONGEST constraint.
    pub fn start(&mut self) -> Result<(), CongestError> {
        if self.started {
            return Ok(());
        }
        self.started = true;
        let n = self.nodes.len();
        for me in 0..n {
            let mut outbox = Outbox::new();
            self.nodes[me].on_start(me, &mut outbox);
            self.commit_outbox(me, 0, outbox)?;
        }
        Ok(())
    }

    /// Executes one synchronous round: delivers all in-flight messages and
    /// invokes `on_round` on every node.
    ///
    /// # Errors
    ///
    /// Returns an error if any node violates the CONGEST constraints.
    pub fn step(&mut self) -> Result<(), CongestError> {
        self.start()?;
        let round = self.report.rounds;
        let n = self.nodes.len();
        let delivered: Vec<Vec<Envelope<P::Message>>> = self
            .in_flight
            .iter_mut()
            .map(std::mem::take)
            .collect();
        for (me, inbox) in delivered.iter().enumerate().take(n) {
            let mut outbox = Outbox::new();
            self.nodes[me].on_round(me, round, inbox, &mut outbox);
            self.commit_outbox(me, round, outbox)?;
        }
        self.report.rounds += 1;
        Ok(())
    }

    /// Runs rounds until every node reports [`NodeProtocol::is_halted`] and
    /// no messages are in flight, or the round limit is hit.
    ///
    /// # Errors
    ///
    /// Returns [`CongestError::RoundLimitExceeded`] if the protocol does not
    /// terminate, or any constraint violation encountered along the way.
    pub fn run_to_completion(&mut self) -> Result<RunReport, CongestError> {
        self.start()?;
        while !self.is_quiescent() {
            if self.report.rounds >= self.config.max_rounds {
                return Err(CongestError::RoundLimitExceeded {
                    limit: self.config.max_rounds,
                });
            }
            self.step()?;
        }
        Ok(self.report)
    }

    /// Returns `true` when every node has halted and no messages are in
    /// flight.
    pub fn is_quiescent(&self) -> bool {
        self.nodes.iter().all(NodeProtocol::is_halted)
            && self.in_flight.iter().all(Vec::is_empty)
    }

    fn commit_outbox(
        &mut self,
        from: usize,
        round: usize,
        outbox: Outbox<P::Message>,
    ) -> Result<(), CongestError> {
        let mut seen: Vec<usize> = Vec::new();
        for (to, payload) in outbox.to_send {
            if to >= self.nodes.len() {
                return Err(CongestError::UnknownNode(to));
            }
            if !self.topology.has_link(from, to) {
                return Err(CongestError::NoSuchLink { from, to });
            }
            if seen.contains(&to) {
                return Err(CongestError::LinkCapacityExceeded { from, to, round });
            }
            seen.push(to);
            let bits = payload.size_bits();
            if bits > self.config.max_message_bits {
                return Err(CongestError::MessageTooLarge {
                    from,
                    to,
                    bits,
                    limit: self.config.max_message_bits,
                });
            }
            self.report.messages += 1;
            self.report.bits += bits;
            self.report.max_message_bits = self.report.max_message_bits.max(bits);
            self.in_flight[to].push(Envelope { from, payload });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy protocol: node 0 sends a token rightward along a path; each
    /// node forwards it once and halts.
    #[derive(Debug)]
    struct TokenPass {
        n: usize,
        done: bool,
    }

    impl NodeProtocol for TokenPass {
        type Message = u64;

        fn on_start(&mut self, me: usize, outbox: &mut Outbox<u64>) {
            if me == 0 {
                outbox.send(1, 42);
                self.done = true;
            }
        }

        fn on_round(
            &mut self,
            me: usize,
            _round: usize,
            inbox: &[Envelope<u64>],
            outbox: &mut Outbox<u64>,
        ) {
            if self.done {
                return;
            }
            if let Some(env) = inbox.first() {
                if me + 1 < self.n {
                    outbox.send(me + 1, env.payload);
                }
                self.done = true;
            }
        }

        fn is_halted(&self) -> bool {
            self.done
        }
    }

    fn token_nodes(n: usize) -> Vec<TokenPass> {
        (0..n).map(|_| TokenPass { n, done: false }).collect()
    }

    #[test]
    fn token_traverses_the_path_in_n_minus_one_rounds() {
        let n = 10;
        let mut sim = Simulator::new(Topology::path(n), token_nodes(n), SimConfig::for_n(n));
        let report = sim.run_to_completion().unwrap();
        assert_eq!(report.messages, n - 1);
        // The token needs n - 1 hops; each hop is delivered in its own
        // round, plus the final round in which the last node halts.
        assert!(report.rounds >= n - 1);
        assert_eq!(report.max_message_bits, 64);
    }

    #[test]
    fn sending_without_a_link_is_rejected() {
        #[derive(Debug)]
        struct Bad;
        impl NodeProtocol for Bad {
            type Message = u64;
            fn on_start(&mut self, me: usize, outbox: &mut Outbox<u64>) {
                if me == 0 {
                    outbox.send(2, 1); // nodes 0 and 2 are not adjacent on a path
                }
            }
            fn on_round(&mut self, _: usize, _: usize, _: &[Envelope<u64>], _: &mut Outbox<u64>) {}
            fn is_halted(&self) -> bool {
                true
            }
        }
        let mut sim = Simulator::new(
            Topology::path(3),
            vec![Bad, Bad, Bad],
            SimConfig::for_n(3),
        );
        assert!(matches!(
            sim.run_to_completion(),
            Err(CongestError::NoSuchLink { from: 0, to: 2 })
        ));
    }

    #[test]
    fn double_send_on_one_link_is_rejected() {
        #[derive(Debug)]
        struct Chatty;
        impl NodeProtocol for Chatty {
            type Message = u64;
            fn on_start(&mut self, me: usize, outbox: &mut Outbox<u64>) {
                if me == 0 {
                    outbox.send(1, 1);
                    outbox.send(1, 2);
                }
            }
            fn on_round(&mut self, _: usize, _: usize, _: &[Envelope<u64>], _: &mut Outbox<u64>) {}
            fn is_halted(&self) -> bool {
                true
            }
        }
        let mut sim = Simulator::new(Topology::path(2), vec![Chatty, Chatty], SimConfig::for_n(2));
        assert!(matches!(
            sim.run_to_completion(),
            Err(CongestError::LinkCapacityExceeded { .. })
        ));
    }

    #[test]
    fn oversized_messages_are_rejected() {
        #[derive(Debug, Clone)]
        struct Huge;
        impl MessageSize for Huge {
            fn size_bits(&self) -> usize {
                1 << 20
            }
        }
        #[derive(Debug)]
        struct Sender;
        impl NodeProtocol for Sender {
            type Message = Huge;
            fn on_start(&mut self, me: usize, outbox: &mut Outbox<Huge>) {
                if me == 0 {
                    outbox.send(1, Huge);
                }
            }
            fn on_round(&mut self, _: usize, _: usize, _: &[Envelope<Huge>], _: &mut Outbox<Huge>) {}
            fn is_halted(&self) -> bool {
                true
            }
        }
        let mut sim = Simulator::new(Topology::path(2), vec![Sender, Sender], SimConfig::for_n(2));
        assert!(matches!(
            sim.run_to_completion(),
            Err(CongestError::MessageTooLarge { .. })
        ));
    }

    #[test]
    fn non_terminating_protocols_hit_the_round_limit() {
        #[derive(Debug)]
        struct Forever;
        impl NodeProtocol for Forever {
            type Message = u64;
            fn on_start(&mut self, _: usize, _: &mut Outbox<u64>) {}
            fn on_round(&mut self, _: usize, _: usize, _: &[Envelope<u64>], _: &mut Outbox<u64>) {}
            fn is_halted(&self) -> bool {
                false
            }
        }
        let config = SimConfig::for_n(2).with_max_rounds(10);
        let mut sim = Simulator::new(Topology::path(2), vec![Forever, Forever], config);
        assert!(matches!(
            sim.run_to_completion(),
            Err(CongestError::RoundLimitExceeded { limit: 10 })
        ));
    }

    #[test]
    fn config_for_n_scales_with_log_n() {
        let small = SimConfig::for_n(4);
        let large = SimConfig::for_n(1 << 20);
        assert!(large.max_message_bits > small.max_message_bits);
        assert_eq!(small.max_message_bits, 80);
        assert_eq!(large.max_message_bits, 8 * 20);
    }
}
