//! # dsg-congest — a synchronous CONGEST-model simulator
//!
//! The self-adjusting skip graph paper (Huq & Ghosh, ICDCS 2017) assumes the
//! classic synchronous **CONGEST** model of distributed computing:
//! computation proceeds in rounds, and in every round a node may send at
//! most one message of `O(log n)` bits over each of its links.
//!
//! This crate provides a small, deterministic, single-process simulator for
//! that model. Protocols are written as per-node state machines implementing
//! [`NodeProtocol`]; the [`Simulator`] drives them round by round over an
//! explicit [`Topology`], enforcing the per-link capacity and auditing
//! message sizes against a configurable bit budget.
//!
//! The crate also ships the two primitives the paper's algorithms rely on:
//!
//! * [`protocols::ConvergecastSum`] — the distributed-sum protocol of
//!   Appendix D (values climb a tree toward the root, which aggregates and
//!   broadcasts the total), and
//! * [`protocols::Broadcast`] — root-to-all dissemination of a single value,
//!   used to distribute the approximate median and new group-ids.
//!
//! The higher-level `dsg` crate charges round costs analytically for the
//! main algorithm (see `DESIGN.md`), and uses this simulator to validate
//! those analytical charges on the underlying primitives.
//!
//! # Example
//!
//! ```rust
//! use dsg_congest::{Simulator, SimConfig, Topology};
//! use dsg_congest::protocols::{ConvergecastSum, Tree};
//!
//! # fn main() -> Result<(), dsg_congest::CongestError> {
//! // A path of 8 nodes rooted at node 0.
//! let topology = Topology::path(8);
//! let tree = Tree::path(8);
//! let values = vec![1i64, 2, 3, 4, 5, 6, 7, 8];
//! let nodes = ConvergecastSum::nodes(&tree, &values);
//! let mut sim = Simulator::new(topology, nodes, SimConfig::for_n(8));
//! let report = sim.run_to_completion()?;
//! assert!(report.rounds >= 7); // information must travel the path length
//! assert_eq!(sim.nodes()[0].total(), Some(36));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod error;
pub mod message;
pub mod protocols;
pub mod sim;
pub mod topology;

pub use error::CongestError;
pub use message::{Envelope, MessageSize};
pub use sim::{Outbox, RunReport, SimConfig, Simulator};
pub use topology::Topology;

/// Per-node protocol logic driven by the [`Simulator`].
///
/// Implementations hold the node's local state. All methods receive the
/// node's own identifier so that a single type can serve every node.
pub trait NodeProtocol {
    /// The message type exchanged by this protocol.
    type Message: Clone + MessageSize;

    /// Invoked once before the first round; typically used by initiators to
    /// queue their first messages.
    fn on_start(&mut self, me: usize, outbox: &mut Outbox<Self::Message>);

    /// Invoked every round with the messages delivered to this node at the
    /// beginning of the round (sent by neighbours in the previous round).
    fn on_round(
        &mut self,
        me: usize,
        round: usize,
        inbox: &[Envelope<Self::Message>],
        outbox: &mut Outbox<Self::Message>,
    );

    /// Returns `true` once this node has terminated locally. The simulation
    /// stops when every node has terminated and no messages are in flight.
    fn is_halted(&self) -> bool;
}
