//! The engine: [`DynamicSkipGraph`] (Algorithm 1 end to end, epoch-batched).
//!
//! A `DynamicSkipGraph` owns a skip graph substrate, the per-node
//! self-adjusting state, and the configuration. [`communicate`] serves one
//! request exactly as Algorithm 1 prescribes: route, notify `l_α`, compute
//! priorities, merge the communicating groups, split level by level against
//! approximate medians, reassign group-ids/group-bases/timestamps, repair
//! the a-balance property, and account every CONGEST round consumed.
//! [`communicate_epoch`] is the batched generalisation behind
//! [`DsgSession::submit_batch`](crate::DsgSession::submit_batch): several
//! pairs per transformation epoch, one install pass. Applications should
//! drive the engine through a [`DsgSession`](crate::DsgSession).
//!
//! Application ("external") peer keys are plain `u64`s; internally they are
//! spaced out (multiplied by [`DynamicSkipGraph::KEY_SPACING`]) so that
//! dummy nodes always find an unused key between any two peers.
//!
//! [`communicate`]: DynamicSkipGraph::communicate
//! [`communicate_epoch`]: DynamicSkipGraph::communicate_epoch

use std::collections::{HashMap, HashSet};
use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;

use dsg_skipgraph::{
    failpoint, FastHashState, Key, MembershipUpdate, MembershipVector, NodeId, Prefix, SkipGraph,
};

use crate::amf::{AmfMedian, ExactMedian, MedianFinder};
use crate::config::{AdaptPolicy, DsgConfig, InstallStrategy, MedianStrategy};
use crate::cost::{CostBreakdown, RunStats};
use crate::dummy;
use crate::error::DsgError;
use crate::groups::{self, GroupScratch, GroupUpdateInput};
use crate::policy::{Admission, AdmissionGate, ClusterSignal, FreqSketch};
use crate::state::{NodeState, StateDelta, StateTable};
use crate::timestamps::{self, TimestampInput};
use crate::transform::{self, TransformInput, TransformOutcome, TransformPair, MAX_EPOCH_PAIRS};
use crate::Result;

/// What serving one communication request cost and produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RequestOutcome {
    /// The request time `t` (1-based index of the request).
    pub time: u64,
    /// Routing distance `d_{S_t}(σ_t)` (intermediate nodes on the path).
    pub routing_cost: usize,
    /// The highest common level `α` of the pair before the transformation.
    pub alpha: usize,
    /// The level `d'` at which the pair now forms a two-node list.
    pub pair_level: usize,
    /// Changed `(node, level)` pairs installed by the transformation — the
    /// quantity the differential install's work is proportional to (0 when
    /// the recomputed vectors all matched the installed ones).
    pub touched_pairs: usize,
    /// The per-step round accounting.
    pub breakdown: CostBreakdown,
    /// Structure height after the transformation.
    pub height_after: usize,
    /// Dummy nodes inserted to repair the a-balance property.
    pub dummies_inserted: usize,
}

impl RequestOutcome {
    /// Total cost of the request (`d + ρ + 1`).
    pub fn total_cost(&self) -> usize {
        self.breakdown.total_cost()
    }

    /// Transformation cost `ρ` in rounds.
    pub fn transformation_rounds(&self) -> usize {
        self.breakdown.transformation_rounds()
    }
}

/// Which stage of a mutating engine call is currently in progress — the
/// crash-consistency marker a fault-containment layer inspects after
/// catching a panic out of the engine.
///
/// The epoch pipeline is **plan-then-apply**: everything up to and
/// including the parallel plan stage only *reads* the graph and state
/// table, so a panic caught while the phase is [`EpochPhase::Planning`]
/// guarantees the engine is bit-for-bit the pre-epoch engine (only
/// recycled scratch capacity is lost). A panic caught during
/// [`EpochPhase::Applying`] may leave the structures half-mutated — the
/// caller must treat the engine as poisoned until
/// [`DynamicSkipGraph::recover_from_surviving`] rebuilds it.
///
/// The marker is maintained for [`communicate_epoch`], [`add_peer`] and
/// [`remove_peer`]; it is meaningful immediately after a caught panic
/// (clean `Err` returns happen before any mutation and may leave a stale
/// `Planning` marker, cleared by the next call or by
/// [`DynamicSkipGraph::acknowledge_plan_abort`]).
///
/// [`communicate_epoch`]: DynamicSkipGraph::communicate_epoch
/// [`add_peer`]: DynamicSkipGraph::add_peer
/// [`remove_peer`]: DynamicSkipGraph::remove_peer
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EpochPhase {
    /// No mutating call in progress.
    #[default]
    Idle,
    /// Inside the pure-read plan stage (routing, cluster planning, member
    /// snapshots): the engine state is untouched.
    Planning,
    /// Inside the apply stage (state-delta replay, membership install,
    /// dummy lifecycle): the engine state may be partially mutated.
    Applying,
}

/// What [`DynamicSkipGraph::recover_from_surviving`] rebuilt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Live (non-dummy) peers carried into the rebuilt structure.
    pub peers: usize,
    /// Dummy nodes of the poisoned structure that were discarded (the
    /// closing balance repair re-derives exactly the dummies the rebuilt
    /// topology needs).
    pub dropped_dummies: usize,
    /// Dummy nodes the post-rebuild balance repair created.
    pub dummies_recreated: usize,
    /// Height of the rebuilt structure.
    pub height: usize,
}

#[derive(Debug)]
enum MedianEngine {
    Amf(AmfMedian),
    Exact(ExactMedian),
}

impl MedianEngine {
    fn from_config(config: &DsgConfig) -> Self {
        match config.median {
            MedianStrategy::Amf => MedianEngine::Amf(AmfMedian::new(config.seed ^ 0xA3F)),
            MedianStrategy::Exact => MedianEngine::Exact(ExactMedian),
        }
    }

    fn as_finder(&mut self) -> &mut dyn MedianFinder {
        match self {
            MedianEngine::Amf(engine) => engine,
            MedianEngine::Exact(engine) => engine,
        }
    }

    /// Re-derives the random stream for one transformation cluster. The
    /// seed is a pure function of the session seed and the cluster's first
    /// request time, so the medians a cluster receives do not depend on
    /// which shard plans it, on the other clusters of the epoch, or on the
    /// planning order — the property the shard-equivalence and
    /// batch-equivalence suites pin down.
    fn reseed_for_cluster(&mut self, config_seed: u64, t_first: u64) {
        if let MedianEngine::Amf(engine) = self {
            engine.reseed(cluster_plan_seed(config_seed, t_first));
        }
    }
}

/// Per-worker-shard planning scratch: the median engine (recycled AMF
/// buffers, reseeded per cluster) and the transformation planner's
/// recycled overlay columns.
#[derive(Debug)]
struct PlanShard {
    median: MedianEngine,
    transform: transform::TransformScratch,
}

impl PlanShard {
    fn from_config(config: &DsgConfig) -> Self {
        PlanShard {
            median: MedianEngine::from_config(config),
            transform: transform::TransformScratch::default(),
        }
    }
}

/// Reusable per-cluster snapshot buffers (member list, old vectors,
/// per-pair group snapshots), pooled on the engine so a warm epoch's plan
/// stage allocates none of them — the same recycling the pre-split
/// `CommScratch` provided, now per cluster because plans of one epoch are
/// alive simultaneously.
#[derive(Debug, Default)]
struct ClusterBufs {
    members: Vec<NodeId>,
    old_mvecs: HashMap<NodeId, MembershipVector, FastHashState>,
    /// Pooled per-pair pre-merge group snapshots; only the first
    /// `pair_indices.len()` entries of a run are meaningful.
    pair_snaps: Vec<(
        HashSet<NodeId, FastHashState>,
        HashSet<NodeId, FastHashState>,
    )>,
}

impl ClusterBufs {
    fn reset(&mut self) {
        self.members.clear();
        self.old_mvecs.clear();
        for (u_set, v_set) in &mut self.pair_snaps {
            u_set.clear();
            v_set.clear();
        }
    }
}

/// Splitmix64-style derivation of a cluster's AMF seed from the session
/// seed and the cluster's first request time.
fn cluster_plan_seed(seed: u64, t_first: u64) -> u64 {
    let mut z = seed ^ t_first.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Reusable per-epoch buffers for [`DynamicSkipGraph::communicate_epoch`].
///
/// One epoch needs member snapshots of the rebuilt subtree roots, the
/// members' old and new membership vectors, and each communicating pair's
/// prior group member sets. Rebuilding those as fresh `Vec`/`HashMap`/
/// `HashSet` values on every request made the hot loop allocation-bound;
/// the buffers are owned by the network and cleared (capacity retained)
/// per use.
#[derive(Debug, Default)]
struct CommScratch {
    /// Post-transformation vectors of the members whose vector changed
    /// (rule T3 resolves through this map so the timestamp rules can run
    /// before the deferred epoch install).
    new_mvecs: HashMap<NodeId, MembershipVector, FastHashState>,
    groups: GroupScratch,
    /// Lists whose membership or split pattern the install changed — the
    /// scope of the differential dummy GC and balance repair. Filled by the
    /// batch installer (epoch-deduplicated) or derived from the diff plan
    /// on the per-node reference path; sorted + deduplicated before the
    /// repair so its order is deterministic.
    affected: Vec<(usize, Prefix)>,
    /// The slice of [`CommScratch::affected`] belonging to one cluster.
    cluster_affected: Vec<(usize, Prefix)>,
    /// Stale dummies found in affected lists, pending destruction (per-node
    /// reference path only; the batched path reconciles instead).
    stale_dummies: Vec<NodeId>,
    /// Salvage snapshot of the destroyed dummies (per-node reference path;
    /// the reconcile scratch carries its own).
    salvage: dummy::DummySalvage,
    /// Workspace of the dummy-reconciliation pass (batched path).
    reconcile: dummy::ReconcileScratch,
}

/// One cluster of an epoch: the pairs whose `l_α` subtrees overlap, merged
/// under the deepest list containing all their endpoints.
#[derive(Debug)]
struct ClusterPlan {
    /// Level of the merged subtree root list.
    root_level: usize,
    /// Prefix of the merged subtree root list (the meet of the member
    /// pairs' `l_α` prefixes).
    root_prefix: Prefix,
    /// Indices into the epoch's pair slice, ascending (submission order).
    pair_indices: Vec<usize>,
}

/// Per-cluster state produced by the (possibly parallel) *plan* stage of
/// one epoch and consumed by the serial apply/install/repair stages.
#[derive(Debug)]
struct ClusterRun {
    outcome: TransformOutcome,
    /// The transformation's recorded state writes, applied by the main
    /// thread in submission order.
    delta: StateDelta,
    /// Rounds of the per-pair `G_lower` broadcasts, parallel to
    /// [`ClusterPlan::pair_indices`] (filled by the serial group stage).
    group_rounds: Vec<usize>,
    /// Rounds charged for the transformation notification broadcast.
    notification_rounds: usize,
    /// The cluster's snapshot buffers — member list (ascending key order,
    /// dummies excluded), pre-transformation vectors, per-pair pre-merge
    /// group snapshots. Pooled on the engine and recycled across epochs.
    bufs: ClusterBufs,
    /// Affected lists derived from the diff plan (per-node reference path
    /// only; the batch installer collects them itself).
    derived_affected: Vec<(usize, Prefix)>,
}

/// What serving one transformation epoch produced: the per-request
/// outcomes plus the epoch-level accounting that proves the batched path's
/// claim — however many pairs an epoch serves, the transformation results
/// are pushed into the structure by (at most) one install pass.
#[derive(Debug, Clone, Default)]
pub struct EpochReport {
    /// Per-request outcomes, in submission order. Within an epoch, cluster
    /// -level quantities (touched pairs, transformation rounds, inserted
    /// dummies) are attributed to the first request of each cluster so that
    /// sums over the report equal the epoch totals.
    pub outcomes: Vec<RequestOutcome>,
    /// Number of transformation clusters the epoch formed (pairs with
    /// overlapping `l_α` subtrees merge; disjoint pairs keep their own) —
    /// admitted and gated clusters alike.
    pub clusters: usize,
    /// Number of transformation-install passes pushed into the skip graph:
    /// 1 under [`InstallStrategy::Batched`] regardless of the batch size,
    /// one per cluster under the per-node reference strategy.
    pub install_passes: usize,
    /// Changed `(node, level)` pairs installed across the epoch.
    pub touched_pairs: usize,
    /// Dummy nodes actually removed from the graph across the epoch. Under
    /// the reconciling lifecycle this counts only the genuinely stale (or
    /// evicted) dummies, not the standing ones reclaimed in place.
    pub dummies_destroyed: usize,
    /// Dummy slots the balance repairs established across the epoch —
    /// reclaimed standing dummies and created ones alike, so the count is
    /// lifecycle-independent (it equals what the destroy-then-recreate
    /// oracle reports as inserted).
    pub dummies_inserted: usize,
    /// Standing dummies the reconciliation reclaimed with zero graph
    /// mutation (0 under the per-node destroy/recreate oracle).
    pub dummies_reused: usize,
    /// Genuinely new dummies the reconciliation created — almost all
    /// through the bulk splice installer, stragglers below the bulk
    /// threshold directly (0 under the per-node oracle, which join-walks
    /// every placement).
    pub dummies_bulk_inserted: usize,
    /// Clusters the epoch's plan stage actually planned. Equal to
    /// [`EpochReport::clusters`] with the adaptation policy off; with the
    /// gate on, gated clusters are never planned, so this counts only the
    /// admitted ones.
    pub planned_clusters: usize,
    /// Worker shards the plan stages actually ran on: 1 when everything was
    /// planned inline, up to the configured [`DsgConfig::shards`] when
    /// clusters (or a single cluster's reconcile scan) fanned out.
    pub plan_shards: usize,
    /// Wall-clock nanoseconds the plan stages took (transformation planning
    /// plus dummy-reconciliation detection). Timing-only: excluded from the
    /// determinism comparisons.
    pub plan_wall_ns: u64,
    /// Requests whose cluster the admission gate declined to restructure
    /// this epoch: routed (and charged routing cost), but no
    /// transformation, install, or balance repair. 0 with the policy off.
    pub pairs_gated: u64,
    /// Cold clusters this epoch restructured via the per-epoch budget
    /// ([`PolicyConfig::epoch_budget`](crate::PolicyConfig::epoch_budget)).
    pub restructures_budgeted: u64,
    /// Frequency-sketch counter-halving passes run at this epoch's commit
    /// point.
    pub sketch_aging_passes: u64,
    /// Requests routed without restructuring because the epoch ran under
    /// a brownout verdict
    /// ([`communicate_epoch_degraded`](DynamicSkipGraph::communicate_epoch_degraded)
    /// with `brownout = true`): the admission gate was degraded to
    /// route-only for cold traffic. Disjoint from
    /// [`pairs_gated`](EpochReport::pairs_gated); 0 outside brownout.
    pub pairs_browned_out: u64,
}

/// A locally self-adjusting skip graph (the paper's DSG algorithm).
///
/// See the [crate-level documentation](crate) for an example.
#[derive(Debug)]
pub struct DynamicSkipGraph {
    graph: SkipGraph,
    states: StateTable,
    config: DsgConfig,
    /// One planning scratch (median engine + overlay columns) per worker
    /// shard; index 0 doubles as the serial engine. Each cluster reseeds
    /// the median engine it is planned on
    /// ([`MedianEngine::reseed_for_cluster`]), so the recycled buffers are
    /// the only thing a shard actually keeps between clusters.
    plan_shards_scratch: Vec<PlanShard>,
    /// Pooled [`ClusterBufs`], recycled across epochs.
    bufs_pool: Vec<ClusterBufs>,
    /// Pooled [`dummy::ReconcilePlan`] shells (one per cluster of an
    /// epoch), recycled across epochs so warm plans allocate nothing.
    reconcile_pool: Vec<dummy::ReconcilePlan>,
    rng: StdRng,
    time: u64,
    stats: RunStats,
    scratch: CommScratch,
    /// Crash-consistency marker; see [`EpochPhase`].
    phase: EpochPhase,
    /// The lists the most recent epoch's install touched (sorted,
    /// deduplicated) — the scope of [`DynamicSkipGraph::validate_fast`].
    last_affected: Vec<(usize, Prefix)>,
    /// The adaptation policy's frequency sketch. `Some` exactly when
    /// [`AdaptPolicy::Gated`](crate::AdaptPolicy::Gated) is configured;
    /// under the default `Always` policy no sketch exists and the engine
    /// is bit-identical to the pre-policy engine.
    sketch: Option<FreqSketch>,
}

/// Builds the policy sketch prescribed by `config`: `Some` iff gated.
fn sketch_for(config: &DsgConfig) -> Option<FreqSketch> {
    match config.policy.policy {
        AdaptPolicy::Always => None,
        AdaptPolicy::Gated => Some(FreqSketch::new(config.seed, config.policy.aging_period)),
    }
}

impl DynamicSkipGraph {
    /// Spacing between consecutive peer keys in the internal key space,
    /// leaving room for dummy-node keys in between.
    pub const KEY_SPACING: u64 = 1 << 20;

    /// Builds a network over the given peer keys with a *balanced* initial
    /// structure: the membership-vector bit of a peer at level `i` is bit
    /// `i - 1` of its rank, so every list splits exactly in half and the
    /// initial skip graph satisfies the a-balance property for every
    /// `a ≥ 1`, as the paper's model requires of `S₀ ∈ S`. Fresh
    /// self-adjusting state is registered for every peer.
    ///
    /// Use [`DynamicSkipGraph::new_random`] for the classic randomised
    /// construction instead.
    ///
    /// **Deprecation note:** `DsgSession::builder()` (see
    /// [`crate::prelude`]) is the supported construction path; this
    /// constructor remains as a thin shim.
    ///
    /// # Errors
    ///
    /// Returns [`DsgError::DuplicatePeer`] if a key appears twice.
    #[deprecated(note = "build a DsgSession via DsgSession::builder() (see dsg::prelude)")]
    pub fn new<I>(peers: I, config: DsgConfig) -> Result<Self>
    where
        I: IntoIterator<Item = u64>,
    {
        Self::build_balanced(peers, config)
    }

    /// Non-deprecated twin of [`DynamicSkipGraph::new`], used by the
    /// session builder.
    pub(crate) fn build_balanced<I>(peers: I, config: DsgConfig) -> Result<Self>
    where
        I: IntoIterator<Item = u64>,
    {
        let rng = StdRng::seed_from_u64(config.seed);
        let mut keys: Vec<u64> = peers.into_iter().collect();
        keys.sort_unstable();
        let n = keys.len() as u64;
        let height = if n <= 1 {
            0
        } else {
            (64 - (n - 1).leading_zeros()) as usize
        };
        let mut graph = SkipGraph::new();
        for (rank, peer) in keys.iter().enumerate() {
            let mut mvec = MembershipVector::empty();
            for level in 0..height {
                let bit = ((rank >> level) & 1) as u8;
                mvec.push(dsg_skipgraph::Bit::from_u8(bit))
                    .expect("height fits the vector");
            }
            graph
                .insert(Self::internal_key(*peer), mvec)
                .map_err(|_| DsgError::DuplicatePeer(*peer))?;
        }
        Self::finish_construction(graph, config, rng)
    }

    /// Builds a network with uniformly random initial membership vectors
    /// (the classic randomised skip graph construction). The initial
    /// structure is only a-balanced in expectation, so the first few
    /// requests may trigger more dummy-node repairs than with
    /// [`DynamicSkipGraph::new`].
    ///
    /// **Deprecation note:** prefer `DsgSession::builder().random_vectors()`
    /// (see [`crate::prelude`]).
    ///
    /// # Errors
    ///
    /// Returns [`DsgError::DuplicatePeer`] if a key appears twice.
    #[deprecated(note = "build a DsgSession via DsgSession::builder().random_vectors()")]
    pub fn new_random<I>(peers: I, config: DsgConfig) -> Result<Self>
    where
        I: IntoIterator<Item = u64>,
    {
        Self::build_random(peers, config)
    }

    /// Non-deprecated twin of [`DynamicSkipGraph::new_random`], used by
    /// the session builder.
    pub(crate) fn build_random<I>(peers: I, config: DsgConfig) -> Result<Self>
    where
        I: IntoIterator<Item = u64>,
    {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut graph = SkipGraph::new();
        for peer in peers {
            let key = Self::internal_key(peer);
            graph
                .insert_random(key, &mut rng)
                .map_err(|_| DsgError::DuplicatePeer(peer))?;
        }
        Self::finish_construction(graph, config, rng)
    }

    /// Builds a network from explicit `(peer key, membership vector)` pairs;
    /// useful for reconstructing the paper's worked examples and for tests.
    ///
    /// **Deprecation note:** prefer `DsgSession::builder().members(...)`
    /// (see [`crate::prelude`]).
    ///
    /// # Errors
    ///
    /// Returns [`DsgError::DuplicatePeer`] if a key appears twice.
    #[deprecated(note = "build a DsgSession via DsgSession::builder().members(...)")]
    pub fn from_parts<I>(members: I, config: DsgConfig) -> Result<Self>
    where
        I: IntoIterator<Item = (u64, MembershipVector)>,
    {
        Self::build_from_members(members, config)
    }

    /// Non-deprecated twin of [`DynamicSkipGraph::from_parts`], used by
    /// the session builder.
    pub(crate) fn build_from_members<I>(members: I, config: DsgConfig) -> Result<Self>
    where
        I: IntoIterator<Item = (u64, MembershipVector)>,
    {
        let rng = StdRng::seed_from_u64(config.seed);
        let mut graph = SkipGraph::new();
        for (peer, mvec) in members {
            let key = Self::internal_key(peer);
            graph
                .insert(key, mvec)
                .map_err(|_| DsgError::DuplicatePeer(peer))?;
        }
        Self::finish_construction(graph, config, rng)
    }

    fn finish_construction(graph: SkipGraph, config: DsgConfig, rng: StdRng) -> Result<Self> {
        let mut states = StateTable::new();
        for id in graph.node_ids().collect::<Vec<_>>() {
            let key = graph.key_of(id)?;
            let base = graph.mvec_of(id)?.len();
            states.register(id, key, base);
        }
        let plan_shards_scratch = vec![PlanShard::from_config(&config)];
        let sketch = sketch_for(&config);
        Ok(DynamicSkipGraph {
            graph,
            states,
            config,
            plan_shards_scratch,
            bufs_pool: Vec::new(),
            reconcile_pool: Vec::new(),
            rng,
            time: 0,
            stats: RunStats::default(),
            scratch: CommScratch::default(),
            phase: EpochPhase::Idle,
            last_affected: Vec::new(),
            sketch,
        })
    }

    // ------------------------------------------------------------------
    // Key mapping
    // ------------------------------------------------------------------

    fn internal_key(peer: u64) -> Key {
        Key::new((peer + 1) * Self::KEY_SPACING)
    }

    fn external_key(key: Key) -> u64 {
        key.value() / Self::KEY_SPACING - 1
    }

    fn peer_id(&self, peer: u64) -> Result<NodeId> {
        self.graph
            .node_by_key(Self::internal_key(peer))
            .ok_or(DsgError::UnknownPeer(peer))
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// The underlying skip graph (including any live dummy nodes).
    pub fn graph(&self) -> &SkipGraph {
        &self.graph
    }

    /// The configuration the network was built with.
    pub fn config(&self) -> &DsgConfig {
        &self.config
    }

    /// Number of peers (excluding dummy nodes).
    pub fn len(&self) -> usize {
        self.graph.len() - self.graph.dummy_count()
    }

    /// Returns `true` if the network has no peers.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Current structure height.
    pub fn height(&self) -> usize {
        self.graph.height()
    }

    /// The number of requests served so far (the current logical time).
    pub fn time(&self) -> u64 {
        self.time
    }

    /// Advances the logical clock to `to` without serving requests
    /// (monotone; earlier values are ignored). Used to reconstruct the
    /// paper's worked examples, which are positioned at a specific time.
    pub fn advance_time(&mut self, to: u64) {
        self.time = self.time.max(to);
    }

    /// Cumulative cost statistics.
    pub fn stats(&self) -> &RunStats {
        &self.stats
    }

    /// The external keys of all peers, in ascending order.
    pub fn peers(&self) -> Vec<u64> {
        self.graph
            .node_ids()
            .filter(|id| !self.graph.node(*id).map(|e| e.is_dummy()).unwrap_or(false))
            .map(|id| Self::external_key(self.graph.key_of(id).expect("live node")))
            .collect()
    }

    /// The self-adjusting state of a peer.
    ///
    /// # Errors
    ///
    /// Returns [`DsgError::UnknownPeer`] if the peer does not exist.
    pub fn peer_state(&self, peer: u64) -> Result<&NodeState> {
        let id = self.peer_id(peer)?;
        Ok(self.states.get(id))
    }

    /// Mutable access to a peer's self-adjusting state (used by tests and by
    /// fixtures that reconstruct the paper's worked examples).
    ///
    /// # Errors
    ///
    /// Returns [`DsgError::UnknownPeer`] if the peer does not exist.
    pub fn peer_state_mut(&mut self, peer: u64) -> Result<&mut NodeState> {
        let id = self.peer_id(peer)?;
        Ok(self.states.get_mut(id))
    }

    /// Routing distance (intermediate nodes) between two peers in the
    /// current topology, without serving a request.
    ///
    /// # Errors
    ///
    /// Returns [`DsgError::UnknownPeer`] if either peer does not exist.
    pub fn distance(&self, u: u64, v: u64) -> Result<usize> {
        let a = self.peer_id(u)?;
        let b = self.peer_id(v)?;
        Ok(self.graph.route_ids(a, b)?.intermediate_nodes())
    }

    /// The highest level at which the two peers share a linked list.
    ///
    /// # Errors
    ///
    /// Returns [`DsgError::UnknownPeer`] if either peer does not exist.
    pub fn common_level(&self, u: u64, v: u64) -> Result<usize> {
        let a = self.peer_id(u)?;
        let b = self.peer_id(v)?;
        Ok(self.graph.common_level(a, b)?)
    }

    /// Returns `true` if the two peers are connected by a direct link: the
    /// standard routing path between them contains no intermediate *peer*.
    /// After [`communicate`](Self::communicate) this always holds — the
    /// transformation puts the pair alone in a list of size two. A dummy
    /// node inserted afterwards to repair the a-balance property may slide
    /// into that list; dummies are routing-only placeholders that hold no
    /// data (§IV-F), so they are treated as transparent here.
    ///
    /// # Errors
    ///
    /// Returns [`DsgError::UnknownPeer`] if either peer does not exist.
    pub fn are_directly_linked(&self, u: u64, v: u64) -> Result<bool> {
        let a = self.peer_id(u)?;
        let b = self.peer_id(v)?;
        let route = self.graph.route_ids(a, b)?;
        let path = route.path();
        if path.len() <= 2 {
            return Ok(true);
        }
        Ok(path[1..path.len() - 1].iter().all(|hop| {
            self.graph
                .node(hop.node)
                .map(|e| e.is_dummy())
                .unwrap_or(false)
        }))
    }

    /// Routing distance between two peers counting only *peers* as
    /// intermediate nodes (dummy placeholders are transparent). This is the
    /// distance notion used by the working-set experiments.
    ///
    /// # Errors
    ///
    /// Returns [`DsgError::UnknownPeer`] if either peer does not exist.
    pub fn peer_distance(&self, u: u64, v: u64) -> Result<usize> {
        let a = self.peer_id(u)?;
        let b = self.peer_id(v)?;
        let route = self.graph.route_ids(a, b)?;
        let path = route.path();
        if path.len() <= 2 {
            return Ok(0);
        }
        Ok(path[1..path.len() - 1]
            .iter()
            .filter(|hop| {
                !self
                    .graph
                    .node(hop.node)
                    .map(|e| e.is_dummy())
                    .unwrap_or(false)
            })
            .count())
    }

    /// The number of live dummy nodes.
    pub fn dummy_count(&self) -> usize {
        self.graph.dummy_count()
    }

    /// Checks the structural invariants of the graph and the self-adjusting
    /// state (every live node has registered state and vice versa).
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant.
    pub fn validate(&self) -> Result<()> {
        self.graph.validate()?;
        for id in self.graph.node_ids() {
            if !self.states.contains(id) {
                return Err(DsgError::StateInvariantViolated(format!(
                    "live node {id} has no self-adjusting state"
                )));
            }
        }
        if self.states.len() != self.graph.len() {
            return Err(DsgError::StateInvariantViolated(format!(
                "{} states registered for {} live nodes",
                self.states.len(),
                self.graph.len()
            )));
        }
        Ok(())
    }

    /// The a-balance report of the current structure for the configured `a`.
    pub fn balance_report(&self) -> dsg_skipgraph::BalanceReport {
        self.graph.check_balance(self.config.a)
    }

    // ------------------------------------------------------------------
    // Fault containment: phase marker, fast audit, recovery
    // ------------------------------------------------------------------

    /// The crash-consistency marker of the mutating call currently (or most
    /// recently) in progress; see [`EpochPhase`].
    pub fn epoch_phase(&self) -> EpochPhase {
        self.phase
    }

    /// Clears a stale [`EpochPhase::Planning`] marker after the caller
    /// caught a plan-stage panic out of the engine: planning is a pure
    /// read, so the engine needs no repair — only the marker is reset and
    /// the aborted epoch's requests can simply be resubmitted.
    ///
    /// # Errors
    ///
    /// Returns [`DsgError::EnginePoisoned`] if the marker says
    /// [`EpochPhase::Applying`]: the fault hit mid-apply, and only
    /// [`recover_from_surviving`](Self::recover_from_surviving) may resume.
    pub fn acknowledge_plan_abort(&mut self) -> Result<()> {
        match self.phase {
            EpochPhase::Applying => Err(DsgError::EnginePoisoned),
            _ => {
                // The aborted epoch may have staged sketch increments
                // (staged during planning, committed only at the apply
                // transition); roll them back so a resubmission sees the
                // exact pre-epoch sketch.
                if let Some(sketch) = self.sketch.as_mut() {
                    sketch.rollback();
                }
                self.phase = EpochPhase::Idle;
                Ok(())
            }
        }
    }

    /// Cheap incremental audit: re-validates only the lists the most recent
    /// epoch's install touched (plus the node/state census), instead of
    /// every list in the structure as [`validate`](Self::validate) does.
    /// Lists freed since the install vacuously pass. Intended to run after
    /// every epoch (the service's tier-1 audit), with full
    /// [`validate`](Self::validate) calls interleaved at a coarser period
    /// for global coverage.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant.
    pub fn validate_fast(&self) -> Result<()> {
        for &(level, prefix) in &self.last_affected {
            self.graph.validate_list(level, prefix)?;
        }
        if self.states.len() != self.graph.len() {
            return Err(DsgError::StateInvariantViolated(format!(
                "{} states registered for {} live nodes",
                self.states.len(),
                self.graph.len()
            )));
        }
        Ok(())
    }

    /// Rebuilds the engine in place from the surviving state after an
    /// apply-stage fault left the structure half-mutated.
    ///
    /// Every peer that still has both a live non-dummy graph node and a
    /// state entry survives: the graph is rebuilt over the surviving keys
    /// with the balanced rank-derived membership vectors (a-balanced for
    /// every `a`, deterministic), per-peer timestamps are carried over, and
    /// the group structure is re-initialised against the fresh topology —
    /// exactly as for a newly built network. Dummy nodes of the poisoned
    /// structure are discarded; the closing balance repair re-derives any
    /// the new structure needs. The logical clock keeps its value so
    /// post-recovery requests continue the timestamp order.
    ///
    /// The rebuild walks arena entries only (no link traversal), so it is
    /// safe to call on an arbitrarily corrupted structure.
    ///
    /// # Errors
    ///
    /// Returns [`DsgError::StateInvariantViolated`] (or the substrate's
    /// error) if the surviving state is too damaged to rebuild from — e.g.
    /// two survivors claim the same key — and the closing deep
    /// [`validate`](Self::validate) error if the rebuilt structure is not
    /// clean (neither should happen; both would be bugs worth reporting).
    pub fn recover_from_surviving(&mut self) -> Result<RecoveryReport> {
        // Census of survivors, driven from the state table: only arena
        // entry reads, never link walks. A state whose node slot is freed
        // (or turned dummy) mid-apply is dropped; dummies are discarded
        // wholesale and re-derived below.
        let mut survivors: Vec<(Key, NodeState)> = Vec::new();
        let mut dropped_dummies = 0usize;
        for (id, state) in self.states.iter() {
            match self.graph.node(id) {
                Some(entry) if !entry.is_dummy() => {
                    survivors.push((state.key(), state.clone()));
                }
                Some(_) => dropped_dummies += 1,
                None => {}
            }
        }
        survivors.sort_unstable_by_key(|(key, _)| *key);

        // Fresh balanced structure over the surviving keys, as
        // `build_balanced` would construct it.
        let n = survivors.len() as u64;
        let height = if n <= 1 {
            0
        } else {
            (64 - (n - 1).leading_zeros()) as usize
        };
        let mut graph = SkipGraph::new();
        let mut states = StateTable::new();
        for (rank, (key, old)) in survivors.iter().enumerate() {
            let mut mvec = MembershipVector::empty();
            for level in 0..height {
                let bit = ((rank >> level) & 1) as u8;
                mvec.push(dsg_skipgraph::Bit::from_u8(bit))
                    .expect("height fits the vector");
            }
            let base = mvec.len();
            let id = graph.insert(*key, mvec)?;
            states.register(id, *key, base);
            let fresh = states.get_mut(id);
            for level in 0..old.stored_levels() {
                let t = old.timestamp(level);
                if t != 0 {
                    fresh.set_timestamp(level, t);
                }
            }
        }
        self.graph = graph;
        self.states = states;
        self.scratch = CommScratch::default();
        self.last_affected.clear();
        self.phase = EpochPhase::Idle;
        // Like the scratch, the policy sketch restarts fresh: the faulted
        // epoch's staged increments are unaccounted-for, and the service
        // cuts a fresh checkpoint right after recovery anyway.
        self.sketch = sketch_for(&self.config);

        // The balanced construction satisfies a-balance for every `a`, but
        // the invariant is re-derived rather than assumed.
        let mut dummies_recreated = 0usize;
        if self.config.maintain_balance {
            let repair =
                dummy::repair_balance(&mut self.graph, &mut self.states, self.config.a, &[], None);
            dummies_recreated = repair.inserted.len();
            self.stats.dummy_nodes_created += dummies_recreated;
        }
        self.stats.live_dummy_nodes = self.graph.dummy_count();

        self.validate()?;
        Ok(RecoveryReport {
            peers: survivors.len(),
            dropped_dummies,
            dummies_recreated,
            height: self.height(),
        })
    }

    // ------------------------------------------------------------------
    // Persistence: snapshot capture / restore
    // ------------------------------------------------------------------

    /// Captures a serializable image of the engine — graph nodes and
    /// membership vectors, the raw per-node state vectors, the logical
    /// clock, the RNG state, and the configuration — sufficient for
    /// [`restore_image`](Self::restore_image) to rebuild an engine that
    /// behaves identically from here on.
    ///
    /// Intended to run at the quiescent point between epochs
    /// ([`EpochPhase::Idle`]); capturing a poisoned, half-applied
    /// structure snapshots the damage. Run statistics and pooled scratch
    /// are not part of the image (they restart at zero, like the metrics
    /// of a restarted process).
    pub fn capture_image(&self) -> crate::persist::EngineImage {
        let mut nodes: Vec<crate::persist::NodeImage> = self
            .graph
            .node_ids()
            .map(|id| {
                let key = self.graph.key_of(id).expect("live node has a key");
                let entry = self.graph.node(id).expect("live node has an entry");
                let mvec = self.graph.mvec_of(id).expect("live node has a vector");
                let state = self.states.get(id);
                debug_assert_eq!(state.key(), key, "state key matches graph key");
                let (timestamps, group_ids, dominating) = state.raw_parts();
                crate::persist::NodeImage {
                    key: key.value(),
                    dummy: entry.is_dummy(),
                    mvec_bits: mvec.iter().map(|bit| bit.as_u8()).collect(),
                    group_base: state.group_base() as u64,
                    timestamps: timestamps.to_vec(),
                    group_ids: group_ids.to_vec(),
                    dominating: dominating.to_vec(),
                }
            })
            .collect();
        nodes.sort_unstable_by_key(|node| node.key);
        crate::persist::EngineImage {
            config: self.config,
            time: self.time,
            rng_state: self.rng.state(),
            nodes,
            sketch: self.sketch.as_ref().map(|sketch| sketch.to_image()),
        }
    }

    /// Rebuilds an engine from a captured image.
    ///
    /// Nodes are re-inserted in ascending key order, receiving fresh dense
    /// `NodeId`s — which is behaviour-preserving, because every
    /// result-affecting path in the engine orders by key, prefix, or level
    /// (`NodeId`-keyed containers are lookup-only). The restored engine
    /// continues the captured logical clock and RNG stream, so replayed
    /// requests (including joins, which draw membership bits from the
    /// RNG) produce bit-identical structure. Closes with a deep
    /// [`validate`](Self::validate).
    ///
    /// # Errors
    ///
    /// Returns the substrate's error if an image node cannot be inserted
    /// (duplicate or out-of-range keys in a tampered image) and the deep
    /// validation error if the rebuilt structure is not clean.
    pub fn restore_image(image: &crate::persist::EngineImage) -> Result<Self> {
        let mut graph = SkipGraph::new();
        let mut states = StateTable::new();
        for node in &image.nodes {
            let key = Key::new(node.key);
            let mvec = MembershipVector::from_bits(
                node.mvec_bits
                    .iter()
                    .map(|&bit| dsg_skipgraph::Bit::from_u8(bit)),
            )?;
            let id = if node.dummy {
                graph.insert_dummy(key, mvec)?
            } else {
                graph.insert(key, mvec)?
            };
            states.register_state(
                id,
                NodeState::from_raw_parts(
                    key,
                    node.group_base as usize,
                    node.timestamps.clone(),
                    node.group_ids.clone(),
                    node.dominating.clone(),
                ),
            );
        }
        let config = image.config;
        let plan_shards_scratch = vec![PlanShard::from_config(&config)];
        // A gated engine restores its sketch counters from the image (an
        // image without one — e.g. captured before the policy was turned
        // on — starts the sketch empty, like a fresh engine would).
        let sketch = match config.policy.policy {
            AdaptPolicy::Always => None,
            AdaptPolicy::Gated => Some(match &image.sketch {
                Some(saved) => {
                    FreqSketch::from_image(config.seed, config.policy.aging_period, saved)
                }
                None => FreqSketch::new(config.seed, config.policy.aging_period),
            }),
        };
        let mut engine = DynamicSkipGraph {
            graph,
            states,
            config,
            plan_shards_scratch,
            bufs_pool: Vec::new(),
            reconcile_pool: Vec::new(),
            rng: StdRng::from_state(image.rng_state),
            time: image.time,
            stats: RunStats::default(),
            scratch: CommScratch::default(),
            phase: EpochPhase::Idle,
            last_affected: Vec::new(),
            sketch,
        };
        engine.stats.live_dummy_nodes = engine.graph.dummy_count();
        engine.validate()?;
        Ok(engine)
    }

    // ------------------------------------------------------------------
    // Membership changes (§IV-G)
    // ------------------------------------------------------------------

    /// Adds a peer using the standard skip graph join, initialises its
    /// self-adjusting state, and repairs the a-balance property if the join
    /// violated it.
    ///
    /// # Errors
    ///
    /// Returns [`DsgError::DuplicatePeer`] if the peer already exists.
    pub fn add_peer(&mut self, peer: u64) -> Result<()> {
        if self.graph.node_by_key(Self::internal_key(peer)).is_some() {
            return Err(DsgError::DuplicatePeer(peer));
        }
        let introducer = self.graph.keys().next();
        // The join is the first mutation; everything above was a read.
        self.phase = EpochPhase::Applying;
        let outcome = self
            .graph
            .join(Self::internal_key(peer), introducer, &mut self.rng)?;
        self.states.register(
            outcome.node,
            Self::internal_key(peer),
            outcome.levels_joined,
        );
        if self.config.maintain_balance {
            let repair =
                dummy::repair_balance(&mut self.graph, &mut self.states, self.config.a, &[], None);
            self.stats.dummy_nodes_created += repair.inserted.len();
            self.stats.live_dummy_nodes = self.graph.dummy_count();
        }
        self.phase = EpochPhase::Idle;
        Ok(())
    }

    /// Removes a peer using the standard leave procedure and repairs the
    /// a-balance property if the departure violated it.
    ///
    /// # Errors
    ///
    /// Returns [`DsgError::UnknownPeer`] if the peer does not exist.
    pub fn remove_peer(&mut self, peer: u64) -> Result<()> {
        let id = self.peer_id(peer)?;
        // The leave is the first mutation; the lookup above was a read.
        self.phase = EpochPhase::Applying;
        self.graph.leave(Self::internal_key(peer))?;
        self.states.unregister(id);
        if self.config.maintain_balance {
            let repair =
                dummy::repair_balance(&mut self.graph, &mut self.states, self.config.a, &[], None);
            self.stats.dummy_nodes_created += repair.inserted.len();
            self.stats.live_dummy_nodes = self.graph.dummy_count();
        }
        self.phase = EpochPhase::Idle;
        Ok(())
    }

    // ------------------------------------------------------------------
    // Serving requests (Algorithm 1)
    // ------------------------------------------------------------------

    /// Serves a communication request from peer `u` to peer `v`: routes it
    /// in the current topology, then transforms the topology so that the two
    /// peers end up directly linked, per Algorithm 1 of the paper.
    /// Equivalent to a one-pair epoch of
    /// [`communicate_epoch`](Self::communicate_epoch).
    ///
    /// # Errors
    ///
    /// Returns [`DsgError::UnknownPeer`] for unknown peers and
    /// [`DsgError::SelfCommunication`] when `u == v`.
    pub fn communicate(&mut self, u: u64, v: u64) -> Result<RequestOutcome> {
        let mut report = self.communicate_epoch(&[(u, v)])?;
        Ok(report.outcomes.remove(0))
    }

    /// Serves up to [`MAX_EPOCH_PAIRS`] communication requests as **one
    /// transformation epoch**.
    ///
    /// Every pair is routed first (step 1a, in the pre-epoch topology);
    /// pairs whose `l_α` subtrees are disjoint then run their own
    /// transformations exactly as a sequence of [`communicate`] calls
    /// would, while pairs with *overlapping* subtrees are merged into one
    /// transformation over the deepest list containing all their endpoints
    /// (see [`TransformInput`] for the deterministic multi-pair split
    /// rules). All resulting membership changes are pushed into the
    /// structure by a **single**
    /// [`apply_membership_batch`](dsg_skipgraph::SkipGraph::apply_membership_batch)
    /// install pass — one epoch, one install, however many pairs — followed
    /// by one differential dummy-GC/a-balance-repair pass per cluster.
    ///
    /// For pairs with pairwise-disjoint subtrees the final structure and
    /// self-adjusting state are identical to serving the pairs one by one
    /// (the repository's differential proptests assert this); only the
    /// *reported* routing costs can differ, because every pair is routed
    /// before any transformation runs. Overlapping pairs are served by the
    /// merged transformation with the documented tie-break: more recent
    /// requests carry higher split priority.
    ///
    /// [`communicate`]: Self::communicate
    ///
    /// # Errors
    ///
    /// Returns [`DsgError::UnknownPeer`] / [`DsgError::SelfCommunication`]
    /// as [`communicate`] does, [`DsgError::BatchEndpointReuse`] if a peer
    /// appears as an endpoint twice (the session layer splits such batches
    /// into successive epochs), and [`DsgError::BatchTooLarge`] beyond
    /// [`MAX_EPOCH_PAIRS`] pairs. Validation happens before any state
    /// changes.
    pub fn communicate_epoch(&mut self, pairs: &[(u64, u64)]) -> Result<EpochReport> {
        self.communicate_epoch_degraded(pairs, false)
    }

    /// [`communicate_epoch`](Self::communicate_epoch) with an explicit
    /// **brownout** verdict: while `brownout` is `true` the admission gate
    /// degrades to route-only decisions for cold traffic — the per-epoch
    /// budget and the subtree-amortization signal are suspended, and only
    /// member-heat-hot clusters restructure — bounding the epoch's
    /// restructuring latency while the service rides out an overload.
    ///
    /// The flag is part of the epoch's deterministic input: the same
    /// pairs with the same flag on the same engine state produce the same
    /// structure, which is why a durable [`DsgService`] journals the
    /// verdict inside each WAL frame and crash replay re-applies it.
    /// Under the default [`AdaptPolicy::Always`] no gate exists, so the
    /// flag is a no-op (documented: brownout degrades gracefully only on
    /// gated engines).
    ///
    /// [`DsgService`]: crate::service::DsgService
    pub fn communicate_epoch_degraded(
        &mut self,
        pairs: &[(u64, u64)],
        brownout: bool,
    ) -> Result<EpochReport> {
        if pairs.is_empty() {
            return Ok(EpochReport::default());
        }
        if pairs.len() > MAX_EPOCH_PAIRS {
            return Err(DsgError::BatchTooLarge {
                size: pairs.len(),
                max: MAX_EPOCH_PAIRS,
            });
        }
        // Validate the whole epoch up front: known peers, no self requests,
        // no endpoint shared between two pairs (pair atomicity inside the
        // transformation relies on it).
        let mut ids: Vec<(NodeId, NodeId)> = Vec::with_capacity(pairs.len());
        {
            // ≤ 2 · MAX_EPOCH_PAIRS endpoints: a linear scan beats hashing.
            let mut seen: Vec<u64> = Vec::with_capacity(2 * pairs.len());
            for &(u, v) in pairs {
                if u == v {
                    return Err(DsgError::SelfCommunication(u));
                }
                let u_id = self.peer_id(u)?;
                let v_id = self.peer_id(v)?;
                for peer in [u, v] {
                    if seen.contains(&peer) {
                        return Err(DsgError::BatchEndpointReuse(peer));
                    }
                    seen.push(peer);
                }
                ids.push((u_id, v_id));
            }
        }
        // Everything from here to the Phase A-apply transition below is a
        // pure read: a panic caught while the phase is `Planning` leaves
        // the engine bit-for-bit untouched (only recycled scratch capacity
        // is lost to the unwind).
        self.phase = EpochPhase::Planning;
        let t0 = self.time;

        // Step 1a for every pair: establish the communications with
        // standard routing, and record each pair's α and `l_α` prefix in
        // the pre-epoch structure.
        let mut routing_costs = Vec::with_capacity(pairs.len());
        let mut alphas = Vec::with_capacity(pairs.len());
        let mut prefixes = Vec::with_capacity(pairs.len());
        for &(u_id, v_id) in &ids {
            let route = self.graph.route_ids(u_id, v_id)?;
            routing_costs.push(route.intermediate_nodes());
            let alpha = self.graph.common_level(u_id, v_id)?;
            alphas.push(alpha);
            prefixes.push(self.graph.mvec_of(u_id)?.prefix(alpha));
        }
        let clusters = cluster_pairs(&alphas, &prefixes);
        let per_node = matches!(self.config.install, InstallStrategy::PerNode);

        // Adaptation policy: the epoch's single deterministic update
        // point. Sketch increments are staged on the main thread in
        // submission order (after routing, before any planning), then each
        // cluster is judged by its hottest member pair; gated clusters
        // drop out of the planning set entirely — their pairs are routed
        // and clocked but never transformed. Staged increments commit at
        // the apply transition below and roll back on plan abort, so the
        // sketch obeys the same containment contract as the graph. Under
        // the default `AdaptPolicy::Always` no sketch exists and this
        // whole block is a no-op (the policy-off differential proptest
        // pins bit-identity).
        let mut pairs_gated = 0u64;
        let mut pairs_browned_out = 0u64;
        let mut restructures_budgeted = 0u64;
        let mut sketch_aging_passes = 0u64;
        let mut gated_clusters: Vec<ClusterPlan> = Vec::new();
        let clusters = if let Some(sketch) = self.sketch.as_mut() {
            for (pi, &(u, v)) in pairs.iter().enumerate() {
                sketch.stage_increment(FreqSketch::pair_key(u, v));
                sketch.stage_increment(FreqSketch::peer_key(u));
                sketch.stage_increment(FreqSketch::peer_key(v));
                sketch.stage_increment(FreqSketch::prefix_key(&prefixes[pi]));
            }
            let mut gate = AdmissionGate::new(
                self.config.policy.threshold,
                self.config.policy.epoch_budget,
            );
            let live_peers = ((self.graph.len() - self.graph.dummy_count()) as u64).max(1);
            // The community signal is relative, not absolute: an endpoint
            // only counts as hot when its estimate is well above the
            // *uniform per-peer share* of recent sketch updates (expected
            // share = updates/(2·peers); the bar is 8× that, plus the
            // halved residue a past aging pass leaves in the counters).
            // Without the bar, any network small relative to the aging
            // period sees every endpoint cross the fixed threshold under
            // purely uniform traffic and the gate fails open. Staged
            // updates are uncommitted, so the bar is a pure function of
            // pre-epoch state — deterministic across shards and replays.
            let aging_residue = if sketch.aging_passes() > 0 {
                self.config.policy.aging_period / 2
            } else {
                0
            };
            let community_bar = u64::from(self.config.policy.threshold).max(
                4u64.saturating_mul(sketch.updates_since_aging() + aging_residue) / live_peers,
            );
            // Collect every cluster's signals first, then judge the whole
            // epoch at once: the gate spends its budget on the hottest
            // cold clusters rather than first-come-first-served (and a
            // brownout verdict degrades it to route-only for cold
            // traffic).
            let signals: Vec<ClusterSignal> = clusters
                .iter()
                .map(|cluster| {
                    // Member heat: an exact pair repeat, or both endpoints
                    // individually hot (the community signal).
                    let max_estimate = cluster
                        .pair_indices
                        .iter()
                        .map(|&pi| {
                            let (u, v) = pairs[pi];
                            let pair = sketch.estimate(FreqSketch::pair_key(u, v));
                            let community = sketch
                                .estimate(FreqSketch::peer_key(u))
                                .min(sketch.estimate(FreqSketch::peer_key(v)));
                            if u64::from(community) >= community_bar {
                                pair.max(community)
                            } else {
                                pair
                            }
                        })
                        .max()
                        .unwrap_or(0);
                    // Subtree amortization: the rebuild touches roughly the
                    // peers under the merged l_α prefix (halving per bit in
                    // a balanced graph) — admit when recent subtree demand
                    // covers threshold × that cost.
                    let subtree_size = (live_peers >> cluster.root_prefix.level().min(63)).max(1);
                    let subtree_demand =
                        u64::from(sketch.estimate(FreqSketch::prefix_key(&cluster.root_prefix)));
                    ClusterSignal {
                        max_estimate,
                        subtree_demand,
                        subtree_size,
                    }
                })
                .collect();
            let verdicts = gate.judge(&signals, brownout);
            let mut admitted = Vec::with_capacity(clusters.len());
            for (cluster, verdict) in clusters.into_iter().zip(verdicts) {
                match verdict {
                    Admission::Hot => admitted.push(cluster),
                    Admission::Budgeted => {
                        restructures_budgeted += 1;
                        admitted.push(cluster);
                    }
                    Admission::Gated => {
                        if brownout {
                            pairs_browned_out += cluster.pair_indices.len() as u64;
                        } else {
                            pairs_gated += cluster.pair_indices.len() as u64;
                        }
                        gated_clusters.push(cluster);
                    }
                }
            }
            admitted
        } else {
            clusters
        };

        // Phase A-plan, all clusters (concurrently on worker shards when
        // configured): steps 1b–9 — member snapshot, pre-merge group
        // snapshots, and the transformation proper — run against a
        // *read-only* graph and state table, recording the state writes per
        // cluster ([`StateDelta`]). Clusters rebuild provably disjoint
        // subtrees, every planning read is confined to the cluster's own
        // subtree (or install-invariant), and every random draw is derived
        // per cluster rather than from a shared stream, so the plans are a
        // pure function of the pre-epoch structure — independent of
        // planning order and shard count (`tests/shard_equivalence.rs`
        // pins this bit for bit). The same plan-then-apply order runs at
        // `shards = 1`, just inline.
        let plan_started = Instant::now();
        let plan_shard_target = self.config.shards.min(clusters.len()).max(1);
        while self.plan_shards_scratch.len() < plan_shard_target {
            self.plan_shards_scratch
                .push(PlanShard::from_config(&self.config));
        }
        let mut cluster_runs: Vec<ClusterRun> = Vec::with_capacity(clusters.len());
        {
            let graph = &self.graph;
            let states = &self.states;
            let config = &self.config;
            // One pooled snapshot buffer per cluster (recycled at epoch
            // end), one planning scratch per shard.
            let mut bufs: Vec<ClusterBufs> = (0..clusters.len())
                .map(|_| {
                    let mut b = self.bufs_pool.pop().unwrap_or_default();
                    b.reset();
                    b
                })
                .collect();
            let mut shard_scratch = std::mem::take(&mut self.plan_shards_scratch);
            if plan_shard_target <= 1 {
                let shard = &mut shard_scratch[0];
                for (cluster, b) in clusters.iter().zip(bufs.drain(..)) {
                    cluster_runs.push(plan_cluster(
                        graph, states, config, shard, b, cluster, &ids, t0, per_node,
                    ));
                }
            } else {
                let mut slots: Vec<Option<ClusterRun>> =
                    (0..clusters.len()).map(|_| None).collect();
                // Hand each shard its round-robin share of (cluster, bufs)
                // jobs; any assignment yields identical plans.
                let mut jobs: Vec<Vec<(usize, ClusterBufs)>> =
                    (0..plan_shard_target).map(|_| Vec::new()).collect();
                for (ci, b) in bufs.drain(..).enumerate() {
                    jobs[ci % plan_shard_target].push((ci, b));
                }
                std::thread::scope(|scope| {
                    let clusters = &clusters;
                    let ids = &ids;
                    let handles: Vec<_> = shard_scratch
                        .iter_mut()
                        .take(plan_shard_target)
                        .zip(jobs.drain(..))
                        .map(|(shard, jobs)| {
                            scope.spawn(move || {
                                let mut planned = Vec::new();
                                for (ci, b) in jobs {
                                    planned.push((
                                        ci,
                                        plan_cluster(
                                            graph,
                                            states,
                                            config,
                                            shard,
                                            b,
                                            &clusters[ci],
                                            ids,
                                            t0,
                                            per_node,
                                        ),
                                    ));
                                }
                                planned
                            })
                        })
                        .collect();
                    for handle in handles {
                        for (ci, run) in handle.join().expect("plan shard panicked") {
                            slots[ci] = Some(run);
                        }
                    }
                });
                cluster_runs.extend(slots.into_iter().map(|slot| slot.expect("cluster planned")));
            }
            self.plan_shards_scratch = shard_scratch;
        }
        let mut plan_wall_ns = plan_started.elapsed().as_nanos() as u64;
        let mut plan_shards_used = plan_shard_target;

        // Phase A-apply, per cluster in submission order: replay the
        // recorded state writes, then steps 10–11 per pair — group-ids and
        // group-bases below the root (Appendix C) and the timestamp rules
        // T1–T6. The install stays *deferred*: every read these steps
        // perform is either confined to the cluster's own subtree or
        // provably install-invariant (lists at levels ≤ α keep their
        // membership; rule T3 resolves new vectors through the diff plan),
        // so running them before the merged install is observably identical
        // to the classic per-request order.
        //
        // First mutation of the epoch: from here on a caught panic means
        // the engine may be half-mutated. Logical time advances with the
        // same transition, so an abandoned plan leaves the clock — and
        // therefore a resubmission's timestamps — untouched as well.
        self.phase = EpochPhase::Applying;
        self.time += pairs.len() as u64;
        // Commit point of the policy sketch: the epoch's staged increments
        // become durable (an abandoned plan rolls them back instead) and
        // any due counter-halving passes run — after this epoch's
        // admission decisions, before the next epoch's.
        if let Some(sketch) = self.sketch.as_mut() {
            sketch_aging_passes = sketch.commit();
        }
        for (cluster, run) in clusters.iter().zip(&mut cluster_runs) {
            self.states.apply_delta(&run.delta);
            let scratch = &mut self.scratch;
            scratch.new_mvecs.clear();
            scratch
                .new_mvecs
                .extend(run.outcome.changes.iter().map(|c| (c.node, c.new_mvec)));
            let mut group_rounds = Vec::with_capacity(cluster.pair_indices.len());
            for (j, &pi) in cluster.pair_indices.iter().enumerate() {
                let (u_id, v_id) = ids[pi];
                let group_input = GroupUpdateInput {
                    u: u_id,
                    v: v_id,
                    alpha: cluster.root_level,
                    members_alpha: &run.bufs.members,
                    outcome: &run.outcome,
                };
                let group_outcome = groups::apply_group_updates(
                    &self.graph,
                    &mut self.states,
                    &group_input,
                    &mut scratch.groups,
                );
                group_rounds.push(group_outcome.rounds);
                let ts_input = TimestampInput {
                    u: u_id,
                    v: v_id,
                    t: t0 + pi as u64 + 1,
                    alpha: cluster.root_level,
                    pair_level: run.outcome.pair_levels[j],
                    members_alpha: &run.bufs.members,
                    old_mvecs: &run.bufs.old_mvecs,
                    new_mvecs: &scratch.new_mvecs,
                    u_group_before: &run.bufs.pair_snaps[j].0,
                    v_group_before: &run.bufs.pair_snaps[j].1,
                    glower_recipients: &scratch.groups.recipients,
                    outcome: &run.outcome,
                };
                timestamps::apply_timestamp_rules(&self.graph, &mut self.states, &ts_input);
            }
            run.group_rounds = group_rounds;
        }

        // Phase B: the install. Batched pushes the concatenated diff plans
        // of every cluster in ONE ordered splice pass — clusters rebuild
        // disjoint subtrees, so the merged batch touches each node at most
        // once and disjoint target lists commute. The per-node reference
        // path re-splices every member, cluster by cluster.
        let epoch_touched;
        let install_passes;
        match self.config.install {
            InstallStrategy::Batched => {
                let scratch = &mut self.scratch;
                if cluster_runs.len() == 1 {
                    epoch_touched = self.graph.apply_membership_batch_collecting(
                        &cluster_runs[0].outcome.changes,
                        &mut scratch.affected,
                    )?;
                } else {
                    let merged: Vec<MembershipUpdate> = cluster_runs
                        .iter()
                        .flat_map(|run| run.outcome.changes.iter().copied())
                        .collect();
                    epoch_touched = self
                        .graph
                        .apply_membership_batch_collecting(&merged, &mut scratch.affected)?;
                }
                // A fully-gated epoch pushes nothing; don't count a pass.
                install_passes = if cluster_runs.is_empty() { 0 } else { 1 };
            }
            InstallStrategy::PerNode => {
                let mut touched = 0usize;
                for (cluster, run) in clusters.iter().zip(&cluster_runs) {
                    for &node in &run.bufs.members {
                        if let Some(bits) = run.outcome.suffixes.get(&node) {
                            self.graph.set_membership_suffix(
                                node,
                                cluster.root_level + 1,
                                bits.iter().copied(),
                            )?;
                        }
                    }
                    touched += run.outcome.touched_pairs;
                }
                epoch_touched = touched;
                install_passes = cluster_runs.len();
            }
        }

        // Phase C-plan (batched lifecycle only): the dummy-reconciliation
        // detection pass is a pure read of the post-install graph, so the
        // plans of ALL clusters are computed up front — concurrently across
        // clusters when the epoch has several, chunked across shards inside
        // the single cluster's scan otherwise — and applied serially below
        // in submission order. Repairs of one cluster never touch another
        // cluster's subtree lists (roots are pairwise prefix-incomparable
        // and a repair dummy's prefix extends its own cluster's root), so
        // the pre-computed plans stay exact.
        let batched = !per_node;
        let mut cluster_affected_all: Vec<Vec<(usize, Prefix)>> = Vec::new();
        let mut reconcile_plans: Vec<Option<dummy::ReconcilePlan>> = Vec::new();
        if self.config.maintain_balance && batched {
            for cluster in &clusters {
                // The merged install collected one epoch-wide affected set;
                // every entry lies in exactly one cluster's subtree.
                // Deduplicate before the scan: a list freed and re-created
                // within one install pass appears twice in the collected
                // set, and each duplicate would re-scan the list (and
                // re-sight its dummies) for nothing.
                let mut affected: Vec<(usize, Prefix)> = self
                    .scratch
                    .affected
                    .iter()
                    .copied()
                    .filter(|(level, prefix)| {
                        *level >= cluster.root_level && cluster.root_prefix.is_prefix_of(prefix)
                    })
                    .collect();
                affected.sort_unstable();
                affected.dedup();
                cluster_affected_all.push(affected);
            }
            let plan_c_started = Instant::now();
            let a = self.config.a;
            // One pooled plan shell per cluster (recycled at epoch end).
            let mut shells: Vec<dummy::ReconcilePlan> = (0..clusters.len())
                .map(|_| self.reconcile_pool.pop().unwrap_or_default())
                .collect();
            if clusters.len() > 1 && self.config.shards > 1 {
                let graph = &self.graph;
                let shard_count = self.config.shards.min(clusters.len());
                let mut slots: Vec<Option<dummy::ReconcilePlan>> =
                    (0..clusters.len()).map(|_| None).collect();
                let mut jobs: Vec<Vec<(usize, dummy::ReconcilePlan)>> =
                    (0..shard_count).map(|_| Vec::new()).collect();
                for (ci, shell) in shells.drain(..).enumerate() {
                    jobs[ci % shard_count].push((ci, shell));
                }
                std::thread::scope(|scope| {
                    let clusters = &clusters;
                    let affected_all = &cluster_affected_all;
                    let handles: Vec<_> = jobs
                        .drain(..)
                        .map(|jobs| {
                            scope.spawn(move || {
                                let mut planned = Vec::new();
                                for (ci, mut shell) in jobs {
                                    dummy::plan_reconciliation(
                                        graph,
                                        a,
                                        clusters[ci].root_level,
                                        &affected_all[ci],
                                        1,
                                        &mut shell,
                                    );
                                    planned.push((ci, shell));
                                }
                                planned
                            })
                        })
                        .collect();
                    for handle in handles {
                        for (ci, plan) in handle.join().expect("reconcile plan shard panicked") {
                            slots[ci] = Some(plan);
                        }
                    }
                });
                reconcile_plans = slots;
                plan_shards_used = plan_shards_used.max(shard_count);
            } else {
                for ((cluster, affected), mut shell) in clusters
                    .iter()
                    .zip(&cluster_affected_all)
                    .zip(shells.drain(..))
                {
                    dummy::plan_reconciliation(
                        &self.graph,
                        a,
                        cluster.root_level,
                        affected,
                        self.config.shards,
                        &mut shell,
                    );
                    reconcile_plans.push(Some(shell));
                }
                if !cluster_affected_all.is_empty() {
                    plan_shards_used = plan_shards_used.max(
                        self.config
                            .shards
                            .clamp(1, cluster_affected_all[0].len().max(1)),
                    );
                }
            }
            plan_wall_ns += plan_c_started.elapsed().as_nanos() as u64;
        }

        // Phase C-apply, per cluster in submission order: differential
        // dummy GC and a-balance repair over the lists this cluster's
        // install actually changed, then the per-request outcome assembly.
        let mut outcomes: Vec<Option<RequestOutcome>> = pairs.iter().map(|_| None).collect();
        let mut total_dummies_inserted = 0usize;
        let mut total_dummies_destroyed = 0usize;
        let mut total_dummies_reused = 0usize;
        let mut total_dummies_bulk_inserted = 0usize;
        for (ci, (cluster, run)) in clusters.iter().zip(&cluster_runs).enumerate() {
            let mut dummies_inserted = 0usize;
            let mut repair_rounds = 0usize;
            if self.config.maintain_balance {
                let scratch = &mut self.scratch;
                if !batched {
                    scratch.cluster_affected.clear();
                    scratch
                        .cluster_affected
                        .extend_from_slice(&run.derived_affected);
                    scratch.cluster_affected.sort_unstable();
                    scratch.cluster_affected.dedup();
                }
                let protect: Vec<(Key, Key)> = cluster
                    .pair_indices
                    .iter()
                    .map(|&pi| {
                        (
                            Self::internal_key(pairs[pi].0),
                            Self::internal_key(pairs[pi].1),
                        )
                    })
                    .collect();
                if batched {
                    // Reconciling lifecycle: plan-then-apply. The plan's
                    // fused detection pass inventoried the standing dummies
                    // of the rebuilt lists (their prefix paths joined the
                    // re-check set exactly as if they were destroyed); the
                    // apply reclaims the standing dummies whose break
                    // re-derives onto them, bulk-splices the genuinely new
                    // ones, and sweeps only the genuinely stale ones.
                    let mut plan = reconcile_plans[ci]
                        .take()
                        .expect("cluster plan computed above");
                    let repair = dummy::repair_balance_reconciling_planned(
                        &mut self.graph,
                        &mut self.states,
                        self.config.a,
                        &protect,
                        cluster.root_level,
                        &mut plan,
                        &mut scratch.reconcile,
                    );
                    self.reconcile_pool.push(plan);
                    total_dummies_destroyed += repair.destroyed;
                    total_dummies_reused += repair.reused;
                    total_dummies_bulk_inserted += repair.bulk_inserted;
                    dummies_inserted = repair.placed.len();
                    repair_rounds = repair.rounds;
                    self.stats.dummy_nodes_created += repair.bulk_inserted;
                    self.stats.dummies_reused += repair.reused;
                    self.stats.dummies_bulk_inserted += repair.bulk_inserted;
                } else {
                    // Destroy-then-recreate oracle: stale dummies inside
                    // affected lists destroy themselves (the §IV-F
                    // notification, scoped to the rebuilt lists); their own
                    // prefix paths join the re-check set, since removing
                    // them can merge runs anywhere along the way.
                    total_dummies_destroyed += dummy::destroy_dummies_in_lists(
                        &mut self.graph,
                        &mut self.states,
                        cluster.root_level,
                        &mut scratch.cluster_affected,
                        &mut scratch.stale_dummies,
                        batched,
                        &mut scratch.salvage,
                    );
                    scratch.cluster_affected.sort_unstable();
                    scratch.cluster_affected.dedup();
                    let repair = dummy::repair_balance_incremental(
                        &mut self.graph,
                        &mut self.states,
                        self.config.a,
                        &protect,
                        cluster.root_level,
                        &mut scratch.cluster_affected,
                        &mut scratch.salvage,
                    );
                    dummies_inserted = repair.inserted.len();
                    repair_rounds = repair.rounds;
                    self.stats.dummy_nodes_created += dummies_inserted;
                }
                self.stats.live_dummy_nodes = self.graph.dummy_count();
            }
            total_dummies_inserted += dummies_inserted;

            // Per-request outcomes: cluster-level rounds and counters are
            // attributed to the first request of the cluster so that sums
            // over the epoch equal the epoch totals.
            let height_after = self.graph.height();
            for (j, &pi) in cluster.pair_indices.iter().enumerate() {
                let first = j == 0;
                let breakdown = CostBreakdown {
                    routing_cost: routing_costs[pi],
                    notification_rounds: if first { run.notification_rounds } else { 0 },
                    median_rounds: if first { run.outcome.median_rounds } else { 0 },
                    group_accounting_rounds: run.group_rounds[j]
                        + if first {
                            run.outcome.group_accounting_rounds
                        } else {
                            0
                        },
                    restructuring_rounds: if first {
                        run.outcome.restructuring_rounds + repair_rounds
                    } else {
                        0
                    },
                };
                self.stats.record(&breakdown, height_after);
                outcomes[pi] = Some(RequestOutcome {
                    time: t0 + pi as u64 + 1,
                    routing_cost: routing_costs[pi],
                    alpha: alphas[pi],
                    pair_level: run.outcome.pair_levels[j],
                    touched_pairs: if first { run.outcome.touched_pairs } else { 0 },
                    breakdown,
                    height_after,
                    dummies_inserted: if first { dummies_inserted } else { 0 },
                });
            }
        }
        // Gated clusters: routed only. Each request is charged its routing
        // cost (no transformation rounds — the whole point of the gate),
        // keeps its pre-epoch α as the pair level (the pair was not lifted
        // into a two-node list), and touches nothing.
        if !gated_clusters.is_empty() {
            let height_after = self.graph.height();
            for cluster in &gated_clusters {
                for &pi in &cluster.pair_indices {
                    let breakdown = CostBreakdown {
                        routing_cost: routing_costs[pi],
                        ..CostBreakdown::default()
                    };
                    self.stats.record(&breakdown, height_after);
                    outcomes[pi] = Some(RequestOutcome {
                        time: t0 + pi as u64 + 1,
                        routing_cost: routing_costs[pi],
                        alpha: alphas[pi],
                        pair_level: alphas[pi],
                        touched_pairs: 0,
                        breakdown,
                        height_after,
                        dummies_inserted: 0,
                    });
                }
            }
        }
        // Scope of the next `validate_fast` call: the lists this epoch's
        // install touched. The batched install collected one epoch-wide
        // affected set; the per-node path derived one per cluster.
        self.last_affected.clear();
        if batched {
            self.last_affected.extend_from_slice(&self.scratch.affected);
        } else {
            for run in &cluster_runs {
                self.last_affected.extend_from_slice(&run.derived_affected);
            }
        }
        self.last_affected.sort_unstable();
        self.last_affected.dedup();

        // Recycle the clusters' snapshot buffers for the next epoch.
        self.bufs_pool
            .extend(cluster_runs.drain(..).map(|run| run.bufs));
        self.stats.transform_touched_pairs += epoch_touched;
        self.stats.transform_install_passes += install_passes;
        self.stats.planned_clusters += clusters.len();
        self.stats.plan_shards = self.stats.plan_shards.max(plan_shards_used);
        self.stats.plan_wall_ns += plan_wall_ns;
        self.stats.pairs_gated += pairs_gated;
        self.stats.pairs_browned_out += pairs_browned_out;
        self.stats.restructures_budgeted += restructures_budgeted;
        self.stats.sketch_aging_passes += sketch_aging_passes;
        self.phase = EpochPhase::Idle;

        Ok(EpochReport {
            outcomes: outcomes
                .into_iter()
                .map(|o| o.expect("every pair belongs to exactly one cluster"))
                .collect(),
            clusters: clusters.len() + gated_clusters.len(),
            install_passes,
            touched_pairs: epoch_touched,
            dummies_destroyed: total_dummies_destroyed,
            dummies_inserted: total_dummies_inserted,
            dummies_reused: total_dummies_reused,
            dummies_bulk_inserted: total_dummies_bulk_inserted,
            planned_clusters: clusters.len(),
            plan_shards: plan_shards_used,
            plan_wall_ns,
            pairs_gated,
            restructures_budgeted,
            sketch_aging_passes,
            pairs_browned_out,
        })
    }
}

/// The *plan* job of one cluster — everything of phase A that reads the
/// pre-epoch structure: member snapshot, notification accounting, the
/// pre-merge group snapshots the timestamp rules need, the transformation
/// proper (planned, state writes recorded), and the per-node reference
/// path's derived affected-list set. Borrows the graph, states and config
/// immutably, so disjoint clusters can run on scoped worker threads; the
/// median engine is the per-shard scratch, reseeded per cluster.
#[allow(clippy::too_many_arguments)]
fn plan_cluster(
    graph: &SkipGraph,
    states: &StateTable,
    config: &DsgConfig,
    shard: &mut PlanShard,
    mut bufs: ClusterBufs,
    cluster: &ClusterPlan,
    ids: &[(NodeId, NodeId)],
    t0: u64,
    per_node: bool,
) -> ClusterRun {
    // Fault-injection site: a panic here unwinds out of a plan worker while
    // the engine is still untouched — the scenario the plan-abort
    // containment (engine bit-for-bit preserved) is tested against.
    failpoint::hit(failpoint::PLAN_WORKER);
    bufs.members.extend(
        graph
            .list_iter(cluster.root_level, cluster.root_prefix)
            .filter(|&id| !graph.node(id).map(|e| e.is_dummy()).unwrap_or(false)),
    );
    let members = &bufs.members;
    // Broadcasting the notification through the sub skip graph rooted at
    // the cluster root takes O(a · log |l_α|) rounds.
    let notification_rounds = 1 + config.a * (members.len().max(2) as f64).log2().ceil() as usize;

    // Snapshots needed by the timestamp rules.
    bufs.old_mvecs.extend(
        members
            .iter()
            .map(|&id| (id, graph.mvec_of(id).expect("member is live"))),
    );
    while bufs.pair_snaps.len() < cluster.pair_indices.len() {
        bufs.pair_snaps.push(Default::default());
    }
    for (j, &pi) in cluster.pair_indices.iter().enumerate() {
        let (u_id, v_id) = ids[pi];
        let gu = states.group_id(u_id, cluster.root_level);
        let gv = states.group_id(v_id, cluster.root_level);
        let (u_set, v_set) = &mut bufs.pair_snaps[j];
        u_set.extend(
            members.iter().copied().filter(|&x| {
                x != u_id && x != v_id && states.group_id(x, cluster.root_level) == gu
            }),
        );
        v_set.extend(
            members.iter().copied().filter(|&x| {
                x != u_id && x != v_id && states.group_id(x, cluster.root_level) == gv
            }),
        );
    }

    // Steps 2–9: the transformation proper (one engine run for the whole
    // cluster), planned against the read-only state table.
    let tpairs: Vec<TransformPair> = cluster
        .pair_indices
        .iter()
        .map(|&pi| TransformPair {
            u: ids[pi].0,
            v: ids[pi].1,
            t: t0 + pi as u64 + 1,
        })
        .collect();
    let input = TransformInput {
        pairs: &tpairs,
        alpha: cluster.root_level,
        a: config.a,
    };
    shard
        .median
        .reseed_for_cluster(config.seed, t0 + cluster.pair_indices[0] as u64 + 1);
    let (outcome, delta) = if per_node {
        transform::plan_transformation_with(
            graph,
            states,
            shard.median.as_finder(),
            &input,
            members,
            &mut shard.transform,
        )
    } else {
        // The batched installer only needs the diff plan, so the full
        // per-member suffix map is skipped.
        transform::plan_transformation_lean_with(
            graph,
            states,
            shard.median.as_finder(),
            &input,
            members,
            &mut shard.transform,
        )
    };

    // Per-node reference path: derive the affected lists from the diff
    // plan while the graph still holds the old vectors (the batch
    // installer collects them itself as it splices).
    let mut derived_affected = Vec::new();
    if per_node {
        for change in &outcome.changes {
            let old = &bufs.old_mvecs[&change.node];
            for level in (change.from_level - 1)..=old.len() {
                derived_affected.push((level, old.prefix(level)));
            }
            for level in (change.from_level - 1)..=change.new_mvec.len() {
                derived_affected.push((level, change.new_mvec.prefix(level)));
            }
        }
        derived_affected.sort_unstable();
        derived_affected.dedup();
    }
    ClusterRun {
        outcome,
        delta,
        group_rounds: Vec::new(),
        notification_rounds,
        bufs,
        derived_affected,
    }
}

/// Groups the epoch's pairs into clusters of overlapping `l_α` subtrees:
/// two pairs belong to one cluster when their root prefixes are comparable
/// (one is a prefix of the other), transitively. Each cluster's root is
/// the meet (longest common prefix) of its members' roots, recomputed
/// until no two cluster roots remain comparable, so distinct clusters
/// rebuild provably disjoint subtrees. Clusters are returned in submission
/// order of their first pair.
fn cluster_pairs(alphas: &[usize], prefixes: &[Prefix]) -> Vec<ClusterPlan> {
    let mut clusters: Vec<ClusterPlan> = prefixes
        .iter()
        .enumerate()
        .map(|(i, &prefix)| ClusterPlan {
            root_level: alphas[i],
            root_prefix: prefix,
            pair_indices: vec![i],
        })
        .collect();
    loop {
        let mut merged_any = false;
        'scan: for i in 0..clusters.len() {
            for j in (i + 1)..clusters.len() {
                let a = clusters[i].root_prefix;
                let b = clusters[j].root_prefix;
                if a.is_prefix_of(&b) || b.is_prefix_of(&a) {
                    let absorbed = clusters.remove(j);
                    let keeper = &mut clusters[i];
                    keeper.root_prefix = prefix_meet(a, b);
                    keeper.root_level = keeper.root_prefix.level();
                    keeper.pair_indices.extend(absorbed.pair_indices);
                    keeper.pair_indices.sort_unstable();
                    merged_any = true;
                    break 'scan;
                }
            }
        }
        if !merged_any {
            break;
        }
    }
    clusters.sort_by_key(|c| c.pair_indices[0]);
    clusters
}

/// The longest common prefix of two prefixes.
fn prefix_meet(mut a: Prefix, b: Prefix) -> Prefix {
    while !a.is_prefix_of(&b) {
        a = a
            .parent()
            .expect("the root prefix is a prefix of everything");
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;

    fn network(n: u64, seed: u64) -> DynamicSkipGraph {
        DynamicSkipGraph::build_balanced(0..n, DsgConfig::default().with_seed(seed)).unwrap()
    }

    #[test]
    fn construction_registers_state_for_every_peer() {
        let net = network(32, 1);
        assert_eq!(net.len(), 32);
        net.validate().unwrap();
        assert_eq!(net.peers().len(), 32);
        assert_eq!(net.peers()[0], 0);
        assert_eq!(net.peers()[31], 31);
    }

    #[test]
    fn duplicate_peers_are_rejected() {
        let err = DynamicSkipGraph::build_balanced([1, 2, 2], DsgConfig::default()).unwrap_err();
        assert_eq!(err, DsgError::DuplicatePeer(2));
    }

    #[test]
    fn communication_creates_a_direct_link() {
        let mut net = network(32, 2);
        let outcome = net.communicate(3, 20).unwrap();
        assert!(net.are_directly_linked(3, 20).unwrap());
        assert_eq!(net.peer_distance(3, 20).unwrap(), 0);
        assert!(outcome.total_cost() > 0);
        assert!(outcome.height_after <= 4 * 5 + 4);
        net.validate().unwrap();
    }

    #[test]
    fn repeated_pairs_route_in_constant_distance() {
        let mut net = network(64, 3);
        let first = net.communicate(5, 60).unwrap();
        let second = net.communicate(5, 60).unwrap();
        assert!(second.routing_cost <= 1);
        assert!(second.routing_cost <= first.routing_cost.max(1));
        // The pair stays directly linked as long as nobody else intervenes.
        for _ in 0..3 {
            let again = net.communicate(5, 60).unwrap();
            assert_eq!(again.routing_cost, 0);
        }
    }

    #[test]
    fn self_communication_is_rejected() {
        let mut net = network(8, 4);
        assert_eq!(
            net.communicate(3, 3).unwrap_err(),
            DsgError::SelfCommunication(3)
        );
    }

    #[test]
    fn unknown_peers_are_rejected() {
        let mut net = network(8, 5);
        assert_eq!(
            net.communicate(3, 99).unwrap_err(),
            DsgError::UnknownPeer(99)
        );
        assert!(net.distance(99, 1).is_err());
    }

    #[test]
    fn heights_stay_logarithmic_under_random_workload() {
        let mut net = network(64, 6);
        let log_n = 6.0;
        for i in 0..200u64 {
            let u = (i * 17) % 64;
            let v = (i * 31 + 7) % 64;
            if u == v {
                continue;
            }
            net.communicate(u, v).unwrap();
            assert!(
                (net.height() as f64) <= 4.0 * log_n + 4.0,
                "height {} too large after request {i}",
                net.height()
            );
        }
        net.validate().unwrap();
        // Lemma 5: the height right after any transformation is at most
        // log_{3/2} n plus the dummy-induced slack.
        let lemma5 = (64f64).ln() / 1.5f64.ln();
        assert!((net.stats().max_height as f64) <= lemma5 + 6.0);
    }

    #[test]
    fn balance_is_maintained_with_dummies() {
        let mut net =
            DynamicSkipGraph::build_balanced(0..48, DsgConfig::default().with_a(3).with_seed(7))
                .unwrap();
        for i in 0..100u64 {
            let u = i % 6;
            let v = 6 + (i % 42);
            if u == v {
                continue;
            }
            net.communicate(u, v).unwrap();
        }
        let report = net.balance_report();
        assert!(
            report.is_balanced(),
            "a-balance violated: {:?}",
            report.violations.first()
        );
        // The paper bounds the dummies needed per rearranged level by n / a;
        // this implementation repairs every level after each request, so the
        // live population is bounded by that per-level bound times the
        // height. Check a loose version of it (experiment E10 measures the
        // real distribution).
        let bound = (48 / 3) * (net.height() + 1);
        assert!(
            net.dummy_count() <= bound,
            "dummy count {} exceeds {bound}",
            net.dummy_count()
        );
        net.validate().unwrap();
    }

    #[test]
    fn exact_median_strategy_also_works() {
        let mut net = DynamicSkipGraph::build_balanced(
            0..32,
            DsgConfig::default()
                .with_median(MedianStrategy::Exact)
                .with_seed(8),
        )
        .unwrap();
        let outcome = net.communicate(1, 30).unwrap();
        assert!(net.are_directly_linked(1, 30).unwrap());
        assert!(outcome.breakdown.median_rounds > 0);
        net.validate().unwrap();
    }

    #[test]
    fn churn_and_traffic_interleave() {
        let mut net = network(32, 9);
        for i in 0..20u64 {
            net.communicate(i % 32, (i * 7 + 1) % 32).ok();
            net.add_peer(100 + i).unwrap();
            net.remove_peer(i % 32).unwrap();
        }
        net.validate().unwrap();
        assert_eq!(net.len(), 32);
    }

    #[test]
    fn stats_accumulate_over_requests() {
        let mut net = network(16, 10);
        net.communicate(0, 10).unwrap();
        net.communicate(3, 7).unwrap();
        let stats = net.stats();
        assert_eq!(stats.requests, 2);
        assert!(stats.total_cost >= stats.total_routing_cost + 2);
        assert!(stats.average_cost() > 0.0);
    }

    #[test]
    fn timestamps_reflect_the_latest_communication() {
        let mut net = network(16, 11);
        let outcome = net.communicate(2, 9).unwrap();
        let state_u = net.peer_state(2).unwrap();
        assert_eq!(state_u.timestamp(outcome.pair_level), outcome.time);
        let state_v = net.peer_state(9).unwrap();
        assert_eq!(state_v.timestamp(outcome.pair_level), outcome.time);
        // Both ends now share u's group-id at level α.
        assert_eq!(
            net.peer_state(9).unwrap().group_id(outcome.alpha),
            DynamicSkipGraph::internal_key(2).value()
        );
    }
}
