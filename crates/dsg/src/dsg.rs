//! The public driver: [`DynamicSkipGraph`] (Algorithm 1 end to end).
//!
//! A `DynamicSkipGraph` owns a skip graph substrate, the per-node
//! self-adjusting state, and the configuration. [`communicate`] serves one
//! request exactly as Algorithm 1 prescribes: route, notify `l_α`, compute
//! priorities, merge the communicating groups, split level by level against
//! approximate medians, reassign group-ids/group-bases/timestamps, repair
//! the a-balance property, and account every CONGEST round consumed.
//!
//! Application ("external") peer keys are plain `u64`s; internally they are
//! spaced out (multiplied by [`DynamicSkipGraph::KEY_SPACING`]) so that
//! dummy nodes always find an unused key between any two peers.
//!
//! [`communicate`]: DynamicSkipGraph::communicate

use std::collections::{HashMap, HashSet};

use rand::rngs::StdRng;
use rand::SeedableRng;

use dsg_skipgraph::{FastHashState, Key, MembershipVector, NodeId, Prefix, SkipGraph};

use crate::amf::{AmfMedian, ExactMedian, MedianFinder};
use crate::config::{DsgConfig, InstallStrategy, MedianStrategy};
use crate::cost::{CostBreakdown, RunStats};
use crate::dummy;
use crate::error::DsgError;
use crate::groups::{self, GroupScratch, GroupUpdateInput};
use crate::state::{NodeState, StateTable};
use crate::timestamps::{self, TimestampInput};
use crate::transform::{self, TransformInput};
use crate::Result;

/// What serving one communication request cost and produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RequestOutcome {
    /// The request time `t` (1-based index of the request).
    pub time: u64,
    /// Routing distance `d_{S_t}(σ_t)` (intermediate nodes on the path).
    pub routing_cost: usize,
    /// The highest common level `α` of the pair before the transformation.
    pub alpha: usize,
    /// The level `d'` at which the pair now forms a two-node list.
    pub pair_level: usize,
    /// Changed `(node, level)` pairs installed by the transformation — the
    /// quantity the differential install's work is proportional to (0 when
    /// the recomputed vectors all matched the installed ones).
    pub touched_pairs: usize,
    /// The per-step round accounting.
    pub breakdown: CostBreakdown,
    /// Structure height after the transformation.
    pub height_after: usize,
    /// Dummy nodes inserted to repair the a-balance property.
    pub dummies_inserted: usize,
}

impl RequestOutcome {
    /// Total cost of the request (`d + ρ + 1`).
    pub fn total_cost(&self) -> usize {
        self.breakdown.total_cost()
    }

    /// Transformation cost `ρ` in rounds.
    pub fn transformation_rounds(&self) -> usize {
        self.breakdown.transformation_rounds()
    }
}

#[derive(Debug)]
enum MedianEngine {
    Amf(AmfMedian),
    Exact(ExactMedian),
}

impl MedianEngine {
    fn as_finder(&mut self) -> &mut dyn MedianFinder {
        match self {
            MedianEngine::Amf(engine) => engine,
            MedianEngine::Exact(engine) => engine,
        }
    }
}

/// Reusable per-request buffers for [`DynamicSkipGraph::communicate`].
///
/// One request needs a member snapshot of `l_α`, the members' old
/// membership vectors, and the two communicating groups' prior member
/// sets. Rebuilding those as fresh `Vec`/`HashMap`/`HashSet` values on
/// every request made the hot loop allocation-bound; the buffers are now
/// owned by the network and cleared (capacity retained) per request.
#[derive(Debug, Default)]
struct CommScratch {
    members: Vec<NodeId>,
    old_mvecs: HashMap<NodeId, MembershipVector, FastHashState>,
    u_group_before: HashSet<NodeId, FastHashState>,
    v_group_before: HashSet<NodeId, FastHashState>,
    groups: GroupScratch,
    /// Lists whose membership or split pattern the install changed — the
    /// scope of the differential dummy GC and balance repair. Filled by the
    /// batch installer (epoch-deduplicated) or derived from the diff plan
    /// on the per-node reference path; sorted + deduplicated before the
    /// repair so its order is deterministic.
    affected: Vec<(usize, Prefix)>,
    /// Stale dummies found in affected lists, pending destruction.
    stale_dummies: Vec<NodeId>,
}

/// A locally self-adjusting skip graph (the paper's DSG algorithm).
///
/// See the [crate-level documentation](crate) for an example.
#[derive(Debug)]
pub struct DynamicSkipGraph {
    graph: SkipGraph,
    states: StateTable,
    config: DsgConfig,
    median: MedianEngine,
    rng: StdRng,
    time: u64,
    stats: RunStats,
    scratch: CommScratch,
}

impl DynamicSkipGraph {
    /// Spacing between consecutive peer keys in the internal key space,
    /// leaving room for dummy-node keys in between.
    pub const KEY_SPACING: u64 = 1 << 20;

    /// Builds a network over the given peer keys with a *balanced* initial
    /// structure: the membership-vector bit of a peer at level `i` is bit
    /// `i - 1` of its rank, so every list splits exactly in half and the
    /// initial skip graph satisfies the a-balance property for every
    /// `a ≥ 1`, as the paper's model requires of `S₀ ∈ S`. Fresh
    /// self-adjusting state is registered for every peer.
    ///
    /// Use [`DynamicSkipGraph::new_random`] for the classic randomised
    /// construction instead.
    ///
    /// # Errors
    ///
    /// Returns [`DsgError::DuplicatePeer`] if a key appears twice.
    pub fn new<I>(peers: I, config: DsgConfig) -> Result<Self>
    where
        I: IntoIterator<Item = u64>,
    {
        let rng = StdRng::seed_from_u64(config.seed);
        let mut keys: Vec<u64> = peers.into_iter().collect();
        keys.sort_unstable();
        let n = keys.len() as u64;
        let height = if n <= 1 {
            0
        } else {
            (64 - (n - 1).leading_zeros()) as usize
        };
        let mut graph = SkipGraph::new();
        for (rank, peer) in keys.iter().enumerate() {
            let mut mvec = MembershipVector::empty();
            for level in 0..height {
                let bit = ((rank >> level) & 1) as u8;
                mvec.push(dsg_skipgraph::Bit::from_u8(bit))
                    .expect("height fits the vector");
            }
            graph
                .insert(Self::internal_key(*peer), mvec)
                .map_err(|_| DsgError::DuplicatePeer(*peer))?;
        }
        Self::finish_construction(graph, config, rng)
    }

    /// Builds a network with uniformly random initial membership vectors
    /// (the classic randomised skip graph construction). The initial
    /// structure is only a-balanced in expectation, so the first few
    /// requests may trigger more dummy-node repairs than with
    /// [`DynamicSkipGraph::new`].
    ///
    /// # Errors
    ///
    /// Returns [`DsgError::DuplicatePeer`] if a key appears twice.
    pub fn new_random<I>(peers: I, config: DsgConfig) -> Result<Self>
    where
        I: IntoIterator<Item = u64>,
    {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut graph = SkipGraph::new();
        for peer in peers {
            let key = Self::internal_key(peer);
            graph
                .insert_random(key, &mut rng)
                .map_err(|_| DsgError::DuplicatePeer(peer))?;
        }
        Self::finish_construction(graph, config, rng)
    }

    /// Builds a network from explicit `(peer key, membership vector)` pairs;
    /// useful for reconstructing the paper's worked examples and for tests.
    ///
    /// # Errors
    ///
    /// Returns [`DsgError::DuplicatePeer`] if a key appears twice.
    pub fn from_parts<I>(members: I, config: DsgConfig) -> Result<Self>
    where
        I: IntoIterator<Item = (u64, MembershipVector)>,
    {
        let rng = StdRng::seed_from_u64(config.seed);
        let mut graph = SkipGraph::new();
        for (peer, mvec) in members {
            let key = Self::internal_key(peer);
            graph
                .insert(key, mvec)
                .map_err(|_| DsgError::DuplicatePeer(peer))?;
        }
        Self::finish_construction(graph, config, rng)
    }

    fn finish_construction(graph: SkipGraph, config: DsgConfig, rng: StdRng) -> Result<Self> {
        let mut states = StateTable::new();
        for id in graph.node_ids().collect::<Vec<_>>() {
            let key = graph.key_of(id)?;
            let base = graph.mvec_of(id)?.len();
            states.register(id, key, base);
        }
        let median = match config.median {
            MedianStrategy::Amf => MedianEngine::Amf(AmfMedian::new(config.seed ^ 0xA3F)),
            MedianStrategy::Exact => MedianEngine::Exact(ExactMedian),
        };
        Ok(DynamicSkipGraph {
            graph,
            states,
            config,
            median,
            rng,
            time: 0,
            stats: RunStats::default(),
            scratch: CommScratch::default(),
        })
    }

    // ------------------------------------------------------------------
    // Key mapping
    // ------------------------------------------------------------------

    fn internal_key(peer: u64) -> Key {
        Key::new((peer + 1) * Self::KEY_SPACING)
    }

    fn external_key(key: Key) -> u64 {
        key.value() / Self::KEY_SPACING - 1
    }

    fn peer_id(&self, peer: u64) -> Result<NodeId> {
        self.graph
            .node_by_key(Self::internal_key(peer))
            .ok_or(DsgError::UnknownPeer(peer))
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// The underlying skip graph (including any live dummy nodes).
    pub fn graph(&self) -> &SkipGraph {
        &self.graph
    }

    /// The configuration the network was built with.
    pub fn config(&self) -> &DsgConfig {
        &self.config
    }

    /// Number of peers (excluding dummy nodes).
    pub fn len(&self) -> usize {
        self.graph.len() - self.graph.dummy_count()
    }

    /// Returns `true` if the network has no peers.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Current structure height.
    pub fn height(&self) -> usize {
        self.graph.height()
    }

    /// The number of requests served so far (the current logical time).
    pub fn time(&self) -> u64 {
        self.time
    }

    /// Advances the logical clock to `to` without serving requests
    /// (monotone; earlier values are ignored). Used to reconstruct the
    /// paper's worked examples, which are positioned at a specific time.
    pub fn advance_time(&mut self, to: u64) {
        self.time = self.time.max(to);
    }

    /// Cumulative cost statistics.
    pub fn stats(&self) -> &RunStats {
        &self.stats
    }

    /// The external keys of all peers, in ascending order.
    pub fn peers(&self) -> Vec<u64> {
        self.graph
            .node_ids()
            .filter(|id| !self.graph.node(*id).map(|e| e.is_dummy()).unwrap_or(false))
            .map(|id| Self::external_key(self.graph.key_of(id).expect("live node")))
            .collect()
    }

    /// The self-adjusting state of a peer.
    ///
    /// # Errors
    ///
    /// Returns [`DsgError::UnknownPeer`] if the peer does not exist.
    pub fn peer_state(&self, peer: u64) -> Result<&NodeState> {
        let id = self.peer_id(peer)?;
        Ok(self.states.get(id))
    }

    /// Mutable access to a peer's self-adjusting state (used by tests and by
    /// fixtures that reconstruct the paper's worked examples).
    ///
    /// # Errors
    ///
    /// Returns [`DsgError::UnknownPeer`] if the peer does not exist.
    pub fn peer_state_mut(&mut self, peer: u64) -> Result<&mut NodeState> {
        let id = self.peer_id(peer)?;
        Ok(self.states.get_mut(id))
    }

    /// Routing distance (intermediate nodes) between two peers in the
    /// current topology, without serving a request.
    ///
    /// # Errors
    ///
    /// Returns [`DsgError::UnknownPeer`] if either peer does not exist.
    pub fn distance(&self, u: u64, v: u64) -> Result<usize> {
        let a = self.peer_id(u)?;
        let b = self.peer_id(v)?;
        Ok(self.graph.route_ids(a, b)?.intermediate_nodes())
    }

    /// The highest level at which the two peers share a linked list.
    ///
    /// # Errors
    ///
    /// Returns [`DsgError::UnknownPeer`] if either peer does not exist.
    pub fn common_level(&self, u: u64, v: u64) -> Result<usize> {
        let a = self.peer_id(u)?;
        let b = self.peer_id(v)?;
        Ok(self.graph.common_level(a, b)?)
    }

    /// Returns `true` if the two peers are connected by a direct link: the
    /// standard routing path between them contains no intermediate *peer*.
    /// After [`communicate`](Self::communicate) this always holds — the
    /// transformation puts the pair alone in a list of size two. A dummy
    /// node inserted afterwards to repair the a-balance property may slide
    /// into that list; dummies are routing-only placeholders that hold no
    /// data (§IV-F), so they are treated as transparent here.
    ///
    /// # Errors
    ///
    /// Returns [`DsgError::UnknownPeer`] if either peer does not exist.
    pub fn are_directly_linked(&self, u: u64, v: u64) -> Result<bool> {
        let a = self.peer_id(u)?;
        let b = self.peer_id(v)?;
        let route = self.graph.route_ids(a, b)?;
        let path = route.path();
        if path.len() <= 2 {
            return Ok(true);
        }
        Ok(path[1..path.len() - 1].iter().all(|hop| {
            self.graph
                .node(hop.node)
                .map(|e| e.is_dummy())
                .unwrap_or(false)
        }))
    }

    /// Routing distance between two peers counting only *peers* as
    /// intermediate nodes (dummy placeholders are transparent). This is the
    /// distance notion used by the working-set experiments.
    ///
    /// # Errors
    ///
    /// Returns [`DsgError::UnknownPeer`] if either peer does not exist.
    pub fn peer_distance(&self, u: u64, v: u64) -> Result<usize> {
        let a = self.peer_id(u)?;
        let b = self.peer_id(v)?;
        let route = self.graph.route_ids(a, b)?;
        let path = route.path();
        if path.len() <= 2 {
            return Ok(0);
        }
        Ok(path[1..path.len() - 1]
            .iter()
            .filter(|hop| {
                !self
                    .graph
                    .node(hop.node)
                    .map(|e| e.is_dummy())
                    .unwrap_or(false)
            })
            .count())
    }

    /// The number of live dummy nodes.
    pub fn dummy_count(&self) -> usize {
        self.graph.dummy_count()
    }

    /// Checks the structural invariants of the graph and the self-adjusting
    /// state (every live node has registered state and vice versa).
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant.
    pub fn validate(&self) -> Result<()> {
        self.graph.validate()?;
        for id in self.graph.node_ids() {
            if !self.states.contains(id) {
                return Err(DsgError::StateInvariantViolated(format!(
                    "live node {id} has no self-adjusting state"
                )));
            }
        }
        if self.states.len() != self.graph.len() {
            return Err(DsgError::StateInvariantViolated(format!(
                "{} states registered for {} live nodes",
                self.states.len(),
                self.graph.len()
            )));
        }
        Ok(())
    }

    /// The a-balance report of the current structure for the configured `a`.
    pub fn balance_report(&self) -> dsg_skipgraph::BalanceReport {
        self.graph.check_balance(self.config.a)
    }

    // ------------------------------------------------------------------
    // Membership changes (§IV-G)
    // ------------------------------------------------------------------

    /// Adds a peer using the standard skip graph join, initialises its
    /// self-adjusting state, and repairs the a-balance property if the join
    /// violated it.
    ///
    /// # Errors
    ///
    /// Returns [`DsgError::DuplicatePeer`] if the peer already exists.
    pub fn add_peer(&mut self, peer: u64) -> Result<()> {
        if self.graph.node_by_key(Self::internal_key(peer)).is_some() {
            return Err(DsgError::DuplicatePeer(peer));
        }
        let introducer = self
            .graph
            .keys()
            .next();
        let outcome = self
            .graph
            .join(Self::internal_key(peer), introducer, &mut self.rng)?;
        self.states.register(
            outcome.node,
            Self::internal_key(peer),
            outcome.levels_joined,
        );
        if self.config.maintain_balance {
            let repair = dummy::repair_balance(
                &mut self.graph,
                &mut self.states,
                self.config.a,
                None,
                None,
            );
            self.stats.dummy_nodes_created += repair.inserted.len();
            self.stats.live_dummy_nodes = self.graph.dummy_count();
        }
        Ok(())
    }

    /// Removes a peer using the standard leave procedure and repairs the
    /// a-balance property if the departure violated it.
    ///
    /// # Errors
    ///
    /// Returns [`DsgError::UnknownPeer`] if the peer does not exist.
    pub fn remove_peer(&mut self, peer: u64) -> Result<()> {
        let id = self.peer_id(peer)?;
        self.graph.leave(Self::internal_key(peer))?;
        self.states.unregister(id);
        if self.config.maintain_balance {
            let repair = dummy::repair_balance(
                &mut self.graph,
                &mut self.states,
                self.config.a,
                None,
                None,
            );
            self.stats.dummy_nodes_created += repair.inserted.len();
            self.stats.live_dummy_nodes = self.graph.dummy_count();
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Serving requests (Algorithm 1)
    // ------------------------------------------------------------------

    /// Serves a communication request from peer `u` to peer `v`: routes it
    /// in the current topology, then transforms the topology so that the two
    /// peers end up directly linked, per Algorithm 1 of the paper.
    ///
    /// # Errors
    ///
    /// Returns [`DsgError::UnknownPeer`] for unknown peers and
    /// [`DsgError::SelfCommunication`] when `u == v`.
    pub fn communicate(&mut self, u: u64, v: u64) -> Result<RequestOutcome> {
        if u == v {
            return Err(DsgError::SelfCommunication(u));
        }
        let u_id = self.peer_id(u)?;
        let v_id = self.peer_id(v)?;
        self.time += 1;
        let t = self.time;

        // Step 1a: establish the communication with standard routing.
        let route = self.graph.route_ids(u_id, v_id)?;
        let routing_cost = route.intermediate_nodes();

        // Step 1b: find α and notify every node of l_α. Dummy nodes are
        // routing-only placeholders, so they are excluded from the member
        // snapshot; unlike the wholesale self-destruction of §IV-F they are
        // garbage-collected *differentially* after the install below — only
        // the dummies sitting in lists the transformation actually rebuilt
        // are destroyed, the rest keep balancing lists that did not change.
        // The member snapshot and the group/vector snapshots below live in
        // reusable scratch buffers (cleared, capacity retained): after
        // warm-up a request allocates nothing here. `scratch` is a disjoint
        // field borrow, so it coexists with the graph/states borrows below.
        let alpha = self.graph.common_level(u_id, v_id)?;
        let scratch = &mut self.scratch;
        scratch.members.clear();
        {
            let graph = &self.graph;
            scratch.members.extend(
                graph
                    .list_of_iter(u_id, alpha)?
                    .filter(|&id| !graph.node(id).map(|e| e.is_dummy()).unwrap_or(false)),
            );
        }
        let members = &scratch.members;
        // Broadcasting the notification through the sub skip graph rooted at
        // l_α takes O(a · log |l_α|) rounds.
        let notification_rounds = 1 + self.config.a
            * (members.len().max(2) as f64).log2().ceil() as usize;

        // Snapshots needed by the timestamp rules.
        scratch.old_mvecs.clear();
        scratch.old_mvecs.extend(
            scratch
                .members
                .iter()
                .map(|&id| (id, self.graph.mvec_of(id).expect("member is live"))),
        );
        let gu = self.states.group_id(u_id, alpha);
        let gv = self.states.group_id(v_id, alpha);
        scratch.u_group_before.clear();
        scratch.u_group_before.extend(
            scratch
                .members
                .iter()
                .copied()
                .filter(|&x| x != u_id && x != v_id && self.states.group_id(x, alpha) == gu),
        );
        scratch.v_group_before.clear();
        scratch.v_group_before.extend(
            scratch
                .members
                .iter()
                .copied()
                .filter(|&x| x != u_id && x != v_id && self.states.group_id(x, alpha) == gv),
        );

        // Steps 2–9: the transformation proper.
        let input = TransformInput {
            u: u_id,
            v: v_id,
            t,
            alpha,
            a: self.config.a,
        };
        let outcome = match self.config.install {
            // The batched installer only needs the diff plan, so the full
            // per-member suffix map is skipped.
            InstallStrategy::Batched => transform::run_transformation_lean(
                &self.graph,
                &mut self.states,
                self.median.as_finder(),
                &input,
                members,
            ),
            InstallStrategy::PerNode => transform::run_transformation(
                &self.graph,
                &mut self.states,
                self.median.as_finder(),
                &input,
                members,
            ),
        };

        // Install the new membership vectors. The batched path touches only
        // the changed (node, level) pairs reported by the transformation;
        // the per-node path re-splices every member and is kept as the
        // observably-identical reference (differential tests compare the
        // two end to end).
        let touched_pairs = match self.config.install {
            InstallStrategy::Batched => self
                .graph
                .apply_membership_batch_collecting(&outcome.changes, &mut scratch.affected)?,
            InstallStrategy::PerNode => {
                for &node in members.iter() {
                    if let Some(bits) = outcome.suffixes.get(&node) {
                        self.graph
                            .set_membership_suffix(node, alpha + 1, bits.iter().copied())?;
                    }
                }
                outcome.touched_pairs
            }
        };

        // Step 10: group-ids and group-bases below α (Appendix C).
        let group_input = GroupUpdateInput {
            u: u_id,
            v: v_id,
            alpha,
            members_alpha: members,
            outcome: &outcome,
        };
        let group_outcome = groups::apply_group_updates(
            &self.graph,
            &mut self.states,
            &group_input,
            &mut scratch.groups,
        );

        // Step 11: timestamps (rules T1–T6).
        let ts_input = TimestampInput {
            u: u_id,
            v: v_id,
            t,
            alpha,
            members_alpha: members,
            old_mvecs: &scratch.old_mvecs,
            u_group_before: &scratch.u_group_before,
            v_group_before: &scratch.v_group_before,
            glower_recipients: &scratch.groups.recipients,
            outcome: &outcome,
        };
        timestamps::apply_timestamp_rules(&self.graph, &mut self.states, &ts_input);

        // Step 7 (deferred): differential dummy GC and a-balance repair.
        // The affected set — every list whose membership or next-level
        // split pattern the install changed — is derived from the diff
        // plan: for a node whose vector changed from `from_level` upward,
        // the lists along its old and new prefix paths from `from_level - 1`
        // (the deepest list whose *runs* changed) to its old/new top.
        let mut dummies_inserted = 0usize;
        let mut repair_rounds = 0usize;
        if self.config.maintain_balance {
            let batched = matches!(self.config.install, InstallStrategy::Batched);
            if !batched {
                // Reference path: derive the affected lists from the diff
                // plan (the batched installer collects them as it goes).
                scratch.affected.clear();
                for change in &outcome.changes {
                    let old = &scratch.old_mvecs[&change.node];
                    for level in (change.from_level - 1)..=old.len() {
                        scratch.affected.push((level, old.prefix(level)));
                    }
                    for level in (change.from_level - 1)..=change.new_mvec.len() {
                        scratch.affected.push((level, change.new_mvec.prefix(level)));
                    }
                }
                scratch.affected.sort_unstable();
                scratch.affected.dedup();
            }
            // Stale dummies inside affected lists destroy themselves (the
            // §IV-F notification, scoped to the rebuilt lists); their own
            // prefix paths join the re-check set, since removing them can
            // merge runs anywhere along the way.
            dummy::destroy_dummies_in_lists(
                &mut self.graph,
                &mut self.states,
                alpha,
                &mut scratch.affected,
                &mut scratch.stale_dummies,
                batched,
            );
            scratch.affected.sort_unstable();
            scratch.affected.dedup();
            let repair = dummy::repair_balance_incremental(
                &mut self.graph,
                &mut self.states,
                self.config.a,
                Some((Self::internal_key(u), Self::internal_key(v))),
                alpha,
                &mut scratch.affected,
            );
            dummies_inserted = repair.inserted.len();
            repair_rounds = repair.rounds;
            self.stats.dummy_nodes_created += dummies_inserted;
            self.stats.live_dummy_nodes = self.graph.dummy_count();
        }

        let breakdown = CostBreakdown {
            routing_cost,
            notification_rounds,
            median_rounds: outcome.median_rounds,
            group_accounting_rounds: outcome.group_accounting_rounds + group_outcome.rounds,
            restructuring_rounds: outcome.restructuring_rounds + repair_rounds,
        };
        let height_after = self.graph.height();
        self.stats.record(&breakdown, height_after);
        self.stats.transform_touched_pairs += touched_pairs;

        Ok(RequestOutcome {
            time: t,
            routing_cost,
            alpha,
            pair_level: outcome.pair_level,
            touched_pairs,
            breakdown,
            height_after,
            dummies_inserted,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn network(n: u64, seed: u64) -> DynamicSkipGraph {
        DynamicSkipGraph::new(0..n, DsgConfig::default().with_seed(seed)).unwrap()
    }

    #[test]
    fn construction_registers_state_for_every_peer() {
        let net = network(32, 1);
        assert_eq!(net.len(), 32);
        net.validate().unwrap();
        assert_eq!(net.peers().len(), 32);
        assert_eq!(net.peers()[0], 0);
        assert_eq!(net.peers()[31], 31);
    }

    #[test]
    fn duplicate_peers_are_rejected() {
        let err = DynamicSkipGraph::new([1, 2, 2], DsgConfig::default()).unwrap_err();
        assert_eq!(err, DsgError::DuplicatePeer(2));
    }

    #[test]
    fn communication_creates_a_direct_link() {
        let mut net = network(32, 2);
        let outcome = net.communicate(3, 20).unwrap();
        assert!(net.are_directly_linked(3, 20).unwrap());
        assert_eq!(net.peer_distance(3, 20).unwrap(), 0);
        assert!(outcome.total_cost() > 0);
        assert!(outcome.height_after <= 4 * 5 + 4);
        net.validate().unwrap();
    }

    #[test]
    fn repeated_pairs_route_in_constant_distance() {
        let mut net = network(64, 3);
        let first = net.communicate(5, 60).unwrap();
        let second = net.communicate(5, 60).unwrap();
        assert!(second.routing_cost <= 1);
        assert!(second.routing_cost <= first.routing_cost.max(1));
        // The pair stays directly linked as long as nobody else intervenes.
        for _ in 0..3 {
            let again = net.communicate(5, 60).unwrap();
            assert_eq!(again.routing_cost, 0);
        }
    }

    #[test]
    fn self_communication_is_rejected() {
        let mut net = network(8, 4);
        assert_eq!(
            net.communicate(3, 3).unwrap_err(),
            DsgError::SelfCommunication(3)
        );
    }

    #[test]
    fn unknown_peers_are_rejected() {
        let mut net = network(8, 5);
        assert_eq!(
            net.communicate(3, 99).unwrap_err(),
            DsgError::UnknownPeer(99)
        );
        assert!(net.distance(99, 1).is_err());
    }

    #[test]
    fn heights_stay_logarithmic_under_random_workload() {
        let mut net = network(64, 6);
        let log_n = 6.0;
        for i in 0..200u64 {
            let u = (i * 17) % 64;
            let v = (i * 31 + 7) % 64;
            if u == v {
                continue;
            }
            net.communicate(u, v).unwrap();
            assert!(
                (net.height() as f64) <= 4.0 * log_n + 4.0,
                "height {} too large after request {i}",
                net.height()
            );
        }
        net.validate().unwrap();
        // Lemma 5: the height right after any transformation is at most
        // log_{3/2} n plus the dummy-induced slack.
        let lemma5 = (64f64).ln() / 1.5f64.ln();
        assert!((net.stats().max_height as f64) <= lemma5 + 6.0);
    }

    #[test]
    fn balance_is_maintained_with_dummies() {
        let mut net = DynamicSkipGraph::new(0..48, DsgConfig::default().with_a(3).with_seed(7))
            .unwrap();
        for i in 0..100u64 {
            let u = i % 6;
            let v = 6 + (i % 42);
            if u == v {
                continue;
            }
            net.communicate(u, v).unwrap();
        }
        let report = net.balance_report();
        assert!(
            report.is_balanced(),
            "a-balance violated: {:?}",
            report.violations.first()
        );
        // The paper bounds the dummies needed per rearranged level by n / a;
        // this implementation repairs every level after each request, so the
        // live population is bounded by that per-level bound times the
        // height. Check a loose version of it (experiment E10 measures the
        // real distribution).
        let bound = (48 / 3) * (net.height() + 1);
        assert!(
            net.dummy_count() <= bound,
            "dummy count {} exceeds {bound}",
            net.dummy_count()
        );
        net.validate().unwrap();
    }

    #[test]
    fn exact_median_strategy_also_works() {
        let mut net = DynamicSkipGraph::new(
            0..32,
            DsgConfig::default()
                .with_median(MedianStrategy::Exact)
                .with_seed(8),
        )
        .unwrap();
        let outcome = net.communicate(1, 30).unwrap();
        assert!(net.are_directly_linked(1, 30).unwrap());
        assert!(outcome.breakdown.median_rounds > 0);
        net.validate().unwrap();
    }

    #[test]
    fn churn_and_traffic_interleave() {
        let mut net = network(32, 9);
        for i in 0..20u64 {
            net.communicate(i % 32, (i * 7 + 1) % 32).ok();
            net.add_peer(100 + i).unwrap();
            net.remove_peer(i % 32).unwrap();
        }
        net.validate().unwrap();
        assert_eq!(net.len(), 32);
    }

    #[test]
    fn stats_accumulate_over_requests() {
        let mut net = network(16, 10);
        net.communicate(0, 10).unwrap();
        net.communicate(3, 7).unwrap();
        let stats = net.stats();
        assert_eq!(stats.requests, 2);
        assert!(stats.total_cost >= stats.total_routing_cost + 2);
        assert!(stats.average_cost() > 0.0);
    }

    #[test]
    fn timestamps_reflect_the_latest_communication() {
        let mut net = network(16, 11);
        let outcome = net.communicate(2, 9).unwrap();
        let state_u = net.peer_state(2).unwrap();
        assert_eq!(state_u.timestamp(outcome.pair_level), outcome.time);
        let state_v = net.peer_state(9).unwrap();
        assert_eq!(state_v.timestamp(outcome.pair_level), outcome.time);
        // Both ends now share u's group-id at level α.
        assert_eq!(
            net.peer_state(9).unwrap().group_id(outcome.alpha),
            DynamicSkipGraph::internal_key(2).value()
        );
    }
}
