//! Cost accounting (paper §III and Theorem 3).
//!
//! The cost of serving request `σ_t = (u, v)` is defined by the paper as
//!
//! ```text
//! d_{S_t}(σ_t)  +  ρ(A, S_t, σ_t)  +  1
//! ```
//!
//! where `d` is the routing distance (number of intermediate nodes on the
//! standard routing path) and `ρ` is the *transformation cost* — the number
//! of synchronous CONGEST rounds the topology reconstruction takes.
//!
//! The transformation cost charged by this reproduction decomposes exactly
//! along the steps of Algorithm 1 and is recorded per request in a
//! [`CostBreakdown`]; [`RunStats`] accumulates them over a whole request
//! sequence so that experiments E8/E9 can compare against the working-set
//! bound `WS(σ)`.

/// Per-request cost breakdown.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CostBreakdown {
    /// Routing distance `d_{S_t}(σ_t)`: intermediate nodes on the standard
    /// routing path used to establish the communication.
    pub routing_cost: usize,
    /// Rounds spent broadcasting the transformation notification (with the
    /// membership vectors, timestamps, group-ids and group-bases of the
    /// communicating pair) to every node of `l_α` (Alg. 1 step 1).
    pub notification_rounds: usize,
    /// Rounds spent in approximate-median computations over all processed
    /// lists (Alg. 1 step 4), including balanced-skip-list construction.
    pub median_rounds: usize,
    /// Rounds spent on distributed counts `|l_d|, |g_s|, |L_low|, |L_high|`
    /// (Alg. 1 step 5) and on broadcasting new group-ids for split groups
    /// (step 8).
    pub group_accounting_rounds: usize,
    /// Rounds spent by nodes searching for their new neighbours after
    /// moving to a subgraph (bounded by the balance parameter `a` per level,
    /// §IV-C) and on a-balance repair (step 7).
    pub restructuring_rounds: usize,
}

impl CostBreakdown {
    /// Total transformation cost `ρ` in rounds.
    pub fn transformation_rounds(&self) -> usize {
        self.notification_rounds
            + self.median_rounds
            + self.group_accounting_rounds
            + self.restructuring_rounds
    }

    /// The paper's total cost of serving the request:
    /// `d + ρ + 1`.
    pub fn total_cost(&self) -> usize {
        self.routing_cost + self.transformation_rounds() + 1
    }
}

/// Cumulative statistics over a served request sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RunStats {
    /// Number of requests served.
    pub requests: usize,
    /// Sum of routing distances.
    pub total_routing_cost: usize,
    /// Sum of transformation rounds.
    pub total_transformation_rounds: usize,
    /// Sum of total request costs (`d + ρ + 1`).
    pub total_cost: usize,
    /// The largest structure height observed after any transformation.
    pub max_height: usize,
    /// Number of dummy nodes currently alive.
    pub live_dummy_nodes: usize,
    /// Total number of dummy nodes ever created for a-balance repair. Under
    /// the reconciling lifecycle this counts only genuinely new dummies;
    /// `dummy_nodes_created + dummies_reused` is the lifecycle-independent
    /// number of dummy slots established.
    pub dummy_nodes_created: usize,
    /// Standing dummies the reconciling repair reclaimed in place instead
    /// of destroying and re-creating them (0 under the per-node
    /// destroy/recreate oracle).
    pub dummies_reused: usize,
    /// Genuinely new dummies the reconciling repair created — almost all
    /// through the bulk splice installer
    /// ([`SkipGraph::insert_dummies_bulk`](dsg_skipgraph::SkipGraph::insert_dummies_bulk)),
    /// straggler passes below the bulk threshold directly. 0 under the
    /// per-node oracle, which join-walks every placement.
    pub dummies_bulk_inserted: usize,
    /// Total changed `(node, level)` pairs installed by transformations —
    /// the work the differential install performs, as opposed to the
    /// Θ(n · height) a full per-node re-splice would (experiments surface
    /// this to show the diff-install win per workload, not just via wall
    /// clock).
    pub transform_touched_pairs: usize,
    /// Number of transformation-install passes pushed into the skip graph.
    /// A sequential request sequence performs one pass per request; an
    /// epoch-batched session performs one pass per *epoch* regardless of
    /// how many requests the epoch served — this counter is the observable
    /// behind that claim (the batch tests assert on it).
    pub transform_install_passes: usize,
    /// Transformation clusters planned by the (possibly parallel) plan
    /// stage across all epochs.
    pub planned_clusters: usize,
    /// The largest worker-shard count any epoch's plan stages actually ran
    /// on (1 for fully inline planning).
    pub plan_shards: usize,
    /// Total wall-clock nanoseconds spent in the plan stages (cluster
    /// transformation planning + dummy-reconciliation detection). A timing
    /// observable — excluded from determinism comparisons.
    pub plan_wall_ns: u64,
    /// Requests whose cluster the admission gate declined to restructure
    /// (routed only). 0 with the policy off
    /// ([`AdaptPolicy::Always`](crate::AdaptPolicy::Always)).
    pub pairs_gated: u64,
    /// Cold clusters restructured via the per-epoch budget instead of a
    /// hot sketch estimate.
    pub restructures_budgeted: u64,
    /// Frequency-sketch counter-halving ("aging") passes performed.
    pub sketch_aging_passes: u64,
    /// Requests routed without restructuring under a brownout verdict
    /// (overload-degraded epochs; disjoint from
    /// [`pairs_gated`](RunStats::pairs_gated)).
    pub pairs_browned_out: u64,
}

impl RunStats {
    /// Records one served request.
    pub fn record(&mut self, breakdown: &CostBreakdown, height_after: usize) {
        self.requests += 1;
        self.total_routing_cost += breakdown.routing_cost;
        self.total_transformation_rounds += breakdown.transformation_rounds();
        self.total_cost += breakdown.total_cost();
        self.max_height = self.max_height.max(height_after);
    }

    /// Average cost per request (equation (1) of the paper), or 0 for an
    /// empty sequence.
    pub fn average_cost(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.total_cost as f64 / self.requests as f64
        }
    }

    /// Average routing cost per request.
    pub fn average_routing_cost(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.total_routing_cost as f64 / self.requests as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_follow_the_papers_formula() {
        let b = CostBreakdown {
            routing_cost: 4,
            notification_rounds: 3,
            median_rounds: 10,
            group_accounting_rounds: 2,
            restructuring_rounds: 5,
        };
        assert_eq!(b.transformation_rounds(), 20);
        assert_eq!(b.total_cost(), 4 + 20 + 1);
    }

    #[test]
    fn stats_accumulate_and_average() {
        let mut stats = RunStats::default();
        assert_eq!(stats.average_cost(), 0.0);
        let b1 = CostBreakdown {
            routing_cost: 2,
            median_rounds: 3,
            ..CostBreakdown::default()
        };
        let b2 = CostBreakdown {
            routing_cost: 6,
            restructuring_rounds: 1,
            ..CostBreakdown::default()
        };
        stats.record(&b1, 5);
        stats.record(&b2, 7);
        assert_eq!(stats.requests, 2);
        assert_eq!(stats.total_routing_cost, 8);
        assert_eq!(stats.total_transformation_rounds, 4);
        assert_eq!(stats.max_height, 7);
        assert!((stats.average_routing_cost() - 4.0).abs() < 1e-9);
        assert!((stats.average_cost() - ((6.0 + 8.0) / 2.0)).abs() < 1e-9);
    }
}
