//! Ready-made instances reproducing the paper's worked examples.
//!
//! The centrepiece is [`figure4_s8`]: the ten-node skip graph S₈ of Figure
//! 4(b), complete with the membership vectors, per-level timestamps,
//! group-ids and group-bases the paper describes. Serving the request
//! `(U, V)` on it reproduces the S₈ → S₉ transformation that the paper uses
//! to illustrate every rule (experiment E3).

use dsg_skipgraph::MembershipVector;

use crate::config::DsgConfig;
use crate::dsg::DynamicSkipGraph;
use crate::Result;

/// External peer keys of the Figure-4 nodes (their positions in the
/// alphabet): B, G, D, U, I, H, J, V, E, F.
pub mod peers {
    /// Node B.
    pub const B: u64 = 2;
    /// Node D.
    pub const D: u64 = 4;
    /// Node E.
    pub const E: u64 = 5;
    /// Node F.
    pub const F: u64 = 6;
    /// Node G.
    pub const G: u64 = 7;
    /// Node H.
    pub const H: u64 = 8;
    /// Node I.
    pub const I: u64 = 9;
    /// Node J.
    pub const J: u64 = 10;
    /// Node U.
    pub const U: u64 = 21;
    /// Node V.
    pub const V: u64 = 22;
}

/// The internal key of a peer (group-ids in the paper are node identifiers,
/// which in this implementation are the internal keys).
pub fn internal(peer: u64) -> u64 {
    (peer + 1) * DynamicSkipGraph::KEY_SPACING
}

/// Builds the skip graph S₈ of Figure 4(b) at time 8, ready for the `(U, V)`
/// request that produces S₉.
///
/// Structure (levels bottom-up):
///
/// * level 1: 0-subgraph `{E, F, H, I, J, V}`, 1-subgraph `{B, D, G, U}`;
/// * level 2: `{E, H, J, V}` / `{F, I}` and `{B, G}` / `{D, U}`;
/// * level 3: `{H, J}` / `{E, V}`; the remaining pairs split at their next
///   level so that the structure is a complete skip graph.
///
/// Timestamps, group-ids and group-bases follow the figure: the group of `U`
/// at level 1 is `{B, G, D, U}` with timestamps 4, 4, 4, 2; `{B, G}`
/// communicated at time 6; `{V, E}` at time 5; `{H, J}` at time 7; `{F, I}`
/// at time 1.
///
/// # Errors
///
/// Construction cannot realistically fail; errors from the underlying
/// builders are propagated.
pub fn figure4_s8(config: DsgConfig) -> Result<DynamicSkipGraph> {
    use peers::*;
    let members = [
        (B, "100"),
        (G, "101"),
        (D, "110"),
        (U, "111"),
        (H, "0000"),
        (J, "0001"),
        (V, "0010"),
        (E, "0011"),
        (F, "010"),
        (I, "011"),
    ];
    let mut net = DynamicSkipGraph::build_from_members(
        members.iter().map(|(peer, vector)| {
            (
                *peer,
                MembershipVector::parse(vector).expect("fixture vector"),
            )
        }),
        config,
    )?;

    // Group of U at levels 0 and 1: {B, G, D, U}, id = U.
    for peer in [B, G, D, U] {
        let st = net.peer_state_mut(peer)?;
        st.set_group_id(0, internal(U));
        st.set_group_id(1, internal(U));
        st.set_group_base(1);
    }
    // Sub-group {B, G} at level 2 (communicated at time 6), id = B.
    for peer in [B, G] {
        let st = net.peer_state_mut(peer)?;
        st.set_group_id(2, internal(B));
        st.set_timestamp(1, 4);
        st.set_timestamp(2, 6);
    }
    // Sub-group {D, U} at level 2.
    {
        let st = net.peer_state_mut(D)?;
        st.set_group_id(2, internal(U));
        st.set_timestamp(1, 4);
        st.set_timestamp(2, 4);
    }
    {
        let st = net.peer_state_mut(U)?;
        st.set_group_id(2, internal(U));
        st.set_timestamp(1, 2);
        st.set_timestamp(2, 2);
    }
    // Group {V, E} (communicated at time 5), id = V, levels 0..=3.
    for peer in [V, E] {
        let st = net.peer_state_mut(peer)?;
        for level in 0..=3 {
            st.set_group_id(level, internal(V));
        }
        st.set_timestamp(3, 5);
        st.set_group_base(3);
    }
    // Group {H, J} (communicated at time 7), id = J, levels 0..=3.
    for peer in [H, J] {
        let st = net.peer_state_mut(peer)?;
        for level in 0..=3 {
            st.set_group_id(level, internal(J));
        }
        st.set_timestamp(3, 7);
        st.set_group_base(3);
    }
    // Group {F, I} (communicated at time 1), id = F, levels 0..=2.
    for peer in [F, I] {
        let st = net.peer_state_mut(peer)?;
        for level in 0..=2 {
            st.set_group_id(level, internal(F));
        }
        st.set_timestamp(2, 1);
        st.set_group_base(2);
    }

    // The figure shows S₈ at time 8; the (U, V) request is the 8th request.
    net.advance_time(7);
    Ok(net)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MedianStrategy;

    #[test]
    fn s8_matches_the_papers_structure() {
        let net = figure4_s8(DsgConfig::default()).unwrap();
        assert_eq!(net.len(), 10);
        net.validate().unwrap();
        // α for (U, V) in S₈ is 0, as stated in §IV-C.
        assert_eq!(net.common_level(peers::U, peers::V).unwrap(), 0);
        // E and V share a list up to level 3.
        assert_eq!(net.common_level(peers::E, peers::V).unwrap(), 3);
        // B and U share lists up to level 1 only.
        assert_eq!(net.common_level(peers::B, peers::U).unwrap(), 1);
        // Timestamps from the figure.
        assert_eq!(net.peer_state(peers::B).unwrap().timestamp(2), 6);
        assert_eq!(net.peer_state(peers::U).unwrap().timestamp(1), 2);
        assert_eq!(net.peer_state(peers::H).unwrap().timestamp(3), 7);
        // Group of U at level 1 has id U.
        assert_eq!(
            net.peer_state(peers::D).unwrap().group_id(1),
            internal(peers::U)
        );
    }

    #[test]
    fn s8_time_is_positioned_before_the_eighth_request() {
        let net = figure4_s8(DsgConfig::default().with_median(MedianStrategy::Exact)).unwrap();
        assert_eq!(net.time(), 7);
    }
}
