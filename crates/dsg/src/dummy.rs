//! a-balance maintenance with dummy nodes (paper §IV-F).
//!
//! A transformation (or a join/leave) may leave a linked list in which more
//! than `a` consecutive members move to the same sublist at the next level,
//! violating the a-balance property and threatening the `a · log n` bound on
//! search paths. DSG repairs this by placing *dummy nodes* — logical,
//! routing-only nodes — in the sibling subgraph so that no run of same-bit
//! members is longer than `a`. A dummy node holds no data, owns `O(log n)`
//! links like a regular node, and destroys itself the next time it receives
//! a transformation notification. The paper bounds the dummies placed for a
//! rearranged level by `n / a`; this implementation repairs every level, so
//! its live population is bounded by that per-level bound times the height.
//!
//! Three repair entry points exist. [`repair_balance`] is the full sweep
//! used after membership churn (join/leave): global balance check, repair,
//! repeat. [`repair_balance_incremental`] is the differential form: it
//! re-checks only the lists the transformation install actually changed
//! (plus, transitively, the runs around each dummy the repair itself
//! inserts), so its cost is proportional to the change, not the structure.
//! Relatedly, the paper's "dummies destroy themselves on notification" is
//! applied differentially by [`destroy_dummies_in_lists`]: only dummies
//! sitting in rebuilt lists self-destruct — a dummy in an untouched list
//! still breaks exactly the run it was placed for, so destroying and
//! re-creating it each request (the literal reading) would be pure churn
//! with an observably identical end state.
//!
//! [`repair_balance_reconciling`] pushes the same differential principle
//! into the dummy *lifecycle* itself. Even the incremental form destroyed
//! every dummy standing in a rebuilt list and re-created most of them at
//! the very same keys — tens of thousands of full join walks per request
//! under uniform traffic at large n. The reconciling form runs
//! **plan-then-apply**: its fused first pass only *inventories* the
//! standing dummies (they stay linked, but the planner treats them as
//! absent — the filtered balance scans skip them and key-occupancy probes
//! read their keys as free), the repair then re-derives the desired dummy
//! set per violated run exactly as the destroy-then-recreate path would,
//! and each break is *diffed* against the inventory: a standing dummy
//! whose key the shared salvage-first policy ([`next_break`]) re-derives
//! is reclaimed in place (zero graph mutation), a superseded standing
//! dummy at a freshly chosen key is evicted, and only the genuinely new
//! dummies are created — all of a repair pass's creations in one
//! [`SkipGraph::insert_dummies_bulk`] ordered-splice pass instead of one
//! join walk each. The end state is bit-for-bit the destroy-then-recreate
//! state (the `dummy_reconcile` differential proptests assert exactly
//! this); the destroy/recreate pair survives as the
//! [`InstallStrategy::PerNode`](crate::InstallStrategy) oracle.

use std::collections::HashSet;

use dsg_skipgraph::{
    BalanceViolation, Bit, FastHashState, Key, MembershipVector, NodeId, Prefix, SkipGraph,
};

use crate::state::StateTable;

/// Result of one a-balance repair pass.
#[derive(Debug, Clone, Default)]
pub struct DummyRepairOutcome {
    /// Ids of the dummy nodes inserted.
    pub inserted: Vec<NodeId>,
    /// Runs that could not be repaired because no key was available between
    /// the run members (only possible when the application key space is
    /// fully dense).
    pub unrepairable_runs: usize,
    /// Rounds charged: one chain-detection sweep plus one insertion per
    /// dummy.
    pub rounds: usize,
}

/// Detects a-balance violations and inserts dummy nodes to break every
/// over-long run. Newly inserted dummies are registered in `states` so that
/// later transformations can destroy them cleanly.
///
/// Two engineering refinements over the paper's description, both noted in
/// `DESIGN.md`:
///
/// * stale dummies from earlier repairs are garbage-collected first, so the
///   live dummy population always reflects the *current* structure and stays
///   within the paper's `n / a` bound;
/// * `protect` names adjacencies (normally the pairs that just
///   communicated in the current epoch) that a dummy key must not be
///   placed into, preserving the direct links the transformation just
///   established.
pub fn repair_balance(
    graph: &mut SkipGraph,
    states: &mut StateTable,
    a: usize,
    protect: &[(Key, Key)],
    scope: Option<(usize, dsg_skipgraph::Prefix)>,
) -> DummyRepairOutcome {
    let mut outcome = DummyRepairOutcome::default();
    // Without a scope (membership churn), garbage-collect dummies left over
    // from earlier repairs; the passes below re-create exactly the ones the
    // current structure needs. With a scope (the subtree a transformation
    // just rebuilt, §IV-F), the stale dummies of that subtree were already
    // destroyed by the notification, so nothing needs collecting.
    if scope.is_none() {
        let stale: Vec<NodeId> = graph
            .node_ids()
            .filter(|id| graph.node(*id).map(|e| e.is_dummy()).unwrap_or(false))
            .collect();
        for id in stale {
            let _ = graph.remove(id);
            states.unregister(id);
        }
    }
    let in_scope = |level: usize, prefix: &dsg_skipgraph::Prefix| match &scope {
        None => true,
        Some((scope_level, scope_prefix)) => {
            level >= *scope_level && scope_prefix.is_prefix_of(prefix)
        }
    };
    // Inserting a dummy splits a run of length r into pieces of length ≤ a,
    // but the inserted node itself joins every ancestor list and may extend
    // a run there; each pass repairs one "layer" of damage, so the number of
    // passes is bounded by the structure height (plus slack).
    let max_passes = graph.height() + 10;
    // Reused across violations/passes: the key snapshot of the run being
    // repaired (dummy insertion mutates the chain while the run is walked).
    let mut list_buf: Vec<Key> = Vec::new();
    let mut protect_norm: Vec<(Key, Key)> = Vec::new();
    normalize_protect(protect, &mut protect_norm);
    // Full sweeps re-derive every dummy key from scratch: no salvage.
    let salvage: DummySalvage = Vec::new();
    for _pass in 0..max_passes {
        let mut report = graph.check_balance(a);
        outcome.rounds += a + 1;
        if report.is_balanced() {
            break;
        }
        // `check_balance` sweeps the list arena in slab order, which
        // depends on the engine's list-recycling history — hidden state
        // that legitimately differs between the two dummy lifecycles (and
        // between otherwise-identical engines with different install
        // strategies). Repairs in different orders can pick different
        // dummy keys when runs compete for overlapping gaps, so the sweep
        // normalises to the same sorted order the incremental paths use.
        report
            .violations
            .sort_unstable_by_key(|v| (v.level, v.prefix, v.start_key));
        let mut repaired_any = false;
        for violation in &report.violations {
            if !in_scope(violation.level, &violation.prefix) {
                continue;
            }
            repaired_any = true;
            repair_violation(
                graph,
                states,
                a,
                &protect_norm,
                violation,
                &salvage,
                &mut list_buf,
                &mut outcome,
            );
        }
        if !repaired_any {
            // Every remaining violation lies outside the repair scope; the
            // paper leaves those to the transformations that rebuild the
            // corresponding regions.
            break;
        }
    }
    outcome
}

/// Incremental a-balance repair: instead of sweeping the whole graph per
/// pass, only the lists named in `worklist` are checked — after a
/// differential transformation these are exactly the lists whose membership
/// or next-level split pattern changed, so the repair cost is proportional
/// to the change, not to the structure size. Each inserted dummy enqueues
/// its own lists (at levels ≥ `floor`, mirroring the scope rule of
/// [`repair_balance`]) for the next pass, so follow-up damage from the
/// insertions themselves is still caught.
///
/// `worklist` is consumed; it must be deduplicated, and a sorted order makes
/// the repair (and hence the dummy keys it picks) deterministic. `salvage`
/// is the snapshot of the dummies [`destroy_dummies_in_lists`] just
/// destroyed: the salvage-first placement policy re-creates a destroyed
/// dummy at its old key whenever that key still falls in a slot needing its
/// exact vector, keeping dummy keys sticky across requests (and therefore
/// reclaimable by the reconciling lifecycle).
pub fn repair_balance_incremental(
    graph: &mut SkipGraph,
    states: &mut StateTable,
    a: usize,
    protect: &[(Key, Key)],
    floor: usize,
    worklist: &mut Vec<(usize, Prefix)>,
    salvage: &mut DummySalvage,
) -> DummyRepairOutcome {
    let mut outcome = DummyRepairOutcome::default();
    let max_passes = graph.height() + 10;
    let mut list_buf: Vec<Key> = Vec::new();
    let mut protect_norm: Vec<(Key, Key)> = Vec::new();
    normalize_protect(protect, &mut protect_norm);
    let mut violations: Vec<BalanceViolation> = Vec::new();
    let mut prev_pass_dummies: Vec<NodeId> = Vec::new();
    for pass in 0..max_passes {
        violations.clear();
        let pass_inserted_from = outcome.inserted.len();
        if pass == 0 {
            // First pass: full scan of the lists the install changed. The
            // sort mirrors the reconciling lifecycle, whose fused
            // collect + detect scans originals and appended lists in a
            // different order — both repair the sorted sequence.
            for &(level, prefix) in worklist.iter() {
                graph.list_balance_violations(a, level, prefix, &mut violations);
            }
            violations.sort_unstable_by_key(|v| (v.level, v.prefix, v.start_key));
            violations.dedup_by_key(|v| (v.level, v.prefix, v.start_key));
        } else {
            // Cascade passes: a repair only lengthens the runs its dummies
            // landed in (every dummy joins its whole prefix path), so only
            // the runs around the dummies of the previous pass can have
            // become over-long — O(run length) checks instead of whole-list
            // rescans. Sorting + dedup collapses dummies that landed in the
            // same run.
            for &dummy in &prev_pass_dummies {
                let Ok(mvec) = graph.mvec_of(dummy) else { continue };
                for level in floor..=mvec.len() {
                    if let Some(violation) = graph.run_violation_at(a, dummy, level) {
                        violations.push(violation);
                    }
                }
            }
            violations.sort_unstable_by_key(|v| (v.level, v.prefix, v.start_key));
            violations.dedup_by_key(|v| (v.level, v.prefix, v.start_key));
        }
        outcome.rounds += a + 1;
        if violations.is_empty() {
            break;
        }
        for violation in &violations {
            repair_violation(
                graph,
                states,
                a,
                &protect_norm,
                violation,
                salvage,
                &mut list_buf,
                &mut outcome,
            );
        }
        prev_pass_dummies.clear();
        prev_pass_dummies.extend_from_slice(&outcome.inserted[pass_inserted_from..]);
        if prev_pass_dummies.is_empty() {
            break;
        }
    }
    worklist.clear();
    salvage.clear();
    outcome
}

/// Normalises a protected-adjacency slice for binary-search probing: each
/// pair ordered `(min, max)`, the whole set sorted and deduplicated. The
/// repair loops resolve run keys once and probe this set per slot, instead
/// of re-resolving both run members against every protected pair on every
/// slot (the old O(|protect| · run) inner loop).
fn normalize_protect(protect: &[(Key, Key)], out: &mut Vec<(Key, Key)>) {
    out.clear();
    out.extend(
        protect
            .iter()
            .map(|&(a, b)| if a <= b { (a, b) } else { (b, a) }),
    );
    out.sort_unstable();
    out.dedup();
}

/// Whether the adjacency `(left, right)` is protected. `protect` must be
/// normalised ([`normalize_protect`]).
fn is_protected(protect: &[(Key, Key)], left: Key, right: Key) -> bool {
    let pair = if left <= right {
        (left, right)
    } else {
        (right, left)
    };
    protect.binary_search(&pair).is_ok()
}

/// The `(key, vector)` snapshot of the dummies standing in the rebuilt
/// lists before a repair, sorted by `(vector, key)`. The *salvage-first
/// placement policy* consults it when filling a slot: a snapshot entry
/// whose key falls strictly inside the slot's gap and whose vector is
/// exactly the one the slot needs is placed at its old key instead of a
/// freshly derived one. Keys thereby stay *sticky* across requests even as
/// run boundaries shift, which is what makes the reconciling lifecycle's
/// in-place reclamation (and its churn win) possible — while the policy
/// itself is lifecycle-independent: the destroy-then-recreate oracle
/// consults the same snapshot and re-creates the dummy at the same sticky
/// key, so both lifecycles produce bit-for-bit identical structures.
pub type DummySalvage = Vec<SalvageEntry>;

/// One snapshot entry of a [`DummySalvage`]. Sorting by `(vector, key)`
/// means a slot lookup touches only the entries of the exact sibling list
/// it needs — sorting by key alone made every lookup wade through the
/// (unrelated) dummies of every other list in the gap's key range, which
/// in deep lists spans most of the key space.
#[derive(Debug, Clone, Copy)]
pub struct SalvageEntry {
    key: Key,
    mvec: MembershipVector,
}

impl SalvageEntry {
    fn new(key: Key, mvec: MembershipVector) -> Self {
        SalvageEntry { key, mvec }
    }

    fn sort_key(&self) -> (MembershipVector, Key) {
        (self.mvec, self.key)
    }
}

/// The contiguous run of snapshot entries whose vector equals `mvec` —
/// resolved once per violation, so the per-gap probes of [`next_break`]
/// search a handful of same-list entries (usually none) instead of
/// bisecting the whole snapshot per gap.
fn salvage_slice<'s>(salvage: &'s DummySalvage, mvec: &MembershipVector) -> &'s [SalvageEntry] {
    let lo = salvage.partition_point(|e| e.mvec < *mvec);
    let hi = lo + salvage[lo..].partition_point(|e| e.mvec == *mvec);
    &salvage[lo..hi]
}

/// Finds the salvageable entry for one slot: the smallest snapshot key
/// strictly inside `(left, right)` for which `reclaimable` still holds.
/// `list_salvage` is the violation's same-vector snapshot run
/// ([`salvage_slice`]).
///
/// `reclaimable` is the lifecycle's claim tracker — the snapshot itself is
/// never mutated. The destroy-up-front oracle passes "the key is
/// unoccupied" (true until the entry is re-created, or a fresh dummy lands
/// on its key); the reconciling path passes "the key holds a
/// still-inventoried dummy" (true until the standing dummy is reclaimed or
/// evicted). The two predicates flip at exactly the same policy steps, so
/// the lifecycles' break choices stay identical.
fn salvage_take<F: Fn(Key) -> bool>(
    list_salvage: &[SalvageEntry],
    left: Key,
    right: Key,
    reclaimable: &F,
) -> Option<Key> {
    let mut i = list_salvage.partition_point(|e| e.key <= left);
    while i < list_salvage.len() && list_salvage[i].key < right {
        if reclaimable(list_salvage[i].key) {
            return Some(list_salvage[i].key);
        }
        i += 1;
    }
    None
}

/// One decision of the salvage-first break walk over a violated run
/// ([`next_break`]).
enum BreakAction {
    /// A standing dummy with the needed vector sits in the gap after member
    /// `.0` — keep it (the reconciling lifecycle reclaims it in place, the
    /// oracle re-creates it at the same key `.1`).
    Salvaged(usize, Key),
    /// The segment overflowed `a` with no salvageable break: place a fresh
    /// dummy in the gap after member `.0`.
    Fresh(usize),
}

/// The shared break policy of both dummy lifecycles. Breaks are lazy —
/// member `last_break + a + 1` starts an over-long segment, so a dummy
/// must go into one of the window gaps `[i - a, i - 1]` (any of them keeps
/// both resulting segments within `a`). The window is scanned right to
/// left for a gap holding a salvageable standing dummy with exactly the
/// needed vector — rightmost wins, maximising the room left for later
/// breaks, which keeps break positions (and therefore dummy keys) *sticky*
/// when a run's boundaries drift between requests. Without a salvage hit
/// the break goes into the default gap `i - 1` (the classic "after every
/// `a`-th member" position), shifted one gap left off a protected
/// adjacency exactly as before. Protected gaps are never used, salvaged or
/// fresh.
///
/// Laziness keeps the placement minimal (one break per overflow — an eager
/// keep-every-standing-dummy variant was measured to cut churn a further
/// ~6% but grew the standing population ~25%, taxing every scan of every
/// request). Both lifecycles route every break through this one function,
/// which is what makes their final structures bit-for-bit equal. Returns
/// `None` when the remaining members fit within `a`.
fn next_break<F: Fn(Key) -> bool>(
    run: &[Key],
    last_break: isize,
    a: usize,
    protect: &[(Key, Key)],
    list_salvage: &[SalvageEntry],
    reclaimable: &F,
) -> Option<BreakAction> {
    let i = (last_break + a as isize + 1) as usize;
    if i >= run.len() {
        return None;
    }
    if !list_salvage.is_empty() {
        let lo = i - a;
        let mut b = i - 1;
        loop {
            if !is_protected(protect, run[b], run[b + 1]) {
                if let Some(key) = salvage_take(list_salvage, run[b], run[b + 1], reclaimable) {
                    return Some(BreakAction::Salvaged(b, key));
                }
            }
            if b == lo {
                break;
            }
            b -= 1;
        }
    }
    let mut b = i - 1;
    if is_protected(protect, run[b], run[b + 1]) && b >= 1 {
        b -= 1;
    }
    Some(BreakAction::Fresh(b))
}

/// Breaks one over-long run by inserting a dummy after every `a`-th member,
/// keyed between its neighbours, living in the sibling subgraph at the next
/// level. A slot that coincides with the protected adjacency (the pair that
/// just communicated) is shifted one step left so the pair's direct link
/// survives.
///
/// The run members' keys are walked directly from
/// [`BalanceViolation::start`] into `run_buf` (a reusable scratch vector)
/// before any insertion — a snapshot is needed because the insertions
/// splice into the chain being repaired, and walking only the run keeps the
/// repair O(run length) instead of O(list length). `protect` must be
/// normalised ([`normalize_protect`]); `salvage` is the salvage-first
/// placement snapshot (empty for the full membership-churn sweeps, which
/// re-derive every key from scratch).
#[allow(clippy::too_many_arguments)]
fn repair_violation(
    graph: &mut SkipGraph,
    states: &mut StateTable,
    a: usize,
    protect: &[(Key, Key)],
    violation: &BalanceViolation,
    salvage: &DummySalvage,
    run_buf: &mut Vec<Key>,
    outcome: &mut DummyRepairOutcome,
) {
    if graph.node(violation.start).is_none() {
        return;
    }
    run_buf.clear();
    let mut cursor = Some(violation.start);
    while let Some(id) = cursor {
        run_buf.push(graph.key_of(id).expect("run member is live"));
        if run_buf.len() >= violation.run_length {
            break;
        }
        cursor = graph
            .neighbors(id, violation.level)
            .expect("run member is live")
            .1;
    }
    let run: &[Key] = run_buf;
    let mut mvec = prefix_vector(&violation.prefix);
    mvec.push(violation.bit.flipped()).expect("within height limit");
    let list_salvage = salvage_slice(salvage, &mvec);
    // Walk the run's members, breaking it per the shared salvage-first
    // policy ([`next_break`]); this lifecycle physically re-creates even
    // the salvaged breaks.
    let mut last_break: isize = -1;
    while let Some(action) = next_break(
        run,
        last_break,
        a,
        protect,
        list_salvage,
        // A snapshot entry is reclaimable while its key is unoccupied: the
        // inventory was destroyed up front, and a claim (re-creation) or a
        // fresh dummy landing on the key permanently occupies it again.
        &|key| graph.node_by_key(key).is_none(),
    ) {
        let chosen = match action {
            BreakAction::Salvaged(g, key) => {
                last_break = g as isize;
                Some(key.value())
            }
            BreakAction::Fresh(b) => {
                last_break = b as isize;
                free_key_between(graph, run[b].value(), run[b + 1].value())
            }
        };
        match chosen {
            Some(key) => {
                if let Ok(id) = graph.insert_dummy(Key::new(key), mvec) {
                    states.register(id, Key::new(key), violation.level + 1);
                    outcome.inserted.push(id);
                    outcome.rounds += 1;
                }
            }
            None => outcome.unrepairable_runs += 1,
        }
    }
}

/// Differential dummy garbage collection: destroys exactly the dummies that
/// are members of one of the `affected` lists — the lists a transformation
/// install actually rebuilt. Dummies elsewhere keep standing; the lists
/// they balance did not change, so they are still load-bearing and the
/// destroy-everything-recreate-identically churn of a full notification is
/// skipped.
///
/// Removing a dummy splices it out of *all* its lists, which can merge two
/// runs anywhere along its prefix path, so every destroyed dummy's lists at
/// levels ≥ `floor` are appended to `affected` for the balance re-check
/// (only the entries present on entry are searched for dummies). With
/// `use_stamps`, the appends are deduplicated against the current
/// batch-install epoch via [`SkipGraph::stamp_node_lists`]; the per-node
/// reference install path passes `false` and relies on the caller's
/// sort + dedup instead. Returns the number of dummies destroyed.
///
/// This destroy-up-front lifecycle is kept as the
/// [`InstallStrategy::PerNode`](crate::InstallStrategy) oracle; the batched
/// engine path reconciles instead ([`collect_dummies_in_lists`] +
/// [`repair_balance_reconciling`]), with a proven-identical end state.
pub fn destroy_dummies_in_lists(
    graph: &mut SkipGraph,
    states: &mut StateTable,
    floor: usize,
    affected: &mut Vec<(usize, Prefix)>,
    stale_buf: &mut Vec<NodeId>,
    use_stamps: bool,
    salvage: &mut DummySalvage,
) -> usize {
    stale_buf.clear();
    salvage.clear();
    for &(level, prefix) in affected.iter() {
        stale_buf.extend(
            graph
                .list_iter(level, prefix)
                .filter(|&id| graph.node(id).map(|e| e.is_dummy()).unwrap_or(false)),
        );
    }
    let mut destroyed = 0usize;
    for &id in stale_buf.iter() {
        // A dummy can sit in several affected lists; the second sighting
        // finds it already removed.
        let Some(entry) = graph.node(id) else { continue };
        if !entry.is_dummy() {
            continue;
        }
        salvage.push(SalvageEntry::new(entry.key(), *entry.mvec()));
        if use_stamps {
            graph
                .stamp_node_lists(id, floor, affected)
                .expect("dummy is live");
        } else {
            let mvec = *entry.mvec();
            for level in floor..=mvec.len() {
                affected.push((level, mvec.prefix(level)));
            }
        }
        let _ = graph.remove(id);
        states.unregister(id);
        destroyed += 1;
    }
    salvage.sort_unstable_by_key(|e| e.sort_key());
    destroyed
}

/// A set of [`NodeId`]s backed by a dense stamp vector indexed by the
/// arena slot — membership tests run inside every balance scan and run
/// walk of the reconciliation (millions per request), so they must be one
/// array read, not a hash. Clearing bumps the epoch; removal zeroes the
/// slot.
#[derive(Debug, Default)]
struct NodeStampSet {
    stamps: Vec<u32>,
    epoch: u32,
}

impl NodeStampSet {
    fn clear(&mut self) {
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // Wrapped: stale stamps could collide with the fresh epoch.
            self.stamps.clear();
            self.epoch = 1;
        }
    }

    /// Inserts `id`; returns `true` if it was not yet a member.
    fn insert(&mut self, id: NodeId) -> bool {
        let index = id.raw() as usize;
        if self.stamps.len() <= index {
            self.stamps.resize(index + 1, 0);
        }
        let fresh = self.stamps[index] != self.epoch;
        self.stamps[index] = self.epoch;
        fresh
    }

    /// Removes `id`; returns `true` if it was a member.
    fn remove(&mut self, id: NodeId) -> bool {
        match self.stamps.get_mut(id.raw() as usize) {
            Some(slot) if *slot == self.epoch => {
                *slot = 0;
                true
            }
            _ => false,
        }
    }

    fn contains(&self, id: NodeId) -> bool {
        self.stamps.get(id.raw() as usize) == Some(&self.epoch)
    }
}

/// Scratch state of one reconciliation pass, owned by the engine and reused
/// across clusters so a warm pass allocates nothing.
///
/// The central piece is the *doomed* set: the standing dummies of the
/// rebuilt lists, inventoried by [`collect_dummies_in_lists`]. They stay
/// physically linked, but every planning read treats them as absent — the
/// filtered balance scans skip them and the key-occupancy probes report
/// their keys free — so the plan the repair derives is exactly the plan the
/// destroy-up-front path would derive. A slot whose chosen `(key, vector)`
/// matches a doomed dummy reclaims it with zero graph mutation; whatever
/// remains doomed when the repair converges is removed in one final sweep.
#[derive(Debug, Default)]
pub struct ReconcileScratch {
    /// Recycled [`ReconcilePlan`] shell for the serial
    /// [`repair_balance_reconciling`] wrapper (the epoch engine pools its
    /// own shells, one per cluster).
    plan: ReconcilePlan,
    /// Dummies planned but not yet installed in the current repair pass,
    /// sorted by key. Planning reads treat them as present: run walks
    /// interleave them and occupancy probes report their keys taken.
    planned: Vec<PlannedDummy>,
    /// `(key, vector)` pairs handed to the bulk installer.
    specs: Vec<(Key, MembershipVector)>,
    /// Merged run-key snapshot of the violation being repaired.
    run_buf: Vec<Key>,
    /// Violations of the current pass.
    violations: Vec<BalanceViolation>,
    /// Dummies placed (reclaimed or created) by the previous pass, the
    /// anchors of the cascade re-checks.
    prev_placed: Vec<NodeId>,
    /// Normalised protected adjacencies ([`normalize_protect`]).
    protect_norm: Vec<(Key, Key)>,
}

/// One dummy the reconciliation planner decided to create.
#[derive(Debug, Clone, Copy)]
struct PlannedDummy {
    key: Key,
    mvec: MembershipVector,
}

/// Result of one reconciling a-balance repair pass.
#[derive(Debug, Clone, Default)]
pub struct DummyReconcileOutcome {
    /// Every dummy the repair placed, reclaimed-in-place and bulk-created
    /// alike. Its length is the count the destroy-then-recreate oracle
    /// reports as "inserted", so per-request outcomes agree across the two
    /// lifecycles.
    pub placed: Vec<NodeId>,
    /// Standing dummies reclaimed with zero graph mutation.
    pub reused: usize,
    /// Genuinely new dummies created (the fresh-creation half of
    /// `placed`). Almost all are routed through
    /// [`SkipGraph::insert_dummies_bulk`]; a handful of stragglers per
    /// cascade pass (below the bulk threshold) are inserted directly.
    pub bulk_inserted: usize,
    /// Dummies actually removed from the graph: stale inventory plus
    /// standing dummies evicted because a planned key collided with them.
    pub destroyed: usize,
    /// Runs that could not be repaired for lack of a free key.
    pub unrepairable_runs: usize,
    /// Rounds charged — identical accounting to [`DummyRepairOutcome`]: one
    /// chain-detection sweep per pass plus one round per placed dummy (a
    /// reclaimed slot is charged like a created one, keeping the paper-cost
    /// observables equal to the oracle's).
    pub rounds: usize,
}

/// The read-only *planning* half of the reconciling repair: the fused
/// collect + detect pass over the rebuilt lists, produced against a shared
/// `&SkipGraph` so the plans of an epoch's disjoint clusters can be
/// computed concurrently on worker shards (and a single big cluster's scan
/// can be chunked across them) before the main thread applies them in
/// submission order.
///
/// Contents mirror exactly what
/// [`repair_balance_reconciling`]'s first pass used to derive in place:
/// the standing-dummy inventory of the scanned lists (collection order,
/// possibly repeating a dummy sighted in several lists) and the pass-0
/// violation set — original worklist entries scanned with *all* dummies
/// logically absent, the lists appended by dooming the inventory scanned
/// with the *doomed* set absent — sorted and deduplicated.
#[derive(Debug, Default)]
pub struct ReconcilePlan {
    /// Collection-order sightings (a dummy standing in several scanned
    /// lists repeats), the order the final stale sweep follows.
    inventory: Vec<NodeId>,
    /// The distinct inventoried dummies, pre-stamped — used in place by
    /// the apply half, never re-derived.
    doomed: NodeStampSet,
    /// The `(key, vector)` salvage snapshot of the distinct inventory,
    /// sorted by `(vector, key)` — likewise computed once here.
    salvage: DummySalvage,
    violations: Vec<BalanceViolation>,
    /// Planner-internal dedup set for worklist appends (kept here so a
    /// recycled shell plans without allocating it).
    seen: HashSet<(usize, Prefix), FastHashState>,
}

impl ReconcilePlan {
    /// Clears the shell for reuse (capacities retained; the stamp set
    /// clears by epoch bump, so a warm shell plans allocation-free).
    pub fn reset(&mut self) {
        self.inventory.clear();
        self.doomed.clear();
        self.salvage.clear();
        self.violations.clear();
        self.seen.clear();
    }

    /// Number of standing dummies the plan inventoried (sightings, not
    /// distinct dummies).
    pub fn inventoried(&self) -> usize {
        self.inventory.len()
    }

    /// Number of pass-0 violations the plan detected.
    pub fn violation_count(&self) -> usize {
        self.violations.len()
    }
}

/// Computes the [`ReconcilePlan`] for one repair scope: `worklist` names
/// the lists the install changed (sorted + deduplicated). Pure reads; with
/// `shards > 1` the two scan stages are chunked across that many scoped
/// worker threads — the merge preserves worklist order and the violation
/// set is sorted afterwards, so the result is bit-for-bit independent of
/// the shard count.
pub fn plan_reconciliation(
    graph: &SkipGraph,
    a: usize,
    floor: usize,
    worklist: &[(usize, Prefix)],
    shards: usize,
    plan: &mut ReconcilePlan,
) {
    plan.reset();
    // Fault-injection site (pass 0 of the reconciling repair). The pass is
    // a pure read, but it runs after its epoch's membership install, so
    // firing here models a crash in the middle of the apply stage.
    dsg_skipgraph::failpoint::hit(dsg_skipgraph::failpoint::DUMMY_PASS0);

    // Stage 1: fused collect + detect over the rebuilt lists — every dummy
    // is skipped (in a rebuilt list every standing dummy gets inventoried,
    // so skip-all equals the post-destroy view the oracle scans).
    scan_chunked(worklist, shards, &mut plan.violations, |chunk, violations| {
        let mut inventory = Vec::new();
        for &(level, prefix) in chunk {
            graph.list_balance_violations_collecting_dummies(
                a,
                level,
                prefix,
                &mut inventory,
                violations,
            );
        }
        inventory
    })
    .into_iter()
    .for_each(|inventory| plan.inventory.extend(inventory));

    // Doom the distinct inventory: each dummy's own lists at levels ≥
    // `floor` join the re-check set (removing it can merge runs anywhere
    // along its prefix path), deduplicated against the lists already
    // scanned. (`reset()` bumped the stamp epoch off 0, which
    // zero-initialised slots would otherwise match.)
    let doomed = &mut plan.doomed;
    plan.seen.extend(worklist.iter().copied());
    let mut appended: Vec<(usize, Prefix)> = Vec::new();
    for &id in &plan.inventory {
        if !doomed.insert(id) {
            continue;
        }
        let entry = graph.node(id).expect("inventoried dummy is live");
        plan.salvage.push(SalvageEntry::new(entry.key(), *entry.mvec()));
        let mvec = *entry.mvec();
        for level in floor..=mvec.len() {
            let entry = (level, mvec.prefix(level));
            if plan.seen.insert(entry) {
                appended.push(entry);
            }
        }
    }
    plan.salvage.sort_unstable_by_key(|e| e.sort_key());

    // Stage 2: the appended lists were not searched for dummies (only the
    // rebuilt ones are), so some of their dummies may keep standing: their
    // detection skips exactly the doomed set.
    let doomed = &plan.doomed;
    scan_chunked(&appended, shards, &mut plan.violations, |chunk, violations| {
        for &(level, prefix) in chunk {
            graph.list_balance_violations_filtered(
                a,
                level,
                prefix,
                |id| doomed.contains(id),
                violations,
            );
        }
    })
    .into_iter()
    .for_each(drop);

    // Both lifecycles repair the pass-0 violations in sorted order.
    plan.violations
        .sort_unstable_by_key(|v| (v.level, v.prefix, v.start_key));
    plan.violations
        .dedup_by_key(|v| (v.level, v.prefix, v.start_key));
}

/// Runs `job` over contiguous chunks of `items` — inline for one shard,
/// on scoped worker threads for several — merging each chunk's violations
/// (and returning each chunk's auxiliary result) in chunk order, so the
/// output is identical for every shard count.
fn scan_chunked<T: Sync, R: Send>(
    items: &[T],
    shards: usize,
    violations: &mut Vec<BalanceViolation>,
    job: impl Fn(&[T], &mut Vec<BalanceViolation>) -> R + Sync,
) -> Vec<R> {
    let jobs = shards.clamp(1, items.len().max(1));
    if jobs <= 1 {
        return vec![job(items, violations)];
    }
    let chunk_len = items.len().div_ceil(jobs);
    let mut results = Vec::with_capacity(jobs);
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk_len)
            .map(|chunk| {
                let job = &job;
                scope.spawn(move || {
                    let mut chunk_violations = Vec::new();
                    let result = job(chunk, &mut chunk_violations);
                    (result, chunk_violations)
                })
            })
            .collect();
        for handle in handles {
            let (result, chunk_violations) = handle.join().expect("scan shard panicked");
            results.push(result);
            violations.extend(chunk_violations);
        }
    });
    results
}


/// The reconciling twin of [`destroy_dummies_in_lists`] +
/// [`repair_balance_incremental`]: plan-then-apply over an inventory
/// instead of destroy-then-recreate.
///
/// The **collect** phase is the read-only [`plan_reconciliation`] (inlined
/// here for the serial path; the epoch engine pre-computes plans on worker
/// shards and calls [`repair_balance_reconciling_planned`] directly): one
/// walk per rebuilt list inventories its standing dummies (they stay
/// linked, *doomed* — every planning read treats them as absent) and
/// reports the list's violations with them skipped, exactly what the
/// oracle sees after destroying them. Each inventoried dummy's own lists
/// at levels ≥ `floor` join the re-check set, since removing it would
/// merge runs anywhere along its prefix path. Every violated run is then
/// re-derived through the same [`next_break`] policy as the oracle and
/// each break is **diffed** against the inventory:
///
/// * salvageable standing dummy in the break gap → **reclaim** in place,
///   zero graph mutation;
/// * fresh key that lands on a doomed dummy (necessarily with a different
///   vector) → evict it and plan a fresh dummy;
/// * fresh key otherwise → plan a fresh dummy.
///
/// All of a pass's planned dummies are created in one
/// [`SkipGraph::insert_dummies_bulk`] splice pass; run walks and occupancy
/// probes interleave the plan in the meantime, so intra-pass reads match
/// what the insert-one-by-one oracle would observe. Dummies still doomed
/// when the cascade converges are removed in a final sweep. The resulting
/// graph, state table, and dummy population are bit-for-bit identical to
/// [`destroy_dummies_in_lists`] + [`repair_balance_incremental`]; only the
/// churn (and its wall-clock cost) differs.
///
/// `worklist` is consumed and must arrive sorted + deduplicated.
#[allow(clippy::too_many_arguments)]
pub fn repair_balance_reconciling(
    graph: &mut SkipGraph,
    states: &mut StateTable,
    a: usize,
    protect: &[(Key, Key)],
    floor: usize,
    worklist: &mut Vec<(usize, Prefix)>,
    scratch: &mut ReconcileScratch,
) -> DummyReconcileOutcome {
    let mut plan = std::mem::take(&mut scratch.plan);
    plan_reconciliation(graph, a, floor, worklist, 1, &mut plan);
    worklist.clear();
    let outcome =
        repair_balance_reconciling_planned(graph, states, a, protect, floor, &mut plan, scratch);
    scratch.plan = plan;
    outcome
}

/// The *apply* half of the reconciling repair, consuming a pre-computed
/// [`ReconcilePlan`] in place (see [`repair_balance_reconciling`] for the
/// lifecycle's contract — this entry point is what the epoch engine calls
/// after planning clusters on worker shards). The plan's inventory,
/// doomed set, salvage snapshot and pass-0 violations are used where they
/// stand; the shell is left reusable (reset on its next plan).
pub fn repair_balance_reconciling_planned(
    graph: &mut SkipGraph,
    states: &mut StateTable,
    a: usize,
    protect: &[(Key, Key)],
    floor: usize,
    plan: &mut ReconcilePlan,
    scratch: &mut ReconcileScratch,
) -> DummyReconcileOutcome {
    let mut outcome = DummyReconcileOutcome::default();
    let ReconcileScratch {
        planned,
        specs,
        run_buf,
        violations,
        prev_placed,
        protect_norm,
        ..
    } = scratch;
    let doomed = &mut plan.doomed;
    let salvage = &plan.salvage;
    normalize_protect(protect, protect_norm);
    let max_passes = graph.height() + 10;
    prev_placed.clear();
    for pass in 0..max_passes {
        violations.clear();
        if pass == 0 {
            // The plan already detected (and sorted) the pass-0 violation
            // set: original lists scanned with all dummies absent, appended
            // lists with the doomed set absent.
            violations.append(&mut plan.violations);
        } else {
            // Cascade passes: only the runs around the previous pass's
            // placements can have become over-long (see
            // [`repair_balance_incremental`]).
            for &id in prev_placed.iter() {
                let Ok(mvec) = graph.mvec_of(id) else { continue };
                for level in floor..=mvec.len() {
                    if let Some(violation) =
                        graph.run_violation_at_filtered(a, id, level, |x| doomed.contains(x))
                    {
                        violations.push(violation);
                    }
                }
            }
            violations.sort_unstable_by_key(|v| (v.level, v.prefix, v.start_key));
            violations.dedup_by_key(|v| (v.level, v.prefix, v.start_key));
        }
        outcome.rounds += a + 1;
        if violations.is_empty() {
            break;
        }
        planned.clear();
        let placed_from = outcome.placed.len();
        for violation in violations.iter() {
            reconcile_violation(
                graph,
                states,
                a,
                protect_norm,
                violation,
                doomed,
                salvage,
                planned,
                run_buf,
                &mut outcome,
            );
        }
        if planned.len() >= 8 {
            specs.clear();
            specs.extend(planned.iter().map(|p| (p.key, p.mvec)));
            let ids = graph
                .insert_dummies_bulk(specs)
                .expect("planned dummy keys are free and distinct");
            for (p, &id) in planned.iter().zip(ids.iter()) {
                states.register(id, p.key, p.mvec.len());
            }
            outcome.bulk_inserted += ids.len();
            outcome.placed.extend(ids);
        } else {
            // A handful of stragglers (late cascade passes): the bulk
            // installer's fixed costs outweigh its grouping win, so insert
            // them directly — identical structure, same (sorted) insertion
            // order as the bulk path's allocation order.
            for p in planned.iter() {
                let id = graph
                    .insert_dummy(p.key, p.mvec)
                    .expect("planned dummy keys are free and distinct");
                states.register(id, p.key, p.mvec.len());
                outcome.bulk_inserted += 1;
                outcome.placed.push(id);
            }
        }
        prev_placed.clear();
        prev_placed.extend_from_slice(&outcome.placed[placed_from..]);
        if prev_placed.is_empty() {
            break;
        }
    }
    // Whatever no slot reclaimed is genuinely stale. The destroy-up-front
    // path removed these before planning; skipping them during planning
    // made the two orders observably identical, so the late removal cannot
    // create new violations.
    for &id in plan.inventory.iter() {
        if doomed.remove(id) {
            let _ = graph.remove(id);
            states.unregister(id);
            outcome.destroyed += 1;
        }
    }
    outcome
}

/// [`repair_violation`], reconciliation flavour: identical run walk, slot
/// arithmetic, and key choice — against the *logical* graph (doomed
/// dummies absent, planned dummies present) — but each slot is served by
/// reclaim / evict-and-plan / plan instead of an unconditional insert.
#[allow(clippy::too_many_arguments)]
fn reconcile_violation(
    graph: &mut SkipGraph,
    states: &mut StateTable,
    a: usize,
    protect: &[(Key, Key)],
    violation: &BalanceViolation,
    doomed: &mut NodeStampSet,
    salvage: &DummySalvage,
    planned: &mut Vec<PlannedDummy>,
    run_buf: &mut Vec<Key>,
    outcome: &mut DummyReconcileOutcome,
) {
    if graph.node(violation.start).is_none() {
        return;
    }
    let level = violation.level;
    let prefix = violation.prefix;
    let member_of_list =
        |p: &PlannedDummy| p.mvec.len() >= level && p.mvec.prefix(level) == prefix;
    // Merged run-key snapshot: the physical chain minus the doomed dummies,
    // with this pass's planned dummies interleaved at their key positions —
    // exactly the chain the insert-one-by-one oracle would walk.
    run_buf.clear();
    let mut cursor = Some(violation.start);
    // Forward cursor into the (key-sorted) plan: the run is walked in
    // ascending key order, so one binary search at the start and a linear
    // merge replace a bisection per gap.
    let mut pi = usize::MAX;
    'walk: while let Some(id) = cursor {
        let next = graph
            .neighbors(id, level)
            .expect("run member is live")
            .1;
        if doomed.contains(id) {
            cursor = next;
            continue;
        }
        let key = graph.key_of(id).expect("run member is live");
        if pi == usize::MAX {
            // First (non-doomed) member: planned dummies before it are
            // outside the run.
            pi = planned.partition_point(|p| p.key <= key);
        } else {
            while pi < planned.len() && planned[pi].key < key {
                if member_of_list(&planned[pi]) {
                    run_buf.push(planned[pi].key);
                    if run_buf.len() >= violation.run_length {
                        break 'walk;
                    }
                }
                pi += 1;
            }
        }
        run_buf.push(key);
        if run_buf.len() >= violation.run_length {
            break;
        }
        cursor = next;
    }
    if run_buf.len() < violation.run_length && pi != usize::MAX {
        // The physical chain ended first; planned dummies past its tail
        // belong to the run too (the oracle's chain continues through its
        // freshly inserted nodes).
        while pi < planned.len() && run_buf.len() < violation.run_length {
            if member_of_list(&planned[pi]) {
                run_buf.push(planned[pi].key);
            }
            pi += 1;
        }
    }
    let mut mvec = prefix_vector(&violation.prefix);
    mvec.push(violation.bit.flipped()).expect("within height limit");
    let list_salvage = salvage_slice(salvage, &mvec);
    // Identical member walk and break policy as [`repair_violation`]; only
    // the placement action differs per break.
    let mut last_break: isize = -1;
    while let Some(action) = next_break(
        run_buf,
        last_break,
        a,
        protect,
        list_salvage,
        // A snapshot entry is reclaimable while its key still holds an
        // inventoried (doomed) dummy: a claim un-dooms it, an eviction
        // removes it — the same flips the oracle's unoccupied-key
        // predicate makes.
        &|key| {
            graph
                .node_by_key(key)
                .is_some_and(|id| doomed.contains(id))
        },
    ) {
        let b = match action {
            BreakAction::Salvaged(g, key) => {
                // The standing dummy already breaks this segment with the
                // right vector — reclaim it in place, zero graph mutation.
                // The oracle makes the same choice and re-creates it at the
                // same key.
                let standing = graph
                    .node_by_key(key)
                    .expect("salvaged dummy is still standing");
                debug_assert!(doomed.contains(standing));
                doomed.remove(standing);
                outcome.placed.push(standing);
                outcome.reused += 1;
                outcome.rounds += 1;
                last_break = g as isize;
                continue;
            }
            BreakAction::Fresh(b) => b,
        };
        last_break = b as isize;
        let choice = free_key_between_by(
            |k| {
                let key = Key::new(k);
                if planned.binary_search_by_key(&key, |p| p.key).is_ok() {
                    return true;
                }
                match graph.node_by_key(key) {
                    Some(id) => !doomed.contains(id),
                    None => false,
                }
            },
            run_buf[b].value(),
            run_buf[b + 1].value(),
        );
        match choice {
            Some(key) => {
                let key = Key::new(key);
                if let Some(standing) = graph.node_by_key(key) {
                    // The probe reported this key free, so the standing node
                    // is an inventoried dummy — and its vector cannot match
                    // (a matching one would have been salvaged above), so it
                    // is superseded: evict it to make room.
                    debug_assert!(doomed.contains(standing));
                    let _ = graph.remove(standing);
                    states.unregister(standing);
                    doomed.remove(standing);
                    outcome.destroyed += 1;
                }
                plan_dummy(planned, key, mvec);
                outcome.rounds += 1;
            }
            None => outcome.unrepairable_runs += 1,
        }
    }
}

/// Records a planned dummy, keeping the plan sorted by key.
fn plan_dummy(planned: &mut Vec<PlannedDummy>, key: Key, mvec: MembershipVector) {
    let idx = planned
        .binary_search_by_key(&key, |p| p.key)
        .expect_err("planned keys are chosen unoccupied");
    planned.insert(idx, PlannedDummy { key, mvec });
}

/// An *unoccupied* key strictly between `left` and `right`, if one exists.
/// Candidates are spread across the gap (rather than clustered around the
/// midpoint) so that successive dummies keep leaving room for later ones.
fn free_key_between(graph: &SkipGraph, left: u64, right: u64) -> Option<u64> {
    free_key_between_by(
        |k| graph.node_by_key(Key::new(k)).is_some(),
        left,
        right,
    )
}

/// [`free_key_between`] against a caller-supplied occupancy oracle — the
/// reconciliation planner probes the *logical* occupancy (doomed dummies
/// free, planned dummies taken) so its key choices replay the
/// destroy-up-front path's exactly.
fn free_key_between_by<F: Fn(u64) -> bool>(occupied: F, left: u64, right: u64) -> Option<u64> {
    let (lo, hi) = if left <= right { (left, right) } else { (right, left) };
    let gap = hi - lo;
    if gap <= 1 {
        return None;
    }
    // Fast path: the first candidate (the midpoint) is free — the
    // overwhelmingly common case, since keys are sparse in the gap. One
    // lookup instead of the candidate sweep.
    let midpoint = lo + gap / 2;
    if !occupied(midpoint) {
        return Some(midpoint);
    }
    // Probe 1/2, 1/4, 3/4, 1/8, … of the gap lazily, one occupancy check
    // each, then fall back to a linear scan of the (small) remaining space.
    let mut denom = 2u64;
    while denom <= 64 && (gap / denom) >= 1 {
        let step = gap / denom;
        let mut k = 1u64;
        while k < denom {
            let key = lo + step * k;
            if key > lo && key < hi && !occupied(key) {
                return Some(key);
            }
            k += 2;
        }
        denom *= 2;
    }
    if gap <= 64 {
        ((lo + 1)..hi).find(|&key| !occupied(key))
    } else {
        None
    }
}

/// Rebuilds the membership-vector prefix of a list as an owned vector.
fn prefix_vector(prefix: &dsg_skipgraph::Prefix) -> MembershipVector {
    let mut mvec = MembershipVector::empty();
    for level in 1..=prefix.level() {
        let bit: Bit = prefix.bit(level).expect("level within prefix");
        mvec.push(bit).expect("within height limit");
    }
    mvec
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsg_skipgraph::Key;

    /// Keys spaced far apart so that dummies always fit in between.
    fn spaced_key(i: u64) -> u64 {
        (i + 1) << 20
    }

    fn unbalanced_graph(n: u64, a: usize) -> (SkipGraph, StateTable) {
        // Every node goes to the 0-sublist at level 1: one long run.
        let graph = SkipGraph::from_members((0..n).map(|i| {
            (
                Key::new(spaced_key(i)),
                MembershipVector::parse("0").unwrap(),
            )
        }))
        .unwrap();
        let mut states = StateTable::new();
        for id in graph.node_ids().collect::<Vec<_>>() {
            let key = graph.key_of(id).unwrap();
            states.register(id, key, 0);
        }
        assert!(!graph.is_a_balanced(a));
        (graph, states)
    }

    #[test]
    fn repair_breaks_long_runs() {
        let a = 3;
        let (mut graph, mut states) = unbalanced_graph(10, a);
        let outcome = repair_balance(&mut graph, &mut states, a, &[], None);
        assert!(!outcome.inserted.is_empty());
        assert_eq!(outcome.unrepairable_runs, 0);
        assert!(graph.is_a_balanced(a), "graph still unbalanced after repair");
        graph.validate().unwrap();
        // The paper bounds the number of dummies by n / a.
        assert!(outcome.inserted.len() <= 10 / a + 1);
        // Dummies are flagged and registered.
        for id in &outcome.inserted {
            assert!(graph.node(*id).unwrap().is_dummy());
            assert!(states.contains(*id));
        }
    }

    #[test]
    fn balanced_graphs_are_left_untouched() {
        let graph_members = (0..8u64).map(|i| {
            let v = if i % 2 == 0 { "0" } else { "1" };
            (Key::new(spaced_key(i)), MembershipVector::parse(v).unwrap())
        });
        let mut graph = SkipGraph::from_members(graph_members).unwrap();
        let mut states = StateTable::new();
        for id in graph.node_ids().collect::<Vec<_>>() {
            let key = graph.key_of(id).unwrap();
            states.register(id, key, 0);
        }
        let outcome = repair_balance(&mut graph, &mut states, 2, &[], None);
        assert!(outcome.inserted.is_empty());
        assert_eq!(graph.dummy_count(), 0);
    }

    /// Edge-case coverage for the reconciliation's occupancy-oracle probe
    /// ([`free_key_between_by`]), previously exercised only through full
    /// runs.
    #[test]
    fn free_key_between_by_handles_doomed_and_dense_windows() {
        // All keys doomed (the reconciliation planner's view of a window
        // whose every standing dummy is inventoried): everything reads as
        // free, so the probe returns the midpoint immediately.
        let all_doomed = |_k: u64| false;
        assert_eq!(free_key_between_by(all_doomed, 100, 200), Some(150));
        assert_eq!(free_key_between_by(all_doomed, 200, 100), Some(150));

        // Fully occupied window: no key can be derived.
        let occupied = |_k: u64| true;
        assert_eq!(free_key_between_by(occupied, 100, 200), None);

        // Degenerate gaps: adjacent or equal bounds hold no interior key,
        // doomed or not.
        assert_eq!(free_key_between_by(all_doomed, 7, 8), None);
        assert_eq!(free_key_between_by(all_doomed, 7, 7), None);

        // Midpoint taken: the probe spreads across the gap instead of
        // giving up, and never returns an occupied or out-of-range key.
        let only_midpoint = |k: u64| k == 150;
        let key = free_key_between_by(only_midpoint, 100, 200).expect("gap has room");
        assert!(key > 100 && key < 200 && key != 150);

        // Small dense gap with one hole: the linear fallback finds it.
        let one_hole = |k: u64| k != 13;
        assert_eq!(free_key_between_by(one_hole, 10, 20), Some(13));
    }

    #[test]
    fn dense_keys_report_unrepairable_runs() {
        // Adjacent integer keys leave no room for dummy keys.
        let graph_members =
            (0..6u64).map(|i| (Key::new(i), MembershipVector::parse("0").unwrap()));
        let mut graph = SkipGraph::from_members(graph_members).unwrap();
        let mut states = StateTable::new();
        for id in graph.node_ids().collect::<Vec<_>>() {
            let key = graph.key_of(id).unwrap();
            states.register(id, key, 0);
        }
        let outcome = repair_balance(&mut graph, &mut states, 2, &[], None);
        assert!(outcome.unrepairable_runs > 0);
        assert!(outcome.inserted.is_empty());
    }

}
