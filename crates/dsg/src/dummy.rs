//! a-balance maintenance with dummy nodes (paper §IV-F).
//!
//! A transformation (or a join/leave) may leave a linked list in which more
//! than `a` consecutive members move to the same sublist at the next level,
//! violating the a-balance property and threatening the `a · log n` bound on
//! search paths. DSG repairs this by placing *dummy nodes* — logical,
//! routing-only nodes — in the sibling subgraph so that no run of same-bit
//! members is longer than `a`. A dummy node holds no data, owns `O(log n)`
//! links like a regular node, and destroys itself the next time it receives
//! a transformation notification. At most `n / a` dummy nodes can exist.

use dsg_skipgraph::{Bit, Key, MembershipVector, NodeId, SkipGraph};

use crate::state::StateTable;

/// Result of one a-balance repair pass.
#[derive(Debug, Clone, Default)]
pub struct DummyRepairOutcome {
    /// Ids of the dummy nodes inserted.
    pub inserted: Vec<NodeId>,
    /// Runs that could not be repaired because no key was available between
    /// the run members (only possible when the application key space is
    /// fully dense).
    pub unrepairable_runs: usize,
    /// Rounds charged: one chain-detection sweep plus one insertion per
    /// dummy.
    pub rounds: usize,
}

/// Detects a-balance violations and inserts dummy nodes to break every
/// over-long run. Newly inserted dummies are registered in `states` so that
/// later transformations can destroy them cleanly.
///
/// Two engineering refinements over the paper's description, both noted in
/// `DESIGN.md`:
///
/// * stale dummies from earlier repairs are garbage-collected first, so the
///   live dummy population always reflects the *current* structure and stays
///   within the paper's `n / a` bound;
/// * `protect` names one adjacency (normally the pair that just
///   communicated) that a dummy key must not be placed into, preserving the
///   direct link the transformation just established.
pub fn repair_balance(
    graph: &mut SkipGraph,
    states: &mut StateTable,
    a: usize,
    protect: Option<(Key, Key)>,
    scope: Option<(usize, dsg_skipgraph::Prefix)>,
) -> DummyRepairOutcome {
    let mut outcome = DummyRepairOutcome::default();
    // Without a scope (membership churn), garbage-collect dummies left over
    // from earlier repairs; the passes below re-create exactly the ones the
    // current structure needs. With a scope (the subtree a transformation
    // just rebuilt, §IV-F), the stale dummies of that subtree were already
    // destroyed by the notification, so nothing needs collecting.
    if scope.is_none() {
        let stale: Vec<NodeId> = graph
            .node_ids()
            .filter(|id| graph.node(*id).map(|e| e.is_dummy()).unwrap_or(false))
            .collect();
        for id in stale {
            let _ = graph.remove(id);
            states.unregister(id);
        }
    }
    let in_scope = |level: usize, prefix: &dsg_skipgraph::Prefix| match &scope {
        None => true,
        Some((scope_level, scope_prefix)) => {
            level >= *scope_level && scope_prefix.is_prefix_of(prefix)
        }
    };
    // Inserting a dummy splits a run of length r into pieces of length ≤ a,
    // but the inserted node itself joins every ancestor list and may extend
    // a run there; each pass repairs one "layer" of damage, so the number of
    // passes is bounded by the structure height (plus slack).
    let max_passes = graph.height() + 10;
    // Reused across violations/passes: the member snapshot of the list a
    // violation was found in (a snapshot is needed because dummy insertion
    // mutates the graph while the run is being repaired).
    let mut list_buf: Vec<NodeId> = Vec::new();
    for _pass in 0..max_passes {
        let report = graph.check_balance(a);
        outcome.rounds += a + 1;
        if report.is_balanced() {
            break;
        }
        let mut repaired_any = false;
        for violation in &report.violations {
            if !in_scope(violation.level, &violation.prefix) {
                continue;
            }
            repaired_any = true;
            list_buf.clear();
            list_buf.extend(graph.list_iter(violation.level, violation.prefix));
            // Locate the run inside the list.
            let start = match list_buf.iter().position(|id| {
                graph
                    .node(*id)
                    .map(|e| e.key() == violation.start_key)
                    .unwrap_or(false)
            }) {
                Some(idx) => idx,
                None => continue,
            };
            let run = &list_buf[start..(start + violation.run_length).min(list_buf.len())];
            // Insert a dummy after every a-th member of the run, keyed
            // between its neighbours, living in the sibling subgraph at the
            // next level. A slot that coincides with the protected adjacency
            // (the pair that just communicated) is shifted one step left so
            // the pair's direct link survives.
            let is_protected_slot = |graph: &SkipGraph, left: NodeId, right: NodeId| {
                protect.is_some_and(|(pk1, pk2)| {
                    let lk = graph.key_of(left).expect("run member is live");
                    let rk = graph.key_of(right).expect("run member is live");
                    (lk == pk1 && rk == pk2) || (lk == pk2 && rk == pk1)
                })
            };
            let mut position = a;
            while position < run.len() {
                let mut slot = position;
                if is_protected_slot(graph, run[slot - 1], run[slot]) && slot >= 2 {
                    slot -= 1;
                }
                let left = run[slot - 1];
                let right = run[slot];
                let left_key = graph.key_of(left).expect("run member is live").value();
                let right_key = graph.key_of(right).expect("run member is live").value();
                match free_key_between(graph, left_key, right_key) {
                    Some(key) => {
                        let mut mvec = prefix_vector(&violation.prefix);
                        mvec.push(violation.bit.flipped()).expect("within height limit");
                        if let Ok(id) = graph.insert_dummy(Key::new(key), mvec) {
                            states.register(id, Key::new(key), violation.level + 1);
                            outcome.inserted.push(id);
                            outcome.rounds += 1;
                        }
                    }
                    None => outcome.unrepairable_runs += 1,
                }
                position = slot + a;
            }
        }
        if !repaired_any {
            // Every remaining violation lies outside the repair scope; the
            // paper leaves those to the transformations that rebuild the
            // corresponding regions.
            break;
        }
    }
    outcome
}

/// Removes the dummy nodes among `members` (they destroy themselves upon
/// receiving a transformation notification, §IV-F). Returns the ids of the
/// destroyed dummies.
pub fn destroy_dummies(
    graph: &mut SkipGraph,
    states: &mut StateTable,
    members: &[NodeId],
) -> Vec<NodeId> {
    let mut destroyed = Vec::new();
    for &id in members {
        let is_dummy = graph.node(id).map(|e| e.is_dummy()).unwrap_or(false);
        if is_dummy {
            let _ = graph.remove(id);
            states.unregister(id);
            destroyed.push(id);
        }
    }
    destroyed
}

/// An *unoccupied* key strictly between `left` and `right`, if one exists.
/// Candidates are spread across the gap (rather than clustered around the
/// midpoint) so that successive dummies keep leaving room for later ones.
fn free_key_between(graph: &SkipGraph, left: u64, right: u64) -> Option<u64> {
    let (lo, hi) = if left <= right { (left, right) } else { (right, left) };
    let gap = hi - lo;
    if gap <= 1 {
        return None;
    }
    // Probe 1/2, 1/4, 3/4, 1/8, … of the gap, then fall back to a linear
    // scan of the (small) remaining space.
    let mut candidates: Vec<u64> = Vec::new();
    let mut denom = 2u64;
    while denom <= 64 && (gap / denom) >= 1 {
        let step = gap / denom;
        let mut k = 1u64;
        while k < denom {
            let key = lo + step * k;
            if key > lo && key < hi {
                candidates.push(key);
            }
            k += 2;
        }
        denom *= 2;
    }
    if gap <= 64 {
        candidates.extend((lo + 1)..hi);
    }
    candidates
        .into_iter()
        .find(|&key| graph.node_by_key(Key::new(key)).is_none())
}

/// Rebuilds the membership-vector prefix of a list as an owned vector.
fn prefix_vector(prefix: &dsg_skipgraph::Prefix) -> MembershipVector {
    let mut mvec = MembershipVector::empty();
    for level in 1..=prefix.level() {
        let bit: Bit = prefix.bit(level).expect("level within prefix");
        mvec.push(bit).expect("within height limit");
    }
    mvec
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsg_skipgraph::Key;

    /// Keys spaced far apart so that dummies always fit in between.
    fn spaced_key(i: u64) -> u64 {
        (i + 1) << 20
    }

    fn unbalanced_graph(n: u64, a: usize) -> (SkipGraph, StateTable) {
        // Every node goes to the 0-sublist at level 1: one long run.
        let graph = SkipGraph::from_members((0..n).map(|i| {
            (
                Key::new(spaced_key(i)),
                MembershipVector::parse("0").unwrap(),
            )
        }))
        .unwrap();
        let mut states = StateTable::new();
        for id in graph.node_ids().collect::<Vec<_>>() {
            let key = graph.key_of(id).unwrap();
            states.register(id, key, 0);
        }
        assert!(!graph.is_a_balanced(a));
        (graph, states)
    }

    #[test]
    fn repair_breaks_long_runs() {
        let a = 3;
        let (mut graph, mut states) = unbalanced_graph(10, a);
        let outcome = repair_balance(&mut graph, &mut states, a, None, None);
        assert!(!outcome.inserted.is_empty());
        assert_eq!(outcome.unrepairable_runs, 0);
        assert!(graph.is_a_balanced(a), "graph still unbalanced after repair");
        graph.validate().unwrap();
        // The paper bounds the number of dummies by n / a.
        assert!(outcome.inserted.len() <= 10 / a + 1);
        // Dummies are flagged and registered.
        for id in &outcome.inserted {
            assert!(graph.node(*id).unwrap().is_dummy());
            assert!(states.contains(*id));
        }
    }

    #[test]
    fn balanced_graphs_are_left_untouched() {
        let graph_members = (0..8u64).map(|i| {
            let v = if i % 2 == 0 { "0" } else { "1" };
            (Key::new(spaced_key(i)), MembershipVector::parse(v).unwrap())
        });
        let mut graph = SkipGraph::from_members(graph_members).unwrap();
        let mut states = StateTable::new();
        for id in graph.node_ids().collect::<Vec<_>>() {
            let key = graph.key_of(id).unwrap();
            states.register(id, key, 0);
        }
        let outcome = repair_balance(&mut graph, &mut states, 2, None, None);
        assert!(outcome.inserted.is_empty());
        assert_eq!(graph.dummy_count(), 0);
    }

    #[test]
    fn dense_keys_report_unrepairable_runs() {
        // Adjacent integer keys leave no room for dummy keys.
        let graph_members =
            (0..6u64).map(|i| (Key::new(i), MembershipVector::parse("0").unwrap()));
        let mut graph = SkipGraph::from_members(graph_members).unwrap();
        let mut states = StateTable::new();
        for id in graph.node_ids().collect::<Vec<_>>() {
            let key = graph.key_of(id).unwrap();
            states.register(id, key, 0);
        }
        let outcome = repair_balance(&mut graph, &mut states, 2, None, None);
        assert!(outcome.unrepairable_runs > 0);
        assert!(outcome.inserted.is_empty());
    }

    #[test]
    fn destroy_dummies_removes_only_dummies() {
        let a = 2;
        let (mut graph, mut states) = unbalanced_graph(8, a);
        let repair = repair_balance(&mut graph, &mut states, a, None, None);
        assert!(!repair.inserted.is_empty());
        let everyone: Vec<NodeId> = graph.node_ids().collect();
        let destroyed = destroy_dummies(&mut graph, &mut states, &everyone);
        assert_eq!(destroyed.len(), repair.inserted.len());
        assert_eq!(graph.dummy_count(), 0);
        assert_eq!(graph.len(), 8);
        graph.validate().unwrap();
    }
}
