//! a-balance maintenance with dummy nodes (paper §IV-F).
//!
//! A transformation (or a join/leave) may leave a linked list in which more
//! than `a` consecutive members move to the same sublist at the next level,
//! violating the a-balance property and threatening the `a · log n` bound on
//! search paths. DSG repairs this by placing *dummy nodes* — logical,
//! routing-only nodes — in the sibling subgraph so that no run of same-bit
//! members is longer than `a`. A dummy node holds no data, owns `O(log n)`
//! links like a regular node, and destroys itself the next time it receives
//! a transformation notification. The paper bounds the dummies placed for a
//! rearranged level by `n / a`; this implementation repairs every level, so
//! its live population is bounded by that per-level bound times the height.
//!
//! Two repair entry points exist. [`repair_balance`] is the full sweep used
//! after membership churn (join/leave): global balance check, repair,
//! repeat. [`repair_balance_incremental`] is the differential form driven
//! by [`DynamicSkipGraph::communicate`](crate::DynamicSkipGraph): it
//! re-checks only the lists the transformation install actually changed
//! (plus, transitively, the runs around each dummy the repair itself
//! inserts), so its cost is proportional to the change, not the structure.
//! Relatedly, the paper's "dummies destroy themselves on notification" is
//! applied differentially by [`destroy_dummies_in_lists`]: only dummies
//! sitting in rebuilt lists self-destruct — a dummy in an untouched list
//! still breaks exactly the run it was placed for, so destroying and
//! re-creating it each request (the literal reading) would be pure churn
//! with an observably identical end state.

use dsg_skipgraph::{BalanceViolation, Bit, Key, MembershipVector, NodeId, Prefix, SkipGraph};

use crate::state::StateTable;

/// Result of one a-balance repair pass.
#[derive(Debug, Clone, Default)]
pub struct DummyRepairOutcome {
    /// Ids of the dummy nodes inserted.
    pub inserted: Vec<NodeId>,
    /// Runs that could not be repaired because no key was available between
    /// the run members (only possible when the application key space is
    /// fully dense).
    pub unrepairable_runs: usize,
    /// Rounds charged: one chain-detection sweep plus one insertion per
    /// dummy.
    pub rounds: usize,
}

/// Detects a-balance violations and inserts dummy nodes to break every
/// over-long run. Newly inserted dummies are registered in `states` so that
/// later transformations can destroy them cleanly.
///
/// Two engineering refinements over the paper's description, both noted in
/// `DESIGN.md`:
///
/// * stale dummies from earlier repairs are garbage-collected first, so the
///   live dummy population always reflects the *current* structure and stays
///   within the paper's `n / a` bound;
/// * `protect` names adjacencies (normally the pairs that just
///   communicated in the current epoch) that a dummy key must not be
///   placed into, preserving the direct links the transformation just
///   established.
pub fn repair_balance(
    graph: &mut SkipGraph,
    states: &mut StateTable,
    a: usize,
    protect: &[(Key, Key)],
    scope: Option<(usize, dsg_skipgraph::Prefix)>,
) -> DummyRepairOutcome {
    let mut outcome = DummyRepairOutcome::default();
    // Without a scope (membership churn), garbage-collect dummies left over
    // from earlier repairs; the passes below re-create exactly the ones the
    // current structure needs. With a scope (the subtree a transformation
    // just rebuilt, §IV-F), the stale dummies of that subtree were already
    // destroyed by the notification, so nothing needs collecting.
    if scope.is_none() {
        let stale: Vec<NodeId> = graph
            .node_ids()
            .filter(|id| graph.node(*id).map(|e| e.is_dummy()).unwrap_or(false))
            .collect();
        for id in stale {
            let _ = graph.remove(id);
            states.unregister(id);
        }
    }
    let in_scope = |level: usize, prefix: &dsg_skipgraph::Prefix| match &scope {
        None => true,
        Some((scope_level, scope_prefix)) => {
            level >= *scope_level && scope_prefix.is_prefix_of(prefix)
        }
    };
    // Inserting a dummy splits a run of length r into pieces of length ≤ a,
    // but the inserted node itself joins every ancestor list and may extend
    // a run there; each pass repairs one "layer" of damage, so the number of
    // passes is bounded by the structure height (plus slack).
    let max_passes = graph.height() + 10;
    // Reused across violations/passes: the member snapshot of the run being
    // repaired (dummy insertion mutates the chain while the run is walked).
    let mut list_buf: Vec<NodeId> = Vec::new();
    for _pass in 0..max_passes {
        let report = graph.check_balance(a);
        outcome.rounds += a + 1;
        if report.is_balanced() {
            break;
        }
        let mut repaired_any = false;
        for violation in &report.violations {
            if !in_scope(violation.level, &violation.prefix) {
                continue;
            }
            repaired_any = true;
            repair_violation(graph, states, a, protect, violation, &mut list_buf, &mut outcome);
        }
        if !repaired_any {
            // Every remaining violation lies outside the repair scope; the
            // paper leaves those to the transformations that rebuild the
            // corresponding regions.
            break;
        }
    }
    outcome
}

/// Incremental a-balance repair: instead of sweeping the whole graph per
/// pass, only the lists named in `worklist` are checked — after a
/// differential transformation these are exactly the lists whose membership
/// or next-level split pattern changed, so the repair cost is proportional
/// to the change, not to the structure size. Each inserted dummy enqueues
/// its own lists (at levels ≥ `floor`, mirroring the scope rule of
/// [`repair_balance`]) for the next pass, so follow-up damage from the
/// insertions themselves is still caught.
///
/// `worklist` is consumed; it must be deduplicated, and a sorted order makes
/// the repair (and hence the dummy keys it picks) deterministic.
pub fn repair_balance_incremental(
    graph: &mut SkipGraph,
    states: &mut StateTable,
    a: usize,
    protect: &[(Key, Key)],
    floor: usize,
    worklist: &mut Vec<(usize, Prefix)>,
) -> DummyRepairOutcome {
    let mut outcome = DummyRepairOutcome::default();
    let max_passes = graph.height() + 10;
    let mut list_buf: Vec<NodeId> = Vec::new();
    let mut violations: Vec<BalanceViolation> = Vec::new();
    let mut prev_pass_dummies: Vec<NodeId> = Vec::new();
    for pass in 0..max_passes {
        violations.clear();
        let pass_inserted_from = outcome.inserted.len();
        if pass == 0 {
            // First pass: full scan of the lists the install changed.
            for &(level, prefix) in worklist.iter() {
                graph.list_balance_violations(a, level, prefix, &mut violations);
            }
        } else {
            // Cascade passes: a repair only lengthens the runs its dummies
            // landed in (every dummy joins its whole prefix path), so only
            // the runs around the dummies of the previous pass can have
            // become over-long — O(run length) checks instead of whole-list
            // rescans. Sorting + dedup collapses dummies that landed in the
            // same run.
            for &dummy in &prev_pass_dummies {
                let Ok(mvec) = graph.mvec_of(dummy) else { continue };
                for level in floor..=mvec.len() {
                    if let Some(violation) = graph.run_violation_at(a, dummy, level) {
                        violations.push(violation);
                    }
                }
            }
            violations.sort_unstable_by_key(|v| (v.level, v.prefix, v.start_key));
            violations.dedup_by_key(|v| (v.level, v.prefix, v.start_key));
        }
        outcome.rounds += a + 1;
        if violations.is_empty() {
            break;
        }
        for violation in &violations {
            repair_violation(graph, states, a, protect, violation, &mut list_buf, &mut outcome);
        }
        prev_pass_dummies.clear();
        prev_pass_dummies.extend_from_slice(&outcome.inserted[pass_inserted_from..]);
        if prev_pass_dummies.is_empty() {
            break;
        }
    }
    worklist.clear();
    outcome
}

/// Breaks one over-long run by inserting a dummy after every `a`-th member,
/// keyed between its neighbours, living in the sibling subgraph at the next
/// level. A slot that coincides with the protected adjacency (the pair that
/// just communicated) is shifted one step left so the pair's direct link
/// survives.
///
/// The run members are walked directly from [`BalanceViolation::start`]
/// into `run_buf` (a reusable scratch vector) before any insertion — a
/// snapshot is needed because the insertions splice into the chain being
/// repaired, and walking only the run keeps the repair O(run length)
/// instead of O(list length).
fn repair_violation(
    graph: &mut SkipGraph,
    states: &mut StateTable,
    a: usize,
    protect: &[(Key, Key)],
    violation: &BalanceViolation,
    run_buf: &mut Vec<NodeId>,
    outcome: &mut DummyRepairOutcome,
) {
    if graph.node(violation.start).is_none() {
        return;
    }
    run_buf.clear();
    let mut cursor = Some(violation.start);
    while let Some(id) = cursor {
        run_buf.push(id);
        if run_buf.len() >= violation.run_length {
            break;
        }
        cursor = graph
            .neighbors(id, violation.level)
            .expect("run member is live")
            .1;
    }
    let run: &[NodeId] = run_buf;
    let is_protected_slot = |graph: &SkipGraph, left: NodeId, right: NodeId| {
        protect.iter().any(|&(pk1, pk2)| {
            let lk = graph.key_of(left).expect("run member is live");
            let rk = graph.key_of(right).expect("run member is live");
            (lk == pk1 && rk == pk2) || (lk == pk2 && rk == pk1)
        })
    };
    let mut position = a;
    while position < run.len() {
        let mut slot = position;
        if is_protected_slot(graph, run[slot - 1], run[slot]) && slot >= 2 {
            slot -= 1;
        }
        let left = run[slot - 1];
        let right = run[slot];
        let left_key = graph.key_of(left).expect("run member is live").value();
        let right_key = graph.key_of(right).expect("run member is live").value();
        match free_key_between(graph, left_key, right_key) {
            Some(key) => {
                let mut mvec = prefix_vector(&violation.prefix);
                mvec.push(violation.bit.flipped()).expect("within height limit");
                if let Ok(id) = graph.insert_dummy(Key::new(key), mvec) {
                    states.register(id, Key::new(key), violation.level + 1);
                    outcome.inserted.push(id);
                    outcome.rounds += 1;
                }
            }
            None => outcome.unrepairable_runs += 1,
        }
        position = slot + a;
    }
}

/// Differential dummy garbage collection: destroys exactly the dummies that
/// are members of one of the `affected` lists — the lists a transformation
/// install actually rebuilt. Dummies elsewhere keep standing; the lists
/// they balance did not change, so they are still load-bearing and the
/// destroy-everything-recreate-identically churn of a full notification is
/// skipped.
///
/// Removing a dummy splices it out of *all* its lists, which can merge two
/// runs anywhere along its prefix path, so every destroyed dummy's lists at
/// levels ≥ `floor` are appended to `affected` for the balance re-check
/// (only the entries present on entry are searched for dummies). With
/// `use_stamps`, the appends are deduplicated against the current
/// batch-install epoch via [`SkipGraph::stamp_node_lists`]; the per-node
/// reference install path passes `false` and relies on the caller's
/// sort + dedup instead. Returns the number of dummies destroyed.
pub fn destroy_dummies_in_lists(
    graph: &mut SkipGraph,
    states: &mut StateTable,
    floor: usize,
    affected: &mut Vec<(usize, Prefix)>,
    stale_buf: &mut Vec<NodeId>,
    use_stamps: bool,
) -> usize {
    stale_buf.clear();
    for &(level, prefix) in affected.iter() {
        stale_buf.extend(
            graph
                .list_iter(level, prefix)
                .filter(|&id| graph.node(id).map(|e| e.is_dummy()).unwrap_or(false)),
        );
    }
    let mut destroyed = 0usize;
    for &id in stale_buf.iter() {
        // A dummy can sit in several affected lists; the second sighting
        // finds it already removed.
        let Some(entry) = graph.node(id) else { continue };
        if !entry.is_dummy() {
            continue;
        }
        if use_stamps {
            graph
                .stamp_node_lists(id, floor, affected)
                .expect("dummy is live");
        } else {
            let mvec = *entry.mvec();
            for level in floor..=mvec.len() {
                affected.push((level, mvec.prefix(level)));
            }
        }
        let _ = graph.remove(id);
        states.unregister(id);
        destroyed += 1;
    }
    destroyed
}

/// An *unoccupied* key strictly between `left` and `right`, if one exists.
/// Candidates are spread across the gap (rather than clustered around the
/// midpoint) so that successive dummies keep leaving room for later ones.
fn free_key_between(graph: &SkipGraph, left: u64, right: u64) -> Option<u64> {
    let (lo, hi) = if left <= right { (left, right) } else { (right, left) };
    let gap = hi - lo;
    if gap <= 1 {
        return None;
    }
    // Fast path: the first candidate (the midpoint) is free — the
    // overwhelmingly common case, since keys are sparse in the gap. One
    // lookup instead of the candidate sweep.
    let midpoint = lo + gap / 2;
    if graph.node_by_key(Key::new(midpoint)).is_none() {
        return Some(midpoint);
    }
    // Probe 1/2, 1/4, 3/4, 1/8, … of the gap lazily, one occupancy check
    // each, then fall back to a linear scan of the (small) remaining space.
    let mut denom = 2u64;
    while denom <= 64 && (gap / denom) >= 1 {
        let step = gap / denom;
        let mut k = 1u64;
        while k < denom {
            let key = lo + step * k;
            if key > lo && key < hi && graph.node_by_key(Key::new(key)).is_none() {
                return Some(key);
            }
            k += 2;
        }
        denom *= 2;
    }
    if gap <= 64 {
        ((lo + 1)..hi).find(|&key| graph.node_by_key(Key::new(key)).is_none())
    } else {
        None
    }
}

/// Rebuilds the membership-vector prefix of a list as an owned vector.
fn prefix_vector(prefix: &dsg_skipgraph::Prefix) -> MembershipVector {
    let mut mvec = MembershipVector::empty();
    for level in 1..=prefix.level() {
        let bit: Bit = prefix.bit(level).expect("level within prefix");
        mvec.push(bit).expect("within height limit");
    }
    mvec
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsg_skipgraph::Key;

    /// Keys spaced far apart so that dummies always fit in between.
    fn spaced_key(i: u64) -> u64 {
        (i + 1) << 20
    }

    fn unbalanced_graph(n: u64, a: usize) -> (SkipGraph, StateTable) {
        // Every node goes to the 0-sublist at level 1: one long run.
        let graph = SkipGraph::from_members((0..n).map(|i| {
            (
                Key::new(spaced_key(i)),
                MembershipVector::parse("0").unwrap(),
            )
        }))
        .unwrap();
        let mut states = StateTable::new();
        for id in graph.node_ids().collect::<Vec<_>>() {
            let key = graph.key_of(id).unwrap();
            states.register(id, key, 0);
        }
        assert!(!graph.is_a_balanced(a));
        (graph, states)
    }

    #[test]
    fn repair_breaks_long_runs() {
        let a = 3;
        let (mut graph, mut states) = unbalanced_graph(10, a);
        let outcome = repair_balance(&mut graph, &mut states, a, &[], None);
        assert!(!outcome.inserted.is_empty());
        assert_eq!(outcome.unrepairable_runs, 0);
        assert!(graph.is_a_balanced(a), "graph still unbalanced after repair");
        graph.validate().unwrap();
        // The paper bounds the number of dummies by n / a.
        assert!(outcome.inserted.len() <= 10 / a + 1);
        // Dummies are flagged and registered.
        for id in &outcome.inserted {
            assert!(graph.node(*id).unwrap().is_dummy());
            assert!(states.contains(*id));
        }
    }

    #[test]
    fn balanced_graphs_are_left_untouched() {
        let graph_members = (0..8u64).map(|i| {
            let v = if i % 2 == 0 { "0" } else { "1" };
            (Key::new(spaced_key(i)), MembershipVector::parse(v).unwrap())
        });
        let mut graph = SkipGraph::from_members(graph_members).unwrap();
        let mut states = StateTable::new();
        for id in graph.node_ids().collect::<Vec<_>>() {
            let key = graph.key_of(id).unwrap();
            states.register(id, key, 0);
        }
        let outcome = repair_balance(&mut graph, &mut states, 2, &[], None);
        assert!(outcome.inserted.is_empty());
        assert_eq!(graph.dummy_count(), 0);
    }

    #[test]
    fn dense_keys_report_unrepairable_runs() {
        // Adjacent integer keys leave no room for dummy keys.
        let graph_members =
            (0..6u64).map(|i| (Key::new(i), MembershipVector::parse("0").unwrap()));
        let mut graph = SkipGraph::from_members(graph_members).unwrap();
        let mut states = StateTable::new();
        for id in graph.node_ids().collect::<Vec<_>>() {
            let key = graph.key_of(id).unwrap();
            states.register(id, key, 0);
        }
        let outcome = repair_balance(&mut graph, &mut states, 2, &[], None);
        assert!(outcome.unrepairable_runs > 0);
        assert!(outcome.inserted.is_empty());
    }

}
