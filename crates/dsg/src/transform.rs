//! The topological transformation of Algorithm 1 (paper §IV-C and §IV-D).
//!
//! After routing a request `(u, v)`, DSG rebuilds the part of the skip graph
//! rooted at `l_α` — the highest-level linked list containing both `u` and
//! `v` — so that the pair ends up in a linked list of size two. The rebuild
//! proceeds level by level: the members of every affected list compute an
//! approximate median of their priorities and split into a 0-sublist and a
//! 1-sublist, with two cases:
//!
//! * **Case 1 (positive median)** — nodes with `P(x) ≥ M` move to the
//!   0-subgraph (and record `D^x = true`), the rest to the 1-subgraph. Since
//!   only the merged communicating group has positive priorities, this can
//!   only split *that* group.
//! * **Case 2 (negative median)** — the median falls inside the priority
//!   band of one non-communicating group `g_s` (equation (2)). To avoid
//!   hurting `g_s`, the split depends on `|g_s|` relative to the list size:
//!   `g_s` is either kept whole (moved to one side), or — when it dominates
//!   the list (`|g_s| > ⅔|l|`) — split along its remembered
//!   is-dominating-group flags, which reproduces a split that already
//!   happened in the past and therefore cannot increase distances inside
//!   `g_s` (Lemma 3).
//!
//! The engine works on an explicit work queue of lists rather than on the
//! graph itself; the caller applies the resulting membership-vector suffixes
//! afterwards and then runs the timestamp rules (T1–T6) using the event
//! trace recorded here.
//!
//! ## Differential install contract
//!
//! Besides the full per-member suffix map, the engine reports the
//! *difference* between the new vectors and the ones currently installed in
//! the graph: [`TransformOutcome::changes`] lists, for every member whose
//! vector actually changes, the first level at which it differs
//! ([`MembershipUpdate::from_level`]) together with the complete new vector.
//! Members whose recomputed bits coincide with their current bits below
//! `l_α` — the common case under skewed and working-set workloads, where
//! the communicating pair is already grouped together and the split
//! decisions reproduce the existing partition — do not appear at all, so
//! the install step ([`SkipGraph::apply_membership_batch`]) touches only the
//! lists that genuinely change. [`TransformOutcome::touched_pairs`] counts
//! the changed `(node, level)` pairs, the quantity the install's work is
//! proportional to.
//!
//! Internally the engine addresses members by their dense position in
//! `members_alpha` (priorities, partial suffixes, medians and split events
//! live in flat vectors) so the hot per-level loop performs no hashing; the
//! hash-keyed maps of [`TransformOutcome`] are materialised once at the
//! end for the timestamp/group consumers.

use std::collections::HashMap;

use dsg_skipgraph::{Bit, MembershipUpdate, MembershipVector, NodeId, SkipGraph};

use crate::amf::MedianFinder;
use crate::priority::{
    band_of, negative_band_priority, p2_priority, pair_top_priority, recomputed_priority,
    Priority,
};
use crate::state::{StateDelta, StateTable};

/// The most pairs one transformation epoch may serve: work items track the
/// pairs they contain in a `u64` bitmask. The session layer flushes an
/// epoch before it accumulates more.
pub const MAX_EPOCH_PAIRS: usize = 64;

/// One communicating pair served by a transformation epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransformPair {
    /// The communicating source.
    pub u: NodeId,
    /// The communicating destination.
    pub v: NodeId,
    /// The request time `t` of this pair (1-based request index; strictly
    /// ascending across the pairs of one epoch).
    pub t: u64,
}

/// Parameters of one transformation epoch: one or more communicating pairs
/// rebuilt together over the subtree rooted at the level-`alpha` list that
/// contains every endpoint.
///
/// With a single pair this is exactly Algorithm 1. With several pairs the
/// engine generalises rule P1: each pair receives a distinct finite top
/// priority keyed by its request time ([`pair_top_priority`]), so every
/// threshold split keeps each pair together while later (more recent)
/// pairs dominate earlier ones — the documented deterministic tie-break
/// for overlapping requests in one batch.
#[derive(Debug, Clone, Copy)]
pub struct TransformInput<'a> {
    /// The pairs of the epoch, in submission order (ascending `t`).
    /// Non-empty; at most [`MAX_EPOCH_PAIRS`].
    pub pairs: &'a [TransformPair],
    /// The level of the rebuilt subtree's root list: the highest common
    /// level of the single pair, or the meet of the pairs' `l_α` roots.
    pub alpha: usize,
    /// The balance parameter `a`.
    pub a: usize,
}

impl TransformInput<'_> {
    /// The epoch time: the time of the most recent pair. Rules P3/P4 and
    /// the band arithmetic use one shared `t` per epoch; for a single-pair
    /// epoch this is exactly the paper's request time.
    pub fn t_epoch(&self) -> u64 {
        self.pairs.last().map(|p| p.t).unwrap_or(0)
    }
}

/// The trace of one transformation, consumed by the timestamp and group-base
/// rules and by the cost accounting.
#[derive(Debug, Clone, Default)]
pub struct TransformOutcome {
    /// New membership-vector bits per node, for levels `α+1` upward (in
    /// order). Nodes not present keep their old vectors (they were not in
    /// `l_α`).
    pub suffixes: HashMap<NodeId, Vec<Bit>>,
    /// The differential install plan: one entry per member whose new vector
    /// *differs* from the one currently installed, carrying the first
    /// changed level and the complete new vector. Members whose bits are
    /// unchanged below `l_α` are absent — the batch installer skips them
    /// entirely. Ordered by position in `members_alpha` (ascending key).
    pub changes: Vec<MembershipUpdate>,
    /// Number of changed `(node, level)` pairs across [`Self::changes`] —
    /// the quantity the differential install's work is proportional to.
    pub touched_pairs: usize,
    /// The level `d'_i` at which each pair forms its linked list of size
    /// two, indexed like [`TransformInput::pairs`].
    pub pair_levels: Vec<usize>,
    /// The approximate medians each node received, as `(list_level, M)`
    /// pairs (timestamp rule T2 needs them).
    pub medians: HashMap<NodeId, Vec<(usize, Priority)>>,
    /// For every node, the levels at which the group it belonged to was
    /// split by this transformation (rule T5 and the group-base updates of
    /// Appendix C need them). The recorded level is the level of the *new*
    /// sublists (`list_level + 1`).
    pub group_splits: HashMap<NodeId, Vec<usize>>,
    /// Number of lists processed (for diagnostics).
    pub processed_lists: usize,
    /// Rounds spent on median computations (including skip-list builds).
    pub median_rounds: usize,
    /// Rounds spent on distributed counts and group-id broadcasts.
    pub group_accounting_rounds: usize,
    /// Rounds spent on neighbour searches after moves (≤ `a` per level).
    pub restructuring_rounds: usize,
}

impl TransformOutcome {
    /// The lowest level at which `node`'s group was split, if any.
    pub fn lowest_split_level(&self, node: NodeId) -> Option<usize> {
        self.group_splits
            .get(&node)
            .and_then(|levels| levels.iter().copied().min())
    }
}

/// One list awaiting a split. Members are dense positions into
/// `members_alpha`, kept in ascending order (hence ascending key order);
/// vectors are recycled through a pool so the hot loop does not allocate
/// after warm-up.
#[derive(Debug)]
struct WorkItem {
    /// The level at which `members` currently form a linked list.
    list_level: usize,
    /// The members, as positions into `members_alpha`.
    members: Vec<u32>,
    /// Bitmask of the epoch pairs whose *both* endpoints are in this list.
    pairs: u64,
}

/// Reusable buffers of the transformation's planning half, owned by the
/// caller (one per plan-stage worker shard) so a warm epoch plans without
/// allocating the overlay columns.
#[derive(Debug, Default)]
pub struct TransformScratch {
    /// Recycled per-member group-id columns of the engine's overlay.
    columns: Vec<Vec<u64>>,
}

/// The group-id view of one transformation in flight: the shared (read-only)
/// [`StateTable`] overlaid with the group-ids this transformation has
/// decided so far, addressed by dense member position.
///
/// This is what splits the engine into a *plan* half and an *apply* half:
/// planning needs to read its own group-id writes (step 3's merged root
/// groups, step 8's sublist ids) while leaving the shared table untouched,
/// so the writes live in a per-member column starting at the root level and
/// the matching [`StateDelta`] records them for the caller to apply. A
/// member descends the split tree through exactly one list per level, so
/// its column is written in strictly ascending level order with no gaps
/// (position 0 is pre-filled with the root-level id). Columns are borrowed
/// from the caller's [`TransformScratch`] and recycled across clusters.
struct GidOverlay<'a> {
    states: &'a StateTable,
    members: &'a [NodeId],
    alpha: usize,
    /// Per member position: group-ids for levels `alpha`, `alpha+1`, … as
    /// decided by this transformation (only the first `members.len()`
    /// columns are meaningful).
    written: &'a mut Vec<Vec<u64>>,
}

impl<'a> GidOverlay<'a> {
    fn new(
        states: &'a StateTable,
        members: &'a [NodeId],
        alpha: usize,
        written: &'a mut Vec<Vec<u64>>,
    ) -> Self {
        if written.len() < members.len() {
            written.resize_with(members.len(), Vec::new);
        }
        // Pre-fill the root level so every later read of `alpha` and above
        // hits the dense column instead of the table.
        for (column, &x) in written.iter_mut().zip(members) {
            column.clear();
            column.push(states.group_id(x, alpha));
        }
        GidOverlay {
            states,
            members,
            alpha,
            written,
        }
    }

    /// Group-id of the member at dense position `pos` at `level`, reading
    /// this transformation's own writes first.
    fn group_id(&self, pos: usize, level: usize) -> u64 {
        if level >= self.alpha {
            if let Some(&g) = self.written[pos].get(level - self.alpha) {
                return g;
            }
        }
        self.states.group_id(self.members[pos], level)
    }

    /// Records a group-id write (overlay + delta). Writes above the root
    /// level extend the member's column by exactly one level at a time.
    fn set_group_id(&mut self, delta: &mut StateDelta, pos: usize, level: usize, value: u64) {
        let idx = level - self.alpha;
        let column = &mut self.written[pos];
        debug_assert!(idx <= column.len(), "group-id writes are level-ordered");
        if idx == column.len() {
            column.push(value);
        } else {
            column[idx] = value;
        }
        delta.push_group_id(self.members[pos], level, value);
    }
}

/// Runs the full transformation for one epoch (one or more pairs),
/// applying the state writes directly: [`plan_transformation`] followed by
/// [`StateTable::apply_delta`].
pub fn run_transformation(
    graph: &SkipGraph,
    states: &mut StateTable,
    median_finder: &mut dyn MedianFinder,
    input: &TransformInput,
    members_alpha: &[NodeId],
) -> TransformOutcome {
    let (outcome, delta) = plan_transformation(graph, states, median_finder, input, members_alpha);
    states.apply_delta(&delta);
    outcome
}

/// [`run_transformation`] without materialising [`TransformOutcome::suffixes`]
/// (left empty): the batched install consumes only the diff plan
/// ([`TransformOutcome::changes`]), so building the full per-member suffix
/// map — one heap vector per member of `l_α` — would be pure overhead on
/// the hot path. The timestamp/group traces are identical.
pub fn run_transformation_lean(
    graph: &SkipGraph,
    states: &mut StateTable,
    median_finder: &mut dyn MedianFinder,
    input: &TransformInput,
    members_alpha: &[NodeId],
) -> TransformOutcome {
    let (outcome, delta) =
        plan_transformation_lean(graph, states, median_finder, input, members_alpha);
    states.apply_delta(&delta);
    outcome
}

/// The *planning* half of the transformation: computes the full trace of
/// one epoch cluster — membership-bit suffixes, the differential install
/// plan, medians, split events — against a **read-only** graph and state
/// table, recording every intended state write in the returned
/// [`StateDelta`] instead of mutating the table.
///
/// `members_alpha` must be the members of the root list at `input.alpha`
/// in ascending key order with dummy nodes already removed, containing
/// every pair endpoint. Group-ids at the root level are merged per pair in
/// submission order (Algorithm 1 step 3, recorded in the delta); deeper
/// group-ids are assigned as lists form (step 8); timestamps are *not*
/// touched (the caller applies rules T1–T6 per pair using the returned
/// trace, after applying the delta). `graph` must still hold the
/// *pre-transformation* membership vectors: the differential install plan
/// ([`TransformOutcome::changes`]) is computed against them.
///
/// Everything this function touches is borrowed immutably, so disjoint
/// clusters of one epoch can be planned concurrently on worker shards; the
/// caller applies the deltas serially in submission order, which replays
/// the exact write sequence the mutating twin would have produced.
pub fn plan_transformation(
    graph: &SkipGraph,
    states: &StateTable,
    median_finder: &mut dyn MedianFinder,
    input: &TransformInput,
    members_alpha: &[NodeId],
) -> (TransformOutcome, StateDelta) {
    let mut scratch = TransformScratch::default();
    plan_transformation_impl(graph, states, median_finder, input, members_alpha, true, &mut scratch)
}

/// [`plan_transformation`] with caller-owned recycled buffers (the epoch
/// engine passes one [`TransformScratch`] per worker shard).
pub fn plan_transformation_with(
    graph: &SkipGraph,
    states: &StateTable,
    median_finder: &mut dyn MedianFinder,
    input: &TransformInput,
    members_alpha: &[NodeId],
    scratch: &mut TransformScratch,
) -> (TransformOutcome, StateDelta) {
    plan_transformation_impl(graph, states, median_finder, input, members_alpha, true, scratch)
}

/// [`plan_transformation`] without materialising the suffix map (the
/// batched-install twin of [`run_transformation_lean`]).
pub fn plan_transformation_lean(
    graph: &SkipGraph,
    states: &StateTable,
    median_finder: &mut dyn MedianFinder,
    input: &TransformInput,
    members_alpha: &[NodeId],
) -> (TransformOutcome, StateDelta) {
    let mut scratch = TransformScratch::default();
    plan_transformation_impl(graph, states, median_finder, input, members_alpha, false, &mut scratch)
}

/// [`plan_transformation_lean`] with caller-owned recycled buffers.
pub fn plan_transformation_lean_with(
    graph: &SkipGraph,
    states: &StateTable,
    median_finder: &mut dyn MedianFinder,
    input: &TransformInput,
    members_alpha: &[NodeId],
    scratch: &mut TransformScratch,
) -> (TransformOutcome, StateDelta) {
    plan_transformation_impl(graph, states, median_finder, input, members_alpha, false, scratch)
}

fn plan_transformation_impl(
    graph: &SkipGraph,
    states: &StateTable,
    median_finder: &mut dyn MedianFinder,
    input: &TransformInput,
    members_alpha: &[NodeId],
    collect_suffixes: bool,
    plan_scratch: &mut TransformScratch,
) -> (TransformOutcome, StateDelta) {
    let npairs = input.pairs.len();
    assert!(
        (1..=MAX_EPOCH_PAIRS).contains(&npairs),
        "a transformation epoch serves 1..={MAX_EPOCH_PAIRS} pairs"
    );
    let t_epoch = input.t_epoch();
    let mut outcome = TransformOutcome {
        pair_levels: vec![0; npairs],
        ..TransformOutcome::default()
    };
    let mut delta = StateDelta::default();
    let n_total = members_alpha.len();

    // Which pair (if any) each dense member position is an endpoint of,
    // plus the root-item mask of pairs with both endpoints present. One
    // pass over the members against a small endpoint table — O(n + k),
    // not O(n · k).
    let mut pair_of_pos: Vec<Option<u16>> = vec![None; n_total];
    // Dense positions of each pair's endpoints, for the overlay reads of
    // the step-3 merge.
    let mut endpoint_pos: Vec<(usize, usize)> = vec![(usize::MAX, usize::MAX); npairs];
    let mut root_pairs = 0u64;
    {
        let endpoints: HashMap<NodeId, u16> = input
            .pairs
            .iter()
            .enumerate()
            .flat_map(|(i, pair)| [(pair.u, i as u16), (pair.v, i as u16)])
            .collect();
        let mut seen = [0u8; MAX_EPOCH_PAIRS];
        for (pos, &x) in members_alpha.iter().enumerate() {
            if let Some(&i) = endpoints.get(&x) {
                pair_of_pos[pos] = Some(i);
                seen[i as usize] += 1;
                if input.pairs[i as usize].u == x {
                    endpoint_pos[i as usize].0 = pos;
                } else {
                    endpoint_pos[i as usize].1 = pos;
                }
            }
        }
        for (i, &count) in seen.iter().take(npairs).enumerate() {
            if count == 2 {
                root_pairs |= 1 << i;
            }
        }
    }

    // Step 2: initial priorities P1–P3 for every member of the root list.
    // P1 generalises to one distinct top priority per pair; P2 matches a
    // member against the pairs' groups in submission order (first match
    // wins — the deterministic tie-break when groups are shared).
    let mut priorities: Vec<Priority> = members_alpha
        .iter()
        .enumerate()
        .map(|(pos, &x)| {
            if let Some(p) = pair_of_pos[pos] {
                return pair_top_priority(npairs, input.pairs[p as usize].t);
            }
            let gx = states.group_id(x, input.alpha);
            for pair in input.pairs {
                if gx == states.group_id(pair.u, input.alpha) {
                    return p2_priority(states, input.alpha, x, pair.u);
                }
                if gx == states.group_id(pair.v, input.alpha) {
                    return p2_priority(states, input.alpha, x, pair.v);
                }
            }
            recomputed_priority(states, t_epoch, input.alpha, x)
        })
        .collect();

    // Step 3: merge each pair's groups at the root level, in submission
    // order (later pairs see — and may absorb — earlier merges). Planned
    // through the overlay: the shared table stays untouched, the delta
    // records every write.
    let mut gids = GidOverlay::new(states, members_alpha, input.alpha, &mut plan_scratch.columns);
    for (i, pair) in input.pairs.iter().enumerate() {
        let (u_pos, v_pos) = endpoint_pos[i];
        let gu = if u_pos != usize::MAX {
            gids.group_id(u_pos, input.alpha)
        } else {
            states.group_id(pair.u, input.alpha)
        };
        let gv = if v_pos != usize::MAX {
            gids.group_id(v_pos, input.alpha)
        } else {
            states.group_id(pair.v, input.alpha)
        };
        let u_key = states.get(pair.u).key().value();
        for pos in 0..n_total {
            let gx = gids.group_id(pos, input.alpha);
            if gx == gu || gx == gv {
                gids.set_group_id(&mut delta, pos, input.alpha, u_key);
            }
        }
    }

    // Dense per-member traces, indexed by position in `members_alpha`.
    let mut suffixes: Vec<MembershipVector> = vec![MembershipVector::empty(); n_total];
    let mut medians: Vec<Vec<(usize, Priority)>> = vec![Vec::new(); n_total];
    let mut splits: Vec<Vec<usize>> = vec![Vec::new(); n_total];

    // Reusable scratch buffers for the per-list loop.
    let mut pool: Vec<Vec<u32>> = Vec::new();
    let mut values: Vec<Priority> = Vec::new();
    let mut bits: Vec<Bit> = Vec::new();
    let mut gs_mask: Vec<bool> = Vec::new();
    let mut group_scratch: Vec<(u64, u32)> = Vec::new();

    // Steps 4–9: recursive, level-parallel splitting. Lists at the same
    // level are processed *in parallel* by the distributed algorithm, so the
    // round cost charged for a level is the maximum over its lists, not the
    // sum; the per-level maxima are accumulated here and summed at the end.
    let mut median_rounds_per_level: HashMap<usize, usize> = HashMap::new();
    let mut group_rounds_per_level: HashMap<usize, usize> = HashMap::new();
    let mut restructure_levels: std::collections::HashSet<usize> = std::collections::HashSet::new();
    let mut queue: Vec<WorkItem> = vec![WorkItem {
        list_level: input.alpha,
        members: (0..n_total as u32).collect(),
        pairs: root_pairs,
    }];

    while let Some(mut item) = queue.pop() {
        let n = item.members.len();
        if n <= 1 {
            item.members.clear();
            pool.push(item.members);
            continue;
        }
        outcome.processed_lists += 1;
        let next_level = item.list_level + 1;

        bits.clear();
        if n == 2 {
            // A list of exactly two nodes splits into singletons directly:
            // a communicating pair stops here (this is its level d' of rule
            // T1); any other two nodes are separated by key order.
            if item.pairs != 0 {
                let p = item.pairs.trailing_zeros() as usize;
                outcome.pair_levels[p] = item.list_level;
            }
            split_pair_into(graph, input, members_alpha, &item, &mut bits);
        } else {
            // Step 4: approximate median of the members' priorities.
            values.clear();
            values.extend(item.members.iter().map(|&i| priorities[i as usize]));
            let median_outcome = median_finder.find_median(&values, input.a);
            let level_entry = median_rounds_per_level.entry(item.list_level).or_insert(0);
            *level_entry = (*level_entry).max(median_outcome.rounds);
            let m = median_outcome.median;
            for &i in &item.members {
                medians[i as usize].push((item.list_level, m));
            }
            // Steps 5–6: decide the split.
            let used_counts = decide_split_into(
                states,
                &gids,
                t_epoch,
                item.list_level,
                members_alpha,
                &item.members,
                &values,
                m,
                &mut gs_mask,
                &mut bits,
            );
            if used_counts {
                // |l_d|, |g_s|, |L_low|, |L_high| are computed by reusing the
                // balanced skip list: one distributed sum plus a broadcast.
                let rounds = 2 * (n.max(2) as f64).log2().ceil() as usize;
                let entry = group_rounds_per_level.entry(item.list_level).or_insert(0);
                *entry = (*entry).max(rounds);
            }
            // Degenerate guard: the approximate median may fail to separate
            // a list (all priorities equal, or an approximate median below
            // the minimum). Force a balanced split — single-pair epochs use
            // the classic interleave-and-swap (the pair lands in the
            // 0-subgraph), multi-pair lists interleave *pair atoms* so no
            // pair is torn apart — so that the recursion always terminates.
            if bits.iter().all(|b| *b == Bit::Zero) || bits.iter().all(|b| *b == Bit::One) {
                if npairs > 1 && item.pairs != 0 {
                    forced_atom_split_into(&pair_of_pos, &item, &mut bits);
                } else {
                    forced_balanced_split_into(input, members_alpha, &item, &mut bits);
                }
            }
            // Case 1 records the is-dominating-group flags. Reads of these
            // flags (the Case-2 dominating split) and this write target the
            // same level, but a list takes exactly one of the two cases, so
            // no planning read can observe a same-transformation write —
            // recording them in the delta is exact.
            if m.is_positive() {
                for (idx, &i) in item.members.iter().enumerate() {
                    delta.push_dominating(
                        members_alpha[i as usize],
                        item.list_level,
                        bits[idx] == Bit::Zero,
                    );
                }
            }
        }

        // Record the new membership bits and form the two sublists. A
        // pair's endpoints always take the same bit (they share one
        // priority value and the forced splits keep atoms whole), so a pair
        // of the parent mask lands entirely in one child; the seen-masks
        // below track that robustly rather than assuming it.
        let mut zero_members: Vec<u32> = pool.pop().unwrap_or_default();
        let mut one_members: Vec<u32> = pool.pop().unwrap_or_default();
        let (mut zero_seen, mut one_seen) = ([0u64; 2], [0u64; 2]);
        for (idx, &i) in item.members.iter().enumerate() {
            suffixes[i as usize]
                .push(bits[idx])
                .expect("transformation depth stays far below the 128-level height cap");
            let endpoint = pair_of_pos[i as usize];
            match bits[idx] {
                Bit::Zero => {
                    zero_members.push(i);
                    if let Some(p) = endpoint {
                        let which =
                            usize::from(members_alpha[i as usize] != input.pairs[p as usize].u);
                        zero_seen[which] |= 1 << p;
                    }
                }
                Bit::One => {
                    one_members.push(i);
                    if let Some(p) = endpoint {
                        let which =
                            usize::from(members_alpha[i as usize] != input.pairs[p as usize].u);
                        one_seen[which] |= 1 << p;
                    }
                }
            }
        }
        // Neighbour search after the move is bounded by the balance
        // parameter (§IV-C), plus the a-balance chain check of step 7; all
        // lists of a level perform it in parallel.
        restructure_levels.insert(item.list_level);

        // Step 8: group bookkeeping for the new sublists.
        let zero_pairs = zero_seen[0] & zero_seen[1] & item.pairs;
        let one_pairs = one_seen[0] & one_seen[1] & item.pairs;
        let mut level_group_rounds = 0usize;
        assign_new_group_ids(
            &mut gids,
            &mut delta,
            graph,
            item.list_level,
            members_alpha,
            &item.members,
            &bits,
            &mut group_scratch,
            &mut splits,
            &mut level_group_rounds,
        );
        let entry = group_rounds_per_level.entry(item.list_level).or_insert(0);
        *entry = (*entry).max(level_group_rounds);

        // Priorities are recomputed with rule P4 for sublists that no
        // longer contain any communicating pair. The group-id at the new
        // level was just assigned by this transformation, so it is read
        // from the overlay; the timestamp read is safe against the base
        // table (the transformation never writes timestamps).
        for (sublist, pairs_present) in
            [(&zero_members, zero_pairs), (&one_members, one_pairs)]
        {
            if pairs_present == 0 {
                for &i in sublist.iter() {
                    let pos = i as usize;
                    priorities[pos] = negative_band_priority(
                        gids.group_id(pos, next_level),
                        t_epoch,
                        states.timestamp(members_alpha[pos], next_level + 1),
                    );
                }
            }
        }

        // Step 9: recurse on both sublists.
        queue.push(WorkItem {
            list_level: next_level,
            members: zero_members,
            pairs: zero_pairs,
        });
        queue.push(WorkItem {
            list_level: next_level,
            members: one_members,
            pairs: one_pairs,
        });
        item.members.clear();
        pool.push(item.members);
    }

    outcome.median_rounds = median_rounds_per_level.values().sum();
    outcome.group_accounting_rounds = group_rounds_per_level.values().sum();
    outcome.restructuring_rounds = restructure_levels.len() * (input.a + 1);

    // Materialise the per-node trace maps and the differential install
    // plan. Iterating `members_alpha` (ascending key order) keeps the
    // `changes` order deterministic.
    for (i, &x) in members_alpha.iter().enumerate() {
        let suffix = suffixes[i];
        if suffix.is_empty() {
            continue;
        }
        if collect_suffixes {
            outcome.suffixes.insert(x, suffix.iter().collect());
        }
        if !medians[i].is_empty() {
            outcome.medians.insert(x, std::mem::take(&mut medians[i]));
        }
        if !splits[i].is_empty() {
            outcome.group_splits.insert(x, std::mem::take(&mut splits[i]));
        }
        let old = graph.mvec_of(x).expect("member is live");
        let mut new_mvec = old;
        new_mvec
            .replace_suffix(input.alpha + 1, suffix.iter())
            .expect("transformation depth stays far below the 128-level height cap");
        if new_mvec != old {
            let from_level = old.common_prefix_len(&new_mvec) + 1;
            outcome.touched_pairs += old.len().max(new_mvec.len()) + 1 - from_level;
            outcome.changes.push(MembershipUpdate {
                node: x,
                from_level,
                new_mvec,
            });
        }
    }
    (outcome, delta)
}

/// Splits a two-node list into singletons: a communicating pair as
/// `u → 0, v → 1`; any other two nodes by key order.
fn split_pair_into(
    graph: &SkipGraph,
    input: &TransformInput,
    members_alpha: &[NodeId],
    item: &WorkItem,
    bits: &mut Vec<Bit>,
) {
    let [x, y] = [
        members_alpha[item.members[0] as usize],
        members_alpha[item.members[1] as usize],
    ];
    if item.pairs != 0 {
        let pair = &input.pairs[item.pairs.trailing_zeros() as usize];
        bits.extend(
            [x, y]
                .iter()
                .map(|&m| if m == pair.u { Bit::Zero } else { Bit::One }),
        );
        return;
    }
    let kx = graph.key_of(x).expect("member is live");
    let ky = graph.key_of(y).expect("member is live");
    if kx <= ky {
        bits.extend([Bit::Zero, Bit::One]);
    } else {
        bits.extend([Bit::One, Bit::Zero]);
    }
}

/// A forced split used when priorities cannot separate a list (all values
/// tied, or an approximate median outside the value range). Members are
/// *interleaved* by list position — the same shape a perfectly balanced
/// skip graph uses — so that repeated forced splits keep routing paths
/// short instead of producing key-contiguous sublists. The communicating
/// pair of a single-pair epoch (if present) is kept in the 0-half; lists
/// holding several pairs use [`forced_atom_split_into`] instead.
fn forced_balanced_split_into(
    input: &TransformInput,
    members_alpha: &[NodeId],
    item: &WorkItem,
    bits: &mut Vec<Bit>,
) {
    let n = item.members.len();
    bits.clear();
    bits.extend((0..n).map(|i| if i % 2 == 0 { Bit::Zero } else { Bit::One }));
    if item.pairs != 0 {
        let pair = &input.pairs[item.pairs.trailing_zeros() as usize];
        for target in [pair.u, pair.v] {
            if let Some(pos) = item
                .members
                .iter()
                .position(|&i| members_alpha[i as usize] == target)
            {
                if bits[pos] == Bit::One {
                    // Swap with a 0-half node that is not the other endpoint.
                    if let Some(swap) = (0..n).find(|&i| {
                        let member = members_alpha[item.members[i] as usize];
                        bits[i] == Bit::Zero && member != pair.u && member != pair.v
                    }) {
                        bits.swap(pos, swap);
                    }
                }
            }
        }
    }
}

/// The multi-pair forced split: members are grouped into *atoms* — a
/// communicating pair forms one atom, every other member is its own atom —
/// and atoms are interleaved 0/1 in list order. No pair can be torn apart
/// (both endpoints copy the atom's bit), every list with at least two
/// atoms splits into two non-empty halves, and the result is deterministic
/// in list order. (A two-member list is handled by `split_pair_into`
/// before this path can be reached, so atom count ≥ 2 here.)
fn forced_atom_split_into(pair_of_pos: &[Option<u16>], item: &WorkItem, bits: &mut Vec<Bit>) {
    bits.clear();
    let mut pair_bit = [None::<Bit>; MAX_EPOCH_PAIRS];
    let mut next = Bit::Zero;
    for &i in &item.members {
        let bit = match pair_of_pos[i as usize] {
            Some(p) if item.pairs & (1 << p) != 0 => match pair_bit[p as usize] {
                // Second endpoint: copy the pair's bit, don't alternate.
                Some(bit) => bit,
                None => {
                    pair_bit[p as usize] = Some(next);
                    let bit = next;
                    next = next.flipped();
                    bit
                }
            },
            _ => {
                let bit = next;
                next = next.flipped();
                bit
            }
        };
        bits.push(bit);
    }
}

/// Implements Cases 1 and 2 of §IV-C for one list, writing the membership
/// bits (parallel to `item_members`) into `bits`. Returns whether the
/// distributed counts of Case 2 were needed. Group-ids are read through
/// the transformation's overlay (the current level's ids were assigned by
/// the previous split wave); the is-dominating flags come from the base
/// table — the transformation's own flag writes can never be observed by
/// its own reads (a list takes Case 1 *or* the Case-2 dominating split,
/// never both).
#[allow(clippy::too_many_arguments)]
fn decide_split_into(
    states: &StateTable,
    gids: &GidOverlay<'_>,
    t_epoch: u64,
    list_level: usize,
    members_alpha: &[NodeId],
    item_members: &[u32],
    priorities: &[Priority],
    median: Priority,
    gs_mask: &mut Vec<bool>,
    bits: &mut Vec<Bit>,
) -> bool {
    let n = item_members.len();
    if median.is_positive() {
        // Case 1.
        bits.extend(
            priorities
                .iter()
                .map(|p| if *p >= median { Bit::Zero } else { Bit::One }),
        );
        return false;
    }
    // Case 2: the median falls inside the band of one non-communicating
    // group (equation (2)). Bands are identified by the *mixed* group
    // identifier (see `priority::mix_group_id`).
    let gs_band = band_of(median, t_epoch);
    gs_mask.clear();
    gs_mask.extend(item_members.iter().zip(priorities).map(|(&i, p)| {
        !p.is_positive()
            && gs_band.is_some()
            && Some(crate::priority::mix_group_id(
                gids.group_id(i as usize, list_level),
            )) == gs_band
    }));
    let gs_size = gs_mask.iter().filter(|b| **b).count();
    if gs_size == 0 {
        // The median's band does not correspond to any present group (can
        // happen with the approximate median); fall back to the plain
        // comparison split, which cannot split any group because entire
        // bands lie on one side of the median.
        bits.extend(
            priorities
                .iter()
                .map(|p| if *p >= median { Bit::Zero } else { Bit::One }),
        );
        return false;
    }

    if 3 * gs_size > 2 * n {
        // |g_s| > ⅔|l|: g_s must be split, but only along its remembered
        // is-dominating-group flags; everyone else joins the 0-subgraph.
        bits.extend(item_members.iter().zip(gs_mask.iter()).map(|(&i, in_gs)| {
            if *in_gs {
                if states.dominating(members_alpha[i as usize], list_level) {
                    Bit::One
                } else {
                    Bit::Zero
                }
            } else {
                Bit::Zero
            }
        }));
    } else if 3 * gs_size < n {
        // |g_s| < ⅓|l|: keep g_s whole on the emptier side, split the rest
        // by the median comparison.
        let l_high = priorities.iter().filter(|p| **p >= median).count();
        let l_low = n - l_high;
        let gs_bit = if l_high < l_low { Bit::Zero } else { Bit::One };
        bits.extend(priorities.iter().zip(gs_mask.iter()).map(|(p, in_gs)| {
            if *in_gs {
                gs_bit
            } else if *p >= median {
                Bit::Zero
            } else {
                Bit::One
            }
        }));
    } else {
        // ⅓|l| ≤ |g_s| ≤ ⅔|l|: g_s moves whole to the 1-subgraph, the rest
        // to the 0-subgraph.
        bits.extend(
            gs_mask
                .iter()
                .map(|in_gs| if *in_gs { Bit::One } else { Bit::Zero }),
        );
    }
    true
}

/// Assigns level-`list_level + 1` group-ids to the members of the two new
/// sublists (Algorithm 1 step 8) and records a split event (into `splits`)
/// for every node whose group was split.
///
/// Groups are found by sorting `(group-id, position)` pairs in a reusable
/// scratch buffer — no per-list hash map, and no quadratic membership
/// scans.
///
/// Note on Algorithm 1 step 8: the paper's wording has *every* member of
/// the sublist containing u and v adopt u's group-id. The members of the
/// merged communicating group already carry u's id here (their 0-portion
/// keeps the old id, which the level-α merge set to u), so applying the
/// wording literally would only *absorb unrelated groups* that happened to
/// land in that sublist — after which a later split could separate their
/// members, violating the working-set property Lemma 2 relies on. We
/// therefore keep unrelated groups' identities intact; see DESIGN.md.
#[allow(clippy::too_many_arguments)]
fn assign_new_group_ids(
    gids: &mut GidOverlay<'_>,
    delta: &mut StateDelta,
    graph: &SkipGraph,
    list_level: usize,
    members_alpha: &[NodeId],
    item_members: &[u32],
    bits: &[Bit],
    scratch: &mut Vec<(u64, u32)>,
    splits: &mut [Vec<usize>],
    group_accounting_rounds: &mut usize,
) {
    let next_level = list_level + 1;
    scratch.clear();
    scratch.extend(
        item_members
            .iter()
            .enumerate()
            .map(|(pos, &i)| (gids.group_id(i as usize, list_level), pos as u32)),
    );
    scratch.sort_unstable();
    let mut start = 0usize;
    while start < scratch.len() {
        let old_id = scratch[start].0;
        let mut end = start + 1;
        while end < scratch.len() && scratch[end].0 == old_id {
            end += 1;
        }
        let group = &scratch[start..end];
        let one_count = group
            .iter()
            .filter(|&&(_, pos)| bits[pos as usize] == Bit::One)
            .count();
        let split = one_count > 0 && one_count < group.len();
        if split {
            for &(_, pos) in group {
                splits[item_members[pos as usize] as usize].push(next_level);
            }
            // Broadcasting the new id over the split part reuses the
            // balanced skip list: O(log) rounds.
            *group_accounting_rounds += (group.len().max(2) as f64).log2().ceil() as usize;
        }
        // 0-portion: keeps the old id. 1-portion: keeps the old id if the
        // group moved whole; a split portion adopts the key of its left-most
        // member as the new id.
        let one_id = if split {
            group
                .iter()
                .filter(|&&(_, pos)| bits[pos as usize] == Bit::One)
                .map(|&(_, pos)| {
                    graph
                        .key_of(members_alpha[item_members[pos as usize] as usize])
                        .expect("member is live")
                })
                .min()
                .expect("split group has a 1-portion")
                .value()
        } else {
            old_id
        };
        for &(_, pos) in group {
            let member_pos = item_members[pos as usize] as usize;
            match bits[pos as usize] {
                Bit::Zero => gids.set_group_id(delta, member_pos, next_level, old_id),
                Bit::One => gids.set_group_id(delta, member_pos, next_level, one_id),
            }
        }
        start = end;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::amf::ExactMedian;
    use dsg_skipgraph::{Key, MembershipVector};

    /// Builds a flat skip graph (everyone in one level-0 list) over the
    /// given keys, registers default DSG state and returns the pieces.
    fn flat_instance(keys: &[u64]) -> (SkipGraph, StateTable, Vec<NodeId>) {
        let graph = SkipGraph::from_members(
            keys.iter()
                .map(|&k| (Key::new(k), MembershipVector::empty())),
        )
        .unwrap();
        let mut states = StateTable::new();
        let mut ids = Vec::new();
        for &k in keys {
            let id = graph.node_by_key(Key::new(k)).unwrap();
            states.register(id, Key::new(k), 0);
            ids.push(id);
        }
        (graph, states, ids)
    }

    fn run(
        graph: &SkipGraph,
        states: &mut StateTable,
        u: NodeId,
        v: NodeId,
        t: u64,
        members: &[NodeId],
    ) -> TransformOutcome {
        let pairs = [TransformPair { u, v, t }];
        let input = TransformInput {
            pairs: &pairs,
            alpha: 0,
            a: 3,
        };
        let mut finder = ExactMedian;
        run_transformation(graph, states, &mut finder, &input, members)
    }

    #[test]
    fn communicating_pair_ends_in_a_two_node_list() {
        let keys = [1u64, 2, 3, 4, 5, 6, 7, 8];
        let (graph, mut states, ids) = flat_instance(&keys);
        let u = ids[0];
        let v = ids[5];
        let outcome = run(&graph, &mut states, u, v, 1, &ids);

        // Every member received new bits.
        assert_eq!(outcome.suffixes.len(), keys.len());
        // u and v share a prefix up to the pair level and then split 0/1.
        let su = &outcome.suffixes[&u];
        let sv = &outcome.suffixes[&v];
        let common = su
            .iter()
            .zip(sv.iter())
            .take_while(|(a, b)| a == b)
            .count();
        assert_eq!(common, outcome.pair_levels[0], "shared prefix up to d'");
        assert_eq!(su.get(common), Some(&Bit::Zero), "u moves to the 0-subgraph");
        assert_eq!(sv.get(common), Some(&Bit::One));
        // The pair always moves to 0-subgraphs on the way down.
        assert!(su[..common].iter().all(|b| *b == Bit::Zero));
    }

    #[test]
    fn all_nodes_become_singletons() {
        let keys: Vec<u64> = (1..=20).collect();
        let (graph, mut states, ids) = flat_instance(&keys);
        let outcome = run(&graph, &mut states, ids[2], ids[17], 1, &ids);
        // Apply the suffixes to a scratch graph and verify every node ends
        // up singleton, i.e. all suffix paths are distinct.
        let mut suffix_strings: Vec<String> = outcome
            .suffixes
            .values()
            .map(|bits| bits.iter().map(|b| b.as_u8().to_string()).collect())
            .collect();
        suffix_strings.sort();
        // No suffix may be a prefix of another (that would leave a
        // non-singleton list at the top of one of the paths).
        for pair in suffix_strings.windows(2) {
            assert!(
                !pair[1].starts_with(pair[0].as_str()),
                "suffix {} is a prefix of {}",
                pair[0],
                pair[1]
            );
        }
    }

    #[test]
    fn merged_group_id_becomes_u() {
        let keys = [10u64, 20, 30, 40];
        let (graph, mut states, ids) = flat_instance(&keys);
        let u = ids[1]; // key 20
        let v = ids[3]; // key 40
        // Put v in a pre-existing group with node 30 at level 0.
        states.set_group_id(ids[2], 0, 40);
        states.set_group_id(ids[3], 0, 40);
        let _ = run(&graph, &mut states, u, v, 2, &ids);
        // After the merge every member of u's or v's old group holds u's key
        // at level 0.
        assert_eq!(states.group_id(u, 0), 20);
        assert_eq!(states.group_id(v, 0), 20);
        assert_eq!(states.group_id(ids[2], 0), 20);
        // Node 10 was in neither group and keeps its own id.
        assert_eq!(states.group_id(ids[0], 0), 10);
    }

    #[test]
    fn forced_split_handles_identical_priorities() {
        // All nodes other than the pair share one group with identical
        // timestamps, so every priority in a sublist can tie; the engine
        // must still terminate with singleton lists.
        let keys: Vec<u64> = (1..=9).collect();
        let (graph, mut states, ids) = flat_instance(&keys);
        for &x in &ids {
            states.set_group_id(x, 0, 99);
            states.set_timestamp(x, 1, 0);
        }
        let outcome = run(&graph, &mut states, ids[0], ids[8], 3, &ids);
        assert_eq!(outcome.suffixes.len(), 9);
        assert!(outcome.processed_lists >= 4);
    }

    #[test]
    fn case2_keeps_small_noncommunicating_groups_whole() {
        // Ten nodes: the pair (keys 1, 2), and two non-communicating groups
        // g=50 (3 members) and g=60 (5 members). With an exact median the
        // median priority lands in one of the negative bands; whichever case
        // applies, no non-communicating group may be split.
        let keys = [1u64, 2, 11, 12, 13, 21, 22, 23, 24, 25];
        let (graph, mut states, ids) = flat_instance(&keys);
        for &x in &ids[2..5] {
            states.set_group_id(x, 0, 50);
        }
        for &x in &ids[5..10] {
            states.set_group_id(x, 0, 60);
        }
        let outcome = run(&graph, &mut states, ids[0], ids[1], 4, &ids);
        // Group 50 members must share their full suffix path until their
        // group's own internal splits; at the very least their first bit
        // must be identical (they may not be separated at level 1), and the
        // same holds for group 60.
        let first_bits_50: Vec<Bit> = ids[2..5]
            .iter()
            .map(|x| outcome.suffixes[x][0])
            .collect();
        assert!(first_bits_50.windows(2).all(|w| w[0] == w[1]));
        let first_bits_60: Vec<Bit> = ids[5..10]
            .iter()
            .map(|x| outcome.suffixes[x][0])
            .collect();
        assert!(first_bits_60.windows(2).all(|w| w[0] == w[1]));
        // The communicating pair still ends up alone together.
        assert_eq!(outcome.suffixes[&ids[0]].last(), Some(&Bit::Zero));
        assert_eq!(outcome.suffixes[&ids[1]].last(), Some(&Bit::One));
    }

    #[test]
    fn dominating_flags_are_recorded_on_positive_medians() {
        let keys = [1u64, 2, 3, 4, 5, 6];
        let (graph, mut states, ids) = flat_instance(&keys);
        let u = ids[0];
        let v = ids[1];
        // Give nodes 3..6 membership in u's group with assorted timestamps
        // so that the first median is positive.
        for (i, &x) in ids[2..].iter().enumerate() {
            states.set_group_id(x, 0, 1);
            states.set_timestamp(x, 0, (i + 1) as u64);
            states.set_timestamp(x, 1, (i + 1) as u64);
        }
        states.set_timestamp(u, 0, 9);
        states.set_timestamp(u, 1, 9);
        let _ = run(&graph, &mut states, u, v, 10, &ids);
        // At level 0 the median was positive, so every member has an
        // explicit dominating flag and the flags agree with the first bit
        // they took.
        for &x in &ids {
            let first_bit = states.dominating(x, 0);
            // u and v always take bit 0 at level 1.
            if x == u || x == v {
                assert!(first_bit);
            }
        }
    }

    #[test]
    fn split_events_are_reported_for_the_merged_group() {
        let keys = [1u64, 2, 3, 4, 5, 6, 7, 8];
        let (graph, mut states, ids) = flat_instance(&keys);
        let u = ids[0];
        let v = ids[7];
        // Everyone is in u's group with distinct timestamps: the merged
        // group must be split repeatedly on the way to the singleton lists.
        for (i, &x) in ids.iter().enumerate() {
            states.set_group_id(x, 0, 1);
            states.set_timestamp(x, 0, (i + 1) as u64);
            states.set_timestamp(x, 1, (i + 1) as u64);
        }
        let outcome = run(&graph, &mut states, u, v, 20, &ids);
        assert!(
            !outcome.group_splits.is_empty(),
            "splitting the merged group must be recorded"
        );
        assert!(outcome.median_rounds > 0);
        assert!(outcome.restructuring_rounds > 0);
    }
}
