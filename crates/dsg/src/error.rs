//! Error types for the self-adjusting layer.

use std::fmt;

use dsg_skipgraph::SkipGraphError;

/// Errors returned by the [`DynamicSkipGraph`](crate::DynamicSkipGraph)
/// driver.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DsgError {
    /// An error bubbled up from the underlying skip graph substrate.
    SkipGraph(SkipGraphError),
    /// The request referenced a peer key that is not part of the network.
    UnknownPeer(u64),
    /// A peer with this key already exists.
    DuplicatePeer(u64),
    /// A communication request named the same peer as both source and
    /// destination.
    SelfCommunication(u64),
    /// A consistency check of the self-adjusting state failed.
    StateInvariantViolated(String),
    /// A request batch reused a peer as an endpoint twice within one
    /// transformation epoch. The session layer splits such batches into
    /// successive epochs; hitting this from
    /// [`DynamicSkipGraph::communicate_epoch`](crate::DynamicSkipGraph::communicate_epoch)
    /// directly means the caller did not.
    BatchEndpointReuse(u64),
    /// A request batch exceeded the per-epoch pair limit
    /// ([`MAX_EPOCH_PAIRS`](crate::transform::MAX_EPOCH_PAIRS)).
    BatchTooLarge {
        /// The number of pairs submitted.
        size: usize,
        /// The per-epoch limit.
        max: usize,
    },
    /// A configuration value failed validation when building a
    /// [`DsgSession`](crate::DsgSession).
    InvalidConfig(String),
    /// A fault (panic) interrupted the epoch **plan** stage — a pure read —
    /// so the epoch was abandoned before any apply and the engine is
    /// bit-for-bit untouched. The payload describes the fault. Requests of
    /// the aborted epoch can simply be resubmitted.
    EpochAborted(String),
    /// A fault (panic) interrupted the epoch **apply** stage: the engine's
    /// structures may be half-mutated, so the owning
    /// [`DsgService`](crate::service::DsgService) refuses further work
    /// until [`recover`](crate::service::DsgService::recover) rebuilds the
    /// graph from the surviving state. Every in-flight ticket resolves with
    /// this error instead of hanging.
    EnginePoisoned,
    /// The request was not served because the service is shutting down
    /// (abort-policy shutdowns resolve still-queued tickets this way).
    ShuttingDown,
}

impl fmt::Display for DsgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DsgError::SkipGraph(err) => write!(f, "skip graph error: {err}"),
            DsgError::UnknownPeer(key) => write!(f, "no peer with key {key} exists"),
            DsgError::DuplicatePeer(key) => write!(f, "a peer with key {key} already exists"),
            DsgError::SelfCommunication(key) => {
                write!(f, "peer {key} cannot communicate with itself")
            }
            DsgError::StateInvariantViolated(msg) => {
                write!(f, "self-adjusting state invariant violated: {msg}")
            }
            DsgError::BatchEndpointReuse(key) => {
                write!(f, "peer {key} appears as an endpoint twice in one epoch")
            }
            DsgError::BatchTooLarge { size, max } => {
                write!(f, "epoch of {size} pairs exceeds the limit of {max}")
            }
            DsgError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            DsgError::EpochAborted(msg) => {
                write!(f, "epoch aborted in the plan stage (engine untouched): {msg}")
            }
            DsgError::EnginePoisoned => {
                write!(f, "the engine is poisoned by an apply-stage fault; recover() first")
            }
            DsgError::ShuttingDown => write!(f, "the service is shutting down"),
        }
    }
}

impl std::error::Error for DsgError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DsgError::SkipGraph(err) => Some(err),
            _ => None,
        }
    }
}

impl From<SkipGraphError> for DsgError {
    fn from(err: SkipGraphError) -> Self {
        DsgError::SkipGraph(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        assert!(DsgError::UnknownPeer(9).to_string().contains('9'));
        let err: DsgError = SkipGraphError::EmptyGraph.into();
        assert!(err.to_string().contains("skip graph"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DsgError>();
    }
}
