//! Error types for the self-adjusting layer.

use std::fmt;

use dsg_skipgraph::SkipGraphError;

/// Errors returned by the [`DynamicSkipGraph`](crate::DynamicSkipGraph)
/// driver.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DsgError {
    /// An error bubbled up from the underlying skip graph substrate.
    SkipGraph(SkipGraphError),
    /// The request referenced a peer key that is not part of the network.
    UnknownPeer(u64),
    /// A peer with this key already exists.
    DuplicatePeer(u64),
    /// A communication request named the same peer as both source and
    /// destination.
    SelfCommunication(u64),
    /// A consistency check of the self-adjusting state failed.
    StateInvariantViolated(String),
    /// A request batch reused a peer as an endpoint twice within one
    /// transformation epoch. The session layer splits such batches into
    /// successive epochs; hitting this from
    /// [`DynamicSkipGraph::communicate_epoch`](crate::DynamicSkipGraph::communicate_epoch)
    /// directly means the caller did not.
    BatchEndpointReuse(u64),
    /// A request batch exceeded the per-epoch pair limit
    /// ([`MAX_EPOCH_PAIRS`](crate::transform::MAX_EPOCH_PAIRS)).
    BatchTooLarge {
        /// The number of pairs submitted.
        size: usize,
        /// The per-epoch limit.
        max: usize,
    },
    /// A configuration value failed validation when building a
    /// [`DsgSession`](crate::DsgSession).
    InvalidConfig(String),
    /// A fault (panic) interrupted the epoch **plan** stage — a pure read —
    /// so the epoch was abandoned before any apply and the engine is
    /// bit-for-bit untouched. The payload describes the fault. Requests of
    /// the aborted epoch can simply be resubmitted.
    EpochAborted(String),
    /// A fault (panic) interrupted the epoch **apply** stage: the engine's
    /// structures may be half-mutated, so the owning
    /// [`DsgService`](crate::service::DsgService) refuses further work
    /// until [`recover`](crate::service::DsgService::recover) rebuilds the
    /// graph from the surviving state. Every in-flight ticket resolves with
    /// this error instead of hanging.
    EnginePoisoned,
    /// The request's deadline expired while it was queued, so the
    /// overload-control layer shed it before the engine paid for it. The
    /// ticket resolves with this error instead of leaving the waiter to
    /// time out; the request was never journaled or served and can be
    /// resubmitted (with a fresh deadline) once load subsides.
    DeadlineExceeded,
    /// The request was not served because the service is shutting down
    /// (abort-policy shutdowns resolve still-queued tickets this way).
    ShuttingDown,
    /// [`shutdown`](crate::service::DsgService::shutdown) was called on a
    /// service whose worker was already joined (a second `shutdown` after
    /// the first one succeeded).
    AlreadyShutDown,
    /// [`recover`](crate::service::DsgService::recover) was called on a
    /// healthy (non-poisoned) service: there is nothing to rebuild, and
    /// silently rebuilding a healthy engine would discard its structure.
    NotPoisoned,
    /// The durability layer failed; see
    /// [`PersistError`](crate::persist::PersistError). Requests that fail
    /// to reach the journal resolve their tickets with this error (the
    /// engine was never called, so they can be resubmitted once the
    /// underlying condition clears).
    Persist(crate::persist::PersistError),
}

impl fmt::Display for DsgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DsgError::SkipGraph(err) => write!(f, "skip graph error: {err}"),
            DsgError::UnknownPeer(key) => write!(f, "no peer with key {key} exists"),
            DsgError::DuplicatePeer(key) => write!(f, "a peer with key {key} already exists"),
            DsgError::SelfCommunication(key) => {
                write!(f, "peer {key} cannot communicate with itself")
            }
            DsgError::StateInvariantViolated(msg) => {
                write!(f, "self-adjusting state invariant violated: {msg}")
            }
            DsgError::BatchEndpointReuse(key) => {
                write!(f, "peer {key} appears as an endpoint twice in one epoch")
            }
            DsgError::BatchTooLarge { size, max } => {
                write!(f, "epoch of {size} pairs exceeds the limit of {max}")
            }
            DsgError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            DsgError::EpochAborted(msg) => {
                write!(f, "epoch aborted in the plan stage (engine untouched): {msg}")
            }
            DsgError::EnginePoisoned => {
                write!(f, "the engine is poisoned by an apply-stage fault; recover() first")
            }
            DsgError::DeadlineExceeded => {
                write!(f, "the request's deadline expired while queued; it was shed unserved")
            }
            DsgError::ShuttingDown => write!(f, "the service is shutting down"),
            DsgError::AlreadyShutDown => {
                write!(f, "the service has already been shut down")
            }
            DsgError::NotPoisoned => {
                write!(f, "the service is not poisoned; there is nothing to recover")
            }
            DsgError::Persist(err) => write!(f, "persistence error: {err}"),
        }
    }
}

impl std::error::Error for DsgError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DsgError::SkipGraph(err) => Some(err),
            DsgError::Persist(err) => Some(err),
            _ => None,
        }
    }
}

impl From<SkipGraphError> for DsgError {
    fn from(err: SkipGraphError) -> Self {
        DsgError::SkipGraph(err)
    }
}

impl From<crate::persist::PersistError> for DsgError {
    fn from(err: crate::persist::PersistError) -> Self {
        DsgError::Persist(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        assert!(DsgError::UnknownPeer(9).to_string().contains('9'));
        let err: DsgError = SkipGraphError::EmptyGraph.into();
        assert!(err.to_string().contains("skip graph"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DsgError>();
    }
}
