//! Priorities and the priority rules P1–P4 (paper §IV-C).
//!
//! During a transformation every node of the affected linked list computes a
//! priority. Priorities are designed so that
//!
//! * the two communicating nodes rank highest (rule P1 assigns them `∞`),
//! * members of the (merged) communicating group rank next, ordered by how
//!   recently they attached to the group (rule P2 uses timestamps, which are
//!   always positive once set),
//! * every other node ranks below zero, and nodes of the same
//!   non-communicating group occupy one *distinct, disjoint* band of
//!   negative values `(-(G+1)·t, -G·t]` determined by their group-id `G`
//!   (rules P3/P4) — which is what lets the split logic recognise when the
//!   median falls *inside* a non-communicating group (equation (2)).

use std::cmp::Ordering;
use std::fmt;

use dsg_skipgraph::NodeId;

use crate::state::StateTable;

/// A node priority: either a finite signed value or `+∞` (the communicating
/// pair).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Priority {
    /// A finite priority (positive for the communicating group, negative for
    /// everyone else).
    Finite(i128),
    /// The communicating nodes' priority (rule P1).
    Infinity,
}

impl Priority {
    /// Returns `true` for strictly positive priorities (including `∞`).
    pub fn is_positive(&self) -> bool {
        match self {
            Priority::Infinity => true,
            Priority::Finite(v) => *v > 0,
        }
    }

    /// Returns the finite value, if any.
    pub fn finite(&self) -> Option<i128> {
        match self {
            Priority::Finite(v) => Some(*v),
            Priority::Infinity => None,
        }
    }
}

impl PartialOrd for Priority {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Priority {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self, other) {
            (Priority::Infinity, Priority::Infinity) => Ordering::Equal,
            (Priority::Infinity, Priority::Finite(_)) => Ordering::Greater,
            (Priority::Finite(_), Priority::Infinity) => Ordering::Less,
            (Priority::Finite(a), Priority::Finite(b)) => a.cmp(b),
        }
    }
}

impl fmt::Display for Priority {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Priority::Infinity => write!(f, "∞"),
            Priority::Finite(v) => write!(f, "{v}"),
        }
    }
}

/// Inputs required to evaluate the priority rules for one transformation.
#[derive(Debug, Clone, Copy)]
pub struct PriorityContext {
    /// The communicating source node.
    pub u: NodeId,
    /// The communicating destination node.
    pub v: NodeId,
    /// The request time `t`.
    pub t: u64,
    /// The highest common level `α` of `u` and `v` before the
    /// transformation.
    pub alpha: usize,
}

/// The base value of the finite "pair-top" priorities used when one
/// transformation epoch serves several communicating pairs at once. It
/// exceeds every value rule P2 can produce (timestamps are `u64`), so each
/// pair ranks above all group members, and pairs rank among themselves by
/// request time — the more recent pair splits off first. Far below
/// `i128::MAX`, so `base + t` cannot overflow.
const PAIR_TOP_BASE: i128 = 1 << 100;

/// Rule P1, generalised to multi-pair epochs: the priority of the members
/// of a communicating pair. A single-pair transformation uses the paper's
/// `∞`; with several pairs each pair receives a finite top priority keyed
/// by its request time, so that every threshold split keeps each pair
/// together (both endpoints share one value) while distinct pairs can be
/// separated deterministically.
pub fn pair_top_priority(total_pairs: usize, t: u64) -> Priority {
    if total_pairs <= 1 {
        Priority::Infinity
    } else {
        Priority::Finite(PAIR_TOP_BASE + t as i128)
    }
}

/// Rule P2: the priority of a member `x` of the communicating node
/// `anchor`'s group — `min(T^x_c, T^anchor_c)` where `c` is the highest
/// level at which the two share a group-id (`alpha` if the scan finds
/// none).
pub fn p2_priority(
    states: &StateTable,
    alpha: usize,
    x: NodeId,
    anchor: NodeId,
) -> Priority {
    let c = states
        .highest_common_group_level_unbounded(x, anchor)
        .unwrap_or(alpha);
    Priority::Finite(states.timestamp(x, c).min(states.timestamp(anchor, c)) as i128)
}

/// Evaluates rules P1–P3 for node `x` of the list `l_α` at the start of a
/// transformation.
///
/// * **P1** — `x ∈ {u, v}`: priority `∞`.
/// * **P2** — `x` shares `u`'s (or `v`'s) group at level `α`:
///   `min(T^x_c, T^{u}_c)` where `c` is the highest level at which `x` and
///   `u` (resp. `v`) share a group-id.
/// * **P3** — otherwise: `-(G^x_α · t) + T^x_{α+1}`.
pub fn initial_priority(states: &StateTable, ctx: &PriorityContext, x: NodeId) -> Priority {
    if x == ctx.u || x == ctx.v {
        return Priority::Infinity;
    }
    let gx = states.group_id(x, ctx.alpha);
    if gx == states.group_id(ctx.u, ctx.alpha) {
        return p2_priority(states, ctx.alpha, x, ctx.u);
    }
    if gx == states.group_id(ctx.v, ctx.alpha) {
        return p2_priority(states, ctx.alpha, x, ctx.v);
    }
    negative_band_priority(gx, ctx.t, states.timestamp(x, ctx.alpha + 1))
}

/// Evaluates rule P4 for node `x` after it moved to a list at level `d` that
/// does not contain the communicating nodes:
/// `P(x) = -(G^x_d · t) + T^x_{d+1}`.
pub fn recomputed_priority(states: &StateTable, t: u64, d: usize, x: NodeId) -> Priority {
    negative_band_priority(states.group_id(x, d), t, states.timestamp(x, d + 1))
}

/// Bijective mixing of a group identifier into the numeric value used by the
/// negative priority bands (a splitmix64 finaliser).
///
/// The paper only requires group identifiers to be *distinct* non-negative
/// integers ("possibly an ip address of a node"). Using the raw node key
/// would make the priority bands — and therefore every split of
/// non-communicating nodes — follow key order, which degenerates the skip
/// graph into key-contiguous sublists with poor routing. Mixing the
/// identifier keeps the bands distinct (the map is a bijection on `u64`)
/// while decorrelating them from key order, so splits of unrelated groups
/// remain pseudo-random exactly like the initial membership vectors. This
/// refinement is documented in `DESIGN.md`.
pub fn mix_group_id(id: u64) -> u64 {
    let mut z = id.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    // Keep the band index comfortably inside u64 so that band · t cannot
    // overflow an i128 for any realistic request count.
    (z ^ (z >> 31)) >> 16
}

/// The shared negative-band formula of rules P3 and P4.
///
/// DSG guarantees `t > T^x_{level+1}`, so the result lies in the half-open
/// band `(-(G+1)·t, -G·t]`, disjoint across group-ids. `pub(crate)` so the
/// transformation's planning half can evaluate rule P4 against its local
/// group-id overlay instead of a mutated [`StateTable`].
pub(crate) fn negative_band_priority(group_id: u64, t: u64, timestamp: u64) -> Priority {
    let group_id = mix_group_id(group_id);
    let base = -((group_id as i128) * (t as i128));
    // Clamp the timestamp into [0, t); the paper guarantees t > T, but a
    // defensive clamp keeps the bands disjoint even for adversarial state.
    let ts = (timestamp as i128).min(t.saturating_sub(1) as i128);
    Priority::Finite(base + ts)
}

/// The group-id band that a *negative* finite priority falls into: the
/// (unique) `G` with `-G·t ≥ p ≥ -(G+1)·t`, i.e. the non-communicating group
/// the median points at in equation (2) of the paper. Returns `None` for
/// positive priorities or `∞`.
pub fn band_of(priority: Priority, t: u64) -> Option<u64> {
    let p = priority.finite()?;
    if p > 0 {
        return None;
    }
    let t = t as i128;
    if t == 0 {
        return None;
    }
    // p ∈ (-(G+1)·t, -G·t]  ⇔  G = ⌈-p / t⌉ adjusted for the closed end.
    let neg = -p; // ≥ 0
    let g = if neg % t == 0 { neg / t } else { neg / t + 1 };
    // Sanity: 0 ≤ g fits u64 for all realistic keys/times.
    u64::try_from(g).ok().map(|g| g.saturating_sub(0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsg_skipgraph::Key;

    fn id(raw: u32) -> NodeId {
        NodeId::from_raw(raw)
    }

    fn table_with(keys: &[u64]) -> StateTable {
        let mut t = StateTable::new();
        for (i, k) in keys.iter().enumerate() {
            t.register(id(i as u32), Key::new(*k), 0);
        }
        t
    }

    #[test]
    fn priority_ordering_puts_infinity_on_top() {
        let mut ps = vec![
            Priority::Finite(-40),
            Priority::Infinity,
            Priority::Finite(5),
            Priority::Finite(-68),
        ];
        ps.sort();
        assert_eq!(
            ps,
            vec![
                Priority::Finite(-68),
                Priority::Finite(-40),
                Priority::Finite(5),
                Priority::Infinity
            ]
        );
        assert!(Priority::Infinity.is_positive());
        assert!(!Priority::Finite(0).is_positive());
        assert!(Priority::Finite(3).is_positive());
    }

    /// Reproduces the priority example of §IV-C: the communication (U, V) at
    /// time t = 8 with α = 0 yields P(U) = P(V) = ∞, P(D) = P(G) = P(B) = 2,
    /// P(E) = 5, P(H) = P(J) = −68, and P(F) = P(I) = −40.
    #[test]
    fn paper_worked_example_matches() {
        // Nodes indexed 0..=9: B,G,D,U,I,H,J,V,E,F with alphabet keys.
        let keys = [2u64, 7, 4, 21, 9, 8, 10, 22, 5, 6];
        let mut st = table_with(&keys);
        let b = id(0);
        let g = id(1);
        let d = id(2);
        let u = id(3);
        let i = id(4);
        let h = id(5);
        let j = id(6);
        let v = id(7);
        let e = id(8);
        let f = id(9);
        let t = 8u64;

        // Group structure of S8 (Figure 4(b)): at level 0 the group of U is
        // {B, G, D, U} and the group of V is {V, E}; H and J form group 10,
        // F and I form group 6.
        for x in [b, g, d, u] {
            st.set_group_id(x, 0, 21);
            st.set_group_id(x, 1, 21);
        }
        for x in [v, e] {
            st.set_group_id(x, 0, 22);
            st.set_group_id(x, 1, 22);
            st.set_group_id(x, 2, 22);
        }
        for x in [h, j] {
            st.set_group_id(x, 0, 10);
        }
        for x in [f, i] {
            st.set_group_id(x, 0, 6);
        }
        // Timestamps from Figure 4(b): level 1 carries 4,4,4,2 for B,G,D,U
        // and 5,5 for V,E at level 2; level 2 for B,G is 6 and D,U is 4,2.
        st.set_timestamp(b, 1, 4);
        st.set_timestamp(g, 1, 4);
        st.set_timestamp(d, 1, 4);
        st.set_timestamp(u, 1, 2);
        st.set_timestamp(b, 2, 6);
        st.set_timestamp(g, 2, 6);
        st.set_timestamp(d, 2, 4);
        st.set_timestamp(u, 2, 2);
        st.set_timestamp(v, 2, 5);
        st.set_timestamp(e, 2, 5);
        st.set_timestamp(h, 1, 7);
        st.set_timestamp(j, 1, 7);
        st.set_timestamp(f, 1, 1);
        st.set_timestamp(i, 1, 1);
        // The P3 formula uses T^x_{α+1} = T^x_1, which Figure 4(b) shows as
        // 2 for the level-1 list of H, J, F, I (their level-1 timestamps in
        // the figure are the group timestamps; the worked example uses 2).
        st.set_timestamp(h, 1, 2);
        st.set_timestamp(j, 1, 2);
        st.set_timestamp(f, 1, 2);
        st.set_timestamp(i, 1, 2);

        let ctx = PriorityContext { u, v, t, alpha: 0 };

        assert_eq!(initial_priority(&st, &ctx, u), Priority::Infinity);
        assert_eq!(initial_priority(&st, &ctx, v), Priority::Infinity);
        // P2: the highest level where D and U share a group-id is 1, so
        // P(D) = min(T^D_1, T^U_1) = min(4, 2) = 2; same for G and B.
        assert_eq!(initial_priority(&st, &ctx, d), Priority::Finite(2));
        assert_eq!(initial_priority(&st, &ctx, g), Priority::Finite(2));
        assert_eq!(initial_priority(&st, &ctx, b), Priority::Finite(2));
        // P2 for E against V: highest shared level is 2, min(5, 5) = 5.
        assert_eq!(initial_priority(&st, &ctx, e), Priority::Finite(5));
        // P3: the paper's example evaluates −(G · t) + 2 with the raw group
        // identifiers (10 for {H, J}, 6 for {F, I}); this implementation
        // mixes the identifier into the band index (see `mix_group_id`), so
        // the exact numbers differ but the structure is identical: the two
        // nodes of each non-communicating group share one negative priority,
        // and the two groups occupy distinct bands.
        let p_h = initial_priority(&st, &ctx, h);
        let p_j = initial_priority(&st, &ctx, j);
        let p_f = initial_priority(&st, &ctx, f);
        let p_i = initial_priority(&st, &ctx, i);
        assert_eq!(p_h, p_j);
        assert_eq!(p_f, p_i);
        assert_ne!(p_h, p_f);
        assert!(!p_h.is_positive() && !p_f.is_positive());
        assert_eq!(band_of(p_h, t), Some(mix_group_id(10)));
        assert_eq!(band_of(p_f, t), Some(mix_group_id(6)));
    }

    #[test]
    fn negative_bands_are_disjoint_per_group() {
        let t = 100u64;
        // Every priority a group can produce (timestamps 0..t) must map back
        // to that group's band, and two different groups must never share a
        // band.
        for (ga, gb) in [(5u64, 6u64), (1, 2), (1000, 1001), (42, 4242)] {
            for ts in [0u64, 1, 50, 99] {
                let pa = negative_band_priority(ga, t, ts);
                let pb = negative_band_priority(gb, t, ts);
                assert_eq!(band_of(pa, t), Some(mix_group_id(ga)));
                assert_eq!(band_of(pb, t), Some(mix_group_id(gb)));
                assert_ne!(band_of(pa, t), band_of(pb, t));
                assert!(!pa.is_positive() && !pb.is_positive());
            }
        }
    }

    #[test]
    fn mixing_is_deterministic_and_collision_free_on_small_ranges() {
        let mut seen = std::collections::HashSet::new();
        for id in 0..20_000u64 {
            assert!(seen.insert(mix_group_id(id)), "collision at {id}");
        }
        assert_eq!(mix_group_id(7), mix_group_id(7));
    }

    #[test]
    fn band_of_ignores_positive_priorities() {
        assert_eq!(band_of(Priority::Infinity, 10), None);
        assert_eq!(band_of(Priority::Finite(5), 10), None);
        assert_eq!(band_of(Priority::Finite(-25), 10), Some(3));
    }

    #[test]
    fn p4_uses_the_level_d_group() {
        let mut st = table_with(&[3, 4]);
        st.set_group_id(id(0), 2, 9);
        st.set_timestamp(id(0), 3, 6);
        let p = recomputed_priority(&st, 50, 2, id(0));
        let band = mix_group_id(9) as i128;
        assert_eq!(p, Priority::Finite(-(band * 50) + 6));
        assert_eq!(band_of(p, 50), Some(mix_group_id(9)));
    }
}
