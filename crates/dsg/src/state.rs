//! Per-node self-adjusting state (paper §IV-B).
//!
//! In addition to its membership vector (stored in the skip graph
//! substrate), every DSG node `x` holds, for each level `j`:
//!
//! * a timestamp `T^x_j` — how recently `x` became attached to its group at
//!   that level (0 = never / detached),
//! * a group-id `G^x_j` — the identifier of the group `x` belongs to at that
//!   level (initially the node's own key),
//! * an is-dominating-group bit `D^x_j` — whether `x` moved to the
//!   0-subgraph the last time it received a *positive* approximate median at
//!   level `j`,
//!
//! plus a single *group-base* `B^x` — the highest level at which `x` belongs
//! to its biggest group (Appendix C).
//!
//! All of this is `O(H · log n) = O(log² n)` bits per node in total and
//! `O(log n)` bits per level, matching the paper's memory model (each level
//! is touched with `O(log n)`-bit messages).
//!
//! The vectors are stored sparsely: levels beyond the stored length report
//! the documented defaults (timestamp 0, group-id = own key, not
//! dominating), so a node's state never has to be resized eagerly when the
//! structure height changes.

use dsg_skipgraph::{Key, NodeId};

/// The self-adjusting state of one node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeState {
    key: Key,
    timestamps: Vec<u64>,
    group_ids: Vec<u64>,
    dominating: Vec<bool>,
    group_base: usize,
}

impl NodeState {
    /// Creates the initial state for a node with the given key: all
    /// timestamps zero, every group-id equal to the node's own key, no
    /// dominating flags, and the group-base at `initial_group_base` (the
    /// lowest level at which the node is singleton, per Appendix C).
    pub fn new(key: Key, initial_group_base: usize) -> Self {
        NodeState {
            key,
            timestamps: Vec::new(),
            group_ids: Vec::new(),
            dominating: Vec::new(),
            group_base: initial_group_base,
        }
    }

    /// The key of the node this state belongs to.
    pub fn key(&self) -> Key {
        self.key
    }

    /// Timestamp `T^x_level` (0 if never set).
    pub fn timestamp(&self, level: usize) -> u64 {
        self.timestamps.get(level).copied().unwrap_or(0)
    }

    /// Sets `T^x_level`.
    pub fn set_timestamp(&mut self, level: usize, value: u64) {
        if self.timestamps.len() <= level {
            self.timestamps.resize(level + 1, 0);
        }
        self.timestamps[level] = value;
    }

    /// Group-id `G^x_level`; defaults to the node's own key.
    pub fn group_id(&self, level: usize) -> u64 {
        self.group_ids
            .get(level)
            .copied()
            .unwrap_or_else(|| self.key.value())
    }

    /// Sets `G^x_level`.
    pub fn set_group_id(&mut self, level: usize, value: u64) {
        if self.group_ids.len() <= level {
            let key = self.key.value();
            self.group_ids.resize(level + 1, key);
        }
        self.group_ids[level] = value;
    }

    /// Is-dominating-group flag `D^x_level`.
    pub fn dominating(&self, level: usize) -> bool {
        self.dominating.get(level).copied().unwrap_or(false)
    }

    /// Sets `D^x_level`.
    pub fn set_dominating(&mut self, level: usize, value: bool) {
        if self.dominating.len() <= level {
            self.dominating.resize(level + 1, false);
        }
        self.dominating[level] = value;
    }

    /// The group-base `B^x`.
    pub fn group_base(&self) -> usize {
        self.group_base
    }

    /// Sets the group-base `B^x`.
    pub fn set_group_base(&mut self, value: usize) {
        self.group_base = value;
    }

    /// The number of levels with an explicitly stored group-id. Levels at or
    /// above this report the default (the node's own key), which no *other*
    /// node can match — the fact the unbounded common-group scan exploits.
    pub fn stored_group_levels(&self) -> usize {
        self.group_ids.len()
    }

    /// The number of levels for which any explicit state is stored (useful
    /// for memory accounting in tests).
    pub fn stored_levels(&self) -> usize {
        self.timestamps
            .len()
            .max(self.group_ids.len())
            .max(self.dominating.len())
    }

    /// Rebuilds a state verbatim from its raw stored vectors, the inverse
    /// of [`NodeState::raw_parts`]. Used by the persistence layer: the
    /// stored *lengths* are observable behaviour (the unbounded
    /// common-group scan reads [`NodeState::stored_group_levels`]), so a
    /// checkpoint must restore them exactly — including trailing entries
    /// that happen to hold the default value, which the sparse setters
    /// could not reproduce from reads alone.
    pub fn from_raw_parts(
        key: Key,
        group_base: usize,
        timestamps: Vec<u64>,
        group_ids: Vec<u64>,
        dominating: Vec<bool>,
    ) -> Self {
        NodeState {
            key,
            timestamps,
            group_ids,
            dominating,
            group_base,
        }
    }

    /// The raw stored vectors `(timestamps, group_ids, dominating)`,
    /// exactly as long as they have grown — the lossless serialization
    /// view consumed by the persistence layer.
    pub fn raw_parts(&self) -> (&[u64], &[u64], &[bool]) {
        (&self.timestamps, &self.group_ids, &self.dominating)
    }
}

/// A recorded sequence of state writes, produced by the *planning* half of
/// the transformation engine and applied to a [`StateTable`] by the main
/// thread ([`StateTable::apply_delta`]).
///
/// The split exists for the parallel plan stage of
/// [`DynamicSkipGraph::communicate_epoch`](crate::DynamicSkipGraph::communicate_epoch):
/// worker shards plan disjoint clusters against a shared `&StateTable` and
/// record their intended writes here instead of mutating the table, so the
/// expensive Θ(n) planning needs no `&mut` access. Entries are replayed in
/// recording order (last write wins), which reproduces the exact write
/// sequence — including writes that re-store a default value, since those
/// still grow [`NodeState::stored_group_levels`] and the unbounded
/// common-group scan observes that length.
#[derive(Debug, Clone, Default)]
pub struct StateDelta {
    group_ids: Vec<(NodeId, usize, u64)>,
    dominating: Vec<(NodeId, usize, bool)>,
}

impl StateDelta {
    /// Records a pending `set_group_id(node, level, value)`.
    pub fn push_group_id(&mut self, node: NodeId, level: usize, value: u64) {
        self.group_ids.push((node, level, value));
    }

    /// Records a pending `set_dominating(node, level, value)`.
    pub fn push_dominating(&mut self, node: NodeId, level: usize, value: bool) {
        self.dominating.push((node, level, value));
    }

    /// Returns `true` if no writes are recorded.
    pub fn is_empty(&self) -> bool {
        self.group_ids.is_empty() && self.dominating.is_empty()
    }

    /// Number of recorded writes.
    pub fn len(&self) -> usize {
        self.group_ids.len() + self.dominating.len()
    }

    /// Drops all recorded writes (capacity retained).
    pub fn clear(&mut self) {
        self.group_ids.clear();
        self.dominating.clear();
    }
}

/// The state of every node in the network, addressed by [`NodeId`].
///
/// Stored as a slab indexed by the node id's arena index: node ids are
/// small dense integers handed out by the skip graph arena, so every state
/// access — and the transformation engine performs Θ(n · height) of them
/// per request — is a direct vector index instead of a hash lookup.
#[derive(Debug, Clone, Default)]
pub struct StateTable {
    states: Vec<Option<NodeState>>,
    live: usize,
}

impl StateTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        StateTable::default()
    }

    /// Registers a node with its initial state.
    pub fn register(&mut self, id: NodeId, key: Key, initial_group_base: usize) {
        let index = id.raw() as usize;
        if self.states.len() <= index {
            self.states.resize_with(index + 1, || None);
        }
        if self.states[index].is_none() {
            self.live += 1;
        }
        self.states[index] = Some(NodeState::new(key, initial_group_base));
    }

    /// Registers a node with a fully materialized state (the persistence
    /// layer's restore path, where the state comes from a checkpoint
    /// instead of [`NodeState::new`] defaults).
    pub fn register_state(&mut self, id: NodeId, state: NodeState) {
        let index = id.raw() as usize;
        if self.states.len() <= index {
            self.states.resize_with(index + 1, || None);
        }
        if self.states[index].is_none() {
            self.live += 1;
        }
        self.states[index] = Some(state);
    }

    /// Removes a node's state (when the node leaves or a dummy is
    /// destroyed).
    pub fn unregister(&mut self, id: NodeId) {
        if let Some(slot) = self.states.get_mut(id.raw() as usize) {
            if slot.take().is_some() {
                self.live -= 1;
            }
        }
    }

    /// Number of registered nodes.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Returns `true` if no node is registered.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Immutable access to a node's state.
    ///
    /// # Panics
    ///
    /// Panics if the node was never registered; this indicates a driver bug,
    /// not a user error.
    pub fn get(&self, id: NodeId) -> &NodeState {
        self.states
            .get(id.raw() as usize)
            .and_then(|slot| slot.as_ref())
            .unwrap_or_else(|| panic!("node {id} has no registered state"))
    }

    /// Mutable access to a node's state.
    ///
    /// # Panics
    ///
    /// Panics if the node was never registered.
    pub fn get_mut(&mut self, id: NodeId) -> &mut NodeState {
        self.states
            .get_mut(id.raw() as usize)
            .and_then(|slot| slot.as_mut())
            .unwrap_or_else(|| panic!("node {id} has no registered state"))
    }

    /// Returns `true` if the node has registered state.
    pub fn contains(&self, id: NodeId) -> bool {
        self.states
            .get(id.raw() as usize)
            .is_some_and(|slot| slot.is_some())
    }

    /// Iterates over all `(id, state)` pairs in ascending id order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &NodeState)> {
        self.states
            .iter()
            .enumerate()
            .filter_map(|(i, slot)| slot.as_ref().map(|st| (NodeId::from_raw(i as u32), st)))
    }

    // Convenience pass-throughs used heavily by the transformation engine.

    /// Timestamp `T^x_level` of node `id`.
    pub fn timestamp(&self, id: NodeId, level: usize) -> u64 {
        self.get(id).timestamp(level)
    }

    /// Sets `T^x_level` of node `id`.
    pub fn set_timestamp(&mut self, id: NodeId, level: usize, value: u64) {
        self.get_mut(id).set_timestamp(level, value);
    }

    /// Group-id `G^x_level` of node `id`.
    pub fn group_id(&self, id: NodeId, level: usize) -> u64 {
        self.get(id).group_id(level)
    }

    /// Sets `G^x_level` of node `id`.
    pub fn set_group_id(&mut self, id: NodeId, level: usize, value: u64) {
        self.get_mut(id).set_group_id(level, value);
    }

    /// Is-dominating flag `D^x_level` of node `id`.
    pub fn dominating(&self, id: NodeId, level: usize) -> bool {
        self.get(id).dominating(level)
    }

    /// Sets `D^x_level` of node `id`.
    pub fn set_dominating(&mut self, id: NodeId, level: usize, value: bool) {
        self.get_mut(id).set_dominating(level, value);
    }

    /// Group-base `B^x` of node `id`.
    pub fn group_base(&self, id: NodeId) -> usize {
        self.get(id).group_base()
    }

    /// Sets `B^x` of node `id`.
    pub fn set_group_base(&mut self, id: NodeId, value: usize) {
        self.get_mut(id).set_group_base(value);
    }

    /// Replays a recorded write sequence ([`StateDelta`]) in order. The
    /// resulting table is bit-for-bit the one the recording code would have
    /// produced mutating the table directly.
    pub fn apply_delta(&mut self, delta: &StateDelta) {
        for &(node, level, value) in &delta.group_ids {
            self.set_group_id(node, level, value);
        }
        for &(node, level, value) in &delta.dominating {
            self.set_dominating(node, level, value);
        }
    }

    /// The highest level `c` such that nodes `x` and `y` hold the same
    /// group-id at `c` (used by priority rule P2), searching from
    /// `max_level` downward. Returns `None` if they share no group at any
    /// level `0..=max_level`.
    pub fn highest_common_group_level(
        &self,
        x: NodeId,
        y: NodeId,
        max_level: usize,
    ) -> Option<usize> {
        (0..=max_level)
            .rev()
            .find(|&level| self.group_id(x, level) == self.group_id(y, level))
    }

    /// [`StateTable::highest_common_group_level`] without a caller-supplied
    /// bound: the scan starts at the highest level either node stores an
    /// explicit group-id for. Above that level both nodes report their own
    /// (distinct) keys, so no match is possible — which makes the result
    /// independent of the structure height at call time. The batched
    /// request pipeline relies on this: priorities computed before a
    /// deferred install must equal the ones a sequential request sequence
    /// would compute after it.
    pub fn highest_common_group_level_unbounded(&self, x: NodeId, y: NodeId) -> Option<usize> {
        let top = self
            .get(x)
            .stored_group_levels()
            .max(self.get(y).stored_group_levels());
        (0..top)
            .rev()
            .find(|&level| self.group_id(x, level) == self.group_id(y, level))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(raw: u32) -> NodeId {
        NodeId::from_raw(raw)
    }

    #[test]
    fn defaults_match_the_paper() {
        let st = NodeState::new(Key::new(21), 3);
        assert_eq!(st.timestamp(0), 0);
        assert_eq!(st.timestamp(17), 0);
        assert_eq!(st.group_id(0), 21);
        assert_eq!(st.group_id(9), 21);
        assert!(!st.dominating(2));
        assert_eq!(st.group_base(), 3);
        assert_eq!(st.stored_levels(), 0);
    }

    #[test]
    fn setting_levels_grows_sparsely() {
        let mut st = NodeState::new(Key::new(5), 0);
        st.set_timestamp(4, 8);
        assert_eq!(st.timestamp(4), 8);
        assert_eq!(st.timestamp(3), 0);
        st.set_group_id(2, 77);
        assert_eq!(st.group_id(2), 77);
        // Levels below the one set default to the node's own key.
        assert_eq!(st.group_id(1), 5);
        st.set_dominating(1, true);
        assert!(st.dominating(1));
        assert!(!st.dominating(0));
        assert_eq!(st.stored_levels(), 5);
    }

    #[test]
    fn table_round_trips_state() {
        let mut table = StateTable::new();
        table.register(id(0), Key::new(10), 2);
        table.register(id(1), Key::new(20), 1);
        assert_eq!(table.len(), 2);
        table.set_timestamp(id(0), 3, 99);
        assert_eq!(table.timestamp(id(0), 3), 99);
        assert_eq!(table.group_id(id(1), 5), 20);
        table.set_group_id(id(1), 0, 10);
        assert_eq!(table.group_id(id(1), 0), 10);
        table.unregister(id(0));
        assert!(!table.contains(id(0)));
        assert_eq!(table.len(), 1);
    }

    #[test]
    fn highest_common_group_level_scans_downward() {
        let mut table = StateTable::new();
        table.register(id(0), Key::new(1), 0);
        table.register(id(1), Key::new(2), 0);
        // Different keys: no common group anywhere by default.
        assert_eq!(table.highest_common_group_level(id(0), id(1), 4), None);
        // Make them share a group at levels 0 and 2.
        table.set_group_id(id(0), 0, 7);
        table.set_group_id(id(1), 0, 7);
        table.set_group_id(id(0), 2, 7);
        table.set_group_id(id(1), 2, 7);
        assert_eq!(table.highest_common_group_level(id(0), id(1), 4), Some(2));
        assert_eq!(table.highest_common_group_level(id(0), id(1), 1), Some(0));
    }

    #[test]
    fn raw_parts_round_trip_preserves_stored_lengths() {
        let mut st = NodeState::new(Key::new(5), 2);
        st.set_timestamp(4, 8);
        st.set_group_id(2, 77);
        // A write that re-stores the default still grows the stored
        // length — observable via stored_group_levels — and must survive
        // the round trip.
        st.set_group_id(3, 5);
        st.set_dominating(1, true);
        let (ts, gs, ds) = st.raw_parts();
        let rebuilt = NodeState::from_raw_parts(
            st.key(),
            st.group_base(),
            ts.to_vec(),
            gs.to_vec(),
            ds.to_vec(),
        );
        assert_eq!(rebuilt, st);
        assert_eq!(rebuilt.stored_group_levels(), 4);

        let mut table = StateTable::new();
        table.register_state(id(3), rebuilt);
        assert_eq!(table.len(), 1);
        assert_eq!(table.get(id(3)), &st);
        // Re-registering the same slot must not double-count.
        table.register_state(id(3), st.clone());
        assert_eq!(table.len(), 1);
    }

    #[test]
    #[should_panic(expected = "no registered state")]
    fn unknown_nodes_panic() {
        let table = StateTable::new();
        let _ = table.get(id(9));
    }
}
