//! Timestamp reassignment — rules T1–T6 (paper §IV-E).
//!
//! Timestamps encode *how attached* a node is to its group at every level:
//! a larger timestamp at level `d` means the node joined (or re-confirmed)
//! its level-`d` group more recently. Priorities (rules P2–P4) and the
//! correctness argument of Lemma 2 both hinge on them, so after every
//! transformation the nodes of `l_α` rewrite their timestamps according to
//! six rules applied in order.
//!
//! Two of the paper's rules are stated with overloaded index variables; the
//! interpretation choices made here are documented inline and in
//! `DESIGN.md`:
//!
//! * **T2** — "the approximate median received by `x` at level `d`" is read
//!   as the median received when splitting the list at level `d` (deciding
//!   the bit for level `d + 1`), and the common-postfix length `c'` is read
//!   as the highest level at which `x` and its nearest communicating node
//!   shared a list before the transformation (the semantically meaningful
//!   quantity in both of the paper's uses).
//! * **T4** — the literal text copies a zero timestamp downward, which is a
//!   no-op; it is read as the intended gap-fill: the lowest level whose
//!   timestamp is still unset inherits the first set timestamp above it.

use std::collections::{HashMap, HashSet};

use dsg_skipgraph::{FastHashState, MembershipVector, NodeId, SkipGraph};

use crate::priority::Priority;
use crate::state::StateTable;
use crate::transform::TransformOutcome;

/// Inputs for the timestamp rules.
#[derive(Debug, Clone)]
pub struct TimestampInput<'a> {
    /// The communicating source.
    pub u: NodeId,
    /// The communicating destination.
    pub v: NodeId,
    /// The request time `t`.
    pub t: u64,
    /// The highest common level `α`.
    pub alpha: usize,
    /// The level `d'` at which this request's pair now forms its two-node
    /// list (from [`TransformOutcome::pair_levels`]; an epoch applies the
    /// rules once per pair with that pair's own level).
    pub pair_level: usize,
    /// Members of `l_α` (dummies excluded), key order.
    pub members_alpha: &'a [NodeId],
    /// Membership vectors *before* the transformation.
    pub old_mvecs: &'a HashMap<NodeId, MembershipVector, FastHashState>,
    /// Membership vectors *after* the transformation, for the members whose
    /// vector changed; members absent from this map kept their old vector.
    /// Rule T3 consults this map first and falls back to the graph, so the
    /// rules produce identical results whether they run before or after the
    /// (possibly deferred, epoch-batched) install.
    pub new_mvecs: &'a HashMap<NodeId, MembershipVector, FastHashState>,
    /// Members of `u`'s group at level `α` before the merge (excluding `u`).
    pub u_group_before: &'a HashSet<NodeId, FastHashState>,
    /// Members of `v`'s group at level `α` before the merge (excluding `v`).
    pub v_group_before: &'a HashSet<NodeId, FastHashState>,
    /// Nodes that initialised or received `G_lower` (rule T4).
    pub glower_recipients: &'a [NodeId],
    /// The transformation trace (medians received, group splits, `d'`).
    pub outcome: &'a TransformOutcome,
}

/// Applies rules T1–T6 in order. Post-transformation membership vectors
/// are resolved through [`TimestampInput::new_mvecs`] with the graph as the
/// fallback, so the caller may invoke this either after the install (the
/// classic order) or before a deferred epoch-batched install.
pub fn apply_timestamp_rules(
    graph: &SkipGraph,
    states: &mut StateTable,
    input: &TimestampInput<'_>,
) {
    rule_t1(states, input);
    rule_t2(graph, states, input);
    rule_t3(graph, states, input);
    rule_t4(states, input);
    rule_t5(states, input);
    rule_t6(states, input);
}

/// T1: the communicating pair stamps the level `d'` at which it forms its
/// two-node list (and the singleton level above) with the current time, and
/// harmonises the timestamps of the shared levels below.
fn rule_t1(states: &mut StateTable, input: &TimestampInput<'_>) {
    let d = input.pair_level;
    for x in [input.u, input.v] {
        states.set_timestamp(x, d, input.t);
        states.set_timestamp(x, d + 1, input.t);
    }
    let floor = states
        .group_base(input.u)
        .min(states.group_base(input.v));
    let mut level = d;
    while level > floor {
        level -= 1;
        let merged = states
            .timestamp(input.u, level)
            .max(states.timestamp(input.v, level));
        states.set_timestamp(input.u, level, merged);
        states.set_timestamp(input.v, level, merged);
    }
}

/// T2: nodes that remain in `u`'s group above `α` inherit, for each such
/// level, either an older timestamp of their own that already exceeds the
/// median they survived, or the median itself.
fn rule_t2(graph: &SkipGraph, states: &mut StateTable, input: &TimestampInput<'_>) {
    let u_key = graph.key_of(input.u).map(|k| k.value()).unwrap_or_default();
    for &x in input.members_alpha {
        if x == input.u || x == input.v {
            continue;
        }
        let medians = match input.outcome.medians.get(&x) {
            Some(m) => m,
            None => continue,
        };
        // The nearest communicating node before the transformation: the one
        // sharing the longer membership-vector prefix with x.
        let old_x = &input.old_mvecs[&x];
        let prefix_u = input.old_mvecs[&input.u].common_prefix_len(old_x);
        let prefix_v = input.old_mvecs[&input.v].common_prefix_len(old_x);
        let c_prime = prefix_u.max(prefix_v);
        for &(list_level, median) in medians {
            let d = list_level;
            if states.group_id(x, d) != u_key && states.group_id(x, d) != states.group_id(input.u, d)
            {
                continue;
            }
            let median_ts = median_as_timestamp(median, input.t);
            // The lowest level c in [α, c') whose timestamp already exceeds
            // the median; if none exists the median becomes the timestamp.
            let mut inherited = None;
            for c in input.alpha..c_prime {
                if states.timestamp(x, c) > median_ts {
                    inherited = Some(states.timestamp(x, c));
                    break;
                }
            }
            let value = inherited.unwrap_or(median_ts);
            states.set_timestamp(x, d + 1, value);
        }
    }
}

/// T3: members of the communicating nodes' old groups whose distance to
/// their communicating node *shrank* copy the timestamp of the old meeting
/// level down to the levels the pair no longer shares.
fn rule_t3(graph: &SkipGraph, states: &mut StateTable, input: &TimestampInput<'_>) {
    let apply = |states: &mut StateTable, x: NodeId, anchor: NodeId| {
        let old_x = &input.old_mvecs[&x];
        let old_anchor = &input.old_mvecs[&anchor];
        let c_prime = old_anchor.common_prefix_len(old_x);
        let resolve = |node: NodeId| -> Option<MembershipVector> {
            match input.new_mvecs.get(&node) {
                Some(m) => Some(*m),
                None => graph.mvec_of(node).ok(),
            }
        };
        let Some(new_x) = resolve(x) else { return };
        let Some(new_anchor) = resolve(anchor) else { return };
        let c_second = new_anchor.common_prefix_len(&new_x);
        if c_prime >= 1 && c_prime - 1 > c_second + 1 {
            let anchor_ts = states.timestamp(x, c_prime);
            for i in (c_second + 1)..c_prime {
                states.set_timestamp(x, i, anchor_ts);
            }
        }
    };
    for &x in input.members_alpha {
        if x == input.u || x == input.v {
            continue;
        }
        if input.u_group_before.contains(&x) {
            apply(states, x, input.u);
        }
        if input.v_group_before.contains(&x) {
            apply(states, x, input.v);
        }
    }
}

/// T4: nodes that received `G_lower` fill the gap between their group-base
/// and the first level that already carries a timestamp.
fn rule_t4(states: &mut StateTable, input: &TimestampInput<'_>) {
    for &x in input.glower_recipients {
        if !states.contains(x) {
            continue;
        }
        let base = states.group_base(x);
        // Lowest level d ≥ base whose own timestamp is unset but whose
        // next level is set.
        let mut fill: Option<(usize, u64)> = None;
        for d in base..(base + 64) {
            let above = states.timestamp(x, d + 1);
            if states.timestamp(x, d) == 0 && above > 0 {
                fill = Some((d, above));
                break;
            }
        }
        if let Some((d, value)) = fill {
            if d >= base {
                let mut level = d + 1;
                while level > base {
                    level -= 1;
                    states.set_timestamp(x, level, value);
                }
            }
        }
    }
}

/// T5: a node whose group was split at level `d` seeds the level below with
/// the split level's timestamp if it is still unset.
fn rule_t5(states: &mut StateTable, input: &TimestampInput<'_>) {
    for &x in input.members_alpha {
        if let Some(levels) = input.outcome.group_splits.get(&x) {
            for &d in levels {
                if d >= 1 && states.timestamp(x, d - 1) == 0 {
                    let ts = states.timestamp(x, d);
                    if ts > 0 {
                        states.set_timestamp(x, d - 1, ts);
                    }
                }
            }
        }
    }
}

/// T6: every level below a node's group-base is cleared.
fn rule_t6(states: &mut StateTable, input: &TimestampInput<'_>) {
    for &x in input.members_alpha {
        let base = states.group_base(x);
        for d in 0..base {
            states.set_timestamp(x, d, 0);
        }
    }
}

/// Converts a median priority into a timestamp value: positive medians are
/// used as-is, `∞` (a median among communicating nodes) maps to the current
/// time, and negative medians (the node survived a split dominated by a
/// non-communicating band) contribute nothing.
fn median_as_timestamp(median: Priority, t: u64) -> u64 {
    match median {
        Priority::Infinity => t,
        Priority::Finite(v) if v > 0 => u64::try_from(v).unwrap_or(t).min(t),
        Priority::Finite(_) => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transform::TransformOutcome;
    use dsg_skipgraph::{Key, MembershipVector, SkipGraph};

    struct Fixture {
        graph: SkipGraph,
        states: StateTable,
        ids: Vec<NodeId>,
        old_mvecs: HashMap<NodeId, MembershipVector, FastHashState>,
    }

    fn fixture(keys: &[u64], new_vectors: &[&str], old_vectors: &[&str]) -> Fixture {
        let graph = SkipGraph::from_members(
            keys.iter()
                .zip(new_vectors)
                .map(|(&k, v)| (Key::new(k), MembershipVector::parse(v).unwrap())),
        )
        .unwrap();
        let mut states = StateTable::new();
        let ids: Vec<NodeId> = keys
            .iter()
            .map(|&k| graph.node_by_key(Key::new(k)).unwrap())
            .collect();
        for (&k, &id) in keys.iter().zip(&ids) {
            states.register(id, Key::new(k), 0);
        }
        let old_mvecs = ids
            .iter()
            .zip(old_vectors)
            .map(|(&id, v)| (id, MembershipVector::parse(v).unwrap()))
            .collect();
        Fixture {
            graph,
            states,
            ids,
            old_mvecs,
        }
    }

    #[test]
    fn t1_stamps_the_pair_levels() {
        let mut fx = fixture(
            &[1, 2, 3, 4],
            &["000", "001", "01", "1"],
            &["0", "1", "00", "01"],
        );
        let u = fx.ids[0];
        let v = fx.ids[1];
        let outcome = TransformOutcome::default();
        let empty: HashSet<NodeId, FastHashState> = HashSet::default();
        let input = TimestampInput {
            u,
            v,
            t: 9,
            alpha: 0,
            pair_level: 2,
            members_alpha: &fx.ids,
            old_mvecs: &fx.old_mvecs,
            new_mvecs: &HashMap::default(),
            u_group_before: &empty,
            v_group_before: &empty,
            glower_recipients: &[],
            outcome: &outcome,
        };
        // Pre-existing lower-level timestamps to harmonise.
        fx.states.set_timestamp(u, 1, 3);
        fx.states.set_timestamp(v, 1, 5);
        apply_timestamp_rules(&fx.graph, &mut fx.states, &input);
        assert_eq!(fx.states.timestamp(u, 2), 9);
        assert_eq!(fx.states.timestamp(u, 3), 9);
        assert_eq!(fx.states.timestamp(v, 2), 9);
        assert_eq!(fx.states.timestamp(v, 3), 9);
        // T1 harmonisation takes the max of the two at level 1.
        assert_eq!(fx.states.timestamp(u, 1), 5);
        assert_eq!(fx.states.timestamp(v, 1), 5);
    }

    #[test]
    fn t2_adopts_the_median_when_no_older_timestamp_exists() {
        let mut fx = fixture(
            &[1, 2, 3],
            &["00", "01", "1"],
            &["0", "00", "01"],
        );
        let u = fx.ids[0];
        let v = fx.ids[1];
        let w = fx.ids[2];
        let mut outcome = TransformOutcome::default();
        // w received a positive median 4 when the level-0 list split.
        outcome.medians.insert(w, vec![(0, Priority::Finite(4))]);
        // w is in u's group at level 0 after the transformation.
        fx.states.set_group_id(w, 0, 1);
        fx.states.set_group_id(u, 0, 1);
        let empty: HashSet<NodeId, FastHashState> = HashSet::default();
        let input = TimestampInput {
            u,
            v,
            t: 7,
            alpha: 0,
            pair_level: 1,
            members_alpha: &fx.ids,
            old_mvecs: &fx.old_mvecs,
            new_mvecs: &HashMap::default(),
            u_group_before: &empty,
            v_group_before: &empty,
            glower_recipients: &[],
            outcome: &outcome,
        };
        apply_timestamp_rules(&fx.graph, &mut fx.states, &input);
        assert_eq!(fx.states.timestamp(w, 1), 4);
    }

    #[test]
    fn t5_seeds_the_level_below_a_split() {
        let mut fx = fixture(&[1, 2], &["0", "1"], &["0", "1"]);
        let x = fx.ids[1];
        fx.states.set_timestamp(x, 3, 6);
        let mut outcome = TransformOutcome::default();
        outcome.group_splits.insert(x, vec![3]);
        let empty: HashSet<NodeId, FastHashState> = HashSet::default();
        let input = TimestampInput {
            u: fx.ids[0],
            v: fx.ids[1],
            t: 8,
            alpha: 0,
            pair_level: 0,
            members_alpha: &fx.ids,
            old_mvecs: &fx.old_mvecs,
            new_mvecs: &HashMap::default(),
            u_group_before: &empty,
            v_group_before: &empty,
            glower_recipients: &[],
            outcome: &outcome,
        };
        rule_t5(&mut fx.states, &input);
        assert_eq!(fx.states.timestamp(x, 2), 6);
        // An already-set timestamp is not overwritten.
        fx.states.set_timestamp(x, 2, 9);
        rule_t5(&mut fx.states, &input);
        assert_eq!(fx.states.timestamp(x, 2), 9);
    }

    #[test]
    fn t6_clears_levels_below_the_group_base() {
        let mut fx = fixture(&[1, 2], &["0", "1"], &["0", "1"]);
        let x = fx.ids[0];
        fx.states.set_timestamp(x, 0, 4);
        fx.states.set_timestamp(x, 1, 5);
        fx.states.set_timestamp(x, 2, 6);
        fx.states.set_group_base(x, 2);
        let empty: HashSet<NodeId, FastHashState> = HashSet::default();
        let outcome = TransformOutcome::default();
        let input = TimestampInput {
            u: fx.ids[0],
            v: fx.ids[1],
            t: 8,
            alpha: 0,
            pair_level: 0,
            members_alpha: &fx.ids[0..1],
            old_mvecs: &fx.old_mvecs,
            new_mvecs: &HashMap::default(),
            u_group_before: &empty,
            v_group_before: &empty,
            glower_recipients: &[],
            outcome: &outcome,
        };
        rule_t6(&mut fx.states, &input);
        assert_eq!(fx.states.timestamp(x, 0), 0);
        assert_eq!(fx.states.timestamp(x, 1), 0);
        assert_eq!(fx.states.timestamp(x, 2), 6);
    }

    #[test]
    fn t4_fills_the_gap_above_the_group_base() {
        let mut fx = fixture(&[1, 2], &["0", "1"], &["0", "1"]);
        let x = fx.ids[0];
        fx.states.set_group_base(x, 1);
        fx.states.set_timestamp(x, 3, 7);
        fx.states.set_timestamp(x, 2, 0);
        let glower = vec![x];
        let empty: HashSet<NodeId, FastHashState> = HashSet::default();
        let outcome = TransformOutcome::default();
        let input = TimestampInput {
            u: fx.ids[0],
            v: fx.ids[1],
            t: 8,
            alpha: 0,
            pair_level: 0,
            members_alpha: &fx.ids[0..1],
            old_mvecs: &fx.old_mvecs,
            new_mvecs: &HashMap::default(),
            u_group_before: &empty,
            v_group_before: &empty,
            glower_recipients: &glower,
            outcome: &outcome,
        };
        rule_t4(&mut fx.states, &input);
        assert_eq!(fx.states.timestamp(x, 2), 7);
        assert_eq!(fx.states.timestamp(x, 1), 7);
    }

    #[test]
    fn median_conversion_clamps_sensibly() {
        assert_eq!(median_as_timestamp(Priority::Infinity, 9), 9);
        assert_eq!(median_as_timestamp(Priority::Finite(4), 9), 4);
        assert_eq!(median_as_timestamp(Priority::Finite(400), 9), 9);
        assert_eq!(median_as_timestamp(Priority::Finite(-3), 9), 0);
    }
}
