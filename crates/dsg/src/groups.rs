//! Group-id and group-base maintenance below the transformation level
//! (paper §IV-D and Appendix C).
//!
//! The *group-base* `B^x` of a node is the highest level at which the node
//! belongs to its biggest group. When two nodes `u` and `v` whose groups
//! disagree below the transformation level `α` communicate, the group-ids of
//! both groups for the levels `0..α` must be reconciled so that future
//! priority computations (which scan for the highest level with a common
//! group-id) remain consistent: the vector `G_lower` of the node with the
//! *lower* group-base wins and is broadcast to every affected node.
//!
//! After a transformation, group-bases are also adjusted for nodes whose
//! group was split (the two rules at the end of Appendix C).

use std::collections::HashSet;

use dsg_skipgraph::{NodeId, SkipGraph};

use crate::state::StateTable;
use crate::transform::TransformOutcome;

/// Inputs for the post-transformation group maintenance.
#[derive(Debug, Clone, Copy)]
pub struct GroupUpdateInput<'a> {
    /// The communicating source.
    pub u: NodeId,
    /// The communicating destination.
    pub v: NodeId,
    /// The highest common level `α` of the request.
    pub alpha: usize,
    /// Members of `l_α` (dummy nodes excluded), in key order.
    pub members_alpha: &'a [NodeId],
    /// The transformation trace.
    pub outcome: &'a TransformOutcome,
}

/// Result of the group maintenance step.
#[derive(Debug, Clone, Default)]
pub struct GroupUpdateOutcome {
    /// Rounds charged for the broadcast of `G_lower`.
    pub rounds: usize,
}

/// Reusable buffers for [`apply_group_updates`], owned by the caller so
/// the per-request hot path allocates nothing after warm-up.
#[derive(Debug, Default)]
pub struct GroupScratch {
    set: HashSet<NodeId>,
    /// Nodes that initialised or received the `G_lower` vector (timestamp
    /// rule T4 applies to exactly these nodes). Filled by
    /// [`apply_group_updates`]; cleared on the next call.
    pub recipients: Vec<NodeId>,
}

/// Applies the Appendix-C group-id and group-base updates after the
/// transformation's membership vectors have been installed in `graph`.
pub fn apply_group_updates(
    graph: &SkipGraph,
    states: &mut StateTable,
    input: &GroupUpdateInput<'_>,
    scratch: &mut GroupScratch,
) -> GroupUpdateOutcome {
    let mut outcome = GroupUpdateOutcome::default();
    scratch.set.clear();
    scratch.recipients.clear();
    let alpha = input.alpha;
    let bu = states.group_base(input.u);
    let bv = states.group_base(input.v);

    // Reconcile group-ids below α when u's and v's groups disagree there.
    let disagree_below = alpha >= 1
        && states.group_id(input.u, alpha - 1) != states.group_id(input.v, alpha - 1);
    if disagree_below {
        let donor = if bu <= bv { input.u } else { input.v };
        let glower: Vec<u64> = (0..alpha).map(|i| states.group_id(donor, i)).collect();
        let meet_level = bu.max(bv).min(alpha);
        // Every node of the list containing both u and v at the meet level
        // whose group at that level matches either endpoint adopts G_lower
        // and the smaller group-base. The list is walked in place with the
        // arena's borrowing iterator — no member snapshot is allocated.
        let gu_meet = states.group_id(input.u, meet_level);
        let gv_meet = states.group_id(input.v, meet_level);
        let recipients = &mut scratch.set;
        let mut broadcast_len = 0usize;
        if let Ok(list) = graph.list_of_iter(input.u, meet_level) {
            for y in list {
                if !states.contains(y) {
                    continue;
                }
                broadcast_len += 1;
                let gy = states.group_id(y, meet_level);
                if gy == gu_meet || gy == gv_meet {
                    states.set_group_base(y, bu.min(bv));
                    for (i, &g) in glower.iter().enumerate() {
                        states.set_group_id(y, i, g);
                    }
                    recipients.insert(y);
                }
            }
        }
        // Regardless of the comparison above, every member of l_α that ended
        // up in u's group adopts G_lower for the levels below α.
        let u_key = graph.key_of(input.u).map(|k| k.value()).unwrap_or_default();
        for &x in input.members_alpha {
            if states.group_id(x, alpha) == u_key {
                for (i, &g) in glower.iter().enumerate() {
                    states.set_group_id(x, i, g);
                }
                recipients.insert(x);
            }
        }
        scratch.recipients.extend(recipients.iter().copied());
        outcome.rounds += 2 * (broadcast_len.max(2) as f64).log2().ceil() as usize;
    }

    // Group-base adjustments for nodes whose group was split by the
    // transformation (Appendix C, final two rules).
    for &x in input.members_alpha {
        if let Some(levels) = input.outcome.group_splits.get(&x) {
            let base = states.group_base(x);
            if levels.contains(&base) && base > 0 {
                states.set_group_base(x, base - 1);
            }
            let lowest = levels.iter().copied().min().unwrap_or(usize::MAX);
            if states.group_base(x) == alpha && lowest > alpha + 1 {
                states.set_group_base(x, lowest - 1);
            }
        }
    }

    // The communicating pair now shares a group up to the level at which
    // they form their two-node list; their biggest group is the merged group
    // at level α, so the group-base of both becomes min(B_u, B_v, α).
    let new_base = bu.min(bv).min(alpha);
    states.set_group_base(input.u, new_base);
    states.set_group_base(input.v, new_base);

    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transform::TransformOutcome;
    use dsg_skipgraph::{Key, MembershipVector};

    fn setup(keys: &[u64], vectors: &[&str]) -> (SkipGraph, StateTable, Vec<NodeId>) {
        let graph = SkipGraph::from_members(
            keys.iter()
                .zip(vectors)
                .map(|(&k, v)| (Key::new(k), MembershipVector::parse(v).unwrap())),
        )
        .unwrap();
        let mut states = StateTable::new();
        let ids: Vec<NodeId> = keys
            .iter()
            .map(|&k| graph.node_by_key(Key::new(k)).unwrap())
            .collect();
        for (&k, &id) in keys.iter().zip(&ids) {
            states.register(id, Key::new(k), 0);
        }
        (graph, states, ids)
    }

    #[test]
    fn glower_is_taken_from_the_lower_group_base() {
        // Four nodes in one level-1 list ("0"); u = 10, v = 30.
        let keys = [10u64, 20, 30, 40];
        let (graph, mut states, ids) = setup(&keys, &["00", "00", "01", "01"]);
        let u = ids[0];
        let v = ids[2];
        // u's group below α = 1 is {10, 20} with id 10; v's is {30, 40} with
        // id 30. u has the lower group-base.
        for &x in &ids[0..2] {
            states.set_group_id(x, 0, 10);
        }
        for &x in &ids[2..4] {
            states.set_group_id(x, 0, 30);
        }
        states.set_group_base(u, 0);
        states.set_group_base(v, 1);
        // Simulate the post-transformation state: everyone in l_α adopted
        // u's id at level α = 1.
        for &x in &ids {
            states.set_group_id(x, 1, 10);
        }
        let outcome = TransformOutcome::default();
        let input = GroupUpdateInput {
            u,
            v,
            alpha: 1,
            members_alpha: &ids,
            outcome: &outcome,
        };
        let mut scratch = GroupScratch::default();
        let result = apply_group_updates(&graph, &mut states, &input, &mut scratch);
        // v's side adopted u's level-0 group-id.
        assert_eq!(states.group_id(v, 0), 10);
        assert_eq!(states.group_id(ids[3], 0), 10);
        assert!(!scratch.recipients.is_empty());
        assert!(result.rounds > 0);
        // Group-bases meet at the minimum.
        assert_eq!(states.group_base(v), 0);
        assert_eq!(states.group_base(u), 0);
    }

    #[test]
    fn no_reconciliation_when_groups_already_agree() {
        let keys = [1u64, 2, 3];
        let (graph, mut states, ids) = setup(&keys, &["0", "0", "1"]);
        for &x in &ids {
            states.set_group_id(x, 0, 1);
        }
        let outcome = TransformOutcome::default();
        let input = GroupUpdateInput {
            u: ids[0],
            v: ids[1],
            alpha: 1,
            members_alpha: &ids[0..2],
            outcome: &outcome,
        };
        let mut scratch = GroupScratch::default();
        let result = apply_group_updates(&graph, &mut states, &input, &mut scratch);
        assert!(scratch.recipients.is_empty());
        assert_eq!(result.rounds, 0);
    }

    #[test]
    fn group_base_drops_when_the_base_level_group_splits() {
        let keys = [1u64, 2, 3, 4];
        let (graph, mut states, ids) = setup(&keys, &["0", "0", "0", "0"]);
        states.set_group_base(ids[1], 2);
        let mut outcome = TransformOutcome::default();
        outcome.group_splits.insert(ids[1], vec![2]);
        let input = GroupUpdateInput {
            u: ids[0],
            v: ids[3],
            alpha: 0,
            members_alpha: &ids,
            outcome: &outcome,
        };
        apply_group_updates(&graph, &mut states, &input, &mut GroupScratch::default());
        assert_eq!(states.group_base(ids[1]), 1);
    }

    #[test]
    fn group_base_jumps_to_below_the_lowest_split() {
        let keys = [1u64, 2, 3, 4];
        let (graph, mut states, ids) = setup(&keys, &["0", "0", "0", "0"]);
        // x's base sits exactly at α = 0 and its group first splits at
        // level 3 (> α + 1): the base moves up to 2.
        states.set_group_base(ids[2], 0);
        let mut outcome = TransformOutcome::default();
        outcome.group_splits.insert(ids[2], vec![3]);
        let input = GroupUpdateInput {
            u: ids[0],
            v: ids[3],
            alpha: 0,
            members_alpha: &ids,
            outcome: &outcome,
        };
        apply_group_updates(&graph, &mut states, &input, &mut GroupScratch::default());
        assert_eq!(states.group_base(ids[2]), 2);
    }
}
