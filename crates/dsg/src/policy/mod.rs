//! The adaptation policy subsystem: a frequency sketch plus an admission
//! gate that decides, per transformation cluster, whether restructuring is
//! worth paying for.
//!
//! # Why the engine wants a gate
//!
//! The paper's self-adjusting skip graph justifies restructuring on every
//! communicate with a potential/amortized-cost argument — the cost of
//! rebuilding the `l_α` subtree is charged against the savings of future
//! requests to the same (or nearby) pairs. The engine historically paid
//! that cost *unconditionally*, which is exactly backwards under uniform
//! traffic: a transformed pair is almost never seen again, so every epoch
//! pays Θ(n) restructuring for savings that never materialise. This module
//! turns the amortized argument into a **runtime decision**, in the spirit
//! of TinyLFU-style sketch-fed admission policies used by modern caches:
//! estimate pair frequency in O(1), restructure eagerly when the estimate
//! says the pair is hot, and route without restructuring (or under a
//! capped per-epoch budget) when it is cold.
//!
//! The two pieces:
//!
//! * [`FreqSketch`] ([`sketch`]) — a 4-row count-min sketch with periodic
//!   counter halving ("aging"), counting normalized pair keys, endpoint
//!   peer keys, and `l_α`-subtree prefix keys. Row seeds derive
//!   deterministically from [`DsgConfig::seed`](crate::DsgConfig::seed).
//! * [`AdmissionGate`] ([`admission`]) — consulted by
//!   [`communicate_epoch`](crate::DynamicSkipGraph::communicate_epoch)
//!   once per cluster, from two signals: *member heat* (an exact pair
//!   repeat, or both endpoints individually hot — the community signal
//!   that catches working sets whose individual pairs rarely repeat) and
//!   *subtree amortization* (recent demand on the merged `l_α` prefix
//!   covers `threshold ×` its rebuild size). [`Admission::Hot`] clusters
//!   restructure eagerly as today, cold clusters either consume a
//!   per-epoch restructure budget ([`Admission::Budgeted`]) or are gated
//!   ([`Admission::Gated`]) — routed, timestamp clock advanced, but no
//!   transformation, no install, no balance repair.
//!
//! # Determinism points (what makes the gate safe)
//!
//! The engine's standing determinism properties — bit-for-bit
//! shard-equivalence and batched==sequential restart-replay — hold with
//! the gate enabled **by construction**, because every policy-visible
//! event happens at one deterministic point of the epoch pipeline:
//!
//! * **One update point per epoch.** Sketch increments happen on the main
//!   thread, in submission order, *after* the routing pass and *before*
//!   any cluster is planned — never from plan workers, so the sketch state
//!   (and therefore every admission decision) is independent of the shard
//!   count and of plan scheduling.
//! * **Plan aborts roll back.** Increments staged during the (pure-read)
//!   plan phase are recorded in an undo log;
//!   [`acknowledge_plan_abort`](crate::DynamicSkipGraph::acknowledge_plan_abort)
//!   rolls them back, so an aborted epoch's resubmission sees the exact
//!   pre-epoch sketch — the same containment contract the engine gives
//!   for graph state.
//! * **Aging at commit only.** Counter halving runs at the
//!   planning→applying transition (after the epoch's decisions are made),
//!   so an epoch's own increments can never age mid-decision, and the
//!   aging schedule is a pure function of the served request count.
//! * **The sketch is part of the engine image.** `capture_image` /
//!   `restore_image` carry the counters and aging cursors, so the PR 7
//!   crash-recovery matrix (snapshot + journal replay ≡ uninterrupted
//!   twin) stays bit-identical with the gate enabled.
//!
//! # Off by default
//!
//! [`PolicyConfig::default`](crate::PolicyConfig) selects
//! [`AdaptPolicy::Always`](crate::AdaptPolicy): no sketch is allocated, no
//! counter is touched, and the engine is **bit-identical** to the
//! pre-policy engine — `tests/policy_gate.rs` pins this differentially
//! (the repo's standing oracle pattern: the fast/gated path lands together
//! with a proptest proving the default path unchanged).

pub mod admission;
pub mod sketch;

pub use admission::{Admission, AdmissionGate, ClusterSignal, GateCounters};
pub use sketch::{FreqSketch, SketchImage, SKETCH_ROWS, SKETCH_WIDTH};
