//! The per-epoch admission gate: given a cluster's sketch estimate,
//! decide whether its restructuring is admitted, budgeted, or gated.
//!
//! A fresh [`AdmissionGate`] is built at the top of every epoch from the
//! engine's `PolicyConfig`, so the per-epoch restructure budget resets on
//! epoch boundaries. Decisions are made per *cluster* (the planning
//! unit) from two signals:
//!
//! * **Member heat** — the maximum over the cluster's member pairs of
//!   `max(pair estimate, min(endpoint estimates))`. The pair term
//!   catches exact repeats; the endpoint term is the TinyLFU community
//!   signal (both peers individually hot ⇒ the pair belongs to a hot
//!   working set even if this exact pair has not repeated yet). The
//!   endpoint term is *relative*: it only counts when the estimate is
//!   well above the uniform per-peer share of recent sketch updates,
//!   because in a network small relative to the aging period every
//!   endpoint crosses a fixed threshold under purely uniform traffic.
//!   One hot member is enough to make the whole cluster worth
//!   rebuilding.
//! * **Subtree amortization** — the cluster rebuilds the subtree under
//!   its merged `l_α` prefix at Θ(subtree size) cost, so a subtree whose
//!   recent request demand covers `threshold × size` has *earned* its
//!   rebuild regardless of which individual members were hit — the
//!   paper's amortized-cost argument applied at runtime. Near-root
//!   prefixes (uniform traffic) can essentially never meet the bar;
//!   small busy neighbourhoods meet it quickly.

/// The gate's verdict for one transformation cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// The cluster's estimate cleared the threshold: restructure eagerly,
    /// exactly as the ungated engine would.
    Hot,
    /// The estimate was cold, but the epoch's restructure budget had
    /// headroom: restructure anyway (and consume one budget slot). A
    /// non-zero budget bounds how stale a persistently-cold region can
    /// get while still capping per-epoch restructuring work.
    Budgeted,
    /// Cold and out of budget: the cluster's pairs are routed (and
    /// charged routing cost), but no transformation, dummy work, or
    /// balance repair happens for them this epoch.
    Gated,
}

/// Per-epoch tallies of gate activity, merged into the epoch report.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GateCounters {
    /// Requests whose cluster was [`Admission::Gated`] this epoch.
    pub pairs_gated: u64,
    /// Clusters admitted via the budget ([`Admission::Budgeted`]).
    pub restructures_budgeted: u64,
    /// Sketch halving passes performed at this epoch's commit point.
    pub sketch_aging_passes: u64,
}

/// The admission signals of one cluster, collected before judging so the
/// whole epoch can be judged at once ([`AdmissionGate::judge`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClusterSignal {
    /// The cluster's member heat (see the [module docs](self)).
    pub max_estimate: u32,
    /// Sketch estimate of the cluster's merged `l_α` prefix.
    pub subtree_demand: u64,
    /// Peers the cluster's rebuild would touch.
    pub subtree_size: u64,
}

/// The admission gate for a single epoch. See the [module docs](self).
#[derive(Debug)]
pub struct AdmissionGate {
    threshold: u32,
    budget_remaining: u32,
}

impl AdmissionGate {
    /// Creates a gate with the given hotness threshold and per-epoch
    /// restructure budget.
    pub fn new(threshold: u32, epoch_budget: u32) -> Self {
        Self {
            threshold,
            budget_remaining: epoch_budget,
        }
    }

    /// Judges one cluster in isolation (the streaming first-come-first-
    /// served rule). `max_estimate` is the cluster's member heat (see the
    /// [module docs](self)); `subtree_demand` is the sketch estimate of
    /// the cluster's merged `l_α` prefix and `subtree_size` the number of
    /// peers its rebuild would touch — the cluster is also hot when
    /// `subtree_demand ≥ threshold × subtree_size`.
    ///
    /// The engine judges whole epochs through [`judge`](Self::judge)
    /// instead, which spends the budget hottest-first; `decide` remains
    /// the single-cluster building block (and the two agree whenever an
    /// epoch has at most one cold cluster).
    pub fn decide(
        &mut self,
        max_estimate: u32,
        subtree_demand: u64,
        subtree_size: u64,
    ) -> Admission {
        if self.is_hot(max_estimate, subtree_demand, subtree_size) {
            Admission::Hot
        } else if self.budget_remaining > 0 {
            self.budget_remaining -= 1;
            Admission::Budgeted
        } else {
            Admission::Gated
        }
    }

    fn is_hot(&self, max_estimate: u32, subtree_demand: u64, subtree_size: u64) -> bool {
        let amortized = subtree_demand >= u64::from(self.threshold).saturating_mul(subtree_size);
        amortized || max_estimate >= self.threshold
    }

    /// Judges a whole epoch at once, returning one verdict per signal
    /// (same order). Hot clusters are judged first; the restructure
    /// budget is then spent on the *hottest* cold clusters — descending
    /// `max_estimate`, ties broken by cluster index (submission order) —
    /// instead of first-come-first-served, so a budget slot is never
    /// wasted on a cluster colder than one later in the same epoch.
    ///
    /// Under `brownout` the gate degrades to route-only verdicts for all
    /// cold traffic: the budget and the subtree-amortization signal are
    /// suspended, and only member-heat-hot clusters restructure — the
    /// bounded-latency mode the service's overload controller forces
    /// while queue sojourn is above target.
    pub fn judge(&mut self, signals: &[ClusterSignal], brownout: bool) -> Vec<Admission> {
        let mut verdicts = vec![Admission::Gated; signals.len()];
        let mut cold: Vec<usize> = Vec::new();
        for (i, s) in signals.iter().enumerate() {
            let hot = if brownout {
                s.max_estimate >= self.threshold
            } else {
                self.is_hot(s.max_estimate, s.subtree_demand, s.subtree_size)
            };
            if hot {
                verdicts[i] = Admission::Hot;
            } else {
                cold.push(i);
            }
        }
        if !brownout && self.budget_remaining > 0 {
            // Stable sort: descending heat, ties keep ascending index.
            cold.sort_by_key(|&i| std::cmp::Reverse(signals[i].max_estimate));
            let spend = cold.len().min(self.budget_remaining as usize);
            for &i in cold.iter().take(spend) {
                verdicts[i] = Admission::Budgeted;
            }
            self.budget_remaining -= spend as u32;
        }
        verdicts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A cold subtree signal: demand 0 never covers any positive cost.
    const COLD_TREE: (u64, u64) = (0, 1 << 20);

    #[test]
    fn hot_estimates_are_admitted_without_spending_budget() {
        let (d, s) = COLD_TREE;
        let mut gate = AdmissionGate::new(2, 1);
        assert_eq!(gate.decide(5, d, s), Admission::Hot);
        assert_eq!(gate.decide(2, d, s), Admission::Hot);
        // The budget is still intact for the first cold cluster.
        assert_eq!(gate.decide(1, d, s), Admission::Budgeted);
        assert_eq!(gate.decide(1, d, s), Admission::Gated);
    }

    #[test]
    fn zero_budget_gates_every_cold_cluster() {
        let (d, s) = COLD_TREE;
        let mut gate = AdmissionGate::new(3, 0);
        assert_eq!(gate.decide(0, d, s), Admission::Gated);
        assert_eq!(gate.decide(2, d, s), Admission::Gated);
        assert_eq!(gate.decide(3, d, s), Admission::Hot);
    }

    #[test]
    fn zero_threshold_admits_everything() {
        let mut gate = AdmissionGate::new(0, 0);
        assert_eq!(gate.decide(0, 0, 1 << 20), Admission::Hot);
    }

    fn signal(max_estimate: u32) -> ClusterSignal {
        let (subtree_demand, subtree_size) = COLD_TREE;
        ClusterSignal {
            max_estimate,
            subtree_demand,
            subtree_size,
        }
    }

    #[test]
    fn budget_is_spent_hottest_first_not_fcfs() {
        // Threshold 5, budget 1: three cold clusters with estimates
        // 1, 3, 2 — FCFS would admit index 0; hottest-first must admit
        // index 1 and gate the rest.
        let mut gate = AdmissionGate::new(5, 1);
        let verdicts = gate.judge(&[signal(1), signal(3), signal(2)], false);
        assert_eq!(
            verdicts,
            vec![Admission::Gated, Admission::Budgeted, Admission::Gated]
        );
        // The budget is spent: a second epoch-judgement on the same gate
        // admits nothing cold.
        assert_eq!(gate.judge(&[signal(4)], false), vec![Admission::Gated]);
    }

    #[test]
    fn budget_ties_break_by_submission_order() {
        let mut gate = AdmissionGate::new(5, 1);
        let verdicts = gate.judge(&[signal(2), signal(2)], false);
        assert_eq!(verdicts, vec![Admission::Budgeted, Admission::Gated]);
    }

    #[test]
    fn judge_admits_hot_clusters_without_spending_budget() {
        let mut gate = AdmissionGate::new(2, 2);
        let verdicts = gate.judge(&[signal(5), signal(1), signal(0), signal(3)], false);
        assert_eq!(
            verdicts,
            vec![
                Admission::Hot,
                Admission::Budgeted,
                Admission::Budgeted,
                Admission::Hot
            ]
        );
    }

    #[test]
    fn brownout_suspends_budget_and_amortization() {
        // A generous budget and an amortized-hot subtree: under brownout
        // neither admits — only member heat does.
        let mut gate = AdmissionGate::new(2, 8);
        let amortized_hot = ClusterSignal {
            max_estimate: 1,
            subtree_demand: 64,
            subtree_size: 16,
        };
        let verdicts = gate.judge(&[signal(1), amortized_hot, signal(3)], true);
        assert_eq!(
            verdicts,
            vec![Admission::Gated, Admission::Gated, Admission::Hot]
        );
        // The budget was not touched by the brownout epoch.
        assert_eq!(gate.judge(&[signal(0)], false), vec![Admission::Budgeted]);
    }

    #[test]
    fn subtree_demand_covering_the_rebuild_cost_is_hot() {
        let mut gate = AdmissionGate::new(2, 0);
        // A 16-peer subtree needs demand ≥ 32 to earn its rebuild.
        assert_eq!(gate.decide(1, 31, 16), Admission::Gated);
        assert_eq!(gate.decide(1, 32, 16), Admission::Hot);
        // An enormous threshold can never be amortized (saturating cost).
        let mut strict = AdmissionGate::new(u32::MAX, 0);
        assert_eq!(strict.decide(1, u64::MAX - 1, u64::MAX), Admission::Gated);
    }
}
