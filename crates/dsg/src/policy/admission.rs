//! The per-epoch admission gate: given a cluster's sketch estimate,
//! decide whether its restructuring is admitted, budgeted, or gated.
//!
//! A fresh [`AdmissionGate`] is built at the top of every epoch from the
//! engine's `PolicyConfig`, so the per-epoch restructure budget resets on
//! epoch boundaries. Decisions are made per *cluster* (the planning
//! unit) from two signals:
//!
//! * **Member heat** — the maximum over the cluster's member pairs of
//!   `max(pair estimate, min(endpoint estimates))`. The pair term
//!   catches exact repeats; the endpoint term is the TinyLFU community
//!   signal (both peers individually hot ⇒ the pair belongs to a hot
//!   working set even if this exact pair has not repeated yet). The
//!   endpoint term is *relative*: it only counts when the estimate is
//!   well above the uniform per-peer share of recent sketch updates,
//!   because in a network small relative to the aging period every
//!   endpoint crosses a fixed threshold under purely uniform traffic.
//!   One hot member is enough to make the whole cluster worth
//!   rebuilding.
//! * **Subtree amortization** — the cluster rebuilds the subtree under
//!   its merged `l_α` prefix at Θ(subtree size) cost, so a subtree whose
//!   recent request demand covers `threshold × size` has *earned* its
//!   rebuild regardless of which individual members were hit — the
//!   paper's amortized-cost argument applied at runtime. Near-root
//!   prefixes (uniform traffic) can essentially never meet the bar;
//!   small busy neighbourhoods meet it quickly.

/// The gate's verdict for one transformation cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// The cluster's estimate cleared the threshold: restructure eagerly,
    /// exactly as the ungated engine would.
    Hot,
    /// The estimate was cold, but the epoch's restructure budget had
    /// headroom: restructure anyway (and consume one budget slot). A
    /// non-zero budget bounds how stale a persistently-cold region can
    /// get while still capping per-epoch restructuring work.
    Budgeted,
    /// Cold and out of budget: the cluster's pairs are routed (and
    /// charged routing cost), but no transformation, dummy work, or
    /// balance repair happens for them this epoch.
    Gated,
}

/// Per-epoch tallies of gate activity, merged into the epoch report.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GateCounters {
    /// Requests whose cluster was [`Admission::Gated`] this epoch.
    pub pairs_gated: u64,
    /// Clusters admitted via the budget ([`Admission::Budgeted`]).
    pub restructures_budgeted: u64,
    /// Sketch halving passes performed at this epoch's commit point.
    pub sketch_aging_passes: u64,
}

/// The admission gate for a single epoch. See the [module docs](self).
#[derive(Debug)]
pub struct AdmissionGate {
    threshold: u32,
    budget_remaining: u32,
}

impl AdmissionGate {
    /// Creates a gate with the given hotness threshold and per-epoch
    /// restructure budget.
    pub fn new(threshold: u32, epoch_budget: u32) -> Self {
        Self {
            threshold,
            budget_remaining: epoch_budget,
        }
    }

    /// Judges one cluster. `max_estimate` is the cluster's member heat
    /// (see the [module docs](self)); `subtree_demand` is the sketch
    /// estimate of the cluster's merged `l_α` prefix and `subtree_size`
    /// the number of peers its rebuild would touch — the cluster is also
    /// hot when `subtree_demand ≥ threshold × subtree_size`.
    pub fn decide(
        &mut self,
        max_estimate: u32,
        subtree_demand: u64,
        subtree_size: u64,
    ) -> Admission {
        let amortized = subtree_demand >= u64::from(self.threshold).saturating_mul(subtree_size);
        if amortized || max_estimate >= self.threshold {
            Admission::Hot
        } else if self.budget_remaining > 0 {
            self.budget_remaining -= 1;
            Admission::Budgeted
        } else {
            Admission::Gated
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A cold subtree signal: demand 0 never covers any positive cost.
    const COLD_TREE: (u64, u64) = (0, 1 << 20);

    #[test]
    fn hot_estimates_are_admitted_without_spending_budget() {
        let (d, s) = COLD_TREE;
        let mut gate = AdmissionGate::new(2, 1);
        assert_eq!(gate.decide(5, d, s), Admission::Hot);
        assert_eq!(gate.decide(2, d, s), Admission::Hot);
        // The budget is still intact for the first cold cluster.
        assert_eq!(gate.decide(1, d, s), Admission::Budgeted);
        assert_eq!(gate.decide(1, d, s), Admission::Gated);
    }

    #[test]
    fn zero_budget_gates_every_cold_cluster() {
        let (d, s) = COLD_TREE;
        let mut gate = AdmissionGate::new(3, 0);
        assert_eq!(gate.decide(0, d, s), Admission::Gated);
        assert_eq!(gate.decide(2, d, s), Admission::Gated);
        assert_eq!(gate.decide(3, d, s), Admission::Hot);
    }

    #[test]
    fn zero_threshold_admits_everything() {
        let mut gate = AdmissionGate::new(0, 0);
        assert_eq!(gate.decide(0, 0, 1 << 20), Admission::Hot);
    }

    #[test]
    fn subtree_demand_covering_the_rebuild_cost_is_hot() {
        let mut gate = AdmissionGate::new(2, 0);
        // A 16-peer subtree needs demand ≥ 32 to earn its rebuild.
        assert_eq!(gate.decide(1, 31, 16), Admission::Gated);
        assert_eq!(gate.decide(1, 32, 16), Admission::Hot);
        // An enormous threshold can never be amortized (saturating cost).
        let mut strict = AdmissionGate::new(u32::MAX, 0);
        assert_eq!(strict.decide(1, u64::MAX - 1, u64::MAX), Admission::Gated);
    }
}
