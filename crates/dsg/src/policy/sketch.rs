//! A count-min frequency sketch with periodic counter halving ("aging").
//!
//! The sketch answers one question in O(1): *roughly how often has this
//! pair (or this peer, or this `l_α` subtree) been requested recently?*
//! It is the
//! frequency estimator feeding the [`admission`](super::admission) gate,
//! shaped like the TinyLFU estimators used by cache admission policies:
//!
//! * [`SKETCH_ROWS`] rows of [`SKETCH_WIDTH`] saturating `u32` counters;
//!   an update increments one counter per row, an estimate takes the
//!   minimum over rows (classic count-min: overestimates only).
//! * Periodic **aging**: after every `aging_period` key updates, all
//!   counters are halved. Old traffic decays geometrically, so the
//!   estimate tracks *recent* frequency and a flash crowd can both rise
//!   above and fall back below the admission threshold.
//! * Row seeds derive deterministically from `DsgConfig::seed`, so two
//!   engines built with the same config hash identically — a requirement
//!   for the restart-replay and shard-equivalence oracles.
//!
//! # Staging discipline
//!
//! The epoch pipeline stages increments *before* planning but must be
//! able to abort the epoch with the engine bit-identical to its pre-epoch
//! state (the plan phase is pure-read by contract). The sketch therefore
//! exposes a two-phase API: [`FreqSketch::stage_increment`] applies the
//! increment and records an undo entry, then exactly one of
//! [`FreqSketch::commit`] (clears the undo log, advances the aging clock)
//! or [`FreqSketch::rollback`] (reverts every staged increment) runs.
//! Saturated counters are *not* incremented — and not recorded — so a
//! rollback is exact even at `u32::MAX`.

use crate::persist::{put_u32, put_u64, Reader};
use dsg_skipgraph::Prefix;

/// Number of hash rows in the sketch.
pub const SKETCH_ROWS: usize = 4;

/// Counters per row. A power of two so row hashes reduce with a mask.
///
/// Sized against the default aging period (4096 updates): each staged
/// update increments one counter per row, so a row absorbs at most
/// `aging_period / SKETCH_WIDTH` ≈ 0.5 increments per cell between
/// halvings and the steady-state load stays ≈ 1. A narrow sketch is not
/// a graceful degradation — once the per-cell load crosses the admission
/// threshold, *cold* keys estimate hot and the gate admits everything.
/// 128 KiB per gated engine is the explicit price of that margin.
pub const SKETCH_WIDTH: usize = 8192;

const fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Serialized sketch state, as embedded in the engine image.
///
/// Only the counters and the aging cursors are captured: the row seeds
/// and the aging period are pure functions of the (separately serialized)
/// `DsgConfig`, so a decoder rebuilds them from the config it just read.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SketchImage {
    /// Row-major counter matrix, `SKETCH_ROWS * SKETCH_WIDTH` entries.
    pub counters: Vec<u32>,
    /// Key updates applied since the last halving pass.
    pub updates_since_aging: u64,
    /// Total halving passes performed over the sketch's lifetime.
    pub aging_passes: u64,
}

impl SketchImage {
    /// Appends the image to `out` in the engine-image byte format.
    pub(crate) fn encode(&self, out: &mut Vec<u8>) {
        put_u64(out, self.counters.len() as u64);
        for &c in &self.counters {
            put_u32(out, c);
        }
        put_u64(out, self.updates_since_aging);
        put_u64(out, self.aging_passes);
    }

    /// Decodes an image previously written by [`SketchImage::encode`].
    /// The opaque unit error follows the [`Reader`] convention: the
    /// snapshot decoder maps it to its typed corruption error.
    pub(crate) fn decode(r: &mut Reader<'_>) -> Result<Self, ()> {
        let len = r.u64()? as usize;
        if len != SKETCH_ROWS * SKETCH_WIDTH {
            return Err(());
        }
        let mut counters = Vec::with_capacity(len);
        for _ in 0..len {
            counters.push(r.u32()?);
        }
        Ok(Self {
            counters,
            updates_since_aging: r.u64()?,
            aging_passes: r.u64()?,
        })
    }
}

/// The count-min sketch. See the [module docs](self) for the contract.
#[derive(Debug, Clone)]
pub struct FreqSketch {
    seeds: [u64; SKETCH_ROWS],
    counters: Vec<u32>,
    aging_period: u64,
    updates_since_aging: u64,
    aging_passes: u64,
    /// Undo log of counter indices incremented since the last commit.
    staged: Vec<u32>,
    staged_updates: u64,
}

impl FreqSketch {
    /// Creates an empty sketch whose row seeds derive from `seed` and
    /// whose counters halve after every `aging_period` key updates.
    ///
    /// # Panics
    /// Panics if `aging_period` is zero.
    pub fn new(seed: u64, aging_period: u64) -> Self {
        assert!(aging_period > 0, "sketch aging period must be positive");
        let mut seeds = [0u64; SKETCH_ROWS];
        for (row, slot) in seeds.iter_mut().enumerate() {
            *slot = splitmix64(seed ^ splitmix64(0xC3A5_C85C_97CB_3127 ^ row as u64));
        }
        Self {
            seeds,
            counters: vec![0; SKETCH_ROWS * SKETCH_WIDTH],
            aging_period,
            updates_since_aging: 0,
            aging_passes: 0,
            staged: Vec::new(),
            staged_updates: 0,
        }
    }

    /// The sketch key for a communication pair of external peer keys,
    /// normalized so that `(u, v)` and `(v, u)` count as the same pair.
    /// Peer keys above 2³² may alias — harmless for an approximate
    /// frequency estimate (count-min already overestimates).
    pub fn pair_key(u: u64, v: u64) -> u64 {
        let (lo, hi) = if u <= v { (u, v) } else { (v, u) };
        (lo << 32) | (hi & 0xFFFF_FFFF)
    }

    /// The sketch key for a single peer endpoint. Endpoint frequencies
    /// are the TinyLFU community signal: the pair space is quadratically
    /// sparser than the peer space, so a hot *community* (working set,
    /// drifting hot set) shows up on its members long before any one of
    /// its pairs repeats. Disjoint from pair keys of realistic peer
    /// counts (bit 62) and from prefix keys (bit 63 clear).
    pub fn peer_key(peer: u64) -> u64 {
        (1u64 << 62) | peer
    }

    /// The sketch key for an `l_α` subtree, i.e. the meet prefix a pair's
    /// transformation would rebuild. Disjoint from pair keys of realistic
    /// peer counts (top bit set) and injective over (length, bits) via a
    /// leading-1 sentinel fold.
    pub fn prefix_key(prefix: &Prefix) -> u64 {
        let folded = prefix
            .iter()
            .fold(1u64, |acc, bit| (acc << 1) | u64::from(bit.as_u8()));
        (1u64 << 63) | folded
    }

    fn slot(&self, row: usize, key: u64) -> usize {
        let h = splitmix64(key ^ self.seeds[row]) as usize & (SKETCH_WIDTH - 1);
        row * SKETCH_WIDTH + h
    }

    /// The estimated recent frequency of `key` (minimum over rows; an
    /// overestimate, never an underestimate, up to aging decay).
    pub fn estimate(&self, key: u64) -> u32 {
        (0..SKETCH_ROWS)
            .map(|row| self.counters[self.slot(row, key)])
            .min()
            .unwrap_or(0)
    }

    /// Stages one occurrence of `key`: increments one counter per row and
    /// records the increments for [`rollback`](Self::rollback). Saturated
    /// counters are left untouched (and unrecorded) so rollback is exact.
    pub fn stage_increment(&mut self, key: u64) {
        for row in 0..SKETCH_ROWS {
            let idx = self.slot(row, key);
            if self.counters[idx] < u32::MAX {
                self.counters[idx] += 1;
                self.staged.push(idx as u32);
            }
        }
        self.staged_updates += 1;
    }

    /// Commits every staged increment, advances the aging clock, and runs
    /// any halving passes that are now due. Returns the number of halving
    /// passes performed by this commit.
    pub fn commit(&mut self) -> u64 {
        self.staged.clear();
        self.updates_since_aging += self.staged_updates;
        self.staged_updates = 0;
        let mut passes = 0;
        while self.updates_since_aging >= self.aging_period {
            self.updates_since_aging -= self.aging_period;
            for c in &mut self.counters {
                *c >>= 1;
            }
            passes += 1;
        }
        self.aging_passes += passes;
        passes
    }

    /// Reverts every increment staged since the last commit, restoring
    /// the sketch bit-identical to its pre-staging state.
    pub fn rollback(&mut self) {
        for idx in self.staged.drain(..) {
            self.counters[idx as usize] -= 1;
        }
        self.staged_updates = 0;
    }

    /// Total halving passes performed over the sketch's lifetime.
    pub fn aging_passes(&self) -> u64 {
        self.aging_passes
    }

    /// Committed key updates since the last halving pass (staged but
    /// uncommitted updates are excluded). Together with
    /// [`aging_passes`](Self::aging_passes) this lets the admission gate
    /// price an estimate against the *uniform share* of recent traffic.
    pub fn updates_since_aging(&self) -> u64 {
        self.updates_since_aging
    }

    /// Captures the persistent state. Must only be called with no staged
    /// increments outstanding (the engine captures images at `Idle`).
    ///
    /// # Panics
    /// Panics if increments are staged but neither committed nor rolled
    /// back.
    pub fn to_image(&self) -> SketchImage {
        assert!(
            self.staged.is_empty() && self.staged_updates == 0,
            "sketch image captured with staged increments outstanding"
        );
        SketchImage {
            counters: self.counters.clone(),
            updates_since_aging: self.updates_since_aging,
            aging_passes: self.aging_passes,
        }
    }

    /// Rebuilds a sketch from a captured image plus the config-derived
    /// parameters (`seed`, `aging_period`) it was created with.
    ///
    /// # Panics
    /// Panics if `aging_period` is zero or the image has the wrong
    /// matrix size (images from [`SketchImage::decode`] are pre-checked).
    pub fn from_image(seed: u64, aging_period: u64, image: &SketchImage) -> Self {
        assert_eq!(
            image.counters.len(),
            SKETCH_ROWS * SKETCH_WIDTH,
            "sketch image has the wrong counter matrix size"
        );
        let mut sketch = Self::new(seed, aging_period);
        sketch.counters.copy_from_slice(&image.counters);
        sketch.updates_since_aging = image.updates_since_aging;
        sketch.aging_passes = image.aging_passes;
        sketch
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estimate_never_underestimates() {
        let mut s = FreqSketch::new(7, 1 << 40);
        let key = FreqSketch::pair_key(3, 11);
        for _ in 0..25 {
            s.stage_increment(key);
        }
        s.commit();
        assert!(s.estimate(key) >= 25);
    }

    #[test]
    fn pair_key_is_symmetric() {
        assert_eq!(FreqSketch::pair_key(4, 9), FreqSketch::pair_key(9, 4));
        assert_ne!(FreqSketch::pair_key(4, 9), FreqSketch::pair_key(4, 8));
    }

    #[test]
    fn prefix_keys_distinguish_length_and_disjoint_from_pairs() {
        use dsg_skipgraph::Bit;
        let root = Prefix::root();
        let zero = root.child(Bit::Zero);
        let zero_zero = zero.child(Bit::Zero);
        let k_root = FreqSketch::prefix_key(&root);
        let k_zero = FreqSketch::prefix_key(&zero);
        let k_zz = FreqSketch::prefix_key(&zero_zero);
        assert_ne!(k_root, k_zero);
        assert_ne!(k_zero, k_zz);
        // Pair keys never have the top bit set for realistic peer counts.
        assert_eq!(FreqSketch::pair_key(0, u64::MAX >> 32) >> 63, 0);
        assert_eq!(k_root >> 63, 1);
    }

    #[test]
    fn peer_keys_are_disjoint_from_pair_and_prefix_keys() {
        let peer = FreqSketch::peer_key(7);
        assert_eq!(peer >> 62, 0b01, "peer keys carry the peer tag");
        // Pair keys of realistic peer counts leave bits 62–63 clear;
        // prefix keys set bit 63.
        assert_eq!(FreqSketch::pair_key(7, 9) >> 62, 0);
        assert_eq!(FreqSketch::prefix_key(&Prefix::root()) >> 63, 1);
        assert_ne!(FreqSketch::peer_key(3), FreqSketch::peer_key(4));
    }

    #[test]
    fn rollback_is_exact_including_saturation() {
        let mut s = FreqSketch::new(3, 1 << 40);
        let key = FreqSketch::pair_key(1, 2);
        s.stage_increment(key);
        s.commit();
        let baseline = s.clone();
        // Saturate one row's counter so the next staged increment skips it.
        let idx = s.slot(0, key);
        s.counters[idx] = u32::MAX;
        let saturated = s.clone();
        s.stage_increment(key);
        s.stage_increment(FreqSketch::pair_key(5, 6));
        s.rollback();
        assert_eq!(s.counters, saturated.counters);
        assert_eq!(s.estimate(key), baseline.estimate(key).max(1));
    }

    #[test]
    fn aging_halves_counters_on_schedule() {
        let mut s = FreqSketch::new(11, 8);
        let key = FreqSketch::pair_key(0, 1);
        for _ in 0..7 {
            s.stage_increment(key);
        }
        assert_eq!(s.commit(), 0, "seven updates under an eight-period");
        let before = s.estimate(key);
        s.stage_increment(key);
        assert_eq!(s.commit(), 1, "eighth update triggers one pass");
        assert_eq!(s.aging_passes(), 1);
        assert_eq!(s.estimate(key), before.div_ceil(2));
        // A burst larger than several periods drains in one commit.
        for _ in 0..17 {
            s.stage_increment(key);
        }
        assert_eq!(s.commit(), 2);
        assert_eq!(s.aging_passes(), 3);
    }

    #[test]
    fn image_round_trip_is_bit_identical() {
        let mut s = FreqSketch::new(0xD56, 64);
        for i in 0..100u64 {
            s.stage_increment(FreqSketch::pair_key(i % 7, i % 13));
        }
        s.commit();
        let image = s.to_image();
        let mut bytes = Vec::new();
        image.encode(&mut bytes);
        let mut r = Reader::new(&bytes);
        let decoded = SketchImage::decode(&mut r).expect("decode");
        assert!(r.is_at_end());
        assert_eq!(decoded, image);
        let rebuilt = FreqSketch::from_image(0xD56, 64, &decoded);
        assert_eq!(rebuilt.counters, s.counters);
        assert_eq!(rebuilt.updates_since_aging, s.updates_since_aging);
        assert_eq!(rebuilt.aging_passes, s.aging_passes);
    }

    #[test]
    fn seeds_differ_by_engine_seed() {
        let a = FreqSketch::new(1, 64);
        let b = FreqSketch::new(2, 64);
        assert_ne!(a.seeds, b.seeds);
    }

    #[test]
    #[should_panic(expected = "staged increments outstanding")]
    fn image_capture_rejects_staged_state() {
        let mut s = FreqSketch::new(0, 64);
        s.stage_increment(FreqSketch::pair_key(0, 1));
        let _ = s.to_image();
    }
}
