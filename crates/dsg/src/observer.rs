//! Session observers: structured progress events instead of stats poking.
//!
//! A [`DsgObserver`] registered on a [`DsgSession`](crate::DsgSession)
//! receives one callback per served communication request, one per
//! transformation epoch, and one per balance-repair pass. This replaces
//! reading [`RunStats`](crate::RunStats) fields off the engine as the way
//! experiment harnesses collect metrics: `dsg-metrics` ships
//! `MetricsObserver`, the default recording observer, and `dsg-bench`
//! consumes it.
//!
//! Observers are shared handles (`Arc<Mutex<_>>`) so the caller keeps
//! access to the collected data while the session drives the callbacks —
//! including when the session has moved onto a
//! [`DsgService`](crate::service::DsgService) ingest thread, which is why
//! the handles are `Send` and lock a `Mutex` rather than borrow a
//! `RefCell`. The callbacks stay single-threaded (the session invokes them
//! in order from whichever thread owns it), so the lock is uncontended in
//! practice.

use std::sync::{Arc, Mutex};

use crate::dsg::RequestOutcome;

/// A shared observer handle, as stored by the session.
pub type SharedObserver = Arc<Mutex<dyn DsgObserver + Send>>;

/// One transformation epoch completed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransformEvent {
    /// 1-based epoch counter of the session.
    pub epoch: u64,
    /// Communication requests the epoch served.
    pub requests: usize,
    /// Merged transformations the epoch ran (clusters of pairs with
    /// overlapping `l_α` subtrees).
    pub clusters: usize,
    /// Transformation-install passes pushed into the structure: 1 under
    /// the batched install strategy regardless of the batch size.
    pub install_passes: usize,
    /// Changed `(node, level)` pairs the install touched.
    pub touched_pairs: usize,
    /// Clusters the epoch's plan stage planned.
    pub planned_clusters: usize,
    /// Worker shards the epoch's plan stages actually ran on (1 = inline).
    pub plan_shards: usize,
    /// Wall-clock nanoseconds the plan stages took (timing-only; excluded
    /// from determinism comparisons).
    pub plan_wall_ns: u64,
    /// Requests whose cluster the admission gate declined to restructure
    /// this epoch (0 with the policy off).
    pub pairs_gated: u64,
    /// Cold clusters restructured via the per-epoch budget this epoch.
    pub restructures_budgeted: u64,
    /// Frequency-sketch counter-halving passes this epoch's commit ran.
    pub sketch_aging_passes: u64,
    /// Requests routed without restructuring because the epoch ran under
    /// a brownout verdict (the service's overload controller degraded the
    /// admission gate to route-only for cold traffic). 0 outside
    /// brownout and with the policy off.
    pub pairs_browned_out: u64,
}

/// The admission gate's activity for one epoch (only emitted when
/// [`AdaptPolicy::Gated`](crate::AdaptPolicy::Gated) is configured).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionEvent {
    /// 1-based epoch counter of the session.
    pub epoch: u64,
    /// Communication requests the epoch served.
    pub requests: usize,
    /// Transformation clusters the epoch formed (admitted + gated).
    pub clusters: usize,
    /// Requests whose cluster was gated (routed, not restructured).
    pub pairs_gated: u64,
    /// Cold clusters restructured via the per-epoch budget.
    pub restructures_budgeted: u64,
    /// Sketch counter-halving passes run at this epoch's commit.
    pub sketch_aging_passes: u64,
}

/// One balance-maintenance pass (dummy GC + a-balance repair) completed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BalanceRepairEvent {
    /// 1-based epoch counter of the session the pass belongs to.
    pub epoch: u64,
    /// Stale dummy nodes the differential GC actually removed (reclaimed
    /// standing dummies are not counted).
    pub dummies_destroyed: usize,
    /// Dummy slots the repair established — reclaimed and created alike,
    /// so the count is lifecycle-independent.
    pub dummies_inserted: usize,
    /// Standing dummies the reconciliation reclaimed with zero graph
    /// mutation (0 under the per-node destroy/recreate oracle).
    pub dummies_reused: usize,
    /// Genuinely new dummies the reconciliation created (reclaims
    /// excluded); almost all go through the bulk splice installer.
    pub dummies_bulk_inserted: usize,
    /// Dummy nodes alive after the pass.
    pub live_dummies: usize,
}

/// One invariant audit completed (emitted by the
/// [`DsgService`](crate::service::DsgService) tiered auditor).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AuditEvent {
    /// 1-based epoch counter of the session the audit ran after.
    pub epoch: u64,
    /// `true` for a full deep `validate()` sweep, `false` for the
    /// incremental `validate_fast()` pass over the epoch's affected lists.
    pub deep: bool,
    /// Whether the audit found the structure clean.
    pub passed: bool,
}

/// The service's overload controller changed state (emitted by the
/// [`DsgService`](crate::service::DsgService) ingest loop when queue
/// sojourn crosses a configured target, and when it recedes again).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OverloadEvent {
    /// Transformation epochs the session had served when the state
    /// changed.
    pub epoch: u64,
    /// Whether the service is now refusing new submissions with
    /// `SubmitError::Shed`.
    pub shedding: bool,
    /// Whether chunks are now served under brownout (admission gate
    /// degraded to route-only for cold traffic).
    pub brownout: bool,
    /// The minimum queue sojourn (nanoseconds) over the controller's
    /// evaluation interval that triggered the transition (0 when the
    /// transition was an idle-queue exit).
    pub min_sojourn_ns: u64,
}

/// The service's stall watchdog found the ingest loop stuck: no heartbeat
/// for longer than the configured stall threshold while work was in
/// flight.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StallEvent {
    /// The ingest stage the loop last stamped before going quiet (e.g.
    /// `"journal"`, `"engine"`, `"audit"`, `"checkpoint"`).
    pub stage: &'static str,
    /// How long the heartbeat has been stale, in nanoseconds.
    pub stalled_for_ns: u64,
}

/// Hooks a session invokes while serving requests. All methods have empty
/// default bodies — implement only what you record.
pub trait DsgObserver {
    /// One communication request was served (called once per request, in
    /// submission order, after its epoch completed).
    fn on_request(&mut self, outcome: &RequestOutcome) {
        let _ = outcome;
    }

    /// One transformation epoch completed (after all of its `on_request`
    /// calls).
    fn on_transform(&mut self, event: &TransformEvent) {
        let _ = event;
    }

    /// One balance-maintenance pass completed.
    fn on_balance_repair(&mut self, event: &BalanceRepairEvent) {
        let _ = event;
    }

    /// One invariant audit completed (only emitted when the session is
    /// driven by a [`DsgService`](crate::service::DsgService)).
    fn on_audit(&mut self, event: &AuditEvent) {
        let _ = event;
    }

    /// The admission gate finished judging one epoch (only emitted when
    /// [`AdaptPolicy::Gated`](crate::AdaptPolicy::Gated) is configured;
    /// called after the epoch's `on_transform`).
    fn on_admission(&mut self, event: &AdmissionEvent) {
        let _ = event;
    }

    /// The service's overload controller entered or left shedding /
    /// brownout (only emitted when a
    /// [`DsgService`](crate::service::DsgService) runs with an
    /// `OverloadConfig`).
    fn on_overload(&mut self, event: &OverloadEvent) {
        let _ = event;
    }

    /// The service's stall watchdog found the ingest loop stuck. Unlike
    /// every other hook this one is invoked from the *watchdog* thread,
    /// not the ingest thread (the ingest thread is, by definition, not
    /// making progress); the watchdog uses `try_lock` and skips the
    /// report rather than contend with a wedged observer.
    fn on_stall(&mut self, event: &StallEvent) {
        let _ = event;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default)]
    struct Counting {
        requests: usize,
        epochs: usize,
    }

    impl DsgObserver for Counting {
        fn on_request(&mut self, _outcome: &RequestOutcome) {
            self.requests += 1;
        }
        fn on_transform(&mut self, _event: &TransformEvent) {
            self.epochs += 1;
        }
    }

    #[test]
    fn default_hooks_are_no_ops() {
        struct Silent;
        impl DsgObserver for Silent {}
        let mut observer = Silent;
        observer.on_transform(&TransformEvent {
            epoch: 1,
            requests: 1,
            clusters: 1,
            install_passes: 1,
            touched_pairs: 0,
            planned_clusters: 1,
            plan_shards: 1,
            plan_wall_ns: 0,
            pairs_gated: 0,
            restructures_budgeted: 0,
            sketch_aging_passes: 0,
            pairs_browned_out: 0,
        });
        observer.on_balance_repair(&BalanceRepairEvent {
            epoch: 1,
            dummies_destroyed: 0,
            dummies_inserted: 0,
            dummies_reused: 0,
            dummies_bulk_inserted: 0,
            live_dummies: 0,
        });
        observer.on_admission(&AdmissionEvent {
            epoch: 1,
            requests: 1,
            clusters: 1,
            pairs_gated: 0,
            restructures_budgeted: 0,
            sketch_aging_passes: 0,
        });
        observer.on_overload(&OverloadEvent {
            epoch: 1,
            shedding: true,
            brownout: true,
            min_sojourn_ns: 1,
        });
        observer.on_stall(&StallEvent {
            stage: "engine",
            stalled_for_ns: 1,
        });
    }

    #[test]
    fn observers_are_shareable() {
        let shared: SharedObserver = Arc::new(Mutex::new(Counting::default()));
        shared.lock().unwrap().on_transform(&TransformEvent {
            epoch: 1,
            requests: 2,
            clusters: 1,
            install_passes: 1,
            touched_pairs: 5,
            planned_clusters: 1,
            plan_shards: 1,
            plan_wall_ns: 0,
            pairs_gated: 0,
            restructures_budgeted: 0,
            sketch_aging_passes: 0,
            pairs_browned_out: 0,
        });
        let strong = Arc::strong_count(&shared);
        assert_eq!(strong, 1);
    }

    #[test]
    fn shared_observers_cross_threads() {
        let shared: SharedObserver = Arc::new(Mutex::new(Counting::default()));
        let clone = Arc::clone(&shared);
        std::thread::spawn(move || {
            clone.lock().unwrap().on_audit(&AuditEvent {
                epoch: 1,
                deep: false,
                passed: true,
            });
        })
        .join()
        .unwrap();
    }
}
