//! Approximate Median Finding (AMF) — paper §V, Algorithm 2, Lemma 1.
//!
//! Given a linked list of nodes each holding a value, AMF finds an
//! *approximate median* in expected `O(log n)` rounds:
//!
//! 1. build a balanced probabilistic skip list over the list (left-most node
//!    steps up with probability 1, the rest with probability `1/a`, supports
//!    kept within `[a/2, 2a]`);
//! 2. values climb the skip list toward the left-most node; from level
//!    `⌈log_{a/2} h⌉ + 1` upward each node sorts what it received, keeps a
//!    uniform sample of `a·h` values and discards the rest, maintaining a
//!    *left rank* and *right rank* per kept value (how many discarded values
//!    are known to be larger / smaller);
//! 3. the left-most node picks the value whose rank estimate is closest to
//!    `n/2` and broadcasts it.
//!
//! Lemma 1: the returned value has true rank within `n/2 ± n/(2a)`.
//!
//! Two [`MedianFinder`] implementations are provided: [`AmfMedian`] (the
//! distributed algorithm above, with per-call round accounting) and
//! [`ExactMedian`] (a deterministic oracle used in unit tests and as the
//! ablation baseline of experiment E11).

use rand::rngs::StdRng;
use rand::SeedableRng;

use dsg_skipgraph::BalancedSkipList;

use crate::priority::Priority;

/// The result of one median computation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MedianOutcome {
    /// The (approximate) median value.
    pub median: Priority,
    /// Number of synchronous rounds charged for the computation, including
    /// the skip-list construction and the final broadcast.
    pub rounds: usize,
    /// Height of the balanced skip list that was built (0 for the exact
    /// oracle).
    pub skip_list_height: usize,
}

/// Strategy interface for the per-level median computation of the
/// transformation (step 4 of Algorithm 1).
pub trait MedianFinder {
    /// Computes an (approximate) median of `values` (the priorities of the
    /// members of one linked list, in list order) using balance parameter
    /// `a`.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `values` is empty; the transformation
    /// never asks for the median of an empty list.
    fn find_median(&mut self, values: &[Priority], a: usize) -> MedianOutcome;
}

/// Deterministic exact-median oracle.
///
/// Charged an idealised `⌈log₂ n⌉` rounds (the depth of any aggregation
/// tree); useful for reproducible unit tests and as the ablation baseline
/// that isolates the cost/accuracy impact of AMF.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExactMedian;

impl MedianFinder for ExactMedian {
    fn find_median(&mut self, values: &[Priority], _a: usize) -> MedianOutcome {
        assert!(!values.is_empty(), "median of an empty list is undefined");
        let mut sorted: Vec<Priority> = values.to_vec();
        sorted.sort();
        // The paper's splits use "P(x) ≥ M goes to the 0-subgraph", so the
        // upper median keeps the two subgraphs balanced for even sizes.
        let median = sorted[sorted.len() / 2];
        let rounds = (values.len().max(2) as f64).log2().ceil() as usize;
        MedianOutcome {
            median,
            rounds,
            skip_list_height: 0,
        }
    }
}

/// The paper's randomised distributed AMF algorithm.
///
/// The per-position climb buffers and sampling scratch are owned by the
/// engine and recycled across calls: a transformation runs one median per
/// list of the rebuilt subtree, and rebuilding these vectors from scratch
/// for every list made the engine allocation-bound. The recycling changes
/// no arithmetic and draws no extra randomness, so results are identical
/// to the allocating version.
#[derive(Debug)]
pub struct AmfMedian {
    rng: StdRng,
    skip_list: Option<BalancedSkipList>,
    tiny: Vec<Priority>,
    buffers: Vec<Vec<RankedValue>>,
    gathered: Vec<Vec<RankedValue>>,
    keep_indices: Vec<usize>,
    kept: Vec<RankedValue>,
}

impl AmfMedian {
    /// Creates an AMF engine with the given seed (skip-list construction is
    /// randomised; a fixed seed makes runs reproducible).
    pub fn new(seed: u64) -> Self {
        AmfMedian {
            rng: StdRng::seed_from_u64(seed),
            skip_list: None,
            tiny: Vec::new(),
            buffers: Vec::new(),
            gathered: Vec::new(),
            keep_indices: Vec::new(),
            kept: Vec::new(),
        }
    }

    /// Resets the random stream to `seed` without dropping the recycled
    /// buffers. The epoch engine reseeds per transformation cluster with a
    /// seed derived from the cluster's first request time, so the medians a
    /// cluster receives are a pure function of the cluster — independent of
    /// which worker shard plans it, of how many clusters share the epoch,
    /// and of the order they are planned in. That order-independence is
    /// what makes the parallel plan stage bit-for-bit deterministic.
    pub fn reseed(&mut self, seed: u64) {
        self.rng = StdRng::seed_from_u64(seed);
    }
}

/// A value travelling up the skip list together with its discard ranks.
#[derive(Debug, Clone, Copy)]
struct RankedValue {
    value: Priority,
    /// Number of discarded values known to be ≥ this value.
    left_rank: usize,
    /// Number of discarded values known to be ≤ this value.
    right_rank: usize,
}

impl MedianFinder for AmfMedian {
    fn find_median(&mut self, values: &[Priority], a: usize) -> MedianOutcome {
        assert!(!values.is_empty(), "median of an empty list is undefined");
        let n = values.len();
        if n <= 2 * a {
            // Tiny lists: the left-most node can gather everything directly
            // in O(a) rounds; return the exact upper median. (`tiny` is a
            // recycled buffer — a transformation computes medians for
            // thousands of small lists per request.)
            self.tiny.clear();
            self.tiny.extend_from_slice(values);
            self.tiny.sort();
            return MedianOutcome {
                median: self.tiny[self.tiny.len() / 2],
                rounds: n + 1,
                skip_list_height: 0,
            };
        }
        let skip_list = match self.skip_list.as_mut() {
            Some(list) => {
                list.rebuild(n, a, &mut self.rng);
                &*list
            }
            None => self
                .skip_list
                .insert(BalancedSkipList::build(n, a, &mut self.rng)),
        };
        let h = skip_list.height();
        let sample_size = (a * h.max(1)).max(2);
        // Levels below this threshold only gather; sampling starts here.
        let sampling_start = ((h.max(2) as f64).log((a as f64 / 2.0).max(1.5)).ceil() as usize) + 1;

        // Per-position buffers of ranked values at the current level
        // (recycled allocations; only the first `n` slots are used).
        if self.buffers.len() < n {
            self.buffers.resize_with(n, Vec::new);
        }
        for (slot, &value) in self.buffers.iter_mut().zip(values) {
            slot.clear();
            slot.push(RankedValue {
                value,
                left_rank: 0,
                right_rank: 0,
            });
        }

        let mut rounds = skip_list.construction_rounds();

        for level in 1..=h {
            let lower = skip_list.level_members(level - 1);
            let upper = skip_list.level_members(level);
            // Every lower-level member forwards its buffer to the nearest
            // upper-level member to its left (position 0 is always in the
            // upper level). The number of rounds is bounded by the largest
            // support gap.
            if self.gathered.len() < upper.len() {
                self.gathered.resize_with(upper.len(), Vec::new);
            }
            for bucket in self.gathered.iter_mut().take(upper.len()) {
                bucket.clear();
            }
            let mut max_gap = 0usize;
            // The owner of a lower member is the last upper member at or
            // before it; both sequences are ascending, so a two-pointer
            // sweep replaces the per-member binary searches. `owner_pos_idx`
            // tracks the owner's own index in `lower` (for the gap bound).
            let mut owner_idx = 0usize;
            let mut owner_pos_idx = 0usize;
            for (idx, &pos) in lower.iter().enumerate() {
                while owner_idx + 1 < upper.len() && upper[owner_idx + 1] <= pos {
                    owner_idx += 1;
                    while lower[owner_pos_idx] < upper[owner_idx] {
                        owner_pos_idx += 1;
                    }
                }
                max_gap = max_gap.max(idx - owner_pos_idx);
                let source = &mut self.buffers[pos];
                self.gathered[owner_idx].append(source);
            }
            rounds += max_gap.max(1);

            // Sampling from level `sampling_start` upward (and always at the
            // root so that the final list stays O(a·h)). Every position's
            // buffer was drained into a bucket above, so writing the kept
            // values back to the upper members' positions leaves the rest
            // empty, exactly like rebuilding the buffer table from scratch.
            let do_sample = level >= sampling_start || level == h;
            for (owner_idx, &target) in upper.iter().enumerate() {
                let bucket = &mut self.gathered[owner_idx];
                bucket.sort_by_key(|x| x.value);
                if do_sample && bucket.len() > sample_size {
                    rounds += 1; // local sort + sample round
                    sample_with_ranks(bucket, sample_size, &mut self.keep_indices, &mut self.kept);
                    self.buffers[target].clear();
                    self.buffers[target].extend_from_slice(&self.kept);
                } else {
                    std::mem::swap(&mut self.buffers[target], bucket);
                }
            }
        }

        // The left-most node now holds the surviving values; pick the one
        // whose estimated global rank is closest to n/2 (counting from the
        // top, i.e. rank 0 = largest).
        let final_values = &self.buffers[0];
        let median = pick_by_rank(final_values, n);
        // Broadcast the median back to every node of the list.
        rounds += skip_list.broadcast_rounds();

        MedianOutcome {
            median,
            rounds,
            skip_list_height: h,
        }
    }
}

/// Uniformly samples `sample_size` values from a sorted bucket, folding the
/// discarded values' counts and ranks into the nearest kept value (larger
/// discarded values increase the kept value's left rank, smaller ones its
/// right rank). `keep_indices` and `kept` are caller-owned scratch buffers
/// (overwritten); `kept` holds the result.
fn sample_with_ranks(
    sorted: &[RankedValue],
    sample_size: usize,
    keep_indices: &mut Vec<usize>,
    kept: &mut Vec<RankedValue>,
) {
    let len = sorted.len();
    debug_assert!(sample_size >= 2);
    // Indices of kept values: evenly spaced, always keeping both extremes.
    keep_indices.clear();
    keep_indices.extend((0..sample_size).map(|i| i * (len - 1) / (sample_size - 1)));
    keep_indices.dedup();
    kept.clear();
    kept.extend(keep_indices.iter().map(|&i| sorted[i]));
    // Fold discarded values into the nearest kept value above/below them.
    for (idx, value) in sorted.iter().enumerate() {
        if keep_indices.binary_search(&idx).is_ok() {
            continue;
        }
        // The kept value just above `idx` (larger or equal, sorted
        // ascending) absorbs it into its right rank; the one below into its
        // left rank. Splitting the contribution both ways would double
        // count, so each discarded value is credited once to the kept value
        // immediately above it.
        let above = keep_indices.partition_point(|&k| k < idx);
        if above < keep_indices.len() {
            kept[above].right_rank += 1 + value.right_rank + value.left_rank;
        } else {
            let below = keep_indices.len() - 1;
            kept[below].left_rank += 1 + value.left_rank + value.right_rank;
        }
    }
}

/// Picks from the surviving values the one whose estimated global rank is
/// closest to `n / 2`.
fn pick_by_rank(survivors: &[RankedValue], n: usize) -> Priority {
    debug_assert!(!survivors.is_empty());
    // survivors are sorted ascending (each bucket was sorted before the
    // final merge); recompute to be safe.
    let mut sorted = survivors.to_vec();
    sorted.sort_by_key(|x| x.value);
    let target = n / 2;
    let mut best = sorted[sorted.len() / 2];
    let mut best_err = usize::MAX;
    // Estimated number of values ≤ v: survivors below it plus their folded
    // right ranks plus its own right rank.
    let mut cumulative_below = 0usize;
    for rv in &sorted {
        let rank_from_bottom = cumulative_below + rv.right_rank + 1;
        let err = rank_from_bottom.abs_diff(target.max(1));
        if err < best_err {
            best_err = err;
            best = *rv;
        }
        cumulative_below += 1 + rv.right_rank + rv.left_rank;
    }
    best.value
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finite(values: &[i64]) -> Vec<Priority> {
        values.iter().map(|&v| Priority::Finite(v as i128)).collect()
    }

    /// True rank error of `median` within `values`, measured as distance of
    /// its position from n/2 in the sorted order.
    fn rank_error(values: &[Priority], median: Priority) -> usize {
        let below = values.iter().filter(|v| **v < median).count();
        let equal = values.iter().filter(|v| **v == median).count();
        let n = values.len();
        // The best achievable position among equal values.
        let lo = below;
        let hi = below + equal.saturating_sub(1);
        let target = n / 2;
        if target < lo {
            lo - target
        } else { target.saturating_sub(hi) }
    }

    #[test]
    fn exact_median_is_the_upper_median() {
        let mut finder = ExactMedian;
        let out = finder.find_median(&finite(&[5, 1, 9, 3]), 2);
        assert_eq!(out.median, Priority::Finite(5));
        let out = finder.find_median(&finite(&[7, 2, 4]), 2);
        assert_eq!(out.median, Priority::Finite(4));
        assert!(out.rounds >= 1);
    }

    #[test]
    fn exact_median_handles_infinities() {
        let mut finder = ExactMedian;
        let values = vec![Priority::Infinity, Priority::Infinity, Priority::Finite(-3)];
        let out = finder.find_median(&values, 2);
        assert_eq!(out.median, Priority::Infinity);
    }

    #[test]
    #[should_panic(expected = "empty list")]
    fn empty_input_panics() {
        let mut finder = ExactMedian;
        let _ = finder.find_median(&[], 2);
    }

    #[test]
    fn amf_on_tiny_lists_is_exact() {
        let mut finder = AmfMedian::new(1);
        let out = finder.find_median(&finite(&[4, 8, 1]), 3);
        assert_eq!(out.median, Priority::Finite(4));
    }

    #[test]
    fn amf_rank_error_respects_lemma_1() {
        // Lemma 1: the output has rank within n/2 ± n/(2a).
        for a in [2usize, 3, 4, 8] {
            for n in [50usize, 200, 801] {
                let mut finder = AmfMedian::new(42 + (a * n) as u64);
                let values: Vec<Priority> = (0..n as i64)
                    .map(|v| Priority::Finite(((v * 7919) % 104729) as i128 - 50_000))
                    .collect();
                let out = finder.find_median(&values, a);
                let err = rank_error(&values, out.median);
                let bound = n / (2 * a) + 1;
                assert!(
                    err <= bound,
                    "rank error {err} exceeds n/2a = {bound} for n = {n}, a = {a}"
                );
            }
        }
    }

    #[test]
    fn amf_rounds_are_logarithmic() {
        let mut finder = AmfMedian::new(3);
        for n in [128usize, 1024, 4096] {
            let a = 4;
            let values: Vec<Priority> =
                (0..n as i64).map(|v| Priority::Finite(v as i128)).collect();
            let out = finder.find_median(&values, a);
            let bound = 40.0 * (a as f64) * (n as f64).log2();
            assert!(
                (out.rounds as f64) <= bound,
                "{} rounds for n = {n} exceeds {bound}",
                out.rounds
            );
            assert!(out.skip_list_height >= 1);
        }
    }

    #[test]
    fn amf_handles_duplicate_values() {
        let mut finder = AmfMedian::new(9);
        let values: Vec<Priority> = (0..500).map(|v| Priority::Finite((v % 3) as i128)).collect();
        let out = finder.find_median(&values, 3);
        let err = rank_error(&values, out.median);
        assert!(err <= 500 / 6 + 1, "err = {err}");
    }

    #[test]
    fn amf_with_infinities_keeps_them_at_the_top() {
        // Half the list is the communicating group (∞ priorities cannot
        // occur more than twice in practice, but the finder must not
        // misorder them).
        let mut values = vec![Priority::Infinity, Priority::Infinity];
        values.extend((0..100).map(|v| Priority::Finite(-v as i128)));
        let mut finder = AmfMedian::new(5);
        let out = finder.find_median(&values, 2);
        assert!(out.median < Priority::Infinity);
    }
}
