//! The unified typed request vocabulary of the session API.
//!
//! A [`Request`] is everything a [`DsgSession`](crate::DsgSession) can be
//! asked to do: serve a communication (the paper's `σ_t = (u, v)`), change
//! membership (§IV-G joins and leaves), or advance the logical clock. The
//! workload generators of `dsg-workloads` emit exactly this type, so a
//! generated trace can be fed to [`DsgSession::submit_batch`] verbatim —
//! one vocabulary from trace generation to execution.
//!
//! [`DsgSession::submit_batch`]: crate::DsgSession::submit_batch

use std::fmt;

/// One request to a self-adjusting skip graph session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Request {
    /// Peer `u` communicates with peer `v` — the request type Algorithm 1
    /// serves, and the only kind the workload generators produce.
    Communicate {
        /// The source peer.
        u: u64,
        /// The destination peer.
        v: u64,
    },
    /// The peer with this key joins the network (§IV-G).
    Join(u64),
    /// The peer with this key leaves the network (§IV-G).
    Leave(u64),
    /// Advance the logical clock to this time without serving a request
    /// (monotone; earlier values are ignored). Used to reconstruct the
    /// paper's worked examples, which are positioned at a specific time.
    Tick(u64),
}

impl Request {
    /// Creates a communication request.
    ///
    /// # Panics
    ///
    /// Panics if `u == v`; self-communication is not part of the model.
    pub fn communicate(u: u64, v: u64) -> Self {
        assert_ne!(u, v, "a request needs two distinct peers");
        Request::Communicate { u, v }
    }

    /// Creates a communication request, returning a typed error instead of
    /// panicking on `u == v` — the constructor for request sources that
    /// cannot vouch for their input (deserialized traces, service
    /// producers).
    ///
    /// # Errors
    ///
    /// Returns [`DsgError::SelfCommunication`](crate::DsgError::SelfCommunication)
    /// if `u == v`.
    pub fn try_communicate(u: u64, v: u64) -> Result<Self, crate::DsgError> {
        if u == v {
            return Err(crate::DsgError::SelfCommunication(u));
        }
        Ok(Request::Communicate { u, v })
    }

    /// The `(u, v)` endpoints of a communication request, `None` for the
    /// membership and clock variants.
    pub fn endpoints(&self) -> Option<(u64, u64)> {
        match *self {
            Request::Communicate { u, v } => Some((u, v)),
            _ => None,
        }
    }

    /// The endpoints of a communication request as an unordered pair
    /// (smaller key first); `None` for the other variants.
    pub fn unordered(&self) -> Option<(u64, u64)> {
        self.endpoints()
            .map(|(u, v)| if u <= v { (u, v) } else { (v, u) })
    }

    /// The endpoints of a request known to be a communication (workload
    /// traces contain nothing else).
    ///
    /// # Panics
    ///
    /// Panics on the membership and clock variants.
    pub fn pair(&self) -> (u64, u64) {
        self.endpoints()
            .expect("request is not a communication request")
    }

    /// Returns `true` for [`Request::Communicate`].
    pub fn is_communicate(&self) -> bool {
        matches!(self, Request::Communicate { .. })
    }
}

impl fmt::Display for Request {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Request::Communicate { u, v } => write!(f, "{u}→{v}"),
            Request::Join(peer) => write!(f, "join({peer})"),
            Request::Leave(peer) => write!(f, "leave({peer})"),
            Request::Tick(to) => write!(f, "tick({to})"),
        }
    }
}

impl From<(u64, u64)> for Request {
    fn from((u, v): (u64, u64)) -> Self {
        Request::communicate(u, v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_display_and_normalise() {
        let r = Request::communicate(9, 2);
        assert_eq!(r.to_string(), "9→2");
        assert_eq!(r.unordered(), Some((2, 9)));
        assert_eq!(r.pair(), (9, 2));
        assert!(r.is_communicate());
        let r2: Request = (1u64, 5u64).into();
        assert_eq!(r2.endpoints(), Some((1, 5)));
        assert_eq!(Request::Join(3).to_string(), "join(3)");
        assert_eq!(Request::Leave(4).to_string(), "leave(4)");
        assert_eq!(Request::Tick(9).to_string(), "tick(9)");
        assert_eq!(Request::Tick(9).endpoints(), None);
        assert!(!Request::Join(3).is_communicate());
    }

    #[test]
    #[should_panic(expected = "two distinct peers")]
    fn self_requests_are_rejected() {
        let _ = Request::communicate(3, 3);
    }

    #[test]
    fn try_communicate_returns_typed_errors() {
        assert_eq!(
            Request::try_communicate(3, 3).unwrap_err(),
            crate::DsgError::SelfCommunication(3)
        );
        assert_eq!(
            Request::try_communicate(3, 4).unwrap(),
            Request::Communicate { u: 3, v: 4 }
        );
    }

    #[test]
    #[should_panic(expected = "not a communication request")]
    fn pair_rejects_membership_requests() {
        let _ = Request::Join(1).pair();
    }
}
