//! # dsg — Dynamic Skip Graphs (locally self-adjusting skip graphs)
//!
//! A from-scratch reproduction of the **DSG** algorithm of Huq & Ghosh,
//! *"Locally Self-Adjusting Skip Graphs"*, ICDCS 2017 (arXiv:1704.00830).
//!
//! DSG is a distributed self-adjusting algorithm for skip graphs: upon each
//! communication request `(u, v)` it first routes the request with the
//! standard skip graph routing and then **locally and partially
//! reconstructs** the topology so that `u` and `v` end up directly linked,
//! while
//!
//! * the skip graph height stays `O(log n)` (the a-balance property is
//!   repaired with dummy nodes when necessary),
//! * distances inside *non-communicating* groups never grow (the working-set
//!   property of the paper keeps holding), and
//! * every step respects the CONGEST model (`O(log n)`-bit messages,
//!   `O(log n)` bits of state per node).
//!
//! The mechanism is the paper's combination of **per-level group-ids and
//! timestamps** (rules P1–P4 and T1–T6), an **approximate median** computed
//! by the distributed AMF algorithm (Section V), and per-level splits driven
//! by comparing node priorities against that median (Cases 1 and 2 of
//! Section IV-C).
//!
//! # Crate layout
//!
//! | module | paper reference | contents |
//! |--------|-----------------|----------|
//! | [`state`] | §IV-B | per-node timestamps, group-ids, is-dominating flags, group-base |
//! | [`priority`] | §IV-C rules P1–P4 | the priority lattice and rule evaluation |
//! | [`amf`] | §V, Lemma 1 | [`MedianFinder`] trait, the AMF simulation, an exact-median oracle |
//! | [`transform`] | §IV-C/D, Alg. 1 | the per-level split engine (Cases 1 and 2) |
//! | [`timestamps`] | §IV-E rules T1–T6 | timestamp reassignment |
//! | [`groups`] | §IV-D, App. C | group-id / group-base reassignment below `α` |
//! | [`dummy`] | §IV-F | a-balance repair via dummy nodes |
//! | [`cost`] | §III, Theorem 3 | round-cost accounting per request |
//! | [`dsg`] | Alg. 1 | [`DynamicSkipGraph`], the epoch engine |
//! | [`policy`] | §III (amortized argument) | frequency sketch + admission gate deciding which communicates earn a restructure |
//! | [`request`] | — | the unified typed [`Request`] vocabulary |
//! | [`session`] | — | [`DsgSession`] / [`DsgBuilder`], the public entry point |
//! | [`service`] | — | [`DsgService`](service::DsgService), the fault-contained concurrent ingest front-end |
//! | [`overload`] | — | sojourn-based load shedding, brownout degradation, and the stall watchdog behind [`ServiceConfig::overload`](service::ServiceConfig::overload) |
//! | [`persist`] | — | durable write-ahead journal + snapshot checkpoints behind [`DsgService::open`](service::DsgService::open) |
//! | [`observer`] | — | [`DsgObserver`] progress hooks |
//! | [`fixtures`] | Fig. 4 | the worked S₈ example instance |
//!
//! # Example
//!
//! ```rust
//! use dsg::prelude::*;
//!
//! # fn main() -> Result<(), DsgError> {
//! // Build a session over a self-adjusting skip graph of 32 peers.
//! let mut session = DsgSession::builder().peers(0..32).seed(7).build()?;
//!
//! // A skewed workload: peers 3 and 29 talk repeatedly.
//! let first = session.submit(Request::communicate(3, 29))?;
//! let later = session.submit(Request::communicate(3, 29))?;
//!
//! // After the first request the pair is directly linked, so the
//! // subsequent request routes in a single hop.
//! let (first, later) = (
//!     first.request_outcome().unwrap().clone(),
//!     later.request_outcome().unwrap().clone(),
//! );
//! assert!(later.routing_cost <= 1);
//! assert!(first.total_cost() >= later.routing_cost);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod amf;
pub mod config;
pub mod cost;
pub mod dsg;
pub mod dummy;
pub mod error;
pub mod fixtures;
pub mod groups;
pub mod observer;
pub mod overload;
pub mod persist;
pub mod policy;
pub mod priority;
pub mod request;
pub mod service;
pub mod session;
pub mod state;
pub mod timestamps;
pub mod transform;

pub use amf::{AmfMedian, ExactMedian, MedianFinder, MedianOutcome};
pub use config::{AdaptPolicy, DsgConfig, InstallStrategy, MedianStrategy, PolicyConfig};
pub use cost::{CostBreakdown, RunStats};
pub use dsg::{DynamicSkipGraph, EpochPhase, EpochReport, RecoveryReport, RequestOutcome};
pub use error::DsgError;
pub use observer::{
    AdmissionEvent, AuditEvent, BalanceRepairEvent, DsgObserver, OverloadEvent, SharedObserver,
    StallEvent, TransformEvent,
};
pub use overload::{OverloadConfig, OverloadController, OverloadState, RetryPolicy};
pub use persist::{DurableStore, EngineImage, PersistConfig, PersistError};
pub use policy::{Admission, AdmissionGate, ClusterSignal, FreqSketch, GateCounters};
pub use priority::Priority;
pub use request::Request;
pub use service::{
    DsgService, OpenReport, ServiceConfig, ServiceMetrics, ServiceStatus, ShutdownPolicy,
    SubmitError, Ticket,
};
pub use session::{BatchOutcome, DsgBuilder, DsgSession, SubmitOutcome};
pub use state::{NodeState, StateTable};

/// Fail-point registry of the substrate, re-exported so applications and
/// tests arm the engine's named fault-injection sites without depending on
/// `dsg-skipgraph` directly.
pub use dsg_skipgraph::failpoint;

/// The canonical import surface of the crate.
///
/// ```rust
/// use dsg::prelude::*;
/// # fn main() -> Result<(), DsgError> {
/// let mut session = DsgSession::builder().peers(0..8).seed(1).build()?;
/// session.submit(Request::communicate(0, 5))?;
/// # Ok(())
/// # }
/// ```
///
/// Everything a library user needs to build and drive a session: the
/// builder/session pair, the typed [`Request`] vocabulary, outcomes,
/// configuration, observers, and the error type. The umbrella crate
/// (`dsg-repro`) re-exports this module, so downstream code can depend on
/// either and write `use dsg::prelude::*;` / `use dsg_repro::prelude::*;`
/// interchangeably. The engine type ([`DynamicSkipGraph`]) is included for
/// inspection APIs; constructing it directly is deprecated in favour of
/// [`DsgSession::builder`].
pub mod prelude {
    pub use crate::config::{
        AdaptPolicy, DsgConfig, InstallStrategy, MedianStrategy, PolicyConfig,
    };
    pub use crate::cost::{CostBreakdown, RunStats};
    pub use crate::dsg::{
        DynamicSkipGraph, EpochPhase, EpochReport, RecoveryReport, RequestOutcome,
    };
    pub use crate::error::DsgError;
    pub use crate::observer::{
        AdmissionEvent, AuditEvent, BalanceRepairEvent, DsgObserver, OverloadEvent,
        SharedObserver, StallEvent, TransformEvent,
    };
    pub use crate::overload::{OverloadConfig, OverloadState, RetryPolicy};
    pub use crate::persist::{PersistConfig, PersistError};
    pub use crate::request::Request;
    pub use crate::service::{
        DsgService, OpenReport, ServiceConfig, ServiceMetrics, ServiceStatus, ShutdownPolicy,
        SubmitError, Ticket,
    };
    pub use crate::session::{BatchOutcome, DsgBuilder, DsgSession, SubmitOutcome};
}

/// Convenience result alias used across the crate.
pub type Result<T, E = DsgError> = std::result::Result<T, E>;
