//! The write-ahead journal's frame codec and scanner.
//!
//! One frame per drained request chunk: `[len: u32 LE][crc: u32 LE]
//! [payload]`, where `crc` is the CRC-32 of the payload and the payload is
//! the chunk's requests in submission order. The scanner distinguishes the
//! two failure shapes precisely (see the [module docs](super)): a file
//! that *ends* mid-frame is a torn tail (truncate, never serve); a
//! complete frame whose CRC or structure is wrong is corruption (typed
//! error, never applied).

use super::{put_u32, put_u64, PersistError, Reader};
use crate::request::Request;
use dsg_skipgraph::crc32::crc32;
use std::fs;
use std::io::Read;
use std::path::Path;

/// File name of the write-ahead journal inside a store directory.
pub const JOURNAL_FILE: &str = "journal.wal";

const TAG_COMMUNICATE: u8 = 0;
const TAG_JOIN: u8 = 1;
const TAG_LEAVE: u8 = 2;
const TAG_TICK: u8 = 3;

/// High bit of the payload's count word: the chunk was served under a
/// **brownout** verdict (the service's overload controller degraded the
/// admission gate to route-only for cold traffic), and replay must serve
/// it the same way for bit-identical recovery. Request counts are bounded
/// by the service's ingest batch (and by `MAX_EPOCH_PAIRS`-sized epochs),
/// both far below 2³¹, so the bit never collides with a count — and
/// pre-brownout journals, whose counts never set it, decode as
/// `brownout = false`.
pub(crate) const FLAG_BROWNOUT: u32 = 1 << 31;

/// Encodes one request chunk as a complete frame (header + payload).
pub(crate) fn encode_frame(chunk: &[Request], brownout: bool) -> Vec<u8> {
    debug_assert!((chunk.len() as u32) < FLAG_BROWNOUT, "count collides with the flag bit");
    let flag = if brownout { FLAG_BROWNOUT } else { 0 };
    let mut payload = Vec::with_capacity(4 + chunk.len() * 17);
    put_u32(&mut payload, chunk.len() as u32 | flag);
    for request in chunk {
        match *request {
            Request::Communicate { u, v } => {
                payload.push(TAG_COMMUNICATE);
                put_u64(&mut payload, u);
                put_u64(&mut payload, v);
            }
            Request::Join(peer) => {
                payload.push(TAG_JOIN);
                put_u64(&mut payload, peer);
            }
            Request::Leave(peer) => {
                payload.push(TAG_LEAVE);
                put_u64(&mut payload, peer);
            }
            Request::Tick(to) => {
                payload.push(TAG_TICK);
                put_u64(&mut payload, to);
            }
        }
    }
    let mut frame = Vec::with_capacity(8 + payload.len());
    put_u32(&mut frame, payload.len() as u32);
    put_u32(&mut frame, crc32(&payload));
    frame.extend_from_slice(&payload);
    frame
}

fn decode_payload(payload: &[u8], offset: u64) -> Result<(Vec<Request>, bool), PersistError> {
    let corrupt = |detail: &str| PersistError::CorruptFrame {
        offset,
        detail: detail.to_string(),
    };
    let mut r = Reader::new(payload);
    let word = r.u32().map_err(|_| corrupt("missing request count"))?;
    let brownout = word & FLAG_BROWNOUT != 0;
    let count = word & !FLAG_BROWNOUT;
    let mut requests = Vec::with_capacity((count as usize).min(payload.len()));
    for _ in 0..count {
        let tag = r.u8().map_err(|_| corrupt("payload ran out of bytes"))?;
        let short = |_| corrupt("payload ran out of bytes");
        let request = match tag {
            TAG_COMMUNICATE => {
                let u = r.u64().map_err(short)?;
                let v = r.u64().map_err(short)?;
                Request::Communicate { u, v }
            }
            TAG_JOIN => Request::Join(r.u64().map_err(short)?),
            TAG_LEAVE => Request::Leave(r.u64().map_err(short)?),
            TAG_TICK => Request::Tick(r.u64().map_err(short)?),
            other => return Err(corrupt(&format!("unknown request tag {other}"))),
        };
        requests.push(request);
    }
    if !r.is_at_end() {
        return Err(corrupt("trailing bytes after the last request"));
    }
    Ok((requests, brownout))
}

/// The result of scanning a journal (suffix): the decoded frames, where
/// the last complete frame ends, and how many torn bytes trail it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalScan {
    /// The decoded request chunks, one per complete frame, in append
    /// order.
    pub frames: Vec<Vec<Request>>,
    /// Whether each frame (parallel to [`frames`](JournalScan::frames))
    /// was journaled under a brownout verdict — replay must degrade the
    /// admission gate identically to recover bit-identical state.
    pub brownout: Vec<bool>,
    /// Absolute byte offset just past each complete frame — the valid
    /// truncation boundaries of the journal.
    pub frame_ends: Vec<u64>,
    /// Absolute byte offset of the end of the last complete frame (equal
    /// to the scan's start offset if no frame is complete).
    pub committed_len: u64,
    /// Bytes of a partial final frame beyond `committed_len` — a torn
    /// tail, to be truncated and never served.
    pub torn_bytes: u64,
}

impl JournalScan {
    /// All requests of all complete frames, flattened in append order.
    pub fn requests(&self) -> Vec<Request> {
        self.frames.iter().flatten().copied().collect()
    }
}

/// Scans `bytes` (the journal contents from absolute offset `base`
/// onward) into frames.
///
/// # Errors
///
/// Returns [`PersistError::CorruptFrame`] if a *complete* frame fails its
/// CRC or does not decode. A partial final frame is not an error — it is
/// reported through [`JournalScan::torn_bytes`].
pub(crate) fn scan(bytes: &[u8], base: u64) -> Result<JournalScan, PersistError> {
    let mut frames = Vec::new();
    let mut brownout = Vec::new();
    let mut frame_ends = Vec::new();
    let mut pos = 0usize;
    loop {
        let remaining = bytes.len() - pos;
        if remaining == 0 {
            break;
        }
        if remaining < 8 {
            // The header itself is cut short: torn tail.
            break;
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4 bytes")) as usize;
        let crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().expect("4 bytes"));
        if remaining - 8 < len {
            // The payload is cut short: torn tail.
            break;
        }
        let offset = base + pos as u64;
        let payload = &bytes[pos + 8..pos + 8 + len];
        if crc32(payload) != crc {
            return Err(PersistError::CorruptFrame {
                offset,
                detail: "checksum mismatch".to_string(),
            });
        }
        let (requests, flag) = decode_payload(payload, offset)?;
        frames.push(requests);
        brownout.push(flag);
        pos += 8 + len;
        frame_ends.push(base + pos as u64);
    }
    Ok(JournalScan {
        frames,
        brownout,
        frame_ends,
        committed_len: base + pos as u64,
        torn_bytes: (bytes.len() - pos) as u64,
    })
}

/// Reads and scans a store's journal from absolute byte `offset` onward,
/// without modifying the file (the torn tail, if any, is only reported). A
/// missing journal scans as empty when `offset == 0`.
///
/// # Errors
///
/// Returns [`PersistError::ShortJournal`] if the journal is shorter than
/// `offset`, [`PersistError::CorruptFrame`] for a corrupt complete frame,
/// and [`PersistError::Io`] for read failures.
pub fn read_journal_from(dir: &Path, offset: u64) -> Result<JournalScan, PersistError> {
    let path = dir.join(JOURNAL_FILE);
    let mut bytes = Vec::new();
    match fs::File::open(&path) {
        Ok(mut file) => {
            file.read_to_end(&mut bytes)
                .map_err(|e| PersistError::io("read the journal", e))?;
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound && offset == 0 => {}
        Err(e) => return Err(PersistError::io("open the journal", e)),
    }
    if (bytes.len() as u64) < offset {
        return Err(PersistError::ShortJournal {
            len: bytes.len() as u64,
            offset,
        });
    }
    scan(&bytes[offset as usize..], offset)
}

/// Reads and scans a store's whole journal (from byte 0 — the genesis of
/// the store, since the journal file is never rotated).
///
/// # Errors
///
/// See [`read_journal_from`].
pub fn read_journal(dir: &Path) -> Result<JournalScan, PersistError> {
    read_journal_from(dir, 0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chunks() -> Vec<Vec<Request>> {
        vec![
            vec![
                Request::Communicate { u: 1, v: 5 },
                Request::Tick(9),
                Request::Join(40),
            ],
            vec![Request::Leave(40)],
            vec![],
            vec![Request::Communicate { u: 2, v: 3 }],
        ]
    }

    fn journal_bytes() -> (Vec<u8>, Vec<u64>) {
        let mut bytes = Vec::new();
        let mut ends = Vec::new();
        for chunk in chunks() {
            bytes.extend_from_slice(&encode_frame(&chunk, false));
            ends.push(bytes.len() as u64);
        }
        (bytes, ends)
    }

    #[test]
    fn frames_round_trip() {
        let (bytes, ends) = journal_bytes();
        let scan = scan(&bytes, 0).unwrap();
        assert_eq!(scan.frames, chunks());
        assert_eq!(scan.brownout, vec![false; chunks().len()]);
        assert_eq!(scan.frame_ends, ends);
        assert_eq!(scan.committed_len, bytes.len() as u64);
        assert_eq!(scan.torn_bytes, 0);
    }

    #[test]
    fn brownout_flag_round_trips_without_disturbing_requests() {
        let all = chunks();
        let flags = [false, true, true, false];
        let mut bytes = Vec::new();
        for (chunk, &flag) in all.iter().zip(&flags) {
            bytes.extend_from_slice(&encode_frame(chunk, flag));
        }
        let scanned = scan(&bytes, 0).unwrap();
        assert_eq!(scanned.frames, all);
        assert_eq!(scanned.brownout, flags.to_vec());
        // The flag lives in the count word only: a flagged frame's
        // requests decode identically to the unflagged encoding's.
        let plain = encode_frame(&all[0], false);
        let flagged = encode_frame(&all[0], true);
        assert_ne!(plain, flagged);
        assert_eq!(plain.len(), flagged.len());
    }

    #[test]
    fn every_byte_boundary_truncation_is_torn_or_clean() {
        let (bytes, ends) = journal_bytes();
        for cut in 0..=bytes.len() {
            let scanned = scan(&bytes[..cut], 0).unwrap();
            let complete = ends.iter().filter(|&&e| e <= cut as u64).count();
            assert_eq!(scanned.frames.len(), complete, "cut at {cut}");
            assert_eq!(
                scanned.committed_len,
                ends[..complete].last().copied().unwrap_or(0),
                "cut at {cut}"
            );
            assert_eq!(
                scanned.torn_bytes,
                cut as u64 - scanned.committed_len,
                "cut at {cut}"
            );
            assert_eq!(scanned.frames, chunks()[..complete].to_vec());
        }
    }

    #[test]
    fn bit_flips_in_complete_frames_are_typed_corruption() {
        let (bytes, _) = journal_bytes();
        for byte in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[byte] ^= 0x10;
            // A flip anywhere in a complete frame must surface as
            // CorruptFrame — except in a length header, where the frame
            // may now claim to extend past EOF and becomes a torn tail
            // (still never applied), or may land on another parseable
            // cut of the stream whose checksum then fails.
            match scan(&bad, 0) {
                Err(PersistError::CorruptFrame { .. }) => {}
                Ok(scanned) => {
                    assert!(
                        scanned.torn_bytes > 0,
                        "flip at byte {byte} was silently accepted"
                    );
                }
                Err(other) => panic!("flip at byte {byte}: unexpected error {other:?}"),
            }
        }
    }

    #[test]
    fn offsets_in_errors_are_absolute() {
        let (bytes, ends) = journal_bytes();
        let mut bad = bytes.clone();
        // Flip inside the second frame's payload.
        bad[ends[0] as usize + 9] ^= 1;
        let err = scan(&bad[ends[0] as usize..], ends[0]).unwrap_err();
        match err {
            PersistError::CorruptFrame { offset, .. } => assert_eq!(offset, ends[0]),
            other => panic!("unexpected error {other:?}"),
        }
    }
}
