//! The on-disk store: journal writer, snapshot checkpoints, and the
//! atomic manifest binding them.
//!
//! A [`DurableStore`] is single-owner (the service's ingest worker); see
//! the [module docs](super) for the layout, the recovery contract, and the
//! failure model.

use super::image::{decode_snapshot, encode_snapshot, unwrap_file, wrap_file, EngineImage};
use super::journal::{encode_frame, scan, JournalScan, JOURNAL_FILE};
use super::{put_u64, PersistConfig, PersistError, Reader};
use crate::request::Request;
use dsg_skipgraph::failpoint;
use std::fs::{self, File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// File name of the manifest inside a store directory.
pub const MANIFEST_FILE: &str = "MANIFEST";

/// Leading magic of a manifest payload (version 1).
const MANIFEST_MAGIC: &[u8; 8] = b"DSGMANI1";

fn snapshot_file(seq: u64) -> String {
    format!("snap-{seq}.img")
}

/// The manifest's content: the current `(snapshot seq, journal offset)`
/// binding and, for fallback, the previous one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Manifest {
    current: (u64, u64),
    /// `None` until the second checkpoint exists.
    previous: Option<(u64, u64)>,
}

impl Manifest {
    fn encode(&self) -> Vec<u8> {
        let mut payload = Vec::with_capacity(40);
        payload.extend_from_slice(MANIFEST_MAGIC);
        put_u64(&mut payload, self.current.0);
        put_u64(&mut payload, self.current.1);
        let (prev_seq, prev_offset) = self.previous.unwrap_or((0, 0));
        put_u64(&mut payload, prev_seq);
        put_u64(&mut payload, prev_offset);
        payload
    }

    fn decode(payload: &[u8]) -> Result<Self, PersistError> {
        let corrupt = |detail: &str| PersistError::CorruptManifest {
            detail: detail.to_string(),
        };
        let mut r = Reader::new(payload);
        if r.bytes(MANIFEST_MAGIC.len())
            .map_err(|_| corrupt("truncated magic"))?
            != MANIFEST_MAGIC
        {
            return Err(corrupt("bad magic"));
        }
        let short = |_| corrupt("payload ran out of bytes");
        let current = (r.u64().map_err(short)?, r.u64().map_err(short)?);
        let prev_seq = r.u64().map_err(short)?;
        let prev_offset = r.u64().map_err(short)?;
        if !r.is_at_end() {
            return Err(corrupt("trailing bytes"));
        }
        if current.0 == 0 {
            return Err(corrupt("current snapshot seq is 0"));
        }
        let previous = (prev_seq != 0).then_some((prev_seq, prev_offset));
        Ok(Manifest { current, previous })
    }
}

/// What [`DurableStore::open`] recovered from an existing store: the
/// snapshot image to restore and the journal suffix to replay.
#[derive(Debug, Clone)]
pub struct Recovered {
    /// The decoded engine image of the newest valid snapshot.
    pub image: EngineImage,
    /// Sequence number of that snapshot.
    pub snapshot_seq: u64,
    /// Size of the snapshot file in bytes.
    pub snapshot_bytes: u64,
    /// The journal offset replay starts from (the snapshot's binding).
    pub replay_offset: u64,
    /// The journal suffix to replay, one chunk per complete frame.
    pub frames: Vec<Vec<Request>>,
    /// Whether each replay frame (parallel to
    /// [`frames`](Recovered::frames)) was journaled under a brownout
    /// verdict; replay must serve it degraded the same way.
    pub brownout: Vec<bool>,
    /// Torn bytes truncated off the journal tail (0 on a clean shutdown).
    pub torn_bytes_truncated: u64,
    /// `true` if the manifest-bound snapshot was damaged and recovery fell
    /// back to the retained previous one.
    pub fell_back: bool,
}

/// An open store: the append handle on the journal plus the checkpoint
/// state. Owned by one thread; all methods take `&mut self`.
#[derive(Debug)]
pub struct DurableStore {
    dir: PathBuf,
    journal: File,
    /// Journal length through the last *committed* (fully written) frame —
    /// the rollback target after a failed append.
    journal_len: u64,
    /// Frames appended since the last fsync.
    unsynced: u64,
    config: PersistConfig,
    /// Seq of the current manifest-bound snapshot (0 = none yet; the
    /// store refuses appends until the initial checkpoint exists).
    seq: u64,
    /// The current manifest binding's journal offset.
    bound_offset: u64,
    /// The previous binding retained for fallback.
    previous: Option<(u64, u64)>,
}

impl DurableStore {
    /// Opens (or creates) the store at `dir`.
    ///
    /// Returns the open store and, when `dir` held a valid store, the
    /// [`Recovered`] state to rebuild the engine from — the caller
    /// restores the snapshot image, replays the frames, and only then
    /// appends new ones. `None` means a cold start: the directory was
    /// missing or empty, and the caller must cut the initial checkpoint
    /// ([`DurableStore::checkpoint`]) before the first append.
    ///
    /// A torn journal tail (partial final frame) is physically truncated
    /// here, so the next append starts on a clean frame boundary.
    ///
    /// # Errors
    ///
    /// Typed [`PersistError`]s: I/O failures, a corrupt
    /// manifest/snapshot/frame, a non-empty journal without a manifest
    /// ([`PersistError::StrayJournal`]), or a journal shorter than its
    /// manifest binding ([`PersistError::ShortJournal`]).
    pub fn open(
        dir: impl AsRef<Path>,
        config: PersistConfig,
    ) -> Result<(Self, Option<Recovered>), PersistError> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir).map_err(|e| PersistError::io("create the store directory", e))?;
        let manifest_path = dir.join(MANIFEST_FILE);
        let journal_path = dir.join(JOURNAL_FILE);

        if !manifest_path.exists() {
            // Cold start. A non-empty journal without a manifest is not a
            // store we can safely build over — refuse rather than discard.
            if let Ok(meta) = fs::metadata(&journal_path) {
                if meta.len() > 0 {
                    return Err(PersistError::StrayJournal { len: meta.len() });
                }
            }
            let journal = OpenOptions::new()
                .read(true)
                .write(true)
                .create(true)
                .truncate(false)
                .open(&journal_path)
                .map_err(|e| PersistError::io("create the journal", e))?;
            let store = DurableStore {
                dir,
                journal,
                journal_len: 0,
                unsynced: 0,
                config,
                seq: 0,
                bound_offset: 0,
                previous: None,
            };
            return Ok((store, None));
        }

        let manifest_bytes =
            fs::read(&manifest_path).map_err(|e| PersistError::io("read the manifest", e))?;
        let payload = unwrap_file(&manifest_bytes, |detail| PersistError::CorruptManifest {
            detail: detail.to_string(),
        })?;
        let manifest = Manifest::decode(payload)?;

        // Newest valid snapshot: the manifest-bound one, else the retained
        // previous one.
        let load =
            |(seq, offset): (u64, u64)| -> Result<(EngineImage, u64, u64, u64), PersistError> {
                let path = dir.join(snapshot_file(seq));
                let bytes = fs::read(&path).map_err(|e| PersistError::io("read a snapshot", e))?;
                let payload = unwrap_file(&bytes, |detail| PersistError::CorruptSnapshot {
                    detail: format!("snap-{seq}.img: {detail}"),
                })?;
                let image = decode_snapshot(payload)?;
                Ok((image, seq, bytes.len() as u64, offset))
            };
        let (image, chosen_seq, snapshot_bytes, replay_offset, fell_back) =
            match load(manifest.current) {
                Ok((image, seq, bytes, offset)) => (image, seq, bytes, offset, false),
                Err(current_err) => match manifest.previous {
                    Some(previous) => {
                        let (image, seq, bytes, offset) = load(previous)?;
                        (image, seq, bytes, offset, true)
                    }
                    None => return Err(current_err),
                },
            };

        let mut journal = OpenOptions::new()
            .read(true)
            .write(true)
            .open(&journal_path)
            .map_err(|e| PersistError::io("open the journal", e))?;
        let mut bytes = Vec::new();
        journal
            .read_to_end(&mut bytes)
            .map_err(|e| PersistError::io("read the journal", e))?;
        if (bytes.len() as u64) < replay_offset {
            return Err(PersistError::ShortJournal {
                len: bytes.len() as u64,
                offset: replay_offset,
            });
        }
        let scanned: JournalScan = scan(&bytes[replay_offset as usize..], replay_offset)?;
        if scanned.torn_bytes > 0 {
            journal
                .set_len(scanned.committed_len)
                .map_err(|e| PersistError::io("truncate the torn journal tail", e))?;
            journal
                .sync_data()
                .map_err(|e| PersistError::io("sync the truncated journal", e))?;
        }
        journal
            .seek(SeekFrom::Start(scanned.committed_len))
            .map_err(|e| PersistError::io("seek to the journal end", e))?;

        let store = DurableStore {
            dir,
            journal,
            journal_len: scanned.committed_len,
            unsynced: 0,
            config,
            seq: manifest.current.0,
            bound_offset: replay_offset,
            previous: manifest.previous,
        };
        let recovered = Recovered {
            image,
            snapshot_seq: chosen_seq,
            snapshot_bytes,
            replay_offset,
            frames: scanned.frames,
            brownout: scanned.brownout,
            torn_bytes_truncated: scanned.torn_bytes,
            fell_back,
        };
        Ok((store, Some(recovered)))
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Journal length in bytes through the last committed frame.
    pub fn journal_len(&self) -> u64 {
        self.journal_len
    }

    /// Seq of the current manifest-bound snapshot (0 before the initial
    /// checkpoint).
    pub fn snapshot_seq(&self) -> u64 {
        self.seq
    }

    /// The journal offset the current manifest binding replays from.
    pub fn bound_offset(&self) -> u64 {
        self.bound_offset
    }

    /// Appends one request chunk as a journal frame and fsyncs per the
    /// configured [`PersistConfig::fsync_every`] cadence. Called **before**
    /// the engine applies the chunk. `brownout` records whether the chunk
    /// will be served under a brownout verdict, so crash replay degrades
    /// it identically.
    ///
    /// On error the file may hold a partial frame; the caller must
    /// [`rollback`](DurableStore::rollback) (and treat a rollback failure
    /// as fatal). Carries the `io.append` fail point between the header
    /// and payload writes, so an armed fail point tears a frame exactly
    /// like a crash mid-append.
    ///
    /// # Errors
    ///
    /// [`PersistError::Io`] on write/fsync failure. Appending before the
    /// initial checkpoint exists is a bug and reports itself as a typed
    /// corruption error rather than a panic.
    pub fn append_chunk(&mut self, chunk: &[Request], brownout: bool) -> Result<(), PersistError> {
        if self.seq == 0 {
            return Err(PersistError::CorruptManifest {
                detail: "append before the initial checkpoint".to_string(),
            });
        }
        let frame = encode_frame(chunk, brownout);
        self.journal
            .write_all(&frame[..8])
            .map_err(|e| PersistError::io("append a journal frame header", e))?;
        failpoint::hit(failpoint::IO_APPEND);
        self.journal
            .write_all(&frame[8..])
            .map_err(|e| PersistError::io("append a journal frame payload", e))?;
        self.journal_len += frame.len() as u64;
        self.unsynced += 1;
        if self.config.fsync_every > 0 && self.unsynced >= self.config.fsync_every {
            self.sync()?;
        }
        Ok(())
    }

    /// Discards any partially written frame: truncates the journal back to
    /// the last committed frame and repositions the write cursor. A no-op
    /// on a clean journal.
    ///
    /// # Errors
    ///
    /// [`PersistError::Io`]; the caller must treat this as fatal (the
    /// journal can no longer be trusted to match the engine).
    pub fn rollback(&mut self) -> Result<(), PersistError> {
        self.journal
            .set_len(self.journal_len)
            .map_err(|e| PersistError::io("roll back a torn append", e))?;
        self.journal
            .seek(SeekFrom::Start(self.journal_len))
            .map_err(|e| PersistError::io("reposition after rollback", e))?;
        Ok(())
    }

    /// Fsyncs the journal if any appended frame is not yet durable.
    ///
    /// # Errors
    ///
    /// [`PersistError::Io`].
    pub fn sync(&mut self) -> Result<(), PersistError> {
        if self.unsynced > 0 {
            self.journal
                .sync_data()
                .map_err(|e| PersistError::io("fsync the journal", e))?;
            self.unsynced = 0;
        }
        Ok(())
    }

    /// Cuts a snapshot checkpoint: writes the image to `snap-<seq+1>.img`
    /// (temp + fsync + rename), then atomically rebinds the manifest to
    /// `(seq+1, current journal length)`, keeping the previous binding for
    /// fallback and pruning older snapshot files. The journal is fsynced
    /// first so the binding never points past durable data.
    ///
    /// Returns the snapshot file size in bytes.
    ///
    /// Carries the `io.snapshot` fail point (before the snapshot payload
    /// is written) and the `io.manifest` fail point (after the manifest
    /// temp is written, before the rename): a crash at either leaves the
    /// previous binding fully intact.
    ///
    /// # Errors
    ///
    /// [`PersistError::Io`]. On error the manifest still holds the
    /// previous binding; call
    /// [`abandon_checkpoint`](DurableStore::abandon_checkpoint) to clean
    /// up temp files.
    pub fn checkpoint(&mut self, image: &EngineImage) -> Result<u64, PersistError> {
        self.sync()?;
        let new_seq = self.seq + 1;
        let file_bytes = wrap_file(&encode_snapshot(image));

        let snap_tmp = self.dir.join(format!("{}.tmp", snapshot_file(new_seq)));
        let snap_final = self.dir.join(snapshot_file(new_seq));
        {
            let mut f =
                File::create(&snap_tmp).map_err(|e| PersistError::io("create a snapshot", e))?;
            failpoint::hit(failpoint::IO_SNAPSHOT);
            f.write_all(&file_bytes)
                .map_err(|e| PersistError::io("write a snapshot", e))?;
            f.sync_all()
                .map_err(|e| PersistError::io("fsync a snapshot", e))?;
        }
        fs::rename(&snap_tmp, &snap_final)
            .map_err(|e| PersistError::io("rename a snapshot into place", e))?;
        sync_dir(&self.dir)?;

        let manifest = Manifest {
            current: (new_seq, self.journal_len),
            previous: (self.seq != 0).then_some((self.seq, self.bound_offset)),
        };
        let manifest_tmp = self.dir.join(format!("{MANIFEST_FILE}.tmp"));
        {
            let mut f = File::create(&manifest_tmp)
                .map_err(|e| PersistError::io("create the manifest", e))?;
            f.write_all(&wrap_file(&manifest.encode()))
                .map_err(|e| PersistError::io("write the manifest", e))?;
            f.sync_all()
                .map_err(|e| PersistError::io("fsync the manifest", e))?;
        }
        failpoint::hit(failpoint::IO_MANIFEST);
        fs::rename(&manifest_tmp, self.dir.join(MANIFEST_FILE))
            .map_err(|e| PersistError::io("rename the manifest into place", e))?;
        sync_dir(&self.dir)?;

        // The binding advanced; prune snapshots older than the retained
        // previous one (best-effort — stray files are harmless).
        let retained_prev = self.seq;
        self.previous = manifest.previous;
        self.seq = new_seq;
        self.bound_offset = self.journal_len;
        if let Ok(entries) = fs::read_dir(&self.dir) {
            for entry in entries.flatten() {
                let name = entry.file_name();
                let Some(name) = name.to_str() else { continue };
                if let Some(seq) = name
                    .strip_prefix("snap-")
                    .and_then(|rest| rest.strip_suffix(".img"))
                    .and_then(|digits| digits.parse::<u64>().ok())
                {
                    if seq != new_seq && seq != retained_prev {
                        let _ = fs::remove_file(entry.path());
                    }
                }
            }
        }
        Ok(file_bytes.len() as u64)
    }

    /// Best-effort cleanup after a failed or panicked
    /// [`checkpoint`](DurableStore::checkpoint): removes stray `.tmp`
    /// files. The manifest was not touched (the rename never happened or
    /// failed atomically), so the store keeps serving under the previous
    /// binding.
    pub fn abandon_checkpoint(&mut self) {
        if let Ok(entries) = fs::read_dir(&self.dir) {
            for entry in entries.flatten() {
                if entry
                    .file_name()
                    .to_str()
                    .is_some_and(|name| name.ends_with(".tmp"))
                {
                    let _ = fs::remove_file(entry.path());
                }
            }
        }
    }
}

/// Fsyncs a directory so a completed rename survives a crash (on platforms
/// where directories cannot be opened for sync, this degrades gracefully).
fn sync_dir(dir: &Path) -> Result<(), PersistError> {
    match File::open(dir) {
        Ok(f) => f
            .sync_all()
            .map_err(|e| PersistError::io("fsync the store directory", e)),
        Err(_) => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::super::journal::read_journal;
    use super::*;
    use crate::config::DsgConfig;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_store_dir() -> PathBuf {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("dsg-store-test-{}-{n}", std::process::id()))
    }

    fn tiny_image(time: u64) -> EngineImage {
        EngineImage {
            config: DsgConfig::default(),
            time,
            rng_state: [9, 8, 7, 6],
            nodes: Vec::new(),
            sketch: None,
        }
    }

    #[test]
    fn cold_start_checkpoint_append_reopen() {
        let dir = temp_store_dir();
        let (mut store, recovered) = DurableStore::open(&dir, PersistConfig::default()).unwrap();
        assert!(recovered.is_none());
        // Appends before the initial checkpoint are refused.
        assert!(store.append_chunk(&[Request::Tick(1)], false).is_err());
        store.checkpoint(&tiny_image(0)).unwrap();
        store
            .append_chunk(&[Request::Communicate { u: 1, v: 2 }], false)
            .unwrap();
        store.append_chunk(&[Request::Tick(5)], false).unwrap();
        drop(store);

        let (store, recovered) = DurableStore::open(&dir, PersistConfig::default()).unwrap();
        let recovered = recovered.unwrap();
        assert_eq!(recovered.snapshot_seq, 1);
        assert_eq!(recovered.replay_offset, 0);
        assert_eq!(
            recovered.frames,
            vec![
                vec![Request::Communicate { u: 1, v: 2 }],
                vec![Request::Tick(5)]
            ]
        );
        assert_eq!(recovered.torn_bytes_truncated, 0);
        assert!(!recovered.fell_back);
        drop(store);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_rebinds_and_retains_the_previous_snapshot() {
        let dir = temp_store_dir();
        let (mut store, _) = DurableStore::open(&dir, PersistConfig::default()).unwrap();
        store.checkpoint(&tiny_image(0)).unwrap();
        store.append_chunk(&[Request::Tick(1)], false).unwrap();
        store.checkpoint(&tiny_image(1)).unwrap();
        store.append_chunk(&[Request::Tick(2)], false).unwrap();
        store.checkpoint(&tiny_image(2)).unwrap();
        // Snapshots 3 and 2 remain; 1 was pruned.
        assert!(dir.join("snap-3.img").exists());
        assert!(dir.join("snap-2.img").exists());
        assert!(!dir.join("snap-1.img").exists());
        let offset = store.journal_len();
        store.append_chunk(&[Request::Tick(3)], false).unwrap();
        drop(store);

        let (_store, recovered) = DurableStore::open(&dir, PersistConfig::default()).unwrap();
        let recovered = recovered.unwrap();
        assert_eq!(recovered.snapshot_seq, 3);
        assert_eq!(recovered.image.time, 2);
        assert_eq!(recovered.replay_offset, offset);
        assert_eq!(recovered.frames, vec![vec![Request::Tick(3)]]);
        // The full journal is still readable from genesis.
        assert_eq!(
            read_journal(&dir).unwrap().frames,
            vec![
                vec![Request::Tick(1)],
                vec![Request::Tick(2)],
                vec![Request::Tick(3)]
            ]
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn damaged_current_snapshot_falls_back_to_previous() {
        let dir = temp_store_dir();
        let (mut store, _) = DurableStore::open(&dir, PersistConfig::default()).unwrap();
        store.checkpoint(&tiny_image(0)).unwrap();
        store.append_chunk(&[Request::Tick(1)], false).unwrap();
        store.checkpoint(&tiny_image(1)).unwrap();
        store.append_chunk(&[Request::Tick(2)], false).unwrap();
        drop(store);

        // Flip a payload bit in the newest snapshot.
        let snap = dir.join("snap-2.img");
        let mut bytes = fs::read(&snap).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        fs::write(&snap, &bytes).unwrap();

        let (_store, recovered) = DurableStore::open(&dir, PersistConfig::default()).unwrap();
        let recovered = recovered.unwrap();
        assert!(recovered.fell_back);
        assert_eq!(recovered.snapshot_seq, 1);
        assert_eq!(recovered.image.time, 0);
        // Fallback replays from the previous binding: both frames.
        assert_eq!(
            recovered.frames,
            vec![vec![Request::Tick(1)], vec![Request::Tick(2)]]
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rollback_discards_a_torn_append() {
        let dir = temp_store_dir();
        let (mut store, _) = DurableStore::open(&dir, PersistConfig::default()).unwrap();
        store.checkpoint(&tiny_image(0)).unwrap();
        store.append_chunk(&[Request::Tick(1)], false).unwrap();
        let committed = store.journal_len();

        let _guard = failpoint::exclusive();
        failpoint::arm(failpoint::IO_APPEND, 1);
        let torn = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            store.append_chunk(&[Request::Tick(2)], false)
        }));
        failpoint::disarm_all();
        assert!(torn.is_err(), "the armed fail point must fire");
        // The header reached the file; rollback removes it.
        assert!(fs::metadata(dir.join(JOURNAL_FILE)).unwrap().len() > committed);
        store.rollback().unwrap();
        assert_eq!(
            fs::metadata(dir.join(JOURNAL_FILE)).unwrap().len(),
            committed
        );
        // The journal is clean again and appendable.
        store.append_chunk(&[Request::Tick(3)], false).unwrap();
        drop(store);
        let scanned = read_journal(&dir).unwrap();
        assert_eq!(
            scanned.frames,
            vec![vec![Request::Tick(1)], vec![Request::Tick(3)]]
        );
        assert_eq!(scanned.torn_bytes, 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stray_journal_without_manifest_is_refused() {
        let dir = temp_store_dir();
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join(JOURNAL_FILE), b"not empty").unwrap();
        match DurableStore::open(&dir, PersistConfig::default()) {
            Err(PersistError::StrayJournal { len: 9 }) => {}
            other => panic!("unexpected result: {other:?}"),
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_on_open() {
        let dir = temp_store_dir();
        let (mut store, _) = DurableStore::open(&dir, PersistConfig::default()).unwrap();
        store.checkpoint(&tiny_image(0)).unwrap();
        store.append_chunk(&[Request::Tick(1)], false).unwrap();
        let committed = store.journal_len();
        drop(store);
        // Simulate a crash mid-append: half a frame of garbage-free bytes.
        let mut bytes = fs::read(dir.join(JOURNAL_FILE)).unwrap();
        bytes.extend_from_slice(&[7, 0, 0, 0, 1, 2]);
        fs::write(dir.join(JOURNAL_FILE), &bytes).unwrap();

        let (store, recovered) = DurableStore::open(&dir, PersistConfig::default()).unwrap();
        let recovered = recovered.unwrap();
        assert_eq!(recovered.torn_bytes_truncated, 6);
        assert_eq!(recovered.frames, vec![vec![Request::Tick(1)]]);
        assert_eq!(
            fs::metadata(dir.join(JOURNAL_FILE)).unwrap().len(),
            committed,
            "the torn tail must be physically truncated"
        );
        drop(store);
        fs::remove_dir_all(&dir).unwrap();
    }
}
