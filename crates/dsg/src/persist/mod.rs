//! Durability for [`DsgService`](crate::DsgService): a write-ahead request
//! journal plus periodic snapshot checkpoints, so a process crash loses
//! nothing the service acknowledged.
//!
//! # Why the engine needs this
//!
//! The paper's amortized argument *pays* for structure: every served
//! request may restructure the skip graph so that the access pattern's
//! working set sits close together. A process crash throws that investment
//! away — and with it the timestamps, group structure, and dummy
//! population that make the amortized accounting correct going forward.
//! PR 5 proved that replaying a request journal through a fresh,
//! identically-built session reproduces the structure bit for bit; this
//! module makes that journal (and a periodic snapshot of the engine)
//! durable, which turns the replay-determinism proof into crash recovery.
//!
//! # On-disk layout
//!
//! A store directory holds three kinds of file:
//!
//! * `journal.wal` — the append-only write-ahead journal. Each drained
//!   request chunk is one *frame*: `[len: u32 LE][crc: u32 LE][payload]`,
//!   where `crc` is the CRC-32 (IEEE) of the payload and the payload is
//!   the chunk's requests in submission order, prefixed by a count word.
//!   The count word's high bit records whether the chunk was served under
//!   a **brownout** verdict (overload degradation, PR 9), so crash replay
//!   degrades the admission gate identically; counts are far below 2³¹,
//!   and pre-brownout journals decode with the flag unset. Frames are
//!   appended and fsynced (per [`PersistConfig::fsync_every`]) **before**
//!   the engine applies the chunk — classic WAL ordering, so an
//!   acknowledged request is always on disk.
//! * `snap-<seq>.img` — snapshot checkpoints: a full serialized engine
//!   image ([`EngineImage`]) behind a CRC-checked wrapper. Snapshots are
//!   cut at epoch boundaries (the `EpochPhase::Idle` quiescent point), on
//!   a [`PersistConfig::snapshot_every`] cadence. The two most recent
//!   snapshots are retained.
//! * `MANIFEST` — the commit record: a small CRC-checked file binding
//!   `(snapshot seq, journal offset)` for the current snapshot and its
//!   predecessor. It is replaced atomically (write temp + fsync + rename +
//!   directory fsync), so the binding either advances completely or not at
//!   all.
//!
//! # Recovery contract
//!
//! [`DurableStore::open`] on an existing store loads the manifest, then
//! the newest snapshot that passes its checksum (falling back to the
//! retained predecessor if the newest is damaged), then scans the journal
//! from the snapshot's bound offset:
//!
//! * a **partial final frame** — the file ends before the frame's declared
//!   length — is a *torn tail* (the crash interrupted an append). It is
//!   detected, physically truncated, and never served. Nothing after a
//!   torn frame can exist, because appends are sequential.
//! * a **complete frame whose CRC mismatches** is *corruption* (a bit
//!   flip, not a tear) and is a typed, fatal
//!   [`PersistError::CorruptFrame`] — it is never applied, and recovery
//!   refuses to proceed past it silently.
//!
//! The surviving frames are replayed through `submit_batch` by
//! [`DsgService::open`](crate::DsgService::open), which then runs a deep
//! `validate()` before serving. `tests/crash_recovery.rs` proves the
//! resulting engine bit-identical to an uninterrupted twin for every
//! byte-boundary truncation of the journal tail and every `io.*`/apply
//! fail-point site.
//!
//! # Threading and failure model (mirrors `service.rs`)
//!
//! A [`DurableStore`] is owned by exactly one thread — the service's
//! ingest worker — and is never shared; all concurrency control lives in
//! the service's queue. Failure containment on the write path:
//!
//! * **append fails or panics** (`io.append`): the worker rolls the
//!   journal back to the last committed frame (`set_len`), fails the
//!   chunk's tickets with a typed error, and keeps serving — the engine
//!   was never called, so no state diverged. If the rollback itself fails
//!   the journal can no longer be trusted to match the engine, and the
//!   service poisons.
//! * **checkpoint fails or panics** (`io.snapshot`, `io.manifest`): the
//!   worker abandons the checkpoint (best-effort temp cleanup), counts it,
//!   and keeps serving under the previous manifest binding — a checkpoint
//!   is an optimization of recovery time, never a correctness requirement.

mod image;
mod journal;
mod store;

pub use image::{decode_snapshot, encode_snapshot, EngineImage, NodeImage};
pub use journal::{read_journal, read_journal_from, JournalScan, JOURNAL_FILE};
pub use store::{DurableStore, Recovered, MANIFEST_FILE};

use std::fmt;
use std::io;

/// Tuning for the durability layer, carried in
/// [`ServiceConfig::persist`](crate::ServiceConfig::persist).
///
/// The store *directory* is not part of this config — it is the first
/// argument of [`DsgService::open`](crate::DsgService::open), keeping the
/// config `Copy`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PersistConfig {
    /// Fsync the journal after every this-many appended frames. `1`
    /// (the default) fsyncs every frame before the engine applies it — the
    /// strict WAL guarantee the crash harness assumes. Larger values trade
    /// the durability of the last few acknowledged chunks for throughput;
    /// `0` never fsyncs explicitly (OS writeback only).
    pub fsync_every: u64,
    /// Cut a snapshot checkpoint every this-many served epochs (at the
    /// quiescent point after a drained batch). `0` disables periodic
    /// snapshots — recovery then replays the whole journal from the
    /// initial checkpoint.
    pub snapshot_every: u64,
}

impl Default for PersistConfig {
    fn default() -> Self {
        PersistConfig {
            fsync_every: 1,
            snapshot_every: 32,
        }
    }
}

impl PersistConfig {
    /// Returns the config with the journal fsync cadence replaced.
    pub fn with_fsync_every(mut self, frames: u64) -> Self {
        self.fsync_every = frames;
        self
    }

    /// Returns the config with the snapshot cadence replaced.
    pub fn with_snapshot_every(mut self, epochs: u64) -> Self {
        self.snapshot_every = epochs;
        self
    }
}

/// Typed errors of the durability layer.
///
/// `Clone + PartialEq + Eq` like [`DsgError`](crate::DsgError) (tickets
/// clone their error to every waiter), so I/O failures are carried as
/// `(operation, ErrorKind, message)` rather than as a live
/// [`std::io::Error`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PersistError {
    /// An I/O operation failed; `op` names it (`"append journal frame"`,
    /// `"rename manifest"`, …).
    Io {
        /// The failed operation.
        op: &'static str,
        /// The [`std::io::ErrorKind`] of the underlying error.
        kind: io::ErrorKind,
        /// The underlying error's message.
        message: String,
    },
    /// A *complete* journal frame failed its CRC or did not decode — on-disk
    /// corruption (not a torn write, which is truncated instead). The frame
    /// is never applied.
    CorruptFrame {
        /// Byte offset of the frame header in `journal.wal`.
        offset: u64,
        /// What failed.
        detail: String,
    },
    /// A snapshot file failed its checksum or did not decode.
    CorruptSnapshot {
        /// What failed.
        detail: String,
    },
    /// The manifest failed its checksum or did not decode.
    CorruptManifest {
        /// What failed.
        detail: String,
    },
    /// A non-empty journal exists without a manifest: the store directory
    /// is not a valid store, and cold-starting over it would silently
    /// discard data.
    StrayJournal {
        /// Length of the orphaned journal in bytes.
        len: u64,
    },
    /// The manifest binds a journal offset beyond the journal's end — the
    /// journal was truncated below its last checkpoint.
    ShortJournal {
        /// Actual journal length.
        len: u64,
        /// The manifest-bound replay offset.
        offset: u64,
    },
    /// A journal append panicked mid-write (a fail point in tests); the
    /// journal was rolled back to the last committed frame.
    AppendPanicked {
        /// The panic payload, if it was a string.
        detail: String,
    },
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io { op, kind, message } => {
                write!(f, "i/o error while trying to {op}: {message} ({kind:?})")
            }
            PersistError::CorruptFrame { offset, detail } => {
                write!(f, "corrupt journal frame at byte {offset}: {detail}")
            }
            PersistError::CorruptSnapshot { detail } => {
                write!(f, "corrupt snapshot: {detail}")
            }
            PersistError::CorruptManifest { detail } => {
                write!(f, "corrupt manifest: {detail}")
            }
            PersistError::StrayJournal { len } => write!(
                f,
                "a {len}-byte journal exists without a manifest; refusing to cold-start over it"
            ),
            PersistError::ShortJournal { len, offset } => write!(
                f,
                "the manifest binds journal offset {offset} but the journal is only {len} bytes"
            ),
            PersistError::AppendPanicked { detail } => {
                write!(f, "journal append panicked mid-frame: {detail}")
            }
        }
    }
}

impl std::error::Error for PersistError {}

impl PersistError {
    /// Wraps an [`io::Error`] with the name of the failed operation.
    pub(crate) fn io(op: &'static str, err: io::Error) -> Self {
        PersistError::Io {
            op,
            kind: err.kind(),
            message: err.to_string(),
        }
    }
}

// ----------------------------------------------------------------------
// Little-endian wire helpers shared by the frame and snapshot codecs.
// ----------------------------------------------------------------------

pub(crate) fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// A bounds-checked little-endian cursor; every read reports the same
/// opaque "ran out of bytes / malformed" unit error, which the caller maps
/// to the typed [`PersistError`] of its file format.
pub(crate) struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    pub(crate) fn u8(&mut self) -> Result<u8, ()> {
        let b = *self.buf.get(self.pos).ok_or(())?;
        self.pos += 1;
        Ok(b)
    }

    pub(crate) fn u32(&mut self) -> Result<u32, ()> {
        let bytes = self.bytes(4)?;
        Ok(u32::from_le_bytes(bytes.try_into().expect("4 bytes")))
    }

    pub(crate) fn u64(&mut self) -> Result<u64, ()> {
        let bytes = self.bytes(8)?;
        Ok(u64::from_le_bytes(bytes.try_into().expect("8 bytes")))
    }

    pub(crate) fn bytes(&mut self, len: usize) -> Result<&'a [u8], ()> {
        let end = self.pos.checked_add(len).ok_or(())?;
        let slice = self.buf.get(self.pos..end).ok_or(())?;
        self.pos = end;
        Ok(slice)
    }

    pub(crate) fn is_at_end(&self) -> bool {
        self.pos == self.buf.len()
    }
}
