//! The serialized engine image: everything
//! [`DynamicSkipGraph::restore_image`](crate::DynamicSkipGraph::restore_image)
//! needs to rebuild an engine that *behaves* identically to the captured
//! one.
//!
//! The image is deliberately **key-addressed**: nodes are stored in
//! ascending internal-key order and `NodeId`s are not serialized at all.
//! Every result-affecting path in the engine orders by key, prefix, or
//! level (`NodeId`-keyed containers are lookup-only), so a restore that
//! re-inserts nodes in key order — receiving fresh, dense ids — replays
//! the same behaviour bit for bit. The `tests/common` comparators are
//! key-based for the same reason.
//!
//! What must be captured *exactly*, beyond the obvious links and
//! membership vectors:
//!
//! * the raw per-node state vectors verbatim ([`NodeState::raw_parts`]):
//!   their stored *lengths* are observable (the unbounded common-group
//!   scan reads `stored_group_levels`), so trailing entries holding
//!   default values must survive;
//! * the logical clock — timestamps of future requests depend on it;
//! * the engine RNG's full internal state — replayed `Join` requests draw
//!   membership-vector bits from it, and recovery replays joins;
//! * the [`DsgConfig`] — the restored engine must plan with the captured
//!   `a`, seed, shard count, and strategies, not whatever the reopening
//!   process happens to pass.
//!
//! Run statistics and pooled scratch are deliberately *not* captured: they
//! restart at zero/empty, exactly like the metrics of a restarted process,
//! and nothing behavioural reads them.
//!
//! [`NodeState::raw_parts`]: crate::NodeState::raw_parts

use super::{put_u32, put_u64, PersistError, Reader};
use crate::config::{AdaptPolicy, DsgConfig, InstallStrategy, MedianStrategy, PolicyConfig};
use crate::policy::SketchImage;
use dsg_skipgraph::crc32::crc32;

/// Leading magic of a snapshot payload. Version 2 added the adaptation
/// policy: the `PolicyConfig` fields in the config section and an optional
/// frequency-sketch section (present exactly when the policy is gated).
/// Version bumps are deliberate incompatibilities — the decoder rejects
/// other versions rather than guessing at field layouts.
const MAGIC: &[u8; 8] = b"DSGSNAP2";

/// A serializable image of one graph node (peer or dummy) and its
/// self-adjusting state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeImage {
    /// The node's *internal* key (peer keys are spaced by `KEY_SPACING`;
    /// dummies sit in between).
    pub key: u64,
    /// Whether the node is a routing-only dummy.
    pub dummy: bool,
    /// Membership-vector bits for levels `1..=len`, one `0`/`1` byte each.
    pub mvec_bits: Vec<u8>,
    /// The state's group-base `B^x`.
    pub group_base: u64,
    /// Raw stored timestamp vector, length preserved verbatim.
    pub timestamps: Vec<u64>,
    /// Raw stored group-id vector, length preserved verbatim.
    pub group_ids: Vec<u64>,
    /// Raw stored dominating-flag vector, length preserved verbatim.
    pub dominating: Vec<bool>,
}

/// A full serialized engine: the payload of a snapshot checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineImage {
    /// The engine configuration at capture time.
    pub config: DsgConfig,
    /// The logical clock at capture time.
    pub time: u64,
    /// The engine RNG's internal state (xoshiro256++ words).
    pub rng_state: [u64; 4],
    /// Every live node in ascending internal-key order.
    pub nodes: Vec<NodeImage>,
    /// The adaptation-policy frequency sketch, captured exactly when the
    /// config's policy is gated — restart-replay must resume admission
    /// decisions from the same counters, or replayed epochs could gate
    /// differently than the original run did.
    pub sketch: Option<SketchImage>,
}

fn median_tag(m: MedianStrategy) -> u8 {
    match m {
        MedianStrategy::Amf => 0,
        MedianStrategy::Exact => 1,
    }
}

fn install_tag(i: InstallStrategy) -> u8 {
    match i {
        InstallStrategy::Batched => 0,
        InstallStrategy::PerNode => 1,
    }
}

fn policy_tag(p: AdaptPolicy) -> u8 {
    match p {
        AdaptPolicy::Always => 0,
        AdaptPolicy::Gated => 1,
    }
}

/// Encodes an image into the checkpoint payload (magic-led, CRC applied by
/// the file wrapper in the store).
pub fn encode_snapshot(image: &EngineImage) -> Vec<u8> {
    let mut buf = Vec::with_capacity(64 + image.nodes.len() * 64);
    buf.extend_from_slice(MAGIC);
    put_u64(&mut buf, image.config.a as u64);
    buf.push(median_tag(image.config.median));
    put_u64(&mut buf, image.config.seed);
    buf.push(image.config.maintain_balance as u8);
    buf.push(install_tag(image.config.install));
    put_u64(&mut buf, image.config.shards as u64);
    buf.push(image.config.adaptive_flush as u8);
    buf.push(policy_tag(image.config.policy.policy));
    put_u32(&mut buf, image.config.policy.threshold);
    put_u32(&mut buf, image.config.policy.epoch_budget);
    put_u64(&mut buf, image.config.policy.aging_period);
    match &image.sketch {
        Some(sketch) => {
            buf.push(1);
            sketch.encode(&mut buf);
        }
        None => buf.push(0),
    }
    put_u64(&mut buf, image.time);
    for word in image.rng_state {
        put_u64(&mut buf, word);
    }
    put_u64(&mut buf, image.nodes.len() as u64);
    for node in &image.nodes {
        put_u64(&mut buf, node.key);
        buf.push(node.dummy as u8);
        put_u32(&mut buf, node.mvec_bits.len() as u32);
        buf.extend_from_slice(&node.mvec_bits);
        put_u64(&mut buf, node.group_base);
        put_u32(&mut buf, node.timestamps.len() as u32);
        for &t in &node.timestamps {
            put_u64(&mut buf, t);
        }
        put_u32(&mut buf, node.group_ids.len() as u32);
        for &g in &node.group_ids {
            put_u64(&mut buf, g);
        }
        put_u32(&mut buf, node.dominating.len() as u32);
        buf.extend(node.dominating.iter().map(|&d| d as u8));
    }
    buf
}

fn corrupt(detail: &str) -> PersistError {
    PersistError::CorruptSnapshot {
        detail: detail.to_string(),
    }
}

/// Decodes a checkpoint payload back into an [`EngineImage`].
///
/// # Errors
///
/// Returns [`PersistError::CorruptSnapshot`] on any structural problem:
/// bad magic, truncated payload, invalid tags, out-of-order keys, or
/// trailing bytes.
pub fn decode_snapshot(bytes: &[u8]) -> Result<EngineImage, PersistError> {
    let mut r = Reader::new(bytes);
    if r.bytes(MAGIC.len())
        .map_err(|_| corrupt("truncated magic"))?
        != MAGIC
    {
        return Err(corrupt("bad magic"));
    }
    let short = |_| corrupt("payload ran out of bytes");
    let a = r.u64().map_err(short)? as usize;
    let median = match r.u8().map_err(short)? {
        0 => MedianStrategy::Amf,
        1 => MedianStrategy::Exact,
        tag => return Err(corrupt(&format!("unknown median strategy tag {tag}"))),
    };
    let seed = r.u64().map_err(short)?;
    let maintain_balance = match r.u8().map_err(short)? {
        0 => false,
        1 => true,
        tag => return Err(corrupt(&format!("bad maintain_balance byte {tag}"))),
    };
    let install = match r.u8().map_err(short)? {
        0 => InstallStrategy::Batched,
        1 => InstallStrategy::PerNode,
        tag => return Err(corrupt(&format!("unknown install strategy tag {tag}"))),
    };
    let shards = r.u64().map_err(short)? as usize;
    let adaptive_flush = match r.u8().map_err(short)? {
        0 => false,
        1 => true,
        tag => return Err(corrupt(&format!("bad adaptive_flush byte {tag}"))),
    };
    let policy = match r.u8().map_err(short)? {
        0 => AdaptPolicy::Always,
        1 => AdaptPolicy::Gated,
        tag => return Err(corrupt(&format!("unknown adapt policy tag {tag}"))),
    };
    let threshold = r.u32().map_err(short)?;
    let epoch_budget = r.u32().map_err(short)?;
    let aging_period = r.u64().map_err(short)?;
    if aging_period == 0 {
        return Err(corrupt("zero sketch aging period"));
    }
    let sketch = match r.u8().map_err(short)? {
        0 => None,
        1 => Some(
            SketchImage::decode(&mut r)
                .map_err(|_| corrupt("malformed frequency-sketch section"))?,
        ),
        tag => return Err(corrupt(&format!("bad sketch-present byte {tag}"))),
    };
    if a < 2 {
        return Err(corrupt(&format!("balance parameter a = {a} below 2")));
    }
    if shards == 0 {
        return Err(corrupt("zero plan shards"));
    }
    let config = DsgConfig {
        a,
        median,
        seed,
        maintain_balance,
        install,
        shards,
        adaptive_flush,
        policy: PolicyConfig {
            policy,
            threshold,
            epoch_budget,
            aging_period,
        },
    };
    let time = r.u64().map_err(short)?;
    let mut rng_state = [0u64; 4];
    for word in &mut rng_state {
        *word = r.u64().map_err(short)?;
    }
    let count = r.u64().map_err(short)?;
    if count > bytes.len() as u64 {
        // Each node occupies well over one byte; a count beyond the
        // payload length is corruption, caught before the allocation.
        return Err(corrupt(&format!("implausible node count {count}")));
    }
    let mut nodes = Vec::with_capacity(count as usize);
    let mut last_key: Option<u64> = None;
    for _ in 0..count {
        let key = r.u64().map_err(short)?;
        if let Some(prev) = last_key {
            if key <= prev {
                return Err(corrupt(&format!(
                    "node keys out of order: {key} after {prev}"
                )));
            }
        }
        last_key = Some(key);
        let dummy = match r.u8().map_err(short)? {
            0 => false,
            1 => true,
            tag => return Err(corrupt(&format!("bad dummy byte {tag}"))),
        };
        let mvec_len = r.u32().map_err(short)? as usize;
        let mvec_bits = r.bytes(mvec_len).map_err(short)?.to_vec();
        if mvec_bits.iter().any(|&b| b > 1) {
            return Err(corrupt("membership-vector byte is not 0/1"));
        }
        let group_base = r.u64().map_err(short)?;
        let ts_len = r.u32().map_err(short)? as usize;
        let mut timestamps = Vec::with_capacity(ts_len.min(bytes.len()));
        for _ in 0..ts_len {
            timestamps.push(r.u64().map_err(short)?);
        }
        let gid_len = r.u32().map_err(short)? as usize;
        let mut group_ids = Vec::with_capacity(gid_len.min(bytes.len()));
        for _ in 0..gid_len {
            group_ids.push(r.u64().map_err(short)?);
        }
        let dom_len = r.u32().map_err(short)? as usize;
        let dom_bytes = r.bytes(dom_len).map_err(short)?;
        if dom_bytes.iter().any(|&b| b > 1) {
            return Err(corrupt("dominating byte is not 0/1"));
        }
        let dominating = dom_bytes.iter().map(|&b| b == 1).collect();
        nodes.push(NodeImage {
            key,
            dummy,
            mvec_bits,
            group_base,
            timestamps,
            group_ids,
            dominating,
        });
    }
    if !r.is_at_end() {
        return Err(corrupt("trailing bytes after the last node"));
    }
    Ok(EngineImage {
        config,
        time,
        rng_state,
        nodes,
        sketch,
    })
}

/// Wraps a payload in the CRC-checked file envelope shared by snapshot and
/// manifest files: `[len: u64 LE][crc32: u32 LE][payload]`.
pub(crate) fn wrap_file(payload: &[u8]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(12 + payload.len());
    put_u64(&mut buf, payload.len() as u64);
    put_u32(&mut buf, crc32(payload));
    buf.extend_from_slice(payload);
    buf
}

/// Unwraps and verifies the file envelope written by [`wrap_file`],
/// reporting failures through `make_err` (snapshot vs manifest flavour).
pub(crate) fn unwrap_file(
    bytes: &[u8],
    make_err: impl Fn(&str) -> PersistError,
) -> Result<&[u8], PersistError> {
    let mut r = Reader::new(bytes);
    let len = r.u64().map_err(|_| make_err("missing length header"))?;
    let crc = r.u32().map_err(|_| make_err("missing checksum header"))?;
    let payload = r
        .bytes(len as usize)
        .map_err(|_| make_err("payload shorter than its declared length"))?;
    if !r.is_at_end() {
        return Err(make_err("trailing bytes after the payload"));
    }
    if crc32(payload) != crc {
        return Err(make_err("checksum mismatch"));
    }
    Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_image() -> EngineImage {
        EngineImage {
            config: DsgConfig::default()
                .with_seed(0xFEED)
                .with_shards(4)
                .with_adaptive_flush(true),
            time: 421,
            rng_state: [1, 2, 3, u64::MAX],
            nodes: vec![
                NodeImage {
                    key: 1 << 20,
                    dummy: false,
                    mvec_bits: vec![0, 1, 1],
                    group_base: 3,
                    timestamps: vec![0, 7, 9],
                    group_ids: vec![5, 5, 1 << 20],
                    dominating: vec![true, false],
                },
                NodeImage {
                    key: (1 << 20) + 17,
                    dummy: true,
                    mvec_bits: vec![1],
                    group_base: 1,
                    timestamps: Vec::new(),
                    group_ids: Vec::new(),
                    dominating: Vec::new(),
                },
            ],
            sketch: None,
        }
    }

    #[test]
    fn snapshot_round_trips() {
        let image = sample_image();
        let bytes = encode_snapshot(&image);
        assert_eq!(decode_snapshot(&bytes).unwrap(), image);
    }

    #[test]
    fn gated_snapshot_round_trips_with_sketch() {
        use crate::policy::{FreqSketch, SKETCH_ROWS, SKETCH_WIDTH};
        let mut image = sample_image();
        image.config = image.config.with_policy(
            PolicyConfig::gated()
                .with_threshold(5)
                .with_epoch_budget(2)
                .with_aging_period(512),
        );
        let mut sketch = FreqSketch::new(image.config.seed, 512);
        for i in 0..40u64 {
            sketch.stage_increment(FreqSketch::pair_key(i % 5, 7 + i % 3));
        }
        sketch.commit();
        image.sketch = Some(sketch.to_image());
        let bytes = encode_snapshot(&image);
        let decoded = decode_snapshot(&bytes).unwrap();
        assert_eq!(decoded, image);
        assert_eq!(
            decoded.sketch.as_ref().unwrap().counters.len(),
            SKETCH_ROWS * SKETCH_WIDTH
        );
    }

    #[test]
    fn version_1_snapshots_are_rejected() {
        let mut bytes = encode_snapshot(&sample_image());
        bytes[..8].copy_from_slice(b"DSGSNAP1");
        assert!(matches!(
            decode_snapshot(&bytes),
            Err(PersistError::CorruptSnapshot { .. })
        ));
    }

    #[test]
    fn truncations_and_trailing_bytes_are_rejected() {
        let bytes = encode_snapshot(&sample_image());
        for cut in [0, 4, MAGIC.len(), bytes.len() - 1] {
            assert!(
                matches!(
                    decode_snapshot(&bytes[..cut]),
                    Err(PersistError::CorruptSnapshot { .. })
                ),
                "cut at {cut} must be rejected"
            );
        }
        let mut longer = bytes.clone();
        longer.push(0);
        assert!(matches!(
            decode_snapshot(&longer),
            Err(PersistError::CorruptSnapshot { .. })
        ));
    }

    #[test]
    fn out_of_order_keys_are_rejected() {
        let mut image = sample_image();
        image.nodes.swap(0, 1);
        assert!(matches!(
            decode_snapshot(&encode_snapshot(&image)),
            Err(PersistError::CorruptSnapshot { .. })
        ));
    }

    #[test]
    fn file_envelope_detects_bit_flips() {
        let payload = encode_snapshot(&sample_image());
        let file = wrap_file(&payload);
        let make = |d: &str| PersistError::CorruptSnapshot {
            detail: d.to_string(),
        };
        assert_eq!(unwrap_file(&file, make).unwrap(), &payload[..]);
        for byte in [12usize, file.len() / 2, file.len() - 1] {
            let mut bad = file.clone();
            bad[byte] ^= 0x40;
            assert!(
                unwrap_file(&bad, make).is_err(),
                "flip at byte {byte} went undetected"
            );
        }
    }
}
