//! Configuration of the self-adjusting algorithm.

/// Which median finder the transformation uses (paper §IV-C step 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MedianStrategy {
    /// The paper's distributed approximate median finding algorithm (AMF,
    /// §V): randomised, `O(log n)` expected rounds, rank error within
    /// `n/2 ± n/2a` (Lemma 1).
    #[default]
    Amf,
    /// An exact median oracle. Deterministic and useful for unit tests and
    /// as an ablation baseline (experiment E11); charged an idealised
    /// `⌈log₂ n⌉` rounds.
    Exact,
}

/// How the transformation's new membership vectors are installed into the
/// skip graph substrate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum InstallStrategy {
    /// Differential batched install: only the members whose vector actually
    /// changes are touched; the changed `(node, level)` pairs are grouped
    /// by target list and each affected list is relinked in one ordered
    /// splice pass
    /// ([`SkipGraph::apply_membership_batch`](dsg_skipgraph::SkipGraph::apply_membership_batch)).
    #[default]
    Batched,
    /// One
    /// [`set_membership_suffix`](dsg_skipgraph::SkipGraph::set_membership_suffix)
    /// call per member of `l_α` — the naive reference path, kept for the
    /// differential agreement tests and as an ablation baseline. Observably
    /// identical to [`InstallStrategy::Batched`], just Θ(n · height) per
    /// request.
    PerNode,
}

/// Whether the engine restructures on every communicate (the paper's
/// unconditional rule) or consults the adaptation policy first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AdaptPolicy {
    /// Restructure on every communicate, unconditionally — the paper's
    /// amortized rule and the engine's historical behaviour. With this
    /// policy no sketch is allocated and the engine is bit-identical to
    /// the pre-policy engine (`tests/policy_gate.rs` pins this).
    #[default]
    Always,
    /// Sketch-fed TinyLFU-style admission: pairs whose count-min estimate
    /// clears [`PolicyConfig::threshold`] restructure eagerly; cold pairs
    /// route without restructuring, beyond a per-epoch budget of
    /// [`PolicyConfig::epoch_budget`] cold restructures.
    Gated,
}

/// Tuning for the adaptation policy subsystem
/// ([`policy`](crate::policy) module). Carried on [`DsgConfig`] so it is
/// serialized with the engine image and identical across replay twins.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PolicyConfig {
    /// The admission mode. Default [`AdaptPolicy::Always`] (gate off).
    pub policy: AdaptPolicy,
    /// Minimum count-min estimate for a cluster to be judged hot — on an
    /// exact pair repeat, on both endpoints being individually hot (the
    /// community signal), or scaled by subtree size for the amortization
    /// signal (see [`policy::admission`](crate::policy::admission)).
    /// Judged *after* the epoch's own occurrences are staged, so
    /// `threshold = 2` means "seen at least twice recently".
    pub threshold: u32,
    /// Cold-cluster restructures admitted per epoch before gating. Zero
    /// (the default) gates every cold cluster — the strictest setting,
    /// and the one that realises the uniform-traffic win, since
    /// sequential traffic forms single-pair epochs that a budget of even
    /// 1 would wave through.
    pub epoch_budget: u32,
    /// Sketch key-updates between counter-halving passes. Each request
    /// stages four key updates (pair + both endpoints + `l_α` prefix),
    /// so the default 4096 ages roughly every 1024 requests. Must stay
    /// well below `SKETCH_ROWS × SKETCH_WIDTH` cell capacity — a period
    /// that outruns the sketch width drives per-cell load past the
    /// threshold and the gate admits everything (fails open).
    pub aging_period: u64,
}

impl Default for PolicyConfig {
    fn default() -> Self {
        PolicyConfig {
            policy: AdaptPolicy::default(),
            threshold: 2,
            epoch_budget: 0,
            aging_period: 4096,
        }
    }
}

impl PolicyConfig {
    /// A gated policy with the default threshold, budget, and aging.
    pub fn gated() -> Self {
        PolicyConfig {
            policy: AdaptPolicy::Gated,
            ..PolicyConfig::default()
        }
    }

    /// Sets the hotness threshold.
    pub fn with_threshold(mut self, threshold: u32) -> Self {
        self.threshold = threshold;
        self
    }

    /// Sets the per-epoch cold-restructure budget.
    pub fn with_epoch_budget(mut self, budget: u32) -> Self {
        self.epoch_budget = budget;
        self
    }

    /// Sets the sketch aging period (key updates between halvings).
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    pub fn with_aging_period(mut self, period: u64) -> Self {
        assert!(period > 0, "the sketch aging period must be positive");
        self.aging_period = period;
        self
    }
}

/// Configuration for a [`DynamicSkipGraph`](crate::DynamicSkipGraph).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DsgConfig {
    /// The balance parameter `a` of the a-balance property (§III). The
    /// search path between any pair is at most `a · log n`; dummy nodes are
    /// inserted to repair runs longer than `a`.
    pub a: usize,
    /// Median strategy used by every per-level split.
    pub median: MedianStrategy,
    /// Seed for all randomised components (AMF skip lists, initial
    /// membership vectors), making runs reproducible.
    pub seed: u64,
    /// Whether to re-check and repair the a-balance property after every
    /// transformation (§IV-F). Disabling it is an ablation knob for
    /// experiment E10.
    pub maintain_balance: bool,
    /// How new membership vectors are installed after a transformation.
    pub install: InstallStrategy,
    /// Worker shards for the *plan* stages of an epoch (≥ 1). With `k > 1`,
    /// the disjoint clusters of an epoch are planned concurrently on up to
    /// `k` threads (and the dummy-reconciliation detection scan of a single
    /// big cluster is chunked across them); all plans are then applied by
    /// the main thread in submission order. Results are bit-for-bit
    /// identical for every shard count — the planning reads are snapshots
    /// and every random draw is derived per cluster, not from a shared
    /// stream (`tests/shard_equivalence.rs` proves it).
    pub shards: usize,
    /// Opt-in adaptive epoch flush: when the previous epoch collapsed into
    /// a single cluster (total subtree overlap — nothing left for the plan
    /// shards to parallelise), the session caps the next epoch at
    /// `4 · shards` pairs instead of the full
    /// [`MAX_EPOCH_PAIRS`](crate::transform::MAX_EPOCH_PAIRS), restoring
    /// the full cap as soon as an epoch splits into ≥ 2 clusters again.
    /// Off by default (fixed caller-driven epoch boundaries).
    pub adaptive_flush: bool,
    /// The adaptation policy: whether (and how) the frequency-sketch
    /// admission gate decides which communicates earn a restructure.
    /// Default off ([`AdaptPolicy::Always`]).
    pub policy: PolicyConfig,
}

impl Default for DsgConfig {
    fn default() -> Self {
        DsgConfig {
            a: 3,
            median: MedianStrategy::default(),
            seed: 0xD56,
            maintain_balance: true,
            install: InstallStrategy::default(),
            shards: 1,
            adaptive_flush: false,
            policy: PolicyConfig::default(),
        }
    }
}

impl DsgConfig {
    /// Sets the balance parameter `a`.
    ///
    /// # Panics
    ///
    /// Panics if `a < 2`: the AMF support window `[a/2, 2a]` and the
    /// a-balance property both degenerate below 2.
    pub fn with_a(mut self, a: usize) -> Self {
        assert!(a >= 2, "the balance parameter a must be at least 2");
        self.a = a;
        self
    }

    /// Selects the median strategy.
    pub fn with_median(mut self, median: MedianStrategy) -> Self {
        self.median = median;
        self
    }

    /// Sets the random seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Enables or disables a-balance maintenance (dummy nodes).
    pub fn with_balance_maintenance(mut self, on: bool) -> Self {
        self.maintain_balance = on;
        self
    }

    /// Selects the membership-vector install strategy.
    pub fn with_install(mut self, install: InstallStrategy) -> Self {
        self.install = install;
        self
    }

    /// Sets the plan-stage worker shard count.
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0`; prefer the validating
    /// `DsgSession::builder().shards(..)` path, which errors instead.
    pub fn with_shards(mut self, shards: usize) -> Self {
        assert!(shards >= 1, "the plan stage needs at least one shard");
        self.shards = shards;
        self
    }

    /// Enables or disables the adaptive epoch flush.
    pub fn with_adaptive_flush(mut self, on: bool) -> Self {
        self.adaptive_flush = on;
        self
    }

    /// Sets the adaptation policy (sketch-fed admission gate).
    pub fn with_policy(mut self, policy: PolicyConfig) -> Self {
        self.policy = policy;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_sensible() {
        let c = DsgConfig::default();
        assert!(c.a >= 2);
        assert_eq!(c.median, MedianStrategy::Amf);
        assert!(c.maintain_balance);
    }

    #[test]
    fn builder_methods_compose() {
        let c = DsgConfig::default()
            .with_a(4)
            .with_median(MedianStrategy::Exact)
            .with_seed(9)
            .with_balance_maintenance(false);
        assert_eq!(c.a, 4);
        assert_eq!(c.median, MedianStrategy::Exact);
        assert_eq!(c.seed, 9);
        assert!(!c.maintain_balance);
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn tiny_a_is_rejected() {
        let _ = DsgConfig::default().with_a(1);
    }

    #[test]
    fn policy_defaults_to_off() {
        let c = DsgConfig::default();
        assert_eq!(c.policy.policy, AdaptPolicy::Always);
        let gated = PolicyConfig::gated()
            .with_threshold(3)
            .with_epoch_budget(1)
            .with_aging_period(128);
        let c = c.with_policy(gated);
        assert_eq!(c.policy.policy, AdaptPolicy::Gated);
        assert_eq!(c.policy.threshold, 3);
        assert_eq!(c.policy.epoch_budget, 1);
        assert_eq!(c.policy.aging_period, 128);
    }

    #[test]
    #[should_panic(expected = "aging period must be positive")]
    fn zero_aging_period_is_rejected() {
        let _ = PolicyConfig::gated().with_aging_period(0);
    }
}
