//! [`DsgService`]: a fault-contained concurrent ingest front-end over a
//! [`DsgSession`], with backpressure, fail-point-testable fault
//! containment, and a self-auditing epoch pipeline.
//!
//! A service moves a session onto a dedicated **ingest thread** behind a
//! bounded request queue. Any number of producer threads call
//! [`submit`](DsgService::submit) (non-blocking; a full queue is a typed
//! [`SubmitError::Overloaded`]) or
//! [`submit_deadline`](DsgService::submit_deadline) (blocks for queue
//! space up to a deadline; a typed [`SubmitError::Timeout`] after). Each
//! submission returns a [`Ticket`] that resolves — always, on every code
//! path — with that request's individual result. The ingest thread drains
//! the queue in arrival order and serves the drained runs through
//! [`DsgSession::submit_batch`], so requests are epoch-batched exactly as
//! a single-threaded caller's batches would be (including the adaptive
//! flush, when configured); with
//! [`record_journal`](ServiceConfig::record_journal) the exact chunk
//! sequence is kept, and replaying it through a fresh session reproduces
//! the final structure bit for bit.
//!
//! # Robustness model
//!
//! Three failure classes are contained, each with a distinct blast radius:
//!
//! * **Malformed requests** (unknown peers, duplicate joins, leaves of
//!   absent peers, self-communication) are validated *per request* against
//!   the engine's membership — including membership changes queued earlier
//!   in the same drained run — and fail only their own ticket with the
//!   engine's typed [`DsgError`]. The rest of the run is served normally.
//! * **Plan-stage faults**: a panic caught while the engine's
//!   [`EpochPhase`] marker says `Planning` (or `Idle`) struck inside the
//!   pure-read plan stage, so the structure is bit-for-bit untouched. The
//!   epoch is abandoned *before any apply*: its tickets resolve with
//!   [`DsgError::EpochAborted`] (resubmittable) and the service keeps
//!   serving.
//! * **Apply-stage faults**: a panic caught while the marker says
//!   `Applying` may have left the structure half-mutated. The service
//!   **poisons** itself: every in-flight and queued ticket resolves with
//!   [`DsgError::EnginePoisoned`] (nothing hangs), new submissions are
//!   rejected with [`SubmitError::Poisoned`], and only the opt-in
//!   [`recover`](DsgService::recover) — which rebuilds the graph from the
//!   surviving per-peer state and deep-validates the result — resumes
//!   service.
//!
//! The **tiered auditor** guards against silent corruption: after every
//! served run the engine's incremental
//! [`validate_fast`](crate::DynamicSkipGraph::validate_fast) re-checks the
//! lists the last epoch's install touched, and every
//! [`deep_audit_every`](ServiceConfig::deep_audit_every) epochs a full
//! `validate()` sweeps the entire structure. Audit results are published
//! as [`AuditEvent`]s to the session's observers; a failed audit degrades
//! the service to the poisoned state, funnelling it into the same
//! recovery path as an apply-stage fault.
//!
//! The fault paths are exercised deterministically through the named
//! fail-point sites of [`dsg_skipgraph::failpoint`] (re-exported as
//! `dsg::failpoint`): `plan.worker`, `apply.splice`, `dummy.pass0`, this
//! module's `ingest.loop`, and the durability layer's `io.append`,
//! `io.snapshot`, and `io.manifest`.
//!
//! # Durability
//!
//! With [`ServiceConfig::persist`] set, the service is opened through
//! [`DsgService::open`] over a store directory (see
//! [`persist`](crate::persist) for the on-disk layout). The worker then
//! appends every drained chunk to the write-ahead journal — and, per
//! [`PersistConfig::fsync_every`], fsyncs it — **before** the engine
//! applies it, so an acknowledged request is always on disk. Snapshot
//! checkpoints are cut at the quiescent point after a served run every
//! [`PersistConfig::snapshot_every`] epochs. On the next
//! [`open`](DsgService::open), the newest valid snapshot is restored, a
//! torn journal tail is truncated, the surviving suffix is replayed, and
//! the result is deep-validated — `tests/crash_recovery.rs` proves it
//! bit-identical to an uninterrupted twin for every fail-point site and
//! every byte-boundary truncation of the journal tail.
//!
//! Durability failures are contained like engine faults: a failed or
//! panicked append rolls the journal back to the last committed frame,
//! fails only that run's tickets with [`DsgError::Persist`], and keeps
//! serving (if the rollback itself fails, the journal no longer matches
//! the engine and the service poisons); a failed checkpoint is abandoned
//! and counted, and the store keeps serving under the previous manifest
//! binding.
//!
//! # Overload model
//!
//! With [`ServiceConfig::overload`] set, a CoDel-style controller (see
//! [`overload`](crate::overload)) watches the queue sojourn of every
//! drained request and degrades service in two typed, observable steps
//! instead of letting latency grow without bound: **brownout** — chunks
//! are served with the admission gate degraded to route-only verdicts for
//! cold traffic, and the verdict is journaled inside each WAL frame so
//! crash replay stays bit-identical — and **shedding** — new submissions
//! are refused with [`SubmitError::Shed`] and a retry-after hint, over
//! which [`submit_retry`](DsgService::submit_retry) backs off with
//! jittered exponential delays. Submissions may carry a deadline
//! ([`submit_with_deadline`](DsgService::submit_with_deadline)); a
//! request whose deadline expired while queued is shed at drain time,
//! *before* the journal and the engine pay for it, resolving its ticket
//! with [`DsgError::DeadlineExceeded`]. The ingest loop stamps a
//! per-stage heartbeat, and a watchdog thread reports a stage stuck
//! longer than [`OverloadConfig::stall_after`] through
//! [`DsgObserver::on_stall`](crate::DsgObserver::on_stall) — so a hang is
//! an *event*, not a silently blocked producer. With the config unset
//! (the default) none of this machinery runs and the service behaves
//! bit-identically to the overload-unaware service.
//!
//! # Threading model
//!
//! One ingest thread owns the session; producers only touch the bounded
//! queue (a `Mutex<VecDeque>` with two condvars — `std::sync` only) and
//! their tickets. Everything the engine does therefore stays serialized,
//! and the plan-stage worker shards of the session remain scoped *inside*
//! an epoch — the service adds concurrency at the boundary, never inside
//! the pipeline, which is why the determinism guarantees of
//! [`DsgSession`] carry over verbatim. [`shutdown`](DsgService::shutdown)
//! closes the queue and, per [`ShutdownPolicy`], either drains the backlog
//! or resolves it with [`DsgError::ShuttingDown`]; dropping the service
//! does the same and joins the thread either way.
//!
//! # Example
//!
//! ```rust
//! use dsg::prelude::*;
//!
//! # fn main() -> Result<(), DsgError> {
//! let session = DsgSession::builder().peers(0..32).seed(7).build()?;
//! let mut service = DsgService::spawn(session, ServiceConfig::default())?;
//!
//! let ticket = service.submit(Request::communicate(3, 29)).unwrap();
//! let outcome = ticket.wait()?;
//! assert!(outcome.request_outcome().is_some());
//!
//! let done = service.shutdown()?;
//! assert!(done.session.engine().validate().is_ok());
//! # Ok(())
//! # }
//! ```

use std::any::Any;
use std::collections::{HashMap, VecDeque};
use std::panic::{self, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use dsg_skipgraph::failpoint;

use crate::dsg::{DynamicSkipGraph, EpochPhase, RecoveryReport};
use crate::error::DsgError;
use crate::observer::{AuditEvent, OverloadEvent, SharedObserver, StallEvent};
use crate::overload::{OverloadConfig, OverloadController, OverloadTransition, RetryPolicy};
use crate::persist::{read_journal_from, DurableStore, PersistConfig, PersistError};
use crate::request::Request;
use crate::session::{DsgBuilder, DsgSession, SubmitOutcome};

/// What to do with requests still queued when the service shuts down.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShutdownPolicy {
    /// Serve the backlog before exiting (every queued ticket resolves with
    /// its real result).
    #[default]
    Drain,
    /// Drop the backlog: every queued ticket resolves with
    /// [`DsgError::ShuttingDown`] without being served.
    Abort,
}

/// Configuration of a [`DsgService`]. Plain data; start from
/// [`ServiceConfig::default`] and override fields.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceConfig {
    /// Capacity of the bounded ingest queue (≥ 1). A full queue rejects
    /// [`submit`](DsgService::submit) with [`SubmitError::Overloaded`] and
    /// blocks [`submit_deadline`](DsgService::submit_deadline).
    pub queue_capacity: usize,
    /// Most requests the ingest thread drains into one
    /// [`DsgSession::submit_batch`] run (≥ 1). The session still splits
    /// runs into epochs by its own rules; this only bounds per-run latency.
    pub ingest_batch: usize,
    /// Run a full deep `validate()` every this many epochs (the fast
    /// incremental audit runs after every served run regardless). 0
    /// disables the deep tier.
    pub deep_audit_every: u64,
    /// Keep the exact chunk sequence handed to `submit_batch`, returned by
    /// [`shutdown`](DsgService::shutdown) for deterministic replay. With
    /// persistence on this is a redundant in-memory oracle — the durable
    /// journal is the source of truth — kept for cross-checking.
    pub record_journal: bool,
    /// What happens to the queued backlog on shutdown or drop.
    pub shutdown: ShutdownPolicy,
    /// Durability tuning. `Some` services must be opened through
    /// [`DsgService::open`] (which supplies the store directory);
    /// [`spawn`](DsgService::spawn) refuses the combination so a
    /// configured journal can never be silently dropped.
    pub persist: Option<PersistConfig>,
    /// Overload-control tuning (sojourn controller, brownout, shedding,
    /// and the stall watchdog). `None` (the default) disables the layer
    /// entirely — no controller, no watchdog thread, behaviour
    /// bit-identical to the overload-unaware service.
    pub overload: Option<OverloadConfig>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            queue_capacity: 256,
            ingest_batch: 64,
            deep_audit_every: 32,
            record_journal: false,
            shutdown: ShutdownPolicy::Drain,
            persist: None,
            overload: None,
        }
    }
}

impl ServiceConfig {
    /// Returns the config with overload control enabled under `overload`.
    pub fn with_overload(mut self, overload: OverloadConfig) -> Self {
        self.overload = Some(overload);
        self
    }
}

/// Why a submission was not accepted onto the queue. Queue-admission
/// errors only — a ticket that *was* accepted reports its request's fate
/// through [`Ticket::wait`] as a [`DsgError`] instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The bounded queue is full; retry later or use
    /// [`submit_deadline`](DsgService::submit_deadline).
    Overloaded,
    /// No queue space appeared before the deadline.
    Timeout,
    /// The service is shutting down and accepts no new requests.
    ShuttingDown,
    /// The engine is poisoned by an apply-stage fault;
    /// [`recover`](DsgService::recover) first.
    Poisoned,
    /// The overload controller is shedding: the queue sojourn exceeded
    /// [`OverloadConfig::shed_target`], so admitting more work would only
    /// let it expire unserved. Retry after the hint (or use
    /// [`submit_retry`](DsgService::submit_retry), which backs off over
    /// this automatically).
    Shed {
        /// How long the service suggests waiting before retrying.
        retry_after: Duration,
    },
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Overloaded => write!(f, "the ingest queue is full"),
            SubmitError::Timeout => write!(f, "no queue space appeared before the deadline"),
            SubmitError::ShuttingDown => write!(f, "the service is shutting down"),
            SubmitError::Poisoned => {
                write!(
                    f,
                    "the engine is poisoned by an apply-stage fault; recover() first"
                )
            }
            SubmitError::Shed { retry_after } => {
                write!(
                    f,
                    "the service is shedding load; retry in {retry_after:?} or later"
                )
            }
        }
    }
}

impl std::error::Error for SubmitError {}

/// A snapshot of the service's counters (all maintained with relaxed
/// atomics; exact once the service is shut down).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServiceMetrics {
    /// Requests accepted onto the queue.
    pub submitted: u64,
    /// Submissions rejected because the queue was full
    /// ([`SubmitError::Overloaded`]).
    pub rejected_overload: u64,
    /// Blocking submissions that timed out waiting for queue space.
    pub submit_timeouts: u64,
    /// Transformation epochs the served runs formed.
    pub epochs: u64,
    /// Ingest runs served (each one `submit_batch` call).
    pub batches: u64,
    /// High-water mark of the queue depth.
    pub max_queue_depth: usize,
    /// Fast incremental audits run.
    pub audits: u64,
    /// Deep full-validation audits run.
    pub deep_audits: u64,
    /// Audits (either tier) that found a violated invariant.
    pub audit_failures: u64,
    /// Plan-stage faults contained (epoch abandoned, engine untouched).
    pub plan_aborts: u64,
    /// Apply-stage faults (or failed audits) that poisoned the service.
    pub poisonings: u64,
    /// Successful [`recover`](DsgService::recover) calls.
    pub recoveries: u64,
    /// Snapshot checkpoints cut (persistence only).
    pub snapshots: u64,
    /// Snapshot checkpoints that failed and were abandoned (the store kept
    /// serving under the previous manifest binding).
    pub snapshot_failures: u64,
    /// Journal appends that failed and were rolled back (the chunk's
    /// tickets resolved with [`DsgError::Persist`]; the engine never saw
    /// it).
    pub append_aborts: u64,
    /// Submissions refused with [`SubmitError::Shed`] while the overload
    /// controller was shedding.
    pub shed_submits: u64,
    /// Queued requests shed at drain time because their deadline expired
    /// (tickets resolved with [`DsgError::DeadlineExceeded`]; neither the
    /// journal nor the engine paid for them).
    pub deadline_shed: u64,
    /// Drained chunks served under a brownout verdict.
    pub brownout_chunks: u64,
    /// Requests routed without restructuring under brownout.
    pub pairs_browned_out: u64,
    /// Times the controller entered brownout from nominal.
    pub brownout_entries: u64,
    /// Times the controller exited brownout back to nominal.
    pub brownout_exits: u64,
    /// Stall episodes the watchdog reported (one per stuck heartbeat).
    pub stalls: u64,
}

/// The session and bookkeeping handed back by
/// [`DsgService::shutdown`].
#[derive(Debug)]
pub struct ShutdownOutcome {
    /// The session, back under direct caller control. If the service was
    /// poisoned and never recovered, the engine is still in its
    /// half-mutated state — `recover_from_surviving` remains available.
    pub session: DsgSession,
    /// The exact chunk sequence served through `submit_batch`, in order.
    /// With persistence on, this is read back from the **durable journal**
    /// (the frames this instance appended) — one source of truth — and is
    /// present regardless of [`ServiceConfig::record_journal`]. Without
    /// persistence it is the in-memory recording (empty unless
    /// `record_journal` was set). Replaying it through a fresh,
    /// identically-built session reproduces the final structure bit for
    /// bit.
    pub journal: Vec<Vec<Request>>,
    /// The in-memory chunk recording (empty unless
    /// [`ServiceConfig::record_journal`] was set). With persistence on
    /// this is a redundant oracle: it must agree with [`journal`], chunk
    /// for chunk — the service tests assert exactly that.
    ///
    /// [`journal`]: ShutdownOutcome::journal
    pub journal_recorded: Vec<Vec<Request>>,
    /// Final counter snapshot.
    pub metrics: ServiceMetrics,
}

/// What [`DsgService::open`] found in the store directory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpenReport {
    /// `false` for a cold start (missing or empty directory: the session
    /// was built fresh and the initial checkpoint cut), `true` when an
    /// existing store was recovered.
    pub recovered: bool,
    /// Seq of the snapshot the engine was restored from (on a cold start,
    /// of the initial checkpoint just cut).
    pub snapshot_seq: u64,
    /// Size of that snapshot file in bytes.
    pub snapshot_bytes: u64,
    /// Journal frames replayed on top of the snapshot.
    pub frames_replayed: u64,
    /// Requests inside those frames.
    pub requests_replayed: u64,
    /// Torn bytes truncated off the journal tail (a crash interrupted an
    /// append; the partial frame was dropped, never served).
    pub torn_bytes_truncated: u64,
    /// `true` if the manifest-bound snapshot was damaged and recovery fell
    /// back to the retained previous one (replaying a longer suffix).
    pub fell_back: bool,
}

/// A live introspection snapshot from [`DsgService::status`]: queue and
/// health state plus progress and durability counters. Counters are
/// relaxed-atomic reads; queue fields are taken under the queue lock, so
/// they are mutually consistent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceStatus {
    /// Requests currently queued, awaiting the ingest thread.
    pub queue_depth: usize,
    /// Whether shutdown has begun (the queue accepts no new requests).
    pub closed: bool,
    /// Whether an apply-stage fault (or failed audit) has poisoned the
    /// engine.
    pub poisoned: bool,
    /// Transformation epochs served so far by this instance.
    pub epochs: u64,
    /// Ingest runs served (each one `submit_batch` call).
    pub batches: u64,
    /// Fast incremental audits run.
    pub audits: u64,
    /// Requests the admission gate routed without restructuring (0 with
    /// the adaptation policy off).
    pub pairs_gated: u64,
    /// Cold clusters restructured via the per-epoch admission budget.
    pub restructures_budgeted: u64,
    /// Frequency-sketch counter-halving passes run so far.
    pub sketch_aging_passes: u64,
    /// Whether the overload controller is currently refusing submissions
    /// with [`SubmitError::Shed`].
    pub shedding: bool,
    /// Whether chunks are currently served under a brownout verdict.
    pub brownout: bool,
    /// Submissions refused with [`SubmitError::Shed`] so far.
    pub shed_submits: u64,
    /// Queued requests shed at drain time for an expired deadline.
    pub deadline_shed: u64,
    /// Drained chunks served under a brownout verdict.
    pub brownout_chunks: u64,
    /// Requests routed without restructuring under brownout.
    pub pairs_browned_out: u64,
    /// Stall episodes the watchdog reported.
    pub stalls: u64,
    /// Median queue sojourn of drained requests, as the upper bound of
    /// the matching power-of-two histogram bucket, in microseconds (0
    /// with no drained requests yet).
    pub sojourn_p50_us: u64,
    /// 99th-percentile queue sojourn, bucketed like
    /// [`sojourn_p50_us`](ServiceStatus::sojourn_p50_us).
    pub sojourn_p99_us: u64,
    /// Durable journal length in bytes (0 without persistence).
    pub journal_bytes: u64,
    /// Seq of the current manifest-bound snapshot (0 without persistence).
    pub snapshot_seq: u64,
    /// Journal offset the current snapshot binding replays from.
    pub snapshot_offset: u64,
}

/// One submitted request's resolution slot: a `Mutex<Option<result>>`
/// plus a condvar, written exactly once by the ingest thread.
struct TicketCell {
    slot: Mutex<Option<Result<SubmitOutcome, DsgError>>>,
    ready: Condvar,
}

impl TicketCell {
    fn new() -> Arc<Self> {
        Arc::new(TicketCell {
            slot: Mutex::new(None),
            ready: Condvar::new(),
        })
    }

    /// First write wins; later resolutions are ignored.
    fn resolve(&self, value: Result<SubmitOutcome, DsgError>) {
        let mut slot = self.slot.lock().expect("ticket lock");
        if slot.is_none() {
            *slot = Some(value);
            self.ready.notify_all();
        }
    }
}

/// The resolution handle of one accepted request. The service guarantees
/// every ticket resolves — with the request's outcome, its own validation
/// error, [`DsgError::EpochAborted`], [`DsgError::EnginePoisoned`], or
/// [`DsgError::ShuttingDown`] — so [`wait`](Ticket::wait) never hangs on
/// a live service.
pub struct Ticket {
    cell: Arc<TicketCell>,
}

impl std::fmt::Debug for Ticket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ticket")
            .field("resolved", &self.try_result().is_some())
            .finish()
    }
}

impl Ticket {
    /// The result, if the request has been resolved yet.
    pub fn try_result(&self) -> Option<Result<SubmitOutcome, DsgError>> {
        self.cell.slot.lock().expect("ticket lock").clone()
    }

    /// Blocks until the request resolves.
    ///
    /// # Errors
    ///
    /// The request's own typed failure; see the [module docs](self) for
    /// the possible variants.
    pub fn wait(&self) -> Result<SubmitOutcome, DsgError> {
        let mut slot = self.cell.slot.lock().expect("ticket lock");
        loop {
            if let Some(result) = slot.clone() {
                return result;
            }
            slot = self.cell.ready.wait(slot).expect("ticket lock");
        }
    }

    /// Blocks until the request resolves or the timeout elapses; `None`
    /// on timeout (the ticket stays valid and can be waited on again).
    ///
    /// A shed request still *resolves* — a deadline-expired submission's
    /// ticket carries [`DsgError::DeadlineExceeded`] the moment it is
    /// shed, so the waiter gets the typed error rather than sitting out
    /// its full timeout (`tests/service.rs` pins this).
    pub fn wait_timeout(&self, timeout: Duration) -> Option<Result<SubmitOutcome, DsgError>> {
        let deadline = Instant::now() + timeout;
        let mut slot = self.cell.slot.lock().expect("ticket lock");
        loop {
            if let Some(result) = slot.clone() {
                return Some(result);
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let (guard, _) = self
                .cell
                .ready
                .wait_timeout(slot, deadline - now)
                .expect("ticket lock");
            slot = guard;
        }
    }
}

/// One queued request with its resolution slot.
struct Item {
    request: Request,
    ticket: Arc<TicketCell>,
    /// When the request was accepted onto the queue (sojourn clock).
    enqueued_at: Instant,
    /// Absolute deadline, if the submission carried one; an expired item
    /// is shed at drain time instead of being served.
    deadline: Option<Instant>,
}

/// Control messages bypass the queue capacity so a wedged (full or
/// poisoned) service still accepts them.
enum Control {
    Recover(Arc<ReplyCell>),
}

/// Reply slot of a [`Control::Recover`] round trip.
struct ReplyCell {
    slot: Mutex<Option<Result<RecoveryReport, DsgError>>>,
    ready: Condvar,
}

impl ReplyCell {
    fn new() -> Arc<Self> {
        Arc::new(ReplyCell {
            slot: Mutex::new(None),
            ready: Condvar::new(),
        })
    }

    fn resolve(&self, value: Result<RecoveryReport, DsgError>) {
        let mut slot = self.slot.lock().expect("reply lock");
        *slot = Some(value);
        self.ready.notify_all();
    }

    fn wait(&self) -> Result<RecoveryReport, DsgError> {
        let mut slot = self.slot.lock().expect("reply lock");
        loop {
            if let Some(result) = slot.take() {
                return result;
            }
            slot = self.ready.wait(slot).expect("reply lock");
        }
    }
}

/// Queue state guarded by the one service mutex. `poisoned` lives here —
/// not in an atomic — so admission decisions and the poison transition are
/// serialized against each other.
struct QueueState {
    items: VecDeque<Item>,
    control: VecDeque<Control>,
    closed: bool,
    poisoned: bool,
}

/// Buckets of the power-of-two sojourn histogram: bucket `i` counts
/// drained requests whose queue sojourn was in `[2^i, 2^(i+1))`
/// microseconds (the last bucket absorbs everything above ~35 minutes).
const SOJOURN_BUCKETS: usize = 32;

/// Heartbeat stage names, indexed by `Shared::heartbeat_stage`.
const STAGES: [&str; 6] = ["idle", "drain", "journal", "engine", "audit", "checkpoint"];
const STAGE_IDLE: usize = 0;
const STAGE_DRAIN: usize = 1;
const STAGE_JOURNAL: usize = 2;
const STAGE_ENGINE: usize = 3;
const STAGE_AUDIT: usize = 4;
const STAGE_CHECKPOINT: usize = 5;

struct Shared {
    queue: Mutex<QueueState>,
    /// Producers wait here for queue space.
    not_full: Condvar,
    /// The ingest thread waits here for work.
    not_empty: Condvar,
    /// Epoch of the service's monotonic clock: heartbeat stamps and the
    /// controller's window timestamps are nanoseconds since this instant.
    start: Instant,
    /// Whether [`DsgService::submit`] currently refuses with
    /// [`SubmitError::Shed`]. Written by the ingest thread on controller
    /// transitions; read by producers without the queue lock (admission
    /// under shedding is advisory, not serialized).
    shedding: AtomicBool,
    /// Whether drained chunks are currently served under brownout.
    brownout: AtomicBool,
    /// Nanoseconds since `start` at the ingest loop's last stage change.
    heartbeat_ns: AtomicU64,
    /// Index into [`STAGES`] of the stage the ingest loop last entered.
    heartbeat_stage: AtomicUsize,
    /// Tells the watchdog thread to exit.
    watchdog_stop: AtomicBool,
    sojourn_hist: [AtomicU64; SOJOURN_BUCKETS],
    shed_submits: AtomicU64,
    deadline_shed: AtomicU64,
    brownout_chunks: AtomicU64,
    pairs_browned_out: AtomicU64,
    brownout_entries: AtomicU64,
    brownout_exits: AtomicU64,
    stalls: AtomicU64,
    submitted: AtomicU64,
    rejected_overload: AtomicU64,
    submit_timeouts: AtomicU64,
    epochs: AtomicU64,
    batches: AtomicU64,
    pairs_gated: AtomicU64,
    restructures_budgeted: AtomicU64,
    sketch_aging_passes: AtomicU64,
    max_queue_depth: AtomicUsize,
    audits: AtomicU64,
    deep_audits: AtomicU64,
    audit_failures: AtomicU64,
    plan_aborts: AtomicU64,
    poisonings: AtomicU64,
    recoveries: AtomicU64,
    snapshots: AtomicU64,
    snapshot_failures: AtomicU64,
    append_aborts: AtomicU64,
    /// Durable journal length through the last committed frame (0 without
    /// persistence). Published by the worker after each append.
    journal_bytes: AtomicU64,
    /// Current manifest binding: snapshot seq and its journal offset.
    snapshot_seq: AtomicU64,
    snapshot_offset: AtomicU64,
}

impl Shared {
    fn new() -> Arc<Self> {
        Arc::new(Shared {
            queue: Mutex::new(QueueState {
                items: VecDeque::new(),
                control: VecDeque::new(),
                closed: false,
                poisoned: false,
            }),
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
            start: Instant::now(),
            shedding: AtomicBool::new(false),
            brownout: AtomicBool::new(false),
            heartbeat_ns: AtomicU64::new(0),
            heartbeat_stage: AtomicUsize::new(STAGE_IDLE),
            watchdog_stop: AtomicBool::new(false),
            sojourn_hist: std::array::from_fn(|_| AtomicU64::new(0)),
            shed_submits: AtomicU64::new(0),
            deadline_shed: AtomicU64::new(0),
            brownout_chunks: AtomicU64::new(0),
            pairs_browned_out: AtomicU64::new(0),
            brownout_entries: AtomicU64::new(0),
            brownout_exits: AtomicU64::new(0),
            stalls: AtomicU64::new(0),
            submitted: AtomicU64::new(0),
            rejected_overload: AtomicU64::new(0),
            submit_timeouts: AtomicU64::new(0),
            epochs: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            pairs_gated: AtomicU64::new(0),
            restructures_budgeted: AtomicU64::new(0),
            sketch_aging_passes: AtomicU64::new(0),
            max_queue_depth: AtomicUsize::new(0),
            audits: AtomicU64::new(0),
            deep_audits: AtomicU64::new(0),
            audit_failures: AtomicU64::new(0),
            plan_aborts: AtomicU64::new(0),
            poisonings: AtomicU64::new(0),
            recoveries: AtomicU64::new(0),
            snapshots: AtomicU64::new(0),
            snapshot_failures: AtomicU64::new(0),
            append_aborts: AtomicU64::new(0),
            journal_bytes: AtomicU64::new(0),
            snapshot_seq: AtomicU64::new(0),
            snapshot_offset: AtomicU64::new(0),
        })
    }

    fn metrics(&self) -> ServiceMetrics {
        ServiceMetrics {
            submitted: self.submitted.load(Ordering::Relaxed),
            rejected_overload: self.rejected_overload.load(Ordering::Relaxed),
            submit_timeouts: self.submit_timeouts.load(Ordering::Relaxed),
            epochs: self.epochs.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            max_queue_depth: self.max_queue_depth.load(Ordering::Relaxed),
            audits: self.audits.load(Ordering::Relaxed),
            deep_audits: self.deep_audits.load(Ordering::Relaxed),
            audit_failures: self.audit_failures.load(Ordering::Relaxed),
            plan_aborts: self.plan_aborts.load(Ordering::Relaxed),
            poisonings: self.poisonings.load(Ordering::Relaxed),
            recoveries: self.recoveries.load(Ordering::Relaxed),
            snapshots: self.snapshots.load(Ordering::Relaxed),
            snapshot_failures: self.snapshot_failures.load(Ordering::Relaxed),
            append_aborts: self.append_aborts.load(Ordering::Relaxed),
            shed_submits: self.shed_submits.load(Ordering::Relaxed),
            deadline_shed: self.deadline_shed.load(Ordering::Relaxed),
            brownout_chunks: self.brownout_chunks.load(Ordering::Relaxed),
            pairs_browned_out: self.pairs_browned_out.load(Ordering::Relaxed),
            brownout_entries: self.brownout_entries.load(Ordering::Relaxed),
            brownout_exits: self.brownout_exits.load(Ordering::Relaxed),
            stalls: self.stalls.load(Ordering::Relaxed),
        }
    }

    /// Nanoseconds since the service's clock epoch.
    fn now_ns(&self) -> u64 {
        self.start.elapsed().as_nanos() as u64
    }

    fn record_sojourn_us(&self, us: u64) {
        let bucket = ((us | 1).ilog2() as usize).min(SOJOURN_BUCKETS - 1);
        self.sojourn_hist[bucket].fetch_add(1, Ordering::Relaxed);
    }

    /// The `p`-quantile (`0..=100`) of the sojourn histogram, reported as
    /// the upper bound of the matching bucket in microseconds (0 with no
    /// samples).
    fn sojourn_quantile_us(&self, p: u64) -> u64 {
        let counts: Vec<u64> = self
            .sojourn_hist
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0;
        }
        let rank = (total * p).div_ceil(100).max(1);
        let mut seen = 0u64;
        for (i, &count) in counts.iter().enumerate() {
            seen += count;
            if seen >= rank {
                return 2u64.saturating_pow(i as u32 + 1).saturating_sub(1);
            }
        }
        u64::MAX
    }
}

/// Everything the ingest thread hands back when it exits.
type WorkerOutput = (DsgSession, Vec<Vec<Request>>, Option<DurableStore>);

/// The concurrent ingest front-end; see the [module docs](self).
pub struct DsgService {
    shared: Arc<Shared>,
    config: ServiceConfig,
    /// The store directory when persistence is on.
    persist_dir: Option<PathBuf>,
    /// Durable journal length at the moment this instance started serving:
    /// the frames *this* instance appended begin here.
    base_offset: u64,
    handle: Option<JoinHandle<WorkerOutput>>,
    /// The stall watchdog thread, when overload control is configured.
    watchdog: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for DsgService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DsgService")
            .field("config", &self.config)
            .field("metrics", &self.shared.metrics())
            .finish()
    }
}

impl DsgService {
    /// Moves the session onto a dedicated ingest thread and starts
    /// serving.
    ///
    /// # Errors
    ///
    /// Returns [`DsgError::InvalidConfig`] for a zero queue capacity or
    /// ingest batch size, and when [`ServiceConfig::persist`] is set — a
    /// persistent service needs a store directory and must be opened with
    /// [`open`](DsgService::open).
    pub fn spawn(session: DsgSession, config: ServiceConfig) -> Result<Self, DsgError> {
        Self::validate_config(&config)?;
        if config.persist.is_some() {
            return Err(DsgError::InvalidConfig(
                "a persistent service is opened with DsgService::open(dir, builder, config)"
                    .to_string(),
            ));
        }
        Ok(Self::spawn_inner(session, config, None))
    }

    /// Opens a **persistent** service over the store directory `dir`,
    /// recovering from a previous instance's journal and snapshots if the
    /// directory holds any.
    ///
    /// On a **cold start** (missing or empty directory) the `builder` is
    /// built into a fresh session, the initial snapshot checkpoint is cut
    /// (so the store is recoverable from its very first append), and the
    /// service starts serving. On **recovery**, the engine is restored
    /// from the newest valid snapshot (falling back to the retained
    /// previous one if the newest is damaged), a torn journal tail is
    /// truncated, the surviving journal suffix is replayed, and the result
    /// is deep-validated before the service serves its first request. In
    /// that case the `builder` only contributes its observers — topology
    /// and [`DsgConfig`](crate::DsgConfig) come from the snapshot, not
    /// from the builder.
    ///
    /// The returned [`OpenReport`] says which path ran and what was
    /// replayed or truncated.
    ///
    /// # Errors
    ///
    /// [`DsgError::InvalidConfig`] when [`ServiceConfig::persist`] is
    /// `None` or the queue/batch sizes are zero; [`DsgError::Persist`] for
    /// store damage a restart cannot safely serve over (a corrupt —
    /// not merely torn — journal frame, a missing or corrupt manifest
    /// with no usable fallback snapshot, a journal shorter than its
    /// manifest binding, I/O failures); any engine error of the replay or
    /// the final deep validation.
    pub fn open(
        dir: impl AsRef<Path>,
        builder: DsgBuilder,
        config: ServiceConfig,
    ) -> Result<(Self, OpenReport), DsgError> {
        Self::validate_config(&config)?;
        let Some(persist) = config.persist else {
            return Err(DsgError::InvalidConfig(
                "DsgService::open needs ServiceConfig::persist to be set".to_string(),
            ));
        };
        let (mut store, recovered) = DurableStore::open(dir, persist)?;
        let (session, report) = match recovered {
            None => {
                let session = builder.build()?;
                let snapshot_bytes = store.checkpoint(&session.engine().capture_image())?;
                let report = OpenReport {
                    recovered: false,
                    snapshot_seq: store.snapshot_seq(),
                    snapshot_bytes,
                    frames_replayed: 0,
                    requests_replayed: 0,
                    torn_bytes_truncated: 0,
                    fell_back: false,
                };
                (session, report)
            }
            Some(rec) => {
                let engine = DynamicSkipGraph::restore_image(&rec.image)?;
                let mut session = builder.build_recovered(engine);
                let mut requests_replayed = 0u64;
                for (frame, &brownout) in rec.frames.iter().zip(&rec.brownout) {
                    requests_replayed += frame.len() as u64;
                    // Replay each chunk under the degradation verdict it
                    // was journaled with, so the recovered structure is
                    // bit-identical to the pre-crash one.
                    session.submit_batch_degraded(frame, brownout)?;
                }
                session.engine().validate()?;
                let report = OpenReport {
                    recovered: true,
                    snapshot_seq: rec.snapshot_seq,
                    snapshot_bytes: rec.snapshot_bytes,
                    frames_replayed: rec.frames.len() as u64,
                    requests_replayed,
                    torn_bytes_truncated: rec.torn_bytes_truncated,
                    fell_back: rec.fell_back,
                };
                (session, report)
            }
        };
        Ok((Self::spawn_inner(session, config, Some(store)), report))
    }

    fn validate_config(config: &ServiceConfig) -> Result<(), DsgError> {
        if config.queue_capacity == 0 {
            return Err(DsgError::InvalidConfig(
                "the ingest queue needs a capacity of at least 1".to_string(),
            ));
        }
        if config.ingest_batch == 0 {
            return Err(DsgError::InvalidConfig(
                "the ingest batch size must be at least 1".to_string(),
            ));
        }
        Ok(())
    }

    fn spawn_inner(
        session: DsgSession,
        config: ServiceConfig,
        store: Option<DurableStore>,
    ) -> Self {
        let shared = Shared::new();
        let (persist_dir, base_offset) = match &store {
            Some(store) => {
                shared
                    .journal_bytes
                    .store(store.journal_len(), Ordering::Relaxed);
                shared
                    .snapshot_seq
                    .store(store.snapshot_seq(), Ordering::Relaxed);
                shared
                    .snapshot_offset
                    .store(store.bound_offset(), Ordering::Relaxed);
                (Some(store.dir().to_path_buf()), store.journal_len())
            }
            None => (None, 0),
        };
        // Cadence baselines start at the session's current epoch count so
        // a recovery replay does not immediately trigger a deep audit or a
        // snapshot.
        let epochs = session.epochs();
        // The watchdog keeps its own observer handles so it can report a
        // stall while the ingest thread (which owns the session) is the
        // very thing that is stuck.
        let watchdog = config.overload.map(|overload| {
            let shared = Arc::clone(&shared);
            let observers = session.observer_handles();
            std::thread::Builder::new()
                .name("dsg-service-watchdog".to_string())
                .spawn(move || watchdog_loop(&shared, &observers, overload.stall_after))
                .expect("spawning the watchdog thread")
        });
        let worker = Worker {
            session,
            shared: Arc::clone(&shared),
            config,
            journal: Vec::new(),
            epochs_at_last_deep: epochs,
            epochs_at_last_snapshot: epochs,
            store,
            overload: config.overload.map(|o| OverloadController::new(&o)),
        };
        let handle = std::thread::Builder::new()
            .name("dsg-service-ingest".to_string())
            .spawn(move || worker.run())
            .expect("spawning the ingest thread");
        DsgService {
            shared,
            config,
            persist_dir,
            base_offset,
            handle: Some(handle),
            watchdog,
        }
    }

    /// Submits a request without blocking.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Overloaded`] when the queue is full,
    /// [`SubmitError::Shed`] while the overload controller is shedding,
    /// [`SubmitError::ShuttingDown`] after shutdown began,
    /// [`SubmitError::Poisoned`] while the engine is poisoned.
    pub fn submit(&self, request: Request) -> Result<Ticket, SubmitError> {
        self.submit_inner(request, None)
    }

    /// Submits a request carrying a completion **deadline**: if it is
    /// still queued once `budget` has elapsed, it is shed at drain time —
    /// before the journal and the engine pay for it — and its ticket
    /// resolves with [`DsgError::DeadlineExceeded`] (the request was never
    /// served and can be resubmitted). Queue admission itself is
    /// non-blocking, exactly like [`submit`](Self::submit); the deadline
    /// governs the *queued* request, not the admission call.
    ///
    /// # Errors
    ///
    /// As [`submit`](Self::submit).
    pub fn submit_with_deadline(
        &self,
        request: Request,
        budget: Duration,
    ) -> Result<Ticket, SubmitError> {
        self.submit_inner(request, Some(Instant::now() + budget))
    }

    fn submit_inner(
        &self,
        request: Request,
        deadline: Option<Instant>,
    ) -> Result<Ticket, SubmitError> {
        let mut q = self.shared.queue.lock().expect("queue lock");
        self.admit(&mut q, request, deadline).inspect_err(|&e| {
            if e == SubmitError::Overloaded {
                self.shared
                    .rejected_overload
                    .fetch_add(1, Ordering::Relaxed);
            }
        })
    }

    /// Submits with producer-side backoff over the typed refusals: on
    /// [`SubmitError::Overloaded`] or [`SubmitError::Shed`] the call
    /// sleeps per `policy` — jittered exponential delays, floored at the
    /// shed refusal's retry-after hint — and tries again, up to
    /// [`RetryPolicy::attempts`] total attempts.
    ///
    /// # Errors
    ///
    /// The last refusal once the attempts are exhausted; any
    /// non-retryable refusal ([`SubmitError::ShuttingDown`],
    /// [`SubmitError::Poisoned`]) immediately.
    pub fn submit_retry(
        &self,
        request: Request,
        policy: &RetryPolicy,
    ) -> Result<Ticket, SubmitError> {
        let attempts = policy.attempts.max(1);
        let mut attempt = 0u32;
        loop {
            let refusal = match self.submit(request) {
                Ok(ticket) => return Ok(ticket),
                Err(e @ (SubmitError::Overloaded | SubmitError::Shed { .. })) => e,
                Err(other) => return Err(other),
            };
            attempt += 1;
            if attempt >= attempts {
                return Err(refusal);
            }
            let hint = match refusal {
                SubmitError::Shed { retry_after } => Some(retry_after),
                _ => None,
            };
            std::thread::sleep(policy.backoff(attempt - 1, hint));
        }
    }

    /// Submits a request, blocking for queue space up to `timeout`.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Timeout`] if no space appeared in time; otherwise as
    /// [`submit`](Self::submit) (a service that shuts down or poisons
    /// while this call is blocked fails it immediately with the
    /// corresponding variant, not the timeout).
    pub fn submit_deadline(
        &self,
        request: Request,
        timeout: Duration,
    ) -> Result<Ticket, SubmitError> {
        let deadline = Instant::now() + timeout;
        let mut q = self.shared.queue.lock().expect("queue lock");
        loop {
            match self.admit(&mut q, request, None) {
                Err(SubmitError::Overloaded) => {}
                resolved => return resolved,
            }
            let now = Instant::now();
            if now >= deadline {
                self.shared.submit_timeouts.fetch_add(1, Ordering::Relaxed);
                return Err(SubmitError::Timeout);
            }
            let (guard, _) = self
                .shared
                .not_full
                .wait_timeout(q, deadline - now)
                .expect("queue lock");
            q = guard;
        }
    }

    /// Queue admission under the lock: typed rejection or an enqueued
    /// ticket.
    fn admit(
        &self,
        q: &mut QueueState,
        request: Request,
        deadline: Option<Instant>,
    ) -> Result<Ticket, SubmitError> {
        if q.closed {
            return Err(SubmitError::ShuttingDown);
        }
        if q.poisoned {
            return Err(SubmitError::Poisoned);
        }
        if self.shared.shedding.load(Ordering::Relaxed) {
            self.shared.shed_submits.fetch_add(1, Ordering::Relaxed);
            let retry_after = self.config.overload.map_or(Duration::ZERO, |o| o.retry_after);
            return Err(SubmitError::Shed { retry_after });
        }
        if q.items.len() >= self.config.queue_capacity {
            return Err(SubmitError::Overloaded);
        }
        let cell = TicketCell::new();
        q.items.push_back(Item {
            request,
            ticket: Arc::clone(&cell),
            enqueued_at: Instant::now(),
            deadline,
        });
        self.shared
            .max_queue_depth
            .fetch_max(q.items.len(), Ordering::Relaxed);
        self.shared.submitted.fetch_add(1, Ordering::Relaxed);
        self.shared.not_empty.notify_one();
        Ok(Ticket { cell })
    }

    /// Whether an apply-stage fault (or failed audit) has poisoned the
    /// engine.
    pub fn is_poisoned(&self) -> bool {
        self.shared.queue.lock().expect("queue lock").poisoned
    }

    /// A snapshot of the service counters.
    pub fn metrics(&self) -> ServiceMetrics {
        self.shared.metrics()
    }

    /// A live introspection snapshot: queue depth and health flags
    /// (mutually consistent, taken under the queue lock) plus progress and
    /// durability counters. Cheap enough to poll from monitoring loops.
    pub fn status(&self) -> ServiceStatus {
        let (queue_depth, closed, poisoned) = {
            let q = self.shared.queue.lock().expect("queue lock");
            (q.items.len(), q.closed, q.poisoned)
        };
        ServiceStatus {
            queue_depth,
            closed,
            poisoned,
            epochs: self.shared.epochs.load(Ordering::Relaxed),
            batches: self.shared.batches.load(Ordering::Relaxed),
            audits: self.shared.audits.load(Ordering::Relaxed),
            pairs_gated: self.shared.pairs_gated.load(Ordering::Relaxed),
            restructures_budgeted: self.shared.restructures_budgeted.load(Ordering::Relaxed),
            sketch_aging_passes: self.shared.sketch_aging_passes.load(Ordering::Relaxed),
            shedding: self.shared.shedding.load(Ordering::Relaxed),
            brownout: self.shared.brownout.load(Ordering::Relaxed),
            shed_submits: self.shared.shed_submits.load(Ordering::Relaxed),
            deadline_shed: self.shared.deadline_shed.load(Ordering::Relaxed),
            brownout_chunks: self.shared.brownout_chunks.load(Ordering::Relaxed),
            pairs_browned_out: self.shared.pairs_browned_out.load(Ordering::Relaxed),
            stalls: self.shared.stalls.load(Ordering::Relaxed),
            sojourn_p50_us: self.shared.sojourn_quantile_us(50),
            sojourn_p99_us: self.shared.sojourn_quantile_us(99),
            journal_bytes: self.shared.journal_bytes.load(Ordering::Relaxed),
            snapshot_seq: self.shared.snapshot_seq.load(Ordering::Relaxed),
            snapshot_offset: self.shared.snapshot_offset.load(Ordering::Relaxed),
        }
    }

    /// Rebuilds the poisoned engine from the surviving per-peer state and
    /// resumes service (see
    /// [`DynamicSkipGraph::recover_from_surviving`](crate::DynamicSkipGraph::recover_from_surviving)
    /// for what survives). Blocks until the ingest thread finishes the
    /// rebuild and deep-validates the result.
    ///
    /// With persistence on, a successful recovery also cuts a fresh
    /// snapshot checkpoint binding the rebuilt engine at the current
    /// journal offset, so a later restart resumes from the recovered
    /// structure instead of replaying into the pre-fault one.
    ///
    /// # Errors
    ///
    /// [`DsgError::NotPoisoned`] if the service is not poisoned (there
    /// is nothing to recover — the rebuild would discard healthy adjusted
    /// structure), [`DsgError::ShuttingDown`] after shutdown began, and
    /// any error of the rebuild itself (the service then stays poisoned).
    pub fn recover(&self) -> Result<RecoveryReport, DsgError> {
        let reply = ReplyCell::new();
        {
            let mut q = self.shared.queue.lock().expect("queue lock");
            if q.closed {
                return Err(DsgError::ShuttingDown);
            }
            q.control.push_back(Control::Recover(Arc::clone(&reply)));
            self.shared.not_empty.notify_one();
        }
        reply.wait()
    }

    /// Shuts the service down and hands the session back. Per
    /// [`ServiceConfig::shutdown`], the queued backlog is either drained
    /// (served normally) or resolved with [`DsgError::ShuttingDown`];
    /// either way every outstanding ticket resolves and the ingest thread
    /// is joined. With persistence on, the journal is fsynced and
    /// [`ShutdownOutcome::journal`] is read back from the durable log —
    /// no final snapshot is cut, so the store directory stays a faithful
    /// crash image and the next [`open`](DsgService::open) exercises the
    /// same recovery path a real crash would.
    ///
    /// Takes `&mut self` so a shut-down service can still be dropped (or
    /// queried) safely; the work happens on the first call only.
    ///
    /// # Errors
    ///
    /// [`DsgError::AlreadyShutDown`] on a second call, and
    /// [`DsgError::Persist`] if reading the durable journal back fails
    /// (the session is lost with the error; this requires the just-written
    /// journal to be unreadable, i.e. a failing disk).
    pub fn shutdown(&mut self) -> Result<ShutdownOutcome, DsgError> {
        let (session, journal_recorded, store) =
            self.close_and_join().ok_or(DsgError::AlreadyShutDown)?;
        let journal = match &self.persist_dir {
            Some(dir) => {
                // Close the write handle before reading the log back.
                drop(store);
                read_journal_from(dir, self.base_offset)
                    .map_err(DsgError::from)?
                    .frames
            }
            None => journal_recorded.clone(),
        };
        Ok(ShutdownOutcome {
            session,
            journal,
            journal_recorded,
            metrics: self.shared.metrics(),
        })
    }

    /// Closes the queue (applying the shutdown policy to the backlog) and
    /// joins the ingest thread. `None` if already joined.
    fn close_and_join(&mut self) -> Option<WorkerOutput> {
        let handle = self.handle.take()?;
        self.shared.watchdog_stop.store(true, Ordering::Release);
        let aborted: Vec<Item> = {
            let mut q = self.shared.queue.lock().expect("queue lock");
            q.closed = true;
            let aborted = match self.config.shutdown {
                ShutdownPolicy::Drain => Vec::new(),
                ShutdownPolicy::Abort => q.items.drain(..).collect(),
            };
            self.shared.not_empty.notify_all();
            self.shared.not_full.notify_all();
            aborted
        };
        for item in aborted {
            item.ticket.resolve(Err(DsgError::ShuttingDown));
        }
        if let Some(watchdog) = self.watchdog.take() {
            let _ = watchdog.join();
        }
        match handle.join() {
            Ok(out) => Some(out),
            // The ingest thread catches engine panics; a panic escaping it
            // is a service bug — surface it on the caller.
            Err(payload) => panic::resume_unwind(payload),
        }
    }
}

impl Drop for DsgService {
    fn drop(&mut self) {
        let _ = self.close_and_join();
    }
}

/// State owned by the ingest thread.
struct Worker {
    session: DsgSession,
    shared: Arc<Shared>,
    config: ServiceConfig,
    journal: Vec<Vec<Request>>,
    epochs_at_last_deep: u64,
    epochs_at_last_snapshot: u64,
    /// The durable store, when the service was opened with persistence.
    /// Single-owner: only this thread touches it.
    store: Option<DurableStore>,
    /// The sojourn controller, when overload control is configured.
    overload: Option<OverloadController>,
}

enum WorkUnit {
    Batch(Vec<Item>),
    Control(Control),
    Exit,
}

impl Worker {
    fn run(mut self) -> WorkerOutput {
        loop {
            match self.next_work() {
                WorkUnit::Exit => break,
                WorkUnit::Control(Control::Recover(reply)) => self.handle_recover(&reply),
                WorkUnit::Batch(items) => self.serve(items),
            }
        }
        if let Some(store) = self.store.as_mut() {
            // Make everything served durable before exiting. Deliberately
            // no final snapshot: the directory stays a faithful crash
            // image, so reopening a cleanly shut down store exercises the
            // same recovery path a real crash would.
            let _ = store.sync();
        }
        (self.session, self.journal, self.store)
    }

    /// Blocks for the next unit of work. Control messages take priority
    /// over queued requests so recovery is never starved by a backlog.
    fn next_work(&mut self) -> WorkUnit {
        let mut q = self.shared.queue.lock().expect("queue lock");
        loop {
            if let Some(control) = q.control.pop_front() {
                return WorkUnit::Control(control);
            }
            if !q.items.is_empty() {
                let take = self.config.ingest_batch.min(q.items.len());
                let items: Vec<Item> = q.items.drain(..take).collect();
                self.shared.not_full.notify_all();
                return WorkUnit::Batch(items);
            }
            if q.closed {
                return WorkUnit::Exit;
            }
            // An empty queue is definitive evidence against overload:
            // exit any degradation immediately (outside the queue lock —
            // observers run user code).
            if let Some(controller) = self.overload.as_mut() {
                let now_ns = self.shared.now_ns();
                if let Some(transition) = controller.note_idle(now_ns) {
                    drop(q);
                    self.apply_transition(transition);
                    q = self.shared.queue.lock().expect("queue lock");
                    continue;
                }
            }
            self.beat(STAGE_IDLE);
            q = self.shared.not_empty.wait(q).expect("queue lock");
        }
    }

    /// Stamps the ingest heartbeat: the loop entered `stage` now.
    fn beat(&self, stage: usize) {
        self.shared
            .heartbeat_ns
            .store(self.shared.now_ns(), Ordering::Relaxed);
        self.shared.heartbeat_stage.store(stage, Ordering::Relaxed);
    }

    /// Publishes a controller transition: the shedding/brownout flags,
    /// the entry/exit counters, and the observer event. Blocked
    /// `submit_deadline` callers are woken so they learn about shedding
    /// promptly instead of at their timeout.
    fn apply_transition(&self, transition: OverloadTransition) {
        let shedding = transition.state.sheds();
        let brownout = transition.state.brownout();
        self.shared.shedding.store(shedding, Ordering::Relaxed);
        let was = self.shared.brownout.swap(brownout, Ordering::Relaxed);
        if brownout && !was {
            self.shared.brownout_entries.fetch_add(1, Ordering::Relaxed);
        } else if !brownout && was {
            self.shared.brownout_exits.fetch_add(1, Ordering::Relaxed);
        }
        if shedding {
            self.shared.not_full.notify_all();
        }
        self.session.notify_overload(&OverloadEvent {
            epoch: self.session.epochs(),
            shedding,
            brownout,
            min_sojourn_ns: transition.min_sojourn_ns,
        });
    }

    fn handle_recover(&mut self, reply: &ReplyCell) {
        self.beat(STAGE_ENGINE);
        let poisoned = self.shared.queue.lock().expect("queue lock").poisoned;
        if !poisoned {
            reply.resolve(Err(DsgError::NotPoisoned));
            return;
        }
        match self.session.engine_mut().recover_from_surviving() {
            Ok(report) => {
                // With persistence on, the journal may hold the chunk whose
                // apply faulted; the rebuilt engine supersedes a replay of
                // it. Rebind the store to the recovered image so a restart
                // resumes from the structure the caller now observes.
                self.cut_checkpoint();
                self.shared.queue.lock().expect("queue lock").poisoned = false;
                self.shared.not_full.notify_all();
                self.shared.recoveries.fetch_add(1, Ordering::Relaxed);
                reply.resolve(Ok(report));
            }
            Err(err) => reply.resolve(Err(err)),
        }
    }

    /// Serves one drained run: sojourn accounting and overload
    /// transitions, deadline shedding, per-request validation, one
    /// guarded `submit_batch`, ticket resolution, and the tiered audit.
    fn serve(&mut self, items: Vec<Item>) {
        self.beat(STAGE_DRAIN);
        if self.shared.queue.lock().expect("queue lock").poisoned {
            // Poisoned between drain and serve (failed audit): nothing may
            // touch the engine, but nothing may hang either.
            for item in items {
                item.ticket.resolve(Err(DsgError::EnginePoisoned));
            }
            return;
        }

        // The controller sees every drained request's queue sojourn —
        // including requests about to be shed — and its verdict for this
        // chunk is fixed here, before the journal write that records it.
        let now = Instant::now();
        let now_ns = self.shared.now_ns();
        let mut transitions: Vec<OverloadTransition> = Vec::new();
        for item in &items {
            let sojourn_ns = now.saturating_duration_since(item.enqueued_at).as_nanos() as u64;
            self.shared.record_sojourn_us(sojourn_ns / 1_000);
            if let Some(controller) = self.overload.as_mut() {
                if let Some(transition) = controller.record_sojourn(now_ns, sojourn_ns) {
                    transitions.push(transition);
                }
            }
        }
        for transition in transitions {
            self.apply_transition(transition);
        }
        let brownout = self.overload.as_ref().is_some_and(|c| c.state().brownout());

        // Deadline shedding, then per-request validation against the
        // engine's membership with the run's own queued membership changes
        // overlaid — one malformed or expired request fails one ticket and
        // never the run.
        let mut chunk: Vec<Request> = Vec::with_capacity(items.len());
        let mut tickets: Vec<Arc<TicketCell>> = Vec::with_capacity(items.len());
        let mut membership: HashMap<u64, bool> = HashMap::new();
        for item in items {
            if item.deadline.is_some_and(|deadline| deadline <= now) {
                self.shared.deadline_shed.fetch_add(1, Ordering::Relaxed);
                item.ticket.resolve(Err(DsgError::DeadlineExceeded));
                continue;
            }
            match self.validate(&item.request, &mut membership) {
                Ok(()) => {
                    chunk.push(item.request);
                    tickets.push(item.ticket);
                }
                Err(err) => item.ticket.resolve(Err(err)),
            }
        }
        if chunk.is_empty() {
            return;
        }

        // WAL ordering: the chunk — and its brownout verdict — reaches
        // the durable journal (and, per the fsync cadence, the disk)
        // before the engine ever sees it.
        self.beat(STAGE_JOURNAL);
        if !self.journal_chunk(&chunk, &tickets, brownout) {
            return;
        }

        self.beat(STAGE_ENGINE);
        let session = &mut self.session;
        let served = panic::catch_unwind(AssertUnwindSafe(|| {
            // Fault-injection site: a panic at the top of the ingest loop
            // must fail this run's tickets and nothing else.
            failpoint::hit(failpoint::INGEST_LOOP);
            session.submit_batch_degraded(&chunk, brownout)
        }));
        match served {
            Ok(Ok(batch)) => {
                debug_assert_eq!(batch.outcomes.len(), tickets.len());
                for (ticket, outcome) in tickets.iter().zip(batch.outcomes) {
                    ticket.resolve(Ok(outcome));
                }
                self.shared.batches.fetch_add(1, Ordering::Relaxed);
                self.shared
                    .epochs
                    .fetch_add(batch.epochs as u64, Ordering::Relaxed);
                self.shared
                    .pairs_gated
                    .fetch_add(batch.pairs_gated, Ordering::Relaxed);
                self.shared
                    .restructures_budgeted
                    .fetch_add(batch.restructures_budgeted, Ordering::Relaxed);
                self.shared
                    .sketch_aging_passes
                    .fetch_add(batch.sketch_aging_passes, Ordering::Relaxed);
                self.shared
                    .pairs_browned_out
                    .fetch_add(batch.pairs_browned_out, Ordering::Relaxed);
                if brownout {
                    self.shared.brownout_chunks.fetch_add(1, Ordering::Relaxed);
                }
                if self.config.record_journal {
                    self.journal.push(chunk);
                }
                self.beat(STAGE_AUDIT);
                self.audit();
                self.beat(STAGE_CHECKPOINT);
                self.maybe_checkpoint();
            }
            Ok(Err(err)) => {
                // Pre-validation makes engine-side validation failures
                // unreachable; if one slips through anyway, the whole run
                // reports it rather than guessing which requests applied.
                for ticket in &tickets {
                    ticket.resolve(Err(err.clone()));
                }
            }
            Err(payload) => self.contain_fault(&tickets, payload),
        }
    }

    /// Appends the chunk to the durable journal (a no-op without
    /// persistence) **before** the engine applies it. Returns `false` when
    /// the append failed: the tickets are then already resolved and the
    /// run must not be served — the engine was never called, so nothing
    /// diverged. A rollback failure is the one exception: the journal can
    /// no longer be trusted to match the engine, so the service poisons.
    fn journal_chunk(
        &mut self,
        chunk: &[Request],
        tickets: &[Arc<TicketCell>],
        brownout: bool,
    ) -> bool {
        let Some(store) = self.store.as_mut() else {
            return true;
        };
        let appended =
            panic::catch_unwind(AssertUnwindSafe(|| store.append_chunk(chunk, brownout)));
        let err = match appended {
            Ok(Ok(())) => {
                self.shared
                    .journal_bytes
                    .store(store.journal_len(), Ordering::Relaxed);
                return true;
            }
            Ok(Err(err)) => DsgError::Persist(err),
            Err(payload) => DsgError::Persist(PersistError::AppendPanicked {
                detail: payload_message(payload.as_ref()),
            }),
        };
        match store.rollback() {
            Ok(()) => {
                self.shared.append_aborts.fetch_add(1, Ordering::Relaxed);
                for ticket in tickets {
                    ticket.resolve(Err(err.clone()));
                }
            }
            Err(_) => {
                self.shared.poisonings.fetch_add(1, Ordering::Relaxed);
                self.poison(tickets);
            }
        }
        false
    }

    /// Cuts a snapshot checkpoint at the quiescent point after a served
    /// run, on the [`PersistConfig::snapshot_every`] epoch cadence.
    fn maybe_checkpoint(&mut self) {
        if self.store.is_none() {
            return;
        }
        let every = self.config.persist.map_or(0, |p| p.snapshot_every);
        if every == 0 {
            return;
        }
        if self
            .session
            .epochs()
            .saturating_sub(self.epochs_at_last_snapshot)
            < every
        {
            return;
        }
        if self.shared.queue.lock().expect("queue lock").poisoned {
            return;
        }
        self.cut_checkpoint();
    }

    /// Captures the engine image and checkpoints it. A failure (or a panic
    /// through the `io.snapshot` / `io.manifest` fail points) abandons the
    /// checkpoint — temp files removed, counted — and the store keeps
    /// serving under the previous manifest binding: a checkpoint shortens
    /// recovery, it is never required for correctness.
    fn cut_checkpoint(&mut self) {
        let Some(store) = self.store.as_mut() else {
            return;
        };
        self.epochs_at_last_snapshot = self.session.epochs();
        let session = &self.session;
        let cut = panic::catch_unwind(AssertUnwindSafe(|| {
            store.checkpoint(&session.engine().capture_image())
        }));
        match cut {
            Ok(Ok(_bytes)) => {
                self.shared.snapshots.fetch_add(1, Ordering::Relaxed);
                self.shared
                    .snapshot_seq
                    .store(store.snapshot_seq(), Ordering::Relaxed);
                self.shared
                    .snapshot_offset
                    .store(store.bound_offset(), Ordering::Relaxed);
                self.shared
                    .journal_bytes
                    .store(store.journal_len(), Ordering::Relaxed);
            }
            Ok(Err(_)) | Err(_) => {
                store.abandon_checkpoint();
                self.shared
                    .snapshot_failures
                    .fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Validates one request against the engine plus the membership
    /// changes queued earlier in the same run.
    fn validate(
        &self,
        request: &Request,
        membership: &mut HashMap<u64, bool>,
    ) -> Result<(), DsgError> {
        let present = |membership: &HashMap<u64, bool>, peer: u64| {
            membership
                .get(&peer)
                .copied()
                .unwrap_or_else(|| self.session.engine().peer_state(peer).is_ok())
        };
        match *request {
            Request::Communicate { u, v } => {
                if u == v {
                    return Err(DsgError::SelfCommunication(u));
                }
                for peer in [u, v] {
                    if !present(membership, peer) {
                        return Err(DsgError::UnknownPeer(peer));
                    }
                }
            }
            Request::Join(peer) => {
                if present(membership, peer) {
                    return Err(DsgError::DuplicatePeer(peer));
                }
                membership.insert(peer, true);
            }
            Request::Leave(peer) => {
                if !present(membership, peer) {
                    return Err(DsgError::UnknownPeer(peer));
                }
                membership.insert(peer, false);
            }
            Request::Tick(_) => {}
        }
        Ok(())
    }

    /// A panic unwound out of the engine: abort or poison depending on
    /// which side of the plan/apply boundary it struck.
    fn contain_fault(&mut self, tickets: &[Arc<TicketCell>], payload: Box<dyn Any + Send>) {
        let msg = payload_message(payload.as_ref());
        match self.session.engine().epoch_phase() {
            EpochPhase::Applying => {
                self.shared.poisonings.fetch_add(1, Ordering::Relaxed);
                self.poison(tickets);
            }
            // Planning (or Idle, for a fault before the engine was even
            // entered — e.g. the ingest.loop site): pure-read territory,
            // the engine is untouched. Abandon the epoch, keep serving.
            EpochPhase::Planning | EpochPhase::Idle => {
                self.session
                    .engine_mut()
                    .acknowledge_plan_abort()
                    .expect("phase was not Applying");
                self.shared.plan_aborts.fetch_add(1, Ordering::Relaxed);
                for ticket in tickets {
                    ticket.resolve(Err(DsgError::EpochAborted(msg.clone())));
                }
            }
        }
    }

    /// Poisons the service: flag set under the queue lock, every
    /// in-flight and queued ticket resolved with
    /// [`DsgError::EnginePoisoned`], all waiters woken.
    fn poison(&mut self, in_flight: &[Arc<TicketCell>]) {
        let queued: Vec<Item> = {
            let mut q = self.shared.queue.lock().expect("queue lock");
            q.poisoned = true;
            let queued = q.items.drain(..).collect();
            self.shared.not_full.notify_all();
            queued
        };
        for ticket in in_flight {
            ticket.resolve(Err(DsgError::EnginePoisoned));
        }
        for item in queued {
            item.ticket.resolve(Err(DsgError::EnginePoisoned));
        }
    }

    /// The tiered invariant audit, run after every successfully served
    /// run. A failed audit degrades the service to the poisoned state.
    fn audit(&mut self) {
        let epoch = self.session.epochs();
        let fast_ok = self.session.engine().validate_fast().is_ok();
        self.shared.audits.fetch_add(1, Ordering::Relaxed);
        self.session.notify_audit(&AuditEvent {
            epoch,
            deep: false,
            passed: fast_ok,
        });
        let mut failed = !fast_ok;
        if !failed
            && self.config.deep_audit_every > 0
            && epoch.saturating_sub(self.epochs_at_last_deep) >= self.config.deep_audit_every
        {
            self.epochs_at_last_deep = epoch;
            let deep_ok = self.session.engine().validate().is_ok();
            self.shared.deep_audits.fetch_add(1, Ordering::Relaxed);
            self.session.notify_audit(&AuditEvent {
                epoch,
                deep: true,
                passed: deep_ok,
            });
            failed = !deep_ok;
        }
        if failed {
            self.shared.audit_failures.fetch_add(1, Ordering::Relaxed);
            self.shared.poisonings.fetch_add(1, Ordering::Relaxed);
            self.poison(&[]);
        }
    }
}

/// The stall watchdog: polls the ingest loop's heartbeat and reports a
/// busy stage older than `stall_after` through
/// [`DsgObserver::on_stall`](crate::DsgObserver::on_stall) — once per
/// stuck heartbeat, and with `try_lock` on each observer, so an observer
/// mutex held by the wedged ingest thread can never wedge the watchdog
/// too. An idle ingest loop (waiting for work) is never a stall.
fn watchdog_loop(shared: &Shared, observers: &[SharedObserver], stall_after: Duration) {
    let stall_ns = (stall_after.as_nanos() as u64).max(1);
    let poll = (stall_after / 4).clamp(Duration::from_millis(1), Duration::from_millis(50));
    let mut reported: Option<u64> = None;
    while !shared.watchdog_stop.load(Ordering::Acquire) {
        std::thread::sleep(poll);
        let stage = shared.heartbeat_stage.load(Ordering::Relaxed);
        if stage == STAGE_IDLE {
            reported = None;
            continue;
        }
        let beat = shared.heartbeat_ns.load(Ordering::Relaxed);
        let stalled_for = shared.now_ns().saturating_sub(beat);
        if stalled_for < stall_ns {
            reported = None;
            continue;
        }
        if reported == Some(beat) {
            continue;
        }
        reported = Some(beat);
        shared.stalls.fetch_add(1, Ordering::Relaxed);
        let event = StallEvent {
            stage: STAGES[stage.min(STAGES.len() - 1)],
            stalled_for_ns: stalled_for,
        };
        for observer in observers {
            if let Ok(mut observer) = observer.try_lock() {
                observer.on_stall(&event);
            }
        }
    }
}

fn payload_message(payload: &(dyn Any + Send)) -> String {
    if let Some(msg) = payload.downcast_ref::<&str>() {
        (*msg).to_string()
    } else if let Some(msg) = payload.downcast_ref::<String>() {
        msg.clone()
    } else {
        "panic with a non-string payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::DsgSession;

    fn spawn(peers: u64, config: ServiceConfig) -> DsgService {
        let session = DsgSession::builder()
            .peers(0..peers)
            .seed(9)
            .build()
            .unwrap();
        DsgService::spawn(session, config).unwrap()
    }

    #[test]
    fn serves_requests_from_multiple_producers() {
        let mut service = spawn(64, ServiceConfig::default());
        std::thread::scope(|scope| {
            for p in 0..4u64 {
                let service = &service;
                scope.spawn(move || {
                    for i in 0..8u64 {
                        let u = (p * 8 + i) % 32;
                        let ticket = service
                            .submit_deadline(
                                Request::communicate(u, u + 32),
                                Duration::from_secs(5),
                            )
                            .unwrap();
                        ticket.wait().unwrap();
                    }
                });
            }
        });
        let done = service.shutdown().unwrap();
        assert_eq!(done.metrics.submitted, 32);
        done.session.engine().validate().unwrap();
    }

    #[test]
    fn malformed_requests_fail_only_their_ticket() {
        let mut service = spawn(16, ServiceConfig::default());
        let good = service.submit(Request::communicate(1, 9)).unwrap();
        let dup = service.submit(Request::Join(3)).unwrap();
        let ghost = service.submit(Request::Leave(99)).unwrap();
        let selfish = service.submit(Request::Communicate { u: 5, v: 5 }).unwrap();
        assert!(good.wait().is_ok());
        assert_eq!(dup.wait().unwrap_err(), DsgError::DuplicatePeer(3));
        assert_eq!(ghost.wait().unwrap_err(), DsgError::UnknownPeer(99));
        assert_eq!(selfish.wait().unwrap_err(), DsgError::SelfCommunication(5));
        let done = service.shutdown().unwrap();
        done.session.engine().validate().unwrap();
    }

    #[test]
    fn validation_sees_membership_changes_queued_in_the_same_run() {
        let service = spawn(8, ServiceConfig::default());
        let join = service.submit(Request::Join(50)).unwrap();
        let talk = service.submit(Request::communicate(50, 3)).unwrap();
        let leave = service.submit(Request::Leave(50)).unwrap();
        let stale = service.submit(Request::communicate(50, 3)).unwrap();
        assert!(join.wait().is_ok());
        // The communicate may land in the same run as the join (override
        // admits it) or a later one (the engine knows the peer by then).
        assert!(talk.wait().is_ok());
        assert!(leave.wait().is_ok());
        assert_eq!(stale.wait().unwrap_err(), DsgError::UnknownPeer(50));
        drop(service);
    }

    #[test]
    fn overload_is_a_typed_rejection() {
        // Stall the ingest thread with a poisoned-free trick: fill the
        // queue faster than a tiny engine drains it by submitting from the
        // queue's own capacity edge. Deterministic variant: capacity 1 and
        // a request that blocks on... simplest is to rely on the bound
        // itself — submit bursts until one is rejected.
        let service = spawn(
            32,
            ServiceConfig {
                queue_capacity: 1,
                ..ServiceConfig::default()
            },
        );
        let mut saw_overload = false;
        for i in 0..512u64 {
            match service.submit(Request::communicate(i % 16, 16 + (i % 16))) {
                Ok(_) => {}
                Err(SubmitError::Overloaded) => {
                    saw_overload = true;
                    break;
                }
                Err(other) => panic!("unexpected rejection: {other}"),
            }
        }
        assert!(saw_overload, "a capacity-1 queue never overflowed");
        assert!(service.metrics().rejected_overload >= 1);
        drop(service);
    }

    #[test]
    fn shutdown_abort_resolves_queued_tickets() {
        let mut service = spawn(
            32,
            ServiceConfig {
                shutdown: ShutdownPolicy::Abort,
                queue_capacity: 256,
                ..ServiceConfig::default()
            },
        );
        let tickets: Vec<Ticket> = (0..64u64)
            .map(|i| {
                service
                    .submit(Request::communicate(i % 16, 16 + (i % 16)))
                    .unwrap()
            })
            .collect();
        let done = service.shutdown().unwrap();
        for ticket in tickets {
            // Every ticket resolved: served before the close, or aborted.
            match ticket.wait() {
                Ok(_) | Err(DsgError::ShuttingDown) => {}
                Err(other) => panic!("unexpected resolution: {other}"),
            }
        }
        done.session.engine().validate().unwrap();
    }

    #[test]
    fn spawn_validates_the_config() {
        let session = DsgSession::builder().peers(0..4).seed(1).build().unwrap();
        let err = DsgService::spawn(
            session,
            ServiceConfig {
                queue_capacity: 0,
                ..ServiceConfig::default()
            },
        )
        .map(|_| ())
        .unwrap_err();
        assert!(matches!(err, DsgError::InvalidConfig(_)));
    }

    #[test]
    fn recover_on_a_healthy_service_is_refused() {
        let service = spawn(8, ServiceConfig::default());
        assert_eq!(service.recover().unwrap_err(), DsgError::NotPoisoned);
        drop(service);
    }

    #[test]
    fn spawn_refuses_a_persist_config() {
        let session = DsgSession::builder().peers(0..4).seed(1).build().unwrap();
        let err = DsgService::spawn(
            session,
            ServiceConfig {
                persist: Some(crate::persist::PersistConfig::default()),
                ..ServiceConfig::default()
            },
        )
        .map(|_| ())
        .unwrap_err();
        assert!(matches!(err, DsgError::InvalidConfig(_)));
    }

    #[test]
    fn second_shutdown_is_a_typed_error_and_drop_stays_safe() {
        let mut service = spawn(8, ServiceConfig::default());
        let ticket = service.submit(Request::communicate(1, 5)).unwrap();
        ticket.wait().unwrap();
        let done = service.shutdown().unwrap();
        done.session.engine().validate().unwrap();
        assert_eq!(service.shutdown().unwrap_err(), DsgError::AlreadyShutDown);
        // Dropping the already-shut-down handle must not panic.
        drop(service);
    }

    #[test]
    fn sojourn_quantiles_walk_the_histogram() {
        let shared = Shared::new();
        assert_eq!(shared.sojourn_quantile_us(99), 0, "no samples yet");
        for _ in 0..99 {
            shared.record_sojourn_us(3); // bucket [2, 4)
        }
        shared.record_sojourn_us(1000); // bucket [512, 1024)
        assert_eq!(shared.sojourn_quantile_us(50), 3);
        assert_eq!(shared.sojourn_quantile_us(99), 3);
        assert_eq!(shared.sojourn_quantile_us(100), 1023);
    }

    #[test]
    fn status_reports_queue_and_progress() {
        let mut service = spawn(16, ServiceConfig::default());
        let status = service.status();
        assert!(!status.closed);
        assert!(!status.poisoned);
        assert_eq!(status.journal_bytes, 0, "no persistence, no journal");
        let ticket = service.submit(Request::communicate(2, 9)).unwrap();
        ticket.wait().unwrap();
        service.shutdown().unwrap();
        // Counters are exact once the worker is joined.
        let status = service.status();
        assert!(status.closed);
        assert!(status.epochs >= 1);
        assert!(status.batches >= 1);
        assert!(status.audits >= 1);
    }
}
