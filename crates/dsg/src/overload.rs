//! Overload control for [`DsgService`](crate::service::DsgService):
//! sojourn-based shedding, brownout degradation, and producer backoff.
//!
//! A service under sustained offered load above engine capacity has only
//! bad untyped answers — an ever-growing queue sojourn, or producers
//! blocking forever. This module makes overload a first-class, typed,
//! observable condition:
//!
//! * **[`OverloadController`]** — a CoDel-style controller fed the queue
//!   sojourn of every drained request. It tracks the *minimum* sojourn
//!   over a sliding evaluation interval (the minimum, not the mean: a
//!   standing queue keeps even its luckiest request waiting, while a
//!   transient burst lets at least one request through quickly). When the
//!   interval minimum exceeds [`OverloadConfig::brownout_target`] the
//!   service serves chunks under **brownout** (the admission gate degrades
//!   to route-only verdicts for cold traffic — restructuring deferred,
//!   latency bounded); above [`OverloadConfig::shed_target`] it also
//!   **sheds**, refusing new submissions with
//!   [`SubmitError::Shed`](crate::service::SubmitError::Shed) and a
//!   retry-after hint. Both states exit with hysteresis (at half their
//!   entry target) so the service flaps neither in nor out, and an empty
//!   queue exits immediately — no backlog is the definitive evidence.
//! * **Deadline shedding** — submissions may carry a deadline
//!   ([`DsgService::submit_with_deadline`]); a request whose deadline
//!   expired while queued is shed at drain time, *before* the journal and
//!   the engine pay for it, resolving its ticket with
//!   [`DsgError::DeadlineExceeded`](crate::DsgError::DeadlineExceeded).
//! * **Stall watchdog** — the ingest loop stamps a heartbeat per stage;
//!   a watchdog thread reports a heartbeat older than
//!   [`OverloadConfig::stall_after`] through
//!   [`DsgObserver::on_stall`](crate::DsgObserver::on_stall) instead of
//!   letting producers hang silently.
//! * **[`RetryPolicy`]** — producer-side jittered exponential backoff
//!   over the typed refusals, used by
//!   [`DsgService::submit_retry`].
//!
//! The controller is pure over `u64` nanosecond timestamps (no clock
//! reads), so its transition ladder is unit-testable without sleeping.
//! Engine determinism is preserved end to end: the *verdict* (brownout on
//! or off) is wall-clock-derived and therefore nondeterministic, but it
//! is journaled inside each WAL frame, so crash replay re-applies the
//! recorded verdicts bit-identically (`tests/crash_recovery.rs`).
//!
//! [`DsgService::submit_with_deadline`]: crate::service::DsgService::submit_with_deadline
//! [`DsgService::submit_retry`]: crate::service::DsgService::submit_retry

use std::time::Duration;

/// Tuning for the service's overload-control layer. Attached to a
/// [`ServiceConfig`](crate::service::ServiceConfig) via
/// [`with_overload`](crate::service::ServiceConfig::with_overload);
/// `None` (the default) disables the layer entirely — no controller, no
/// watchdog, bit-identical service behaviour to the pre-overload service.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OverloadConfig {
    /// Interval-minimum queue sojourn above which chunks are served under
    /// brownout. Must not exceed [`shed_target`](Self::shed_target).
    pub brownout_target: Duration,
    /// Interval-minimum queue sojourn above which new submissions are
    /// refused with [`SubmitError::Shed`](crate::service::SubmitError::Shed).
    pub shed_target: Duration,
    /// Sliding evaluation interval of the sojourn minimum. Longer
    /// intervals react more slowly but resist transient bursts.
    pub interval: Duration,
    /// Retry-after hint attached to shed refusals.
    pub retry_after: Duration,
    /// Heartbeat age beyond which the watchdog reports the ingest loop as
    /// stalled.
    pub stall_after: Duration,
}

impl Default for OverloadConfig {
    fn default() -> Self {
        OverloadConfig {
            brownout_target: Duration::from_millis(5),
            shed_target: Duration::from_millis(20),
            interval: Duration::from_millis(100),
            retry_after: Duration::from_millis(50),
            stall_after: Duration::from_secs(1),
        }
    }
}

impl OverloadConfig {
    /// Sets the brownout sojourn target.
    pub fn with_brownout_target(mut self, target: Duration) -> Self {
        self.brownout_target = target;
        self
    }

    /// Sets the shed sojourn target.
    ///
    /// # Panics
    ///
    /// Panics if `target` is below the brownout target: shedding is the
    /// harsher degradation and must engage at or above it.
    pub fn with_shed_target(mut self, target: Duration) -> Self {
        assert!(
            target >= self.brownout_target,
            "the shed target must be at least the brownout target"
        );
        self.shed_target = target;
        self
    }

    /// Sets the sliding evaluation interval.
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero.
    pub fn with_interval(mut self, interval: Duration) -> Self {
        assert!(!interval.is_zero(), "the evaluation interval must be positive");
        self.interval = interval;
        self
    }

    /// Sets the retry-after hint attached to shed refusals.
    pub fn with_retry_after(mut self, hint: Duration) -> Self {
        self.retry_after = hint;
        self
    }

    /// Sets the watchdog's stall threshold.
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is zero.
    pub fn with_stall_after(mut self, threshold: Duration) -> Self {
        assert!(!threshold.is_zero(), "the stall threshold must be positive");
        self.stall_after = threshold;
        self
    }
}

/// The controller's degradation ladder, in increasing severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum OverloadState {
    /// Queue sojourn within targets: full service.
    #[default]
    Nominal,
    /// Sojourn above the brownout target: chunks are served with the
    /// admission gate degraded to route-only verdicts for cold traffic.
    Brownout,
    /// Sojourn above the shed target: additionally, new submissions are
    /// refused with a typed `Shed` error and a retry-after hint (brownout
    /// stays engaged for whatever is already queued).
    Shedding,
}

impl OverloadState {
    /// Whether new submissions are refused in this state.
    pub fn sheds(self) -> bool {
        matches!(self, OverloadState::Shedding)
    }

    /// Whether chunks are served under brownout in this state.
    pub fn brownout(self) -> bool {
        !matches!(self, OverloadState::Nominal)
    }
}

/// A state change the controller decided on, with the interval minimum
/// that triggered it (0 for an idle-queue exit).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OverloadTransition {
    /// The state the controller moved to.
    pub state: OverloadState,
    /// The evaluated interval-minimum sojourn, in nanoseconds.
    pub min_sojourn_ns: u64,
}

/// The CoDel-style sojourn controller. Pure over `u64` nanosecond
/// timestamps — the caller supplies `now`; the controller never reads a
/// clock. See the [module docs](self) for the model.
#[derive(Debug)]
pub struct OverloadController {
    brownout_ns: u64,
    shed_ns: u64,
    interval_ns: u64,
    window_start: Option<u64>,
    window_min: u64,
    state: OverloadState,
}

impl OverloadController {
    /// Builds a controller from the config's targets.
    pub fn new(config: &OverloadConfig) -> Self {
        OverloadController {
            brownout_ns: config.brownout_target.as_nanos() as u64,
            shed_ns: config.shed_target.as_nanos() as u64,
            interval_ns: (config.interval.as_nanos() as u64).max(1),
            window_start: None,
            window_min: u64::MAX,
            state: OverloadState::default(),
        }
    }

    /// The current degradation state.
    pub fn state(&self) -> OverloadState {
        self.state
    }

    /// Feeds one drained request's queue sojourn, observed at `now_ns`.
    /// Closes the evaluation window (and possibly transitions) once the
    /// window is older than the configured interval; returns the
    /// transition if the state changed.
    pub fn record_sojourn(&mut self, now_ns: u64, sojourn_ns: u64) -> Option<OverloadTransition> {
        let start = *self.window_start.get_or_insert(now_ns);
        self.window_min = self.window_min.min(sojourn_ns);
        if now_ns.saturating_sub(start) < self.interval_ns {
            return None;
        }
        let min = self.window_min;
        self.window_start = Some(now_ns);
        self.window_min = u64::MAX;
        self.transition(min)
    }

    /// The ingest loop found the queue empty: no backlog is definitive
    /// evidence against overload, so the controller exits to
    /// [`OverloadState::Nominal`] immediately (the window restarts).
    pub fn note_idle(&mut self, now_ns: u64) -> Option<OverloadTransition> {
        self.window_start = Some(now_ns);
        self.window_min = u64::MAX;
        self.transition(0)
    }

    /// The hysteresis ladder: each state is entered when the interval
    /// minimum exceeds its target and exited only when the minimum drops
    /// to half that target, so a sojourn hovering at a target never flaps
    /// the state.
    fn transition(&mut self, min: u64) -> Option<OverloadTransition> {
        let shedding = OverloadState::Shedding;
        let next = if min > self.shed_ns || (self.state == shedding && min > self.shed_ns / 2) {
            OverloadState::Shedding
        } else if min > self.brownout_ns
            || (self.state.brownout() && min > self.brownout_ns / 2)
        {
            OverloadState::Brownout
        } else {
            OverloadState::Nominal
        };
        if next == self.state {
            return None;
        }
        self.state = next;
        Some(OverloadTransition {
            state: next,
            min_sojourn_ns: min,
        })
    }
}

/// Producer-side retry policy for
/// [`DsgService::submit_retry`](crate::service::DsgService::submit_retry):
/// jittered exponential backoff over the typed refusals (`Overloaded` and
/// `Shed`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total submit attempts (≥ 1); the last refusal is returned to the
    /// caller.
    pub attempts: u32,
    /// Base backoff delay (doubled per attempt).
    pub base: Duration,
    /// Backoff ceiling.
    pub cap: Duration,
    /// Seed of the jitter stream (each attempt draws deterministically
    /// from `seed` and the attempt index, so a policy value reproduces
    /// its delays).
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            attempts: 5,
            base: Duration::from_millis(1),
            cap: Duration::from_millis(100),
            seed: 0x5EED,
        }
    }
}

impl RetryPolicy {
    /// The delay before retry number `attempt` (0-based: the delay after
    /// the first refusal is `backoff(0, ..)`). Equal-jitter exponential:
    /// uniformly in `[d/2, d]` for `d = min(cap, base · 2^attempt)`,
    /// floored at the service's `retry_after` hint when one was given.
    pub fn backoff(&self, attempt: u32, hint: Option<Duration>) -> Duration {
        let base_ns = (self.base.as_nanos() as u64).max(1);
        let cap_ns = (self.cap.as_nanos() as u64).max(base_ns);
        let exp_ns = base_ns
            .saturating_mul(1u64 << attempt.min(32))
            .min(cap_ns);
        let jitter = splitmix64(self.seed ^ u64::from(attempt).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let delay_ns = exp_ns / 2 + jitter % (exp_ns / 2 + 1);
        let hint_ns = hint.map(|h| h.as_nanos() as u64).unwrap_or(0);
        Duration::from_nanos(delay_ns.max(hint_ns))
    }
}

fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    const MS: u64 = 1_000_000;

    fn controller() -> OverloadController {
        // Brownout above 2 ms, shed above 8 ms, 10 ms windows.
        OverloadController::new(
            &OverloadConfig::default()
                .with_brownout_target(Duration::from_millis(2))
                .with_shed_target(Duration::from_millis(8))
                .with_interval(Duration::from_millis(10)),
        )
    }

    #[test]
    fn climbs_the_ladder_as_the_minimum_grows() {
        let mut c = controller();
        // Window 1: min 3 ms → brownout.
        assert_eq!(c.record_sojourn(0, 3 * MS), None);
        let t = c.record_sojourn(10 * MS, 4 * MS).expect("transition");
        assert_eq!(t.state, OverloadState::Brownout);
        assert_eq!(t.min_sojourn_ns, 3 * MS);
        // Window 2: min 9 ms → shedding.
        let t = c.record_sojourn(21 * MS, 9 * MS).expect("transition");
        assert_eq!(t.state, OverloadState::Shedding);
        assert!(c.state().sheds());
        assert!(c.state().brownout());
    }

    #[test]
    fn the_minimum_not_the_maximum_decides() {
        let mut c = controller();
        // A burst with one fast request in the window: no degradation.
        c.record_sojourn(0, 50 * MS);
        c.record_sojourn(MS, MS); // the lucky one
        assert_eq!(c.record_sojourn(11 * MS, 40 * MS), None);
        assert_eq!(c.state(), OverloadState::Nominal);
    }

    #[test]
    fn exits_with_hysteresis_not_at_the_entry_target() {
        let mut c = controller();
        c.record_sojourn(0, 9 * MS);
        c.record_sojourn(10 * MS, 9 * MS); // → Shedding
        assert_eq!(c.state(), OverloadState::Shedding);
        // min 5 ms: below the 8 ms shed target but above its 4 ms exit
        // bar — stays shedding (no flap).
        assert_eq!(c.record_sojourn(21 * MS, 5 * MS), None);
        assert_eq!(c.state(), OverloadState::Shedding);
        // min 3 ms: exits shedding, but still above the 2 ms brownout
        // target → brownout.
        let t = c.record_sojourn(32 * MS, 3 * MS).expect("transition");
        assert_eq!(t.state, OverloadState::Brownout);
        // min 1.5 ms: below the brownout target but above its 1 ms exit
        // bar — stays browned out.
        assert_eq!(c.record_sojourn(43 * MS, 3 * MS / 2), None);
        // min 0.5 ms: full exit.
        let t = c.record_sojourn(54 * MS, MS / 2).expect("transition");
        assert_eq!(t.state, OverloadState::Nominal);
    }

    #[test]
    fn an_idle_queue_exits_immediately() {
        let mut c = controller();
        c.record_sojourn(0, 9 * MS);
        c.record_sojourn(10 * MS, 9 * MS);
        assert_eq!(c.state(), OverloadState::Shedding);
        let t = c.note_idle(12 * MS).expect("transition");
        assert_eq!(t.state, OverloadState::Nominal);
        assert_eq!(t.min_sojourn_ns, 0);
        // Idle while nominal is a no-op.
        assert_eq!(c.note_idle(13 * MS), None);
    }

    #[test]
    fn zero_targets_shed_on_any_positive_sojourn() {
        let mut c = OverloadController::new(
            &OverloadConfig::default()
                .with_brownout_target(Duration::ZERO)
                .with_shed_target(Duration::ZERO)
                .with_interval(Duration::from_nanos(1)),
        );
        let t = c.record_sojourn(0, 1).or_else(|| c.record_sojourn(2, 1));
        assert_eq!(t.expect("transition").state, OverloadState::Shedding);
    }

    #[test]
    fn shed_target_below_brownout_target_is_rejected() {
        let result = std::panic::catch_unwind(|| {
            OverloadConfig::default()
                .with_brownout_target(Duration::from_millis(10))
                .with_shed_target(Duration::from_millis(5))
        });
        assert!(result.is_err());
    }

    #[test]
    fn backoff_is_bounded_jittered_and_reproducible() {
        let policy = RetryPolicy::default();
        for attempt in 0..12 {
            let d = policy.backoff(attempt, None);
            let exp = policy.cap.min(policy.base * 2u32.saturating_pow(attempt));
            assert!(d <= exp, "attempt {attempt}: {d:?} > {exp:?}");
            assert!(d >= exp / 2, "attempt {attempt}: {d:?} < {:?}", exp / 2);
            assert_eq!(d, policy.backoff(attempt, None), "must reproduce");
        }
        // The hint floors the delay.
        let hinted = policy.backoff(0, Some(Duration::from_secs(2)));
        assert!(hinted >= Duration::from_secs(2));
    }
}
