//! The session/batch request API: [`DsgBuilder`], [`DsgSession`], and the
//! typed submission pipeline.
//!
//! A session owns a [`DynamicSkipGraph`] engine and is the supported way
//! to build and drive one:
//!
//! ```rust
//! use dsg::prelude::*;
//!
//! # fn main() -> Result<(), DsgError> {
//! let mut session = DsgSession::builder()
//!     .peers(0..32)
//!     .seed(42)
//!     .install(InstallStrategy::Batched)
//!     .build()?;
//!
//! // Single typed requests...
//! session.submit(Request::communicate(3, 29))?;
//!
//! // ...or whole batches: consecutive communication requests are served
//! // in epochs — all pairs routed first, one merged transformation per
//! // cluster of overlapping subtrees, ONE install pass per epoch.
//! let batch = [
//!     Request::communicate(1, 17),
//!     Request::communicate(5, 23),
//!     Request::Join(100),
//! ];
//! let outcome = session.submit_batch(&batch)?;
//! assert_eq!(outcome.outcomes.len(), 3);
//! # Ok(())
//! # }
//! ```
//!
//! Construction replaces the three historical constructors (`new`,
//! `new_random`, `from_parts`) with one fluent, *validating* path: the
//! builder returns [`DsgError::InvalidConfig`] instead of panicking on bad
//! parameters. Metrics flow through [`DsgObserver`] hooks instead of
//! polling the engine's [`RunStats`](crate::RunStats).
//!
//! # Threading model
//!
//! A session is single-threaded at its surface: `submit`/`submit_batch`
//! take `&mut self` and everything observable happens on the caller's
//! thread. Internally, an epoch is served **plan-then-apply**: the
//! expensive Θ(n) *planning* work — the per-cluster transformation
//! (vector recomputation, AMF medians, diff derivation) and the
//! dummy-reconciliation detection scans — only *reads* the graph and
//! state table, so with [`DsgBuilder::shards`]`(k > 1)` it fans out
//! across `k` scoped worker threads (`std::thread::scope`; no threads
//! outlive the call). All *mutation* — state-delta replay, group/timestamp
//! rules, the membership install, dummy placement — is applied by the
//! calling thread in submission order. Results are bit-for-bit identical
//! for every shard count: planning reads are snapshots of the pre-epoch
//! structure, worker outputs are merged in deterministic (submission)
//! order, and every random draw is derived per cluster instead of from a
//! shared stream (`tests/shard_equivalence.rs` proves graphs, states,
//! dummy populations and outcomes equal for shards ∈ {1, 2, 4, 8}).
//!
//! To drive a session from **multiple producer threads**, hand it to a
//! [`DsgService`](crate::service::DsgService): the session moves onto a
//! dedicated ingest thread (it is `Send` — observers are shared via
//! `Arc<Mutex<_>>`), producers submit requests through a bounded queue
//! with backpressure, and the service layers fault containment (plan-stage
//! aborts, apply-stage poisoning, opt-in recovery) and a tiered invariant
//! auditor on top. The service serializes everything onto the one engine
//! thread, so the bit-for-bit determinism above carries over: the epochs
//! it forms replay identically through [`DsgSession::submit_batch`].
//!
//! # Failure model
//!
//! `submit`/`submit_batch` validate each request against the engine before
//! mutating anything and return typed [`DsgError`]s — duplicate joins,
//! leaves of absent peers, self-communications and unknown endpoints fail
//! cleanly with the structure untouched (requests of *earlier* epochs in
//! the same batch remain applied; the error names the first offender).

use std::sync::{Arc, Mutex};

use dsg_skipgraph::MembershipVector;

use crate::config::{AdaptPolicy, DsgConfig, InstallStrategy, MedianStrategy, PolicyConfig};
use crate::cost::RunStats;
use crate::dsg::{DynamicSkipGraph, EpochReport, RequestOutcome};
use crate::error::DsgError;
use crate::observer::{
    AdmissionEvent, AuditEvent, BalanceRepairEvent, DsgObserver, SharedObserver, TransformEvent,
};
use crate::request::Request;
use crate::transform::MAX_EPOCH_PAIRS;
use crate::Result;

/// How the builder assigns initial membership vectors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
enum InitialVectors {
    /// Rank-derived bits: every list splits exactly in half, so the initial
    /// structure is a-balanced for every `a ≥ 1` (the paper's `S₀ ∈ S`).
    #[default]
    Balanced,
    /// Uniformly random bits — the classic randomised construction.
    Random,
    /// Explicit `(peer, vector)` pairs supplied via [`DsgBuilder::members`].
    Explicit,
}

/// Fluent, validating builder for a [`DsgSession`].
///
/// Obtained from [`DsgSession::builder`]; see the
/// [module documentation](self) for an example.
#[derive(Default)]
pub struct DsgBuilder {
    peers: Vec<u64>,
    members: Vec<(u64, MembershipVector)>,
    vectors: InitialVectors,
    config: DsgConfig,
    /// Held raw so validation happens in [`DsgBuilder::build`] (the
    /// `DsgConfig::with_a` setter panics instead of erroring).
    a: Option<usize>,
    /// Held raw like `a`: `DsgConfig::with_shards` panics on 0, the
    /// builder errors instead.
    shards: Option<usize>,
    observers: Vec<SharedObserver>,
}

impl std::fmt::Debug for DsgBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DsgBuilder")
            .field("peers", &self.peers.len())
            .field("members", &self.members.len())
            .field("vectors", &self.vectors)
            .field("config", &self.config)
            .field("a", &self.a)
            .field("observers", &self.observers.len())
            .finish()
    }
}

impl DsgBuilder {
    /// The peer keys of the initial network (balanced rank-derived vectors
    /// unless [`random_vectors`](Self::random_vectors) is set).
    pub fn peers<I: IntoIterator<Item = u64>>(mut self, peers: I) -> Self {
        self.peers = peers.into_iter().collect();
        self
    }

    /// Explicit `(peer key, membership vector)` pairs; replaces the old
    /// `DynamicSkipGraph::from_parts` constructor (used by the paper's
    /// worked examples and by tests). Mutually exclusive with
    /// [`peers`](Self::peers).
    pub fn members<I: IntoIterator<Item = (u64, MembershipVector)>>(mut self, members: I) -> Self {
        self.members = members.into_iter().collect();
        self.vectors = InitialVectors::Explicit;
        self
    }

    /// Use uniformly random initial membership vectors (the classic
    /// randomised construction); replaces `DynamicSkipGraph::new_random`.
    pub fn random_vectors(mut self) -> Self {
        self.vectors = InitialVectors::Random;
        self
    }

    /// Seed for all randomised components.
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// The balance parameter `a` (validated at [`build`](Self::build) —
    /// must be ≥ 2).
    pub fn a(mut self, a: usize) -> Self {
        self.a = Some(a);
        self
    }

    /// The median strategy of the per-level splits.
    pub fn median(mut self, median: MedianStrategy) -> Self {
        self.config.median = median;
        self
    }

    /// The membership-vector install strategy.
    pub fn install(mut self, install: InstallStrategy) -> Self {
        self.config.install = install;
        self
    }

    /// Worker shards for the epoch *plan* stages (validated at
    /// [`build`](Self::build) — must be ≥ 1). The default of 1 plans
    /// inline; higher counts fan the per-cluster transformation planning
    /// and the dummy-reconciliation detection scans out across scoped
    /// threads, with bit-for-bit identical results (see the
    /// [module documentation](self)'s threading model).
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = Some(shards);
        self
    }

    /// Enables the adaptive epoch flush: when the previous epoch collapsed
    /// into a single cluster (total subtree overlap — nothing left for the
    /// plan shards to parallelise), the session cuts subsequent epochs at
    /// `4 · shards` pairs instead of the full per-epoch limit, restoring
    /// the full cap once an epoch splits into ≥ 2 clusters again. Off by
    /// default.
    pub fn adaptive_flush(mut self, on: bool) -> Self {
        self.config.adaptive_flush = on;
        self
    }

    /// Enable or disable a-balance maintenance (dummy nodes).
    pub fn balance_maintenance(mut self, on: bool) -> Self {
        self.config.maintain_balance = on;
        self
    }

    /// The adaptation policy: with
    /// [`PolicyConfig::gated()`](crate::PolicyConfig::gated), a count-min
    /// frequency sketch estimates pair hotness and only hot (or budgeted)
    /// clusters restructure; cold pairs are routed without transformation.
    /// Defaults to [`AdaptPolicy::Always`](crate::AdaptPolicy::Always)
    /// (every communicate restructures, bit-identical to the pre-policy
    /// engine).
    pub fn policy(mut self, policy: PolicyConfig) -> Self {
        self.config.policy = policy;
        self
    }

    /// Start from a complete [`DsgConfig`] (the fluent setters then refine
    /// it).
    pub fn config(mut self, config: DsgConfig) -> Self {
        self.config = config;
        self
    }

    /// Registers an observer; the session invokes its hooks for every
    /// served request, epoch, and balance repair.
    pub fn observer(mut self, observer: SharedObserver) -> Self {
        self.observers.push(observer);
        self
    }

    /// Validates the configuration and builds the session.
    ///
    /// # Errors
    ///
    /// [`DsgError::InvalidConfig`] for a balance parameter below 2 or for
    /// supplying both [`peers`](Self::peers) and [`members`](Self::members);
    /// [`DsgError::DuplicatePeer`] if a peer key appears twice.
    pub fn build(self) -> Result<DsgSession> {
        let mut config = self.config;
        if let Some(a) = self.a {
            if a < 2 {
                return Err(DsgError::InvalidConfig(format!(
                    "the balance parameter a must be at least 2, got {a}"
                )));
            }
            config.a = a;
        }
        if let Some(shards) = self.shards {
            if shards == 0 {
                return Err(DsgError::InvalidConfig(
                    "the plan stage needs at least one worker shard".to_string(),
                ));
            }
            config.shards = shards;
        }
        if self.vectors == InitialVectors::Explicit && !self.peers.is_empty() {
            return Err(DsgError::InvalidConfig(
                "peers(..) and members(..) are mutually exclusive".to_string(),
            ));
        }
        let engine = match self.vectors {
            InitialVectors::Balanced => DynamicSkipGraph::build_balanced(self.peers, config)?,
            InitialVectors::Random => DynamicSkipGraph::build_random(self.peers, config)?,
            InitialVectors::Explicit => DynamicSkipGraph::build_from_members(self.members, config)?,
        };
        Ok(DsgSession {
            engine,
            observers: self.observers,
            epochs: 0,
        })
    }

    /// Builds a session around an engine restored from a snapshot
    /// checkpoint (`DsgService::open`'s recovery path). The builder's
    /// *observers* carry over — they describe the reopening process, not
    /// the persisted structure — while its peers/vectors/config describe a
    /// cold start and are ignored: the restored engine already carries the
    /// configuration it was captured with. The epoch counter restarts at
    /// zero, like the metrics of a restarted process.
    pub(crate) fn build_recovered(self, engine: DynamicSkipGraph) -> DsgSession {
        DsgSession {
            engine,
            observers: self.observers,
            epochs: 0,
        }
    }
}

/// The result of submitting one [`Request`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitOutcome {
    /// A communication request was served.
    Communicated(RequestOutcome),
    /// A peer joined.
    Joined {
        /// The joined peer's key.
        peer: u64,
    },
    /// A peer left.
    Left {
        /// The departed peer's key.
        peer: u64,
    },
    /// The logical clock advanced.
    Ticked {
        /// The clock value after the tick.
        now: u64,
    },
}

impl SubmitOutcome {
    /// The request outcome, if this was a communication.
    pub fn request_outcome(&self) -> Option<&RequestOutcome> {
        match self {
            SubmitOutcome::Communicated(outcome) => Some(outcome),
            _ => None,
        }
    }
}

/// The result of [`DsgSession::submit_batch`]: per-request outcomes plus
/// the epoch-level accounting of the batched pipeline.
#[derive(Debug, Clone, Default)]
pub struct BatchOutcome {
    /// One outcome per submitted request, in submission order.
    pub outcomes: Vec<SubmitOutcome>,
    /// Transformation epochs the batch was served in. Consecutive
    /// communication requests share an epoch until an endpoint repeats, a
    /// membership/clock request intervenes, or the per-epoch pair limit is
    /// reached.
    pub epochs: usize,
    /// Merged transformations across all epochs (clusters of pairs with
    /// overlapping `l_α` subtrees).
    pub clusters: usize,
    /// Transformation-install passes pushed into the structure — at most
    /// one per epoch under [`InstallStrategy::Batched`], regardless of the
    /// batch size.
    pub install_passes: usize,
    /// Changed `(node, level)` pairs installed across the batch.
    pub touched_pairs: usize,
    /// Dummy nodes actually removed by the differential GC across the
    /// batch (reclaimed standing dummies are not counted).
    pub dummies_destroyed: usize,
    /// Dummy slots the balance repairs established across the batch —
    /// reclaimed and created alike (lifecycle-independent).
    pub dummies_inserted: usize,
    /// Standing dummies the reconciliation reclaimed in place across the
    /// batch (0 under the per-node destroy/recreate oracle).
    pub dummies_reused: usize,
    /// Genuinely new dummies the reconciliation created across the batch
    /// (reclaims excluded); almost all go through the bulk splice
    /// installer.
    pub dummies_bulk_inserted: usize,
    /// Clusters the plan stages planned across the batch's epochs
    /// (= [`BatchOutcome::clusters`] with the adaptation policy off;
    /// gated clusters are never planned).
    pub planned_clusters: usize,
    /// The largest worker-shard count any of the batch's epochs actually
    /// planned on (1 = fully inline).
    pub plan_shards: usize,
    /// Wall-clock nanoseconds the plan stages took across the batch. A
    /// timing observable — excluded from determinism comparisons.
    pub plan_wall_ns: u64,
    /// Requests whose cluster the admission gate declined to restructure
    /// across the batch (0 with the policy off).
    pub pairs_gated: u64,
    /// Cold clusters restructured via the per-epoch budget across the
    /// batch.
    pub restructures_budgeted: u64,
    /// Frequency-sketch counter-halving passes across the batch.
    pub sketch_aging_passes: u64,
    /// Requests routed without restructuring under a brownout verdict
    /// ([`submit_batch_degraded`](DsgSession::submit_batch_degraded) with
    /// `brownout = true`). 0 outside brownout.
    pub pairs_browned_out: u64,
}

impl BatchOutcome {
    /// The outcomes of the batch's communication requests, in order.
    pub fn request_outcomes(&self) -> impl Iterator<Item = &RequestOutcome> {
        self.outcomes.iter().filter_map(|o| o.request_outcome())
    }
}

/// A session over a locally self-adjusting skip graph: the public entry
/// point of the crate.
///
/// Built with [`DsgSession::builder`]; serves typed [`Request`]s one at a
/// time ([`submit`](Self::submit)) or in epoch-batched form
/// ([`submit_batch`](Self::submit_batch)), and reports progress to
/// registered [`DsgObserver`]s. The underlying [`DynamicSkipGraph`] engine
/// stays reachable through [`engine`](Self::engine) for inspection.
pub struct DsgSession {
    engine: DynamicSkipGraph,
    observers: Vec<SharedObserver>,
    epochs: u64,
}

impl std::fmt::Debug for DsgSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DsgSession")
            .field("engine", &self.engine)
            .field("observers", &self.observers.len())
            .field("epochs", &self.epochs)
            .finish()
    }
}

impl DsgSession {
    /// Starts building a session.
    pub fn builder() -> DsgBuilder {
        DsgBuilder::default()
    }

    /// Registers an observer on a live session.
    pub fn add_observer(&mut self, observer: SharedObserver) {
        self.observers.push(observer);
    }

    /// Convenience for registering a freshly created observer, returning
    /// the shared handle for later inspection. The handle crosses threads,
    /// so it stays readable while the session serves requests from a
    /// [`DsgService`](crate::service::DsgService) ingest thread.
    pub fn observe<O: DsgObserver + Send + 'static>(&mut self, observer: O) -> Arc<Mutex<O>> {
        let shared = Arc::new(Mutex::new(observer));
        self.observers.push(shared.clone());
        shared
    }

    /// Submits one typed request.
    ///
    /// # Errors
    ///
    /// Propagates the engine's validation errors ([`DsgError::UnknownPeer`],
    /// [`DsgError::SelfCommunication`], [`DsgError::DuplicatePeer`]).
    pub fn submit(&mut self, request: Request) -> Result<SubmitOutcome> {
        let mut batch = self.submit_batch(std::slice::from_ref(&request))?;
        Ok(batch.outcomes.remove(0))
    }

    /// Submits a batch of typed requests, serving consecutive communication
    /// requests as **epochs**: every pair of an epoch is routed first, one
    /// merged transformation runs per cluster of overlapping `l_α`
    /// subtrees, and all membership changes are installed in a single
    /// batch pass per epoch (see
    /// [`DynamicSkipGraph::communicate_epoch`]). An epoch is flushed when
    /// an endpoint repeats within the batch, when a membership or clock
    /// request intervenes, or when it reaches the per-epoch pair limit;
    /// the flushed requests and the interleaved membership changes are
    /// applied strictly in submission order.
    ///
    /// # Errors
    ///
    /// Propagates the engine's validation errors. Requests of epochs that
    /// completed before the failing one remain applied.
    pub fn submit_batch(&mut self, requests: &[Request]) -> Result<BatchOutcome> {
        self.submit_batch_degraded(requests, false)
    }

    /// [`submit_batch`](Self::submit_batch) with an explicit **brownout**
    /// verdict, forwarded to every epoch the batch flushes (see
    /// [`DynamicSkipGraph::communicate_epoch_degraded`]). A durable
    /// [`DsgService`](crate::service::DsgService) journals the verdict
    /// per chunk and replays it on recovery, so the flag must cover the
    /// whole chunk — which is exactly what this entry point does.
    pub fn submit_batch_degraded(
        &mut self,
        requests: &[Request],
        brownout: bool,
    ) -> Result<BatchOutcome> {
        let mut batch = BatchOutcome {
            outcomes: Vec::with_capacity(requests.len()),
            ..BatchOutcome::default()
        };
        // Pending epoch: (request index, pair), plus the endpoint set that
        // decides when a reused peer forces a flush.
        let mut pending: Vec<(usize, (u64, u64))> = Vec::new();
        let mut endpoints: Vec<u64> = Vec::new();
        let mut slots: Vec<Option<SubmitOutcome>> = requests.iter().map(|_| None).collect();
        // Adaptive epoch flush (opt-in): while the previous epoch collapsed
        // into ONE cluster — total subtree overlap, so additional pairs add
        // no plan-stage parallelism — cap the pending epoch at `4 · shards`
        // pairs; an epoch that splits into ≥ 2 clusters restores the full
        // per-epoch limit. Purely a function of served reports, so the
        // boundaries stay deterministic.
        let adaptive = self.engine.config().adaptive_flush;
        let overlap_cap = (4 * self.engine.config().shards).clamp(1, MAX_EPOCH_PAIRS);
        let mut epoch_cap = MAX_EPOCH_PAIRS;

        let flush = |session: &mut Self,
                     pending: &mut Vec<(usize, (u64, u64))>,
                     endpoints: &mut Vec<u64>,
                     slots: &mut Vec<Option<SubmitOutcome>>,
                     batch: &mut BatchOutcome,
                     epoch_cap: &mut usize|
         -> Result<()> {
            if pending.is_empty() {
                return Ok(());
            }
            let pairs: Vec<(u64, u64)> = pending.iter().map(|&(_, pair)| pair).collect();
            let report = session.engine.communicate_epoch_degraded(&pairs, brownout)?;
            session.record_epoch(&report, pairs.len());
            if adaptive {
                if report.clusters >= 2 {
                    *epoch_cap = MAX_EPOCH_PAIRS;
                } else if pairs.len() > 1 {
                    // A multi-pair epoch collapsed into one cluster: total
                    // overlap pressure. A single-pair epoch is no evidence
                    // either way and leaves the cap as it is.
                    *epoch_cap = overlap_cap;
                }
            }
            batch.epochs += 1;
            batch.clusters += report.clusters;
            batch.install_passes += report.install_passes;
            batch.touched_pairs += report.touched_pairs;
            batch.dummies_destroyed += report.dummies_destroyed;
            batch.dummies_inserted += report.dummies_inserted;
            batch.dummies_reused += report.dummies_reused;
            batch.dummies_bulk_inserted += report.dummies_bulk_inserted;
            batch.planned_clusters += report.planned_clusters;
            batch.plan_shards = batch.plan_shards.max(report.plan_shards);
            batch.plan_wall_ns += report.plan_wall_ns;
            batch.pairs_gated += report.pairs_gated;
            batch.restructures_budgeted += report.restructures_budgeted;
            batch.sketch_aging_passes += report.sketch_aging_passes;
            batch.pairs_browned_out += report.pairs_browned_out;
            for (&(index, _), outcome) in pending.iter().zip(report.outcomes) {
                slots[index] = Some(SubmitOutcome::Communicated(outcome));
            }
            pending.clear();
            endpoints.clear();
            Ok(())
        };

        for (index, request) in requests.iter().enumerate() {
            match *request {
                Request::Communicate { u, v } => {
                    // A reused endpoint serialises into the next epoch —
                    // the documented deterministic order for requests that
                    // touch the same peer.
                    if endpoints.contains(&u)
                        || endpoints.contains(&v)
                        || pending.len() >= epoch_cap
                    {
                        flush(
                            self,
                            &mut pending,
                            &mut endpoints,
                            &mut slots,
                            &mut batch,
                            &mut epoch_cap,
                        )?;
                    }
                    pending.push((index, (u, v)));
                    endpoints.push(u);
                    endpoints.push(v);
                }
                Request::Join(peer) => {
                    flush(
                        self,
                        &mut pending,
                        &mut endpoints,
                        &mut slots,
                        &mut batch,
                        &mut epoch_cap,
                    )?;
                    self.engine.add_peer(peer)?;
                    slots[index] = Some(SubmitOutcome::Joined { peer });
                }
                Request::Leave(peer) => {
                    flush(
                        self,
                        &mut pending,
                        &mut endpoints,
                        &mut slots,
                        &mut batch,
                        &mut epoch_cap,
                    )?;
                    self.engine.remove_peer(peer)?;
                    slots[index] = Some(SubmitOutcome::Left { peer });
                }
                Request::Tick(to) => {
                    flush(
                        self,
                        &mut pending,
                        &mut endpoints,
                        &mut slots,
                        &mut batch,
                        &mut epoch_cap,
                    )?;
                    self.engine.advance_time(to);
                    slots[index] = Some(SubmitOutcome::Ticked {
                        now: self.engine.time(),
                    });
                }
            }
        }
        flush(
            self,
            &mut pending,
            &mut endpoints,
            &mut slots,
            &mut batch,
            &mut epoch_cap,
        )?;
        batch.outcomes = slots
            .into_iter()
            .map(|slot| {
                slot.expect("every request was served by exactly one epoch or applied inline")
            })
            .collect();
        Ok(batch)
    }

    /// Notifies the observers about one completed epoch.
    fn record_epoch(&mut self, report: &EpochReport, requests: usize) {
        self.epochs += 1;
        if self.observers.is_empty() {
            return;
        }
        let transform = TransformEvent {
            epoch: self.epochs,
            requests,
            clusters: report.clusters,
            install_passes: report.install_passes,
            touched_pairs: report.touched_pairs,
            planned_clusters: report.planned_clusters,
            plan_shards: report.plan_shards,
            plan_wall_ns: report.plan_wall_ns,
            pairs_gated: report.pairs_gated,
            restructures_budgeted: report.restructures_budgeted,
            sketch_aging_passes: report.sketch_aging_passes,
            pairs_browned_out: report.pairs_browned_out,
        };
        let repair = BalanceRepairEvent {
            epoch: self.epochs,
            dummies_destroyed: report.dummies_destroyed,
            dummies_inserted: report.dummies_inserted,
            dummies_reused: report.dummies_reused,
            dummies_bulk_inserted: report.dummies_bulk_inserted,
            live_dummies: self.engine.dummy_count(),
        };
        // The admission event only exists when the gate is on: a silent
        // stream of all-zero events under `Always` would make "the gate is
        // off" and "the gate never gated" indistinguishable to observers.
        let admission = match self.engine.config().policy.policy {
            AdaptPolicy::Gated => Some(AdmissionEvent {
                epoch: self.epochs,
                requests,
                clusters: report.clusters,
                pairs_gated: report.pairs_gated,
                restructures_budgeted: report.restructures_budgeted,
                sketch_aging_passes: report.sketch_aging_passes,
            }),
            AdaptPolicy::Always => None,
        };
        for observer in &self.observers {
            let mut observer = observer.lock().expect("observer lock");
            for outcome in &report.outcomes {
                observer.on_request(outcome);
            }
            observer.on_transform(&transform);
            observer.on_balance_repair(&repair);
            if let Some(event) = &admission {
                observer.on_admission(event);
            }
        }
    }

    /// Notifies the observers about one completed invariant audit (invoked
    /// by the [`DsgService`](crate::service::DsgService) tiered auditor).
    pub(crate) fn notify_audit(&self, event: &AuditEvent) {
        for observer in &self.observers {
            observer.lock().expect("observer lock").on_audit(event);
        }
    }

    /// Notifies the observers about an overload-state transition (invoked
    /// by the [`DsgService`](crate::service::DsgService) ingest loop).
    pub(crate) fn notify_overload(&self, event: &crate::observer::OverloadEvent) {
        for observer in &self.observers {
            observer.lock().expect("observer lock").on_overload(event);
        }
    }

    /// Clones the observer handles — the service's stall watchdog keeps a
    /// set so it can report from its own thread while the ingest thread
    /// (and with it the session) is wedged.
    pub(crate) fn observer_handles(&self) -> Vec<SharedObserver> {
        self.observers.clone()
    }

    /// The number of transformation epochs served so far.
    pub fn epochs(&self) -> u64 {
        self.epochs
    }

    /// Read access to the underlying engine (structure queries, state
    /// inspection, validation).
    pub fn engine(&self) -> &DynamicSkipGraph {
        &self.engine
    }

    /// Mutable access to the underlying engine, for tests and tools that
    /// reconstruct paper fixtures. Requests submitted directly to the
    /// engine bypass the observers.
    pub fn engine_mut(&mut self) -> &mut DynamicSkipGraph {
        &mut self.engine
    }

    /// Cumulative cost statistics of the engine.
    pub fn stats(&self) -> &RunStats {
        self.engine.stats()
    }

    /// Number of peers (excluding dummy nodes).
    pub fn len(&self) -> usize {
        self.engine.len()
    }

    /// Returns `true` if the network has no peers.
    pub fn is_empty(&self) -> bool {
        self.engine.is_empty()
    }

    /// Current structure height.
    pub fn height(&self) -> usize {
        self.engine.height()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observer::TransformEvent;

    #[derive(Default)]
    struct Recorder {
        requests: usize,
        epochs: Vec<TransformEvent>,
        repairs: usize,
    }

    impl DsgObserver for Recorder {
        fn on_request(&mut self, _outcome: &RequestOutcome) {
            self.requests += 1;
        }
        fn on_transform(&mut self, event: &TransformEvent) {
            self.epochs.push(*event);
        }
        fn on_balance_repair(&mut self, _event: &BalanceRepairEvent) {
            self.repairs += 1;
        }
    }

    #[test]
    fn builder_validates_the_balance_parameter() {
        let err = DsgSession::builder().peers(0..8).a(1).build().unwrap_err();
        assert!(matches!(err, DsgError::InvalidConfig(_)));
        assert!(DsgSession::builder().peers(0..8).a(2).build().is_ok());
    }

    #[test]
    fn builder_rejects_peers_and_members_together() {
        let err = DsgSession::builder()
            .peers(0..4)
            .members([(9, MembershipVector::empty())])
            .build()
            .unwrap_err();
        assert!(matches!(err, DsgError::InvalidConfig(_)));
    }

    #[test]
    fn builder_surfaces_duplicate_peers() {
        let err = DsgSession::builder().peers([1, 2, 2]).build().unwrap_err();
        assert_eq!(err, DsgError::DuplicatePeer(2));
    }

    #[test]
    fn submit_serves_every_request_kind() {
        let mut session = DsgSession::builder().peers(0..16).seed(3).build().unwrap();
        let outcome = session.submit(Request::communicate(1, 9)).unwrap();
        assert!(outcome.request_outcome().is_some());
        assert!(session.engine().are_directly_linked(1, 9).unwrap());
        assert!(matches!(
            session.submit(Request::Join(50)).unwrap(),
            SubmitOutcome::Joined { peer: 50 }
        ));
        assert!(matches!(
            session.submit(Request::Leave(50)).unwrap(),
            SubmitOutcome::Left { peer: 50 }
        ));
        let now = session.engine().time();
        assert!(matches!(
            session.submit(Request::Tick(now + 10)).unwrap(),
            SubmitOutcome::Ticked { .. }
        ));
        assert_eq!(session.engine().time(), now + 10);
        session.engine().validate().unwrap();
    }

    #[test]
    fn batches_share_epochs_and_flush_on_conflicts() {
        let mut session = DsgSession::builder().peers(0..32).seed(5).build().unwrap();
        let recorder = session.observe(Recorder::default());
        let batch = [
            Request::communicate(0, 16),
            Request::communicate(1, 17),
            // Reuses peer 1: forces a second epoch.
            Request::communicate(1, 18),
            Request::Join(99),
            Request::communicate(99, 3),
        ];
        let outcome = session.submit_batch(&batch).unwrap();
        assert_eq!(outcome.outcomes.len(), 5);
        assert_eq!(outcome.epochs, 3);
        assert_eq!(session.epochs(), 3);
        let recorder = recorder.lock().unwrap();
        assert_eq!(recorder.requests, 4);
        assert_eq!(recorder.epochs.len(), 3);
        assert_eq!(recorder.repairs, 3);
        // Every pair of the batch ends up directly linked.
        for (u, v) in [(1, 18), (99, 3)] {
            assert!(session.engine().are_directly_linked(u, v).unwrap());
        }
        session.engine().validate().unwrap();
    }

    #[test]
    fn malformed_requests_fail_typed_with_structure_untouched() {
        let mut session = DsgSession::builder().peers(0..8).seed(11).build().unwrap();
        let before_len = session.len();
        let before_height = session.height();

        // Duplicate join.
        assert_eq!(
            session.submit(Request::Join(3)).unwrap_err(),
            DsgError::DuplicatePeer(3)
        );
        // Leave of an absent peer.
        assert_eq!(
            session.submit(Request::Leave(77)).unwrap_err(),
            DsgError::UnknownPeer(77)
        );
        // Self-communication smuggled into a batch through the public
        // fields (the `Request::communicate` constructor rejects it up
        // front, `try_communicate` returns the same typed error).
        assert_eq!(
            session
                .submit_batch(&[Request::Communicate { u: 2, v: 2 }])
                .unwrap_err(),
            DsgError::SelfCommunication(2)
        );

        assert_eq!(session.len(), before_len);
        assert_eq!(session.height(), before_height);
        session.engine().validate().unwrap();
    }

    #[test]
    fn leaving_down_to_empty_is_typed_not_a_panic() {
        let mut session = DsgSession::builder().peers([0, 1]).seed(2).build().unwrap();
        session.submit(Request::Leave(0)).unwrap();
        // Leaving the last peer empties the network cleanly.
        session.submit(Request::Leave(1)).unwrap();
        assert!(session.is_empty());
        session.engine().validate().unwrap();
        // One more leave on the empty network is a typed error.
        assert_eq!(
            session.submit(Request::Leave(1)).unwrap_err(),
            DsgError::UnknownPeer(1)
        );
    }

    #[test]
    fn batched_epochs_install_once() {
        let mut session = DsgSession::builder().peers(0..64).seed(7).build().unwrap();
        // Four endpoint-disjoint pairs: one epoch, one install pass.
        let batch: Vec<Request> = (0..4).map(|i| Request::communicate(i, i + 32)).collect();
        let outcome = session.submit_batch(&batch).unwrap();
        assert_eq!(outcome.epochs, 1);
        assert_eq!(outcome.install_passes, 1);
        assert_eq!(session.stats().transform_install_passes, 1);
        // The same four pairs sequentially: four passes.
        let mut sequential = DsgSession::builder().peers(0..64).seed(7).build().unwrap();
        for request in &batch {
            sequential.submit(*request).unwrap();
        }
        assert_eq!(sequential.stats().transform_install_passes, 4);
    }
}
