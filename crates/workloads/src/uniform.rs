//! Uniform-random and adversarial (no-locality) workloads.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::trace::Request;
use crate::Workload;

/// Every request picks a uniformly random ordered pair of distinct peers.
/// There is no skew to exploit, so any self-adjusting algorithm can at best
/// match the static structure (up to a constant factor) on this workload.
#[derive(Debug)]
pub struct UniformRandom {
    n: u64,
    rng: StdRng,
}

impl UniformRandom {
    /// Creates a uniform workload over peers `0..n`.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn new(n: u64, seed: u64) -> Self {
        assert!(n >= 2, "a workload needs at least two peers");
        UniformRandom {
            n,
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl Workload for UniformRandom {
    fn peers(&self) -> u64 {
        self.n
    }

    fn next_request(&mut self) -> Request {
        let u = self.rng.random_range(0..self.n);
        let mut v = self.rng.random_range(0..self.n);
        while v == u {
            v = self.rng.random_range(0..self.n);
        }
        Request::communicate(u, v)
    }
}

/// A permutation stream with no temporal locality at all: every round pairs
/// the peers up with a fresh random perfect matching, so no pair repeats
/// until every other pair of its round has been used. This is the
/// adversarial regime the lower bound (Theorem 1) is built from: working set
/// numbers stay `Θ(n)`.
#[derive(Debug)]
pub struct Adversarial {
    n: u64,
    rng: StdRng,
    pending: Vec<Request>,
}

impl Adversarial {
    /// Creates an adversarial workload over peers `0..n`.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn new(n: u64, seed: u64) -> Self {
        assert!(n >= 2, "a workload needs at least two peers");
        Adversarial {
            n,
            rng: StdRng::seed_from_u64(seed),
            pending: Vec::new(),
        }
    }

    fn refill(&mut self) {
        let mut peers: Vec<u64> = (0..self.n).collect();
        // Fisher–Yates shuffle.
        for i in (1..peers.len()).rev() {
            let j = self.rng.random_range(0..=i);
            peers.swap(i, j);
        }
        self.pending = peers
            .chunks(2)
            .filter(|c| c.len() == 2)
            .map(|c| Request::communicate(c[0], c[1]))
            .collect();
    }
}

impl Workload for Adversarial {
    fn peers(&self) -> u64 {
        self.n
    }

    fn next_request(&mut self) -> Request {
        if self.pending.is_empty() {
            self.refill();
        }
        self.pending.pop().expect("refill produces at least one pair")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_requests_are_in_range_and_distinct() {
        let mut w = UniformRandom::new(16, 1);
        for r in w.generate(500) {
            let (u, v) = r.pair();
            assert!(u < 16 && v < 16 && u != v);
        }
    }

    #[test]
    fn uniform_is_reproducible() {
        let a = UniformRandom::new(32, 7).generate(50);
        let b = UniformRandom::new(32, 7).generate(50);
        assert_eq!(a, b);
    }

    #[test]
    fn uniform_covers_the_key_space() {
        let trace = UniformRandom::new(8, 3).generate(400);
        for peer in 0..8u64 {
            assert!(trace
                .iter()
                .any(|r| r.pair().0 == peer || r.pair().1 == peer));
        }
    }

    #[test]
    fn adversarial_rounds_are_perfect_matchings() {
        let mut w = Adversarial::new(10, 5);
        let round = w.generate(5);
        let mut seen = std::collections::HashSet::new();
        for r in &round {
            let (u, v) = r.pair();
            assert!(seen.insert(u));
            assert!(seen.insert(v));
        }
        assert_eq!(seen.len(), 10);
    }

    #[test]
    #[should_panic(expected = "at least two peers")]
    fn tiny_networks_are_rejected() {
        let _ = UniformRandom::new(1, 0);
    }
}
