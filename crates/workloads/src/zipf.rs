//! Zipf-skewed workloads.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::trace::Request;
use crate::Workload;

/// Source and destination are drawn (independently) from a Zipf
/// distribution with exponent `alpha` over a fixed random permutation of the
/// peers, re-drawing on collisions. `alpha = 0` degenerates to the uniform
/// workload; larger exponents concentrate traffic on a small hot set, the
/// regime in which self-adjustment pays off.
#[derive(Debug)]
pub struct ZipfPairs {
    n: u64,
    alpha: f64,
    rng: StdRng,
    /// Cumulative probability table over ranks.
    cumulative: Vec<f64>,
    /// Permutation mapping rank → peer, so that popular peers are spread
    /// over the key space rather than clustered at small keys.
    rank_to_peer: Vec<u64>,
}

impl ZipfPairs {
    /// Creates a Zipf workload over peers `0..n` with exponent `alpha ≥ 0`.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` or `alpha` is negative or not finite.
    pub fn new(n: u64, alpha: f64, seed: u64) -> Self {
        assert!(n >= 2, "a workload needs at least two peers");
        assert!(alpha >= 0.0 && alpha.is_finite(), "alpha must be ≥ 0");
        let mut rng = StdRng::seed_from_u64(seed);
        let weights: Vec<f64> = (1..=n).map(|rank| 1.0 / (rank as f64).powf(alpha)).collect();
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        let cumulative: Vec<f64> = weights
            .iter()
            .map(|w| {
                acc += w / total;
                acc
            })
            .collect();
        let mut rank_to_peer: Vec<u64> = (0..n).collect();
        for i in (1..rank_to_peer.len()).rev() {
            let j = rng.random_range(0..=i);
            rank_to_peer.swap(i, j);
        }
        ZipfPairs {
            n,
            alpha,
            rng,
            cumulative,
            rank_to_peer,
        }
    }

    /// The skew exponent.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    fn sample_peer(&mut self) -> u64 {
        let x: f64 = self.rng.random();
        let rank = self
            .cumulative
            .partition_point(|&c| c < x)
            .min(self.cumulative.len() - 1);
        self.rank_to_peer[rank]
    }
}

impl Workload for ZipfPairs {
    fn peers(&self) -> u64 {
        self.n
    }

    fn next_request(&mut self) -> Request {
        let u = self.sample_peer();
        let mut v = self.sample_peer();
        let mut guard = 0;
        while v == u {
            v = self.sample_peer();
            guard += 1;
            if guard > 64 {
                // Extremely high skew can make collisions frequent; fall
                // back to the next peer in key order.
                v = (u + 1) % self.n;
            }
        }
        Request::communicate(u, v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn frequency(trace: &[Request]) -> HashMap<u64, usize> {
        let mut counts = HashMap::new();
        for r in trace {
            let (u, v) = r.pair();
            *counts.entry(u).or_insert(0) += 1;
            *counts.entry(v).or_insert(0) += 1;
        }
        counts
    }

    #[test]
    fn zero_alpha_is_roughly_uniform() {
        let trace = ZipfPairs::new(16, 0.0, 1).generate(4000);
        let counts = frequency(&trace);
        let max = *counts.values().max().unwrap() as f64;
        let min = *counts.values().min().unwrap() as f64;
        assert!(max / min < 2.0, "uniform workload too skewed: {max} vs {min}");
    }

    #[test]
    fn high_alpha_concentrates_traffic() {
        let trace = ZipfPairs::new(64, 1.5, 2).generate(4000);
        let counts = frequency(&trace);
        let mut values: Vec<usize> = counts.values().copied().collect();
        values.sort_unstable_by(|a, b| b.cmp(a));
        let top4: usize = values.iter().take(4).sum();
        let total: usize = values.iter().sum();
        assert!(
            top4 as f64 > 0.4 * total as f64,
            "top peers carry only {top4} of {total}"
        );
    }

    #[test]
    fn requests_are_valid_and_reproducible() {
        let a = ZipfPairs::new(32, 0.9, 5).generate(200);
        let b = ZipfPairs::new(32, 0.9, 5).generate(200);
        assert_eq!(a, b);
        assert!(a
            .iter()
            .all(|r| r.pair().0 != r.pair().1 && r.pair().0 < 32 && r.pair().1 < 32));
    }

    #[test]
    #[should_panic(expected = "alpha must be ≥ 0")]
    fn negative_alpha_is_rejected() {
        let _ = ZipfPairs::new(8, -1.0, 0);
    }
}
